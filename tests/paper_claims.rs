//! The paper's qualitative claims, asserted end to end at test scale.
//! (The quantitative tables live in `tdo-bench`; these tests pin the
//! *shape* so a regression that breaks a published claim fails CI.)

use tdo::sim::{run, PrefetchSetup, SimConfig, SimResult};
use tdo::workloads::{build, Scale};

fn arm(name: &str, setup: PrefetchSetup) -> SimResult {
    let w = build(name, Scale::Test).unwrap();
    run(&w, &SimConfig::test(setup))
}

/// Figure 2: bigger stream buffers never lose to smaller ones, and both
/// beat no prefetching, on the stride-dominated workloads.
#[test]
fn hw_prefetching_ordering() {
    for name in ["swim", "art", "wupwise"] {
        let none = arm(name, PrefetchSetup::NoPrefetch);
        let hw44 = arm(name, PrefetchSetup::Hw4x4);
        let hw88 = arm(name, PrefetchSetup::Hw8x8);
        assert!(
            hw44.ipc() >= none.ipc() * 0.99,
            "{name}: 4x4 {:.4} vs none {:.4}",
            hw44.ipc(),
            none.ipc()
        );
        assert!(
            hw88.ipc() >= hw44.ipc() * 0.95,
            "{name}: 8x8 {:.4} vs 4x4 {:.4}",
            hw88.ipc(),
            hw44.ipc()
        );
    }
}

/// Section 5.1: the optimizer's execution costs the main thread almost
/// nothing — the helper runs in leftover issue slots.
#[test]
fn optimizer_overhead_is_under_five_percent() {
    let w = build("galgel", Scale::Test).unwrap();
    let mut base_cfg = SimConfig::test(PrefetchSetup::Hw8x8);
    base_cfg.trident_enabled = false;
    let base = run(&w, &base_cfg);
    let mut nolink = SimConfig::test(PrefetchSetup::SwSelfRepair);
    nolink.no_link = true;
    let r = run(&w, &nolink);
    let overhead = 1.0 - r.ipc() / base.ipc();
    assert!(overhead < 0.05, "no-link overhead {:.1}%", overhead * 100.0);
}

/// Figure 4: hot traces capture the bulk of mcf's misses and the prefetcher
/// covers them.
#[test]
fn mcf_misses_live_in_hot_traces() {
    let r = arm("mcf", PrefetchSetup::SwSelfRepair);
    assert!(r.miss_coverage_by_traces() > 0.7, "trace coverage {:.2}", r.miss_coverage_by_traces());
    assert!(
        r.miss_coverage_by_prefetcher() > 0.5,
        "prefetch coverage {:.2}",
        r.miss_coverage_by_prefetcher()
    );
}

/// Figure 4's outliers: dot's unstable descent paths give it far lower
/// trace coverage than mcf.
#[test]
fn dot_has_low_trace_coverage() {
    let dot = arm("dot", PrefetchSetup::SwSelfRepair);
    let mcf = arm("mcf", PrefetchSetup::SwSelfRepair);
    assert!(
        dot.miss_coverage_by_traces() < mcf.miss_coverage_by_traces(),
        "dot {:.2} vs mcf {:.2}",
        dot.miss_coverage_by_traces(),
        mcf.miss_coverage_by_traces()
    );
}

/// Figure 5's headline: self-repairing beats the fixed estimated distance
/// on the distance-sensitive pointer workload, and whole-object beats basic
/// where multi-line objects matter (vis).
#[test]
fn self_repair_and_whole_object_orderings() {
    let base = arm("vis", PrefetchSetup::Hw8x8);
    let basic = arm("vis", PrefetchSetup::SwBasic);
    let whole = arm("vis", PrefetchSetup::SwWholeObject);
    let sr = arm("vis", PrefetchSetup::SwSelfRepair);
    assert!(
        whole.ipc() > basic.ipc() * 1.05,
        "whole-object must beat basic on vis: {:.4} vs {:.4}",
        whole.ipc(),
        basic.ipc()
    );
    assert!(
        sr.ipc() >= whole.ipc() * 0.99,
        "self-repair must not lose to whole-object on vis: {:.4} vs {:.4}",
        sr.ipc(),
        whole.ipc()
    );
    assert!(sr.ipc() > base.ipc() * 1.3, "vis gains: {:.4} vs {:.4}", sr.ipc(), base.ipc());
}

/// Figure 6: prefetch displacement misses stay rare under self-repair.
#[test]
fn misses_due_to_prefetching_are_rare() {
    for name in ["art", "mcf", "galgel"] {
        let r = arm(name, PrefetchSetup::SwSelfRepair);
        let b = r.load_breakdown();
        assert!(b[4] < 0.05, "{name}: miss-due-to-prefetch fraction {:.3}", b[4]);
    }
}

/// Section 5.5 / Figure 9: on stride workloads with short distances the
/// hardware prefetcher holds its own against software-only prefetching.
#[test]
fn hardware_wins_swim() {
    let w = build("swim", Scale::Test).unwrap();
    let none = run(&w, &SimConfig::test(PrefetchSetup::NoPrefetch));
    let hw = run(&w, &SimConfig::test(PrefetchSetup::Hw8x8));
    let sw_only = run(&w, &SimConfig::test(PrefetchSetup::SwOnlySelfRepair));
    assert!(hw.ipc() > none.ipc(), "hw helps swim");
    assert!(
        hw.ipc() >= sw_only.ipc() * 0.95,
        "hw must hold its own on swim: hw {:.4} sw-only {:.4}",
        hw.ipc(),
        sw_only.ipc()
    );
}

/// The DLT's hardware stride detection is what makes mcf prefetchable: with
/// stride confidence disabled (confidence can never saturate), the pointer
/// chase falls back to much weaker dereference prefetching.
#[test]
fn mcf_depends_on_hardware_stride_detection() {
    let w = build("mcf", Scale::Test).unwrap();
    let normal = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
    let mut crippled_cfg = SimConfig::test(PrefetchSetup::SwSelfRepair);
    crippled_cfg.dlt.conf_max = 255; // unreachable => never stride predictable
    let crippled = run(&w, &crippled_cfg);
    assert!(
        normal.ipc() > crippled.ipc() * 1.05,
        "stride detection must matter on mcf: {:.4} vs {:.4}",
        normal.ipc(),
        crippled.ipc()
    );
}
