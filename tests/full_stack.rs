//! Cross-crate integration tests: the whole pipeline — profiler → trace →
//! linking → DLT → insertion → repair — through the public APIs of the
//! umbrella crate.

use tdo::cpu::{CodeImage, Core, CpuConfig};
use tdo::isa::{decode, AluOp, Asm, Cond, Inst, Program, Reg};
use tdo::mem::{Hierarchy, MemConfig, Memory};
use tdo::sim::{run, Machine, PrefetchSetup, SimConfig};
use tdo::workloads::{build, Scale};

/// The full stack turns a pointer-chasing loop from memory-bound to
/// prefetch-covered, and the optimizer statistics prove every stage ran.
#[test]
fn pipeline_stages_all_fire_on_mcf() {
    let w = build("mcf", Scale::Test).unwrap();
    let r = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
    assert!(r.trident.traces_installed >= 1, "trace formation: {:?}", r.trident);
    assert!(r.window.hot_trace_events >= 1, "profiler events: {:?}", r.window);
    assert!(r.window.dlt_events_queued >= 1, "DLT events: {:?}", r.window);
    assert!(r.optimizer.insertions >= 1, "prefetch insertion: {:?}", r.optimizer);
    assert!(r.optimizer.repairs >= 1, "self-repair: {:?}", r.optimizer);
    assert!(r.optimizer.distance_up >= 1, "distance adaptation: {:?}", r.optimizer);
    assert!(r.mem.sw_prefetch_issued > 0, "prefetches executed: {:?}", r.mem);
}

/// Self-repair must beat the hardware baseline on the distance-sensitive
/// workloads, at test scale, through the public API.
#[test]
fn self_repair_beats_hw_baseline_on_distance_sensitive_workloads() {
    for name in ["art", "mcf", "vis"] {
        let w = build(name, Scale::Test).unwrap();
        let base = run(&w, &SimConfig::test(PrefetchSetup::Hw8x8));
        let sr = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
        let speedup = sr.speedup_over(&base);
        assert!(speedup > 1.05, "{name}: self-repair speedup {speedup:.3}");
    }
}

/// The paper's applu observation: a >1000-instruction loop body makes
/// distance 1 optimal — self-repairing adds nothing over the whole-object
/// insertion (both still beat the baseline).
#[test]
fn applu_gains_nothing_from_repair() {
    let w = build("applu", Scale::Test).unwrap();
    let whole = run(&w, &SimConfig::test(PrefetchSetup::SwWholeObject));
    let sr = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
    let ratio = sr.ipc() / whole.ipc();
    assert!(
        (0.97..=1.03).contains(&ratio),
        "applu self-repair must match whole-object: {ratio:.3}"
    );
}

/// Original-equivalent instruction accounting: a run that executes traces
/// (with extra glue and synthetic prefetch instructions) reports the same
/// original instruction total the untouched binary reports for the same
/// architectural work. We check by running the finite workload to
/// completion under both arms: the total original-equivalent count must
/// match exactly.
#[test]
fn original_instruction_accounting_is_exact() {
    let w = build("wupwise", Scale::Test).unwrap();
    let mut totals = Vec::new();
    for setup in [PrefetchSetup::NoPrefetch, PrefetchSetup::SwSelfRepair] {
        let mut cfg = SimConfig::test(setup);
        cfg.warmup_insts = 0;
        cfg.measure_insts = u64::MAX;
        cfg.max_cycles = 500_000_000;
        let r = run(&w, &cfg);
        assert!(r.halted, "{setup:?} must run to completion");
        totals.push(r.orig_insts);
    }
    assert_eq!(
        totals[0], totals[1],
        "trace execution must account for exactly the original instructions"
    );
}

/// A worst-case trace: one that almost always exits early. The watch table
/// backs it out and the original code is restored, bit for bit.
#[test]
fn underperforming_traces_are_backed_out() {
    // A loop whose body branch alternates direction with period 2 but whose
    // profiler-visible path is briefly stable: once the trace is formed with
    // one direction, half the iterations exit early. To force a back-out we
    // make the off-trace direction dominant after formation: the branch is
    // taken during a "training" phase, then never again.
    let (i, phase, x) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut a = Asm::new(0x1000);
    a.li(i, 60_000);
    a.li(phase, 600); // taken for the first 600 iterations
    a.label("loop");
    a.bcond_to(Cond::Gt, phase, "hot"); // during training: taken
    a.op_imm(AluOp::Add, x, 3, x); // afterwards: this path forever
    a.br_to("join");
    a.label("hot");
    a.op_imm(AluOp::Add, x, 1, x);
    a.label("join");
    a.op_imm(AluOp::Sub, phase, 1, phase);
    a.op_imm(AluOp::Sub, i, 1, i);
    a.bcond_to(Cond::Ne, i, "loop");
    a.halt();
    let program = Program {
        name: "backout".into(),
        entry: 0x1000,
        code_base: 0x1000,
        code: a.assemble().unwrap(),
        data: vec![],
    };
    let workload =
        tdo::workloads::Workload { program, description: "trace back-out provocation".into() };
    let mut cfg = SimConfig::test(PrefetchSetup::SwSelfRepair);
    cfg.warmup_insts = 100;
    cfg.measure_insts = u64::MAX;
    cfg.max_cycles = 50_000_000;
    let r = Machine::new(&workload, cfg).run();
    assert!(r.halted);
    assert!(
        r.window.trace_backouts >= 1 || r.trident.traces_installed == 0,
        "a trace trained on a dead path must be backed out: {:?} {:?}",
        r.trident,
        r.window,
    );
}

/// The CPU substrate executes a patched binary: rewriting a word mid-run
/// changes behaviour from that fetch onward.
#[test]
fn runtime_code_patching_is_visible_to_the_core() {
    let r1 = Reg::int(1);
    let mut a = Asm::new(0x1000);
    a.label("spin");
    a.op_imm(AluOp::Add, r1, 1, r1);
    a.br_to("spin");
    let program = Program {
        name: "patch".into(),
        entry: 0x1000,
        code_base: 0x1000,
        code: a.assemble().unwrap(),
        data: vec![],
    };
    let mut code = CodeImage::new(&program, 0x10_0000);
    let mut data = Memory::new();
    let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
    let mut core = Core::new(CpuConfig::paper_baseline(), 0x1000);
    for _ in 0..100 {
        core.cycle(&code, &mut data, &mut hier);
    }
    assert!(!core.halted(), "spinning");
    // Patch the add into a halt.
    code.write_word(0x1000, tdo::isa::encode(&Inst::Halt).unwrap()).unwrap();
    for _ in 0..100 {
        core.cycle(&code, &mut data, &mut hier);
        if core.halted() {
            break;
        }
    }
    assert!(core.halted(), "patched halt must take effect");
    assert_eq!(decode(code.word_at(0x1000).unwrap()).unwrap(), Inst::Halt);
}
