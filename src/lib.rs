//! # tdo — A Self-Repairing Prefetcher in an Event-Driven Dynamic Optimization Framework
//!
//! A full reproduction, in Rust, of the CGO 2006 system by Zhang, Calder and
//! Tullsen: dynamic insertion of software prefetch instructions into hot
//! traces, with the prefetch *distance* adaptively repaired by patching the
//! instruction bits in place, driven by hardware delinquent-load events.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`isa`] — the Alpha-flavoured instruction set with the patchable
//!   prefetch encoding;
//! * [`mem`] — caches, DRAM, MSHRs, and the stream-buffer hardware
//!   prefetcher baseline;
//! * [`cpu`] — the two-context SMT core with the low-priority helper thread;
//! * [`trident`] — the event-driven dynamic optimization framework (branch
//!   profiler, hot traces, code cache, watch table);
//! * [`core_prefetch`] — the paper's contribution: the Delinquent Load
//!   Table and the self-repairing prefetch optimizer;
//! * [`workloads`] — the 14-benchmark synthetic suite;
//! * [`sim`] — the full-system experiment driver.
//!
//! ```no_run
//! use tdo::sim::{run, PrefetchSetup, SimConfig};
//! use tdo::workloads::{build, Scale};
//!
//! let w = build("mcf", Scale::Full).unwrap();
//! let base = run(&w, &SimConfig::paper(PrefetchSetup::Hw8x8));
//! let sr = run(&w, &SimConfig::paper(PrefetchSetup::SwSelfRepair));
//! println!("self-repairing speedup: {:+.1}%", (sr.speedup_over(&base) - 1.0) * 100.0);
//! ```

#![warn(missing_docs)]

pub use tdo_core as core_prefetch;
pub use tdo_cpu as cpu;
pub use tdo_isa as isa;
pub use tdo_mem as mem;
pub use tdo_sim as sim;
pub use tdo_trident as trident;
pub use tdo_workloads as workloads;
