//! # tdo-store — persistent, content-addressed experiment-result store
//!
//! The experiment engine memoizes simulation results in memory, per process.
//! This crate makes that cache durable and shareable: an append-only record
//! log plus an index file under one directory, keyed by a stable 64-bit
//! FNV-1a hash of the experiment cell's fingerprint. Every bench binary, CI
//! job and CLI invocation pointed at the same directory (`TDO_STORE` /
//! `--store-dir`, default `.tdo-store/`) reuses each other's simulations.
//!
//! The store is deliberately generic: it maps `u64` keys to versioned
//! integer payloads (`Vec<u64>`). The `SimResult` record schema lives next
//! to `SimResult` itself (`tdo_sim::persist`), so this crate has no
//! dependencies and no knowledge of simulator types.
//!
//! **Durability contract.** Appends are flushed and the index is committed
//! by write-to-temp-then-rename, so a crash can only ever lose the record
//! being written, never corrupt acknowledged ones. On open, an index whose
//! recorded log length does not match the file is discarded and the log is
//! rescanned. Records that fail their checksum are *quarantined* — moved to
//! `quarantine.log` and dropped from the live log — rather than failing the
//! run; a store with a torn tail (killed mid-append) or a flipped bit heals
//! itself and keeps serving the surviving records.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod fnv;
pub mod record;

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tdo_fault::Site;
use tdo_metrics::{Counter, Histogram, HistogramSnapshot, Registry};

pub use fnv::fnv1a64;
pub use record::FORMAT_VERSION;

use record::{Decoded, IndexEntry, Record};

/// Environment variable naming the store directory.
pub const STORE_ENV: &str = "TDO_STORE";
/// Default store directory (relative to the working directory).
pub const DEFAULT_DIR: &str = ".tdo-store";

const LOG_FILE: &str = "records.log";
const INDEX_FILE: &str = "index.bin";
const QUARANTINE_FILE: &str = "quarantine.log";

#[derive(Clone, Copy, Debug)]
struct Entry {
    offset: u64,
    version: u32,
    words: u32,
}

#[derive(Debug, Default)]
struct Inner {
    index: HashMap<u64, Entry>,
    log_len: u64,
    shadowed: u64,
}

/// Point-in-time store statistics (see [`Store::stats`]).
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Live (addressable) records.
    pub live_records: u64,
    /// Records in the log superseded by a newer write of the same key.
    pub shadowed_records: u64,
    /// Log file size in bytes.
    pub log_bytes: u64,
    /// Quarantine file size in bytes (total ever quarantined).
    pub quarantine_bytes: u64,
    /// Records quarantined by this process (open-scan + reads).
    pub quarantined: u64,
    /// Successful reads served by this process.
    pub hits: u64,
    /// Lookups this process could not serve (absent or stale version).
    pub misses: u64,
    /// Records written by this process.
    pub puts: u64,
}

/// Live-record footprint of one schema generation (see [`Store::size_stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenerationSize {
    /// Schema version of the records.
    pub version: u32,
    /// Live records stored at this version.
    pub records: u64,
    /// Encoded bytes those records occupy in the log.
    pub bytes: u64,
}

/// On-demand size breakdown of the live index (see [`Store::size_stats`]).
#[derive(Clone, Debug, Default)]
pub struct SizeStats {
    /// Per-generation record and byte totals, sorted by version.
    pub per_generation: Vec<GenerationSize>,
    /// Distribution of encoded record sizes in bytes.
    pub record_bytes: HistogramSnapshot,
}

/// Outcome of a full-log verification pass (see [`Store::verify`]).
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Records whose checksum verified.
    pub good: u64,
    /// Records whose checksum failed (still counted, not yet quarantined).
    pub corrupt: u64,
    /// Bytes at the end of the log that do not frame records.
    pub trailing_garbage_bytes: u64,
}

impl VerifyReport {
    /// Whether the log is fully intact.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0 && self.trailing_garbage_bytes == 0
    }
}

/// Outcome of a garbage collection (see [`Store::gc`]).
#[derive(Clone, Debug, Default)]
pub struct GcReport {
    /// Live records kept.
    pub kept: u64,
    /// Live records dropped for having a stale schema version.
    pub dropped_stale: u64,
    /// Shadowed or corrupt records reclaimed.
    pub dropped_shadowed: u64,
    /// Log size before, in bytes.
    pub bytes_before: u64,
    /// Log size after, in bytes.
    pub bytes_after: u64,
}

/// A persistent key → versioned-integer-payload store over one directory.
///
/// All operations are thread-safe; the store can be shared behind an `Arc`
/// by engine workers and server threads alike.
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    puts: Arc<Counter>,
    quarantined: Arc<Counter>,
    get_latency_us: Arc<Histogram>,
    put_latency_us: Arc<Histogram>,
    verify_latency_us: Arc<Histogram>,
    record_bytes: Arc<Histogram>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("dir", &self.dir).finish_non_exhaustive()
    }
}

impl Store {
    /// Resolves the store directory: an explicit override (`--store-dir`),
    /// else [`STORE_ENV`], else [`DEFAULT_DIR`].
    #[must_use]
    pub fn resolve_dir(override_dir: Option<&str>) -> PathBuf {
        match override_dir {
            Some(d) => PathBuf::from(d),
            None => match std::env::var(STORE_ENV) {
                Ok(d) if !d.is_empty() => PathBuf::from(d),
                _ => PathBuf::from(DEFAULT_DIR),
            },
        }
    }

    /// Opens (creating if necessary) the store under `dir`.
    ///
    /// A valid index whose recorded log length matches the log file is
    /// trusted as-is; otherwise the log is scanned record by record,
    /// corrupt records are quarantined, and both files are rewritten
    /// atomically.
    ///
    /// # Errors
    ///
    /// Returns any I/O error creating the directory or reading/writing the
    /// store files. Corrupt *contents* are never an error — they are
    /// quarantined.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let store = Store {
            dir,
            inner: Mutex::new(Inner::default()),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            puts: Arc::new(Counter::new()),
            quarantined: Arc::new(Counter::new()),
            get_latency_us: Arc::new(Histogram::new()),
            put_latency_us: Arc::new(Histogram::new()),
            verify_latency_us: Arc::new(Histogram::new()),
            record_bytes: Arc::new(Histogram::new()),
        };
        store.load()?;
        Ok(store)
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live (addressable) records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether the store has no live records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the payload stored under `key`, requiring schema `version`.
    ///
    /// Returns `None` when the key is absent, stored under a different
    /// schema version, or fails its checksum on read (in which case the
    /// record is quarantined and forgotten — the caller re-simulates and
    /// overwrites it).
    #[must_use]
    pub fn get(&self, key: u64, version: u32) -> Option<Vec<u64>> {
        let _span = tdo_obs::SpanScope::enter(tdo_obs::FlightKind::StoreGet, key);
        let t0 = Instant::now();
        let out = self.get_inner(key, version);
        self.get_latency_us.observe(elapsed_us(t0));
        out
    }

    fn get_inner(&self, key: u64, version: u32) -> Option<Vec<u64>> {
        let mut inner = self.lock();
        let Some(entry) = inner.index.get(&key).copied() else {
            self.misses.inc();
            return None;
        };
        if entry.version != version {
            self.misses.inc();
            return None;
        }
        match self.read_record(&entry) {
            Ok(Decoded::Good { rec, .. }) if rec.key == key => {
                self.hits.inc();
                Some(rec.payload)
            }
            _ => {
                // Bad bytes under a live index entry: quarantine and drop.
                let len = record::record_len(entry.words) as u64;
                let _ = self.quarantine_region(entry.offset, len);
                self.quarantined.inc();
                inner.index.remove(&key);
                let _ = self.write_index(&inner);
                self.misses.inc();
                None
            }
        }
    }

    /// Writes (or overwrites) the payload under `key` at schema `version`.
    ///
    /// The record is appended to the log and flushed, then the index is
    /// committed via write-then-rename; an older record under the same key
    /// becomes shadowed (reclaimable by [`Store::gc`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error appending or committing. The store stays
    /// consistent on failure: a half-appended record is quarantined by the
    /// next open.
    pub fn put(&self, key: u64, version: u32, payload: &[u64]) -> io::Result<()> {
        let _span = tdo_obs::SpanScope::enter(tdo_obs::FlightKind::StorePut, key);
        let t0 = Instant::now();
        let bytes = record::encode_record(&Record { version, key, payload: payload.to_vec() });
        self.record_bytes.observe(bytes.len() as u64);
        let mut inner = self.lock();
        let mut f = fs::OpenOptions::new().write(true).open(self.dir.join(LOG_FILE))?;
        // A previously failed append may have left torn bytes past the last
        // acknowledged record; truncate them so this record lands at
        // `log_len` instead of after mid-log garbage (which would cost every
        // later record on the next rescan).
        let file_len = f.seek(SeekFrom::End(0))?;
        let offset = inner.log_len;
        if file_len > offset {
            f.set_len(offset)?;
        }
        f.seek(SeekFrom::Start(offset))?;
        if let Some(token) = tdo_fault::fire(Site::StoreShortWrite) {
            // Injected crash mid-append: a prefix of the record reaches the
            // file, the caller sees an error, and the tail stays torn.
            let cut = token as usize % bytes.len();
            let _ = f.write_all(&bytes[..cut]);
            let _ = f.sync_data();
            return Err(io::Error::new(io::ErrorKind::WriteZero, "injected short write"));
        }
        f.write_all(&bytes)?;
        if tdo_fault::fire(Site::StoreFsyncFail).is_some() {
            // Injected fsync failure: the bytes may or may not be durable;
            // the record stays unacknowledged (log_len is not advanced).
            return Err(io::Error::other("injected fsync failure"));
        }
        f.sync_data()?;
        inner.log_len = offset + bytes.len() as u64;
        let words = u32::try_from(payload.len()).expect("payload fits u32");
        if inner.index.insert(key, Entry { offset, version, words }).is_some() {
            inner.shadowed += 1;
        }
        self.write_index(&inner)?;
        self.puts.inc();
        self.put_latency_us.observe(elapsed_us(t0));
        Ok(())
    }

    /// Point-in-time statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            live_records: inner.index.len() as u64,
            shadowed_records: inner.shadowed,
            log_bytes: inner.log_len,
            quarantine_bytes: fs::metadata(self.dir.join(QUARANTINE_FILE)).map_or(0, |m| m.len()),
            quarantined: self.quarantined.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            puts: self.puts.get(),
        }
    }

    /// Per-generation (schema-version) footprint of the live records plus
    /// a record-size histogram, computed on demand from the in-memory
    /// index. Purely a function of the live index, so deterministic for a
    /// given store state.
    #[must_use]
    pub fn size_stats(&self) -> SizeStats {
        let inner = self.lock();
        let hist = Histogram::new();
        let mut per: HashMap<u32, (u64, u64)> = HashMap::new();
        for entry in inner.index.values() {
            let bytes = record::record_len(entry.words) as u64;
            hist.observe(bytes);
            let slot = per.entry(entry.version).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += bytes;
        }
        let mut per_generation: Vec<GenerationSize> = per
            .into_iter()
            .map(|(version, (records, bytes))| GenerationSize { version, records, bytes })
            .collect();
        per_generation.sort_by_key(|g| g.version);
        SizeStats { per_generation, record_bytes: hist.snapshot() }
    }

    /// Registers this store's counters and histograms with `reg` under the
    /// `tdo_store_*` families. Call at most once per registry.
    pub fn register_metrics(&self, reg: &Registry) {
        reg.register_counter(
            "tdo_store_hits_total",
            &[],
            "Reads served from the store by this process.",
            Arc::clone(&self.hits),
        );
        reg.register_counter(
            "tdo_store_misses_total",
            &[],
            "Lookups the store could not serve (absent or stale version).",
            Arc::clone(&self.misses),
        );
        reg.register_counter(
            "tdo_store_puts_total",
            &[],
            "Records written by this process.",
            Arc::clone(&self.puts),
        );
        reg.register_counter(
            "tdo_store_quarantined_total",
            &[],
            "Corrupt records quarantined by this process.",
            Arc::clone(&self.quarantined),
        );
        reg.register_histogram(
            "tdo_store_get_latency_us",
            &[],
            "Store read latency.",
            Arc::clone(&self.get_latency_us),
        );
        reg.register_histogram(
            "tdo_store_put_latency_us",
            &[],
            "Store write latency.",
            Arc::clone(&self.put_latency_us),
        );
        reg.register_histogram(
            "tdo_store_verify_latency_us",
            &[],
            "Full-log verify latency.",
            Arc::clone(&self.verify_latency_us),
        );
        reg.register_histogram(
            "tdo_store_record_bytes",
            &[],
            "Encoded record size at write time.",
            Arc::clone(&self.record_bytes),
        );
    }

    /// Re-reads the whole log and checks every record's checksum without
    /// modifying anything.
    ///
    /// # Errors
    ///
    /// Returns any I/O error reading the log.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let _span = tdo_obs::SpanScope::enter(tdo_obs::FlightKind::StoreVerify, 0);
        let t0 = Instant::now();
        let _inner = self.lock();
        let bytes = fs::read(self.dir.join(LOG_FILE))?;
        let report = verify_bytes(&bytes);
        self.verify_latency_us.observe(elapsed_us(t0));
        Ok(report)
    }

    /// Compacts the log: keeps only live records whose schema version is
    /// `keep_version`, dropping stale-schema, shadowed and corrupt records.
    /// The new log and index are committed atomically.
    ///
    /// # Errors
    ///
    /// Returns any I/O error rewriting the files.
    pub fn gc(&self, keep_version: u32) -> io::Result<GcReport> {
        let mut inner = self.lock();
        let mut report = GcReport { bytes_before: inner.log_len, ..GcReport::default() };
        let mut kept: Vec<(u64, Record)> = Vec::new();
        for (&key, entry) in &inner.index {
            if entry.version != keep_version {
                report.dropped_stale += 1;
                continue;
            }
            if let Ok(Decoded::Good { rec, .. }) = self.read_record(entry) {
                kept.push((key, rec));
            } else {
                report.dropped_shadowed += 1;
            }
        }
        kept.sort_by_key(|(key, _)| *key);
        let total_before = {
            // Everything in the log that is not kept is reclaimed.
            let v = verify_bytes(&fs::read(self.dir.join(LOG_FILE))?);
            v.good + v.corrupt
        };
        report.kept = kept.len() as u64;
        report.dropped_shadowed =
            total_before.saturating_sub(kept.len() as u64 + report.dropped_stale);

        let mut log = record::log_header();
        let mut index = HashMap::new();
        for (key, rec) in &kept {
            let offset = log.len() as u64;
            let words = u32::try_from(rec.payload.len()).expect("payload fits u32");
            log.extend_from_slice(&record::encode_record(rec));
            index.insert(*key, Entry { offset, version: rec.version, words });
        }
        self.commit(&self.dir.join(LOG_FILE), &log)?;
        inner.index = index;
        inner.log_len = log.len() as u64;
        inner.shadowed = 0;
        self.write_index(&inner)?;
        report.bytes_after = inner.log_len;
        Ok(report)
    }

    // ---- internals ------------------------------------------------------

    /// Locks the inner state, recovering from a poisoned mutex (a panicking
    /// thread must not take the whole store down with it).
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Atomic write-then-rename commit of `bytes` to `path`.
    fn commit(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            if let Some(token) = tdo_fault::fire(Site::StoreTornRename) {
                // Injected crash mid-commit: a prefix of the temp file
                // lands, the rename never happens, the target is untouched.
                let cut = token as usize % bytes.len().max(1);
                let _ = f.write_all(&bytes[..cut]);
                return Err(io::Error::new(io::ErrorKind::Interrupted, "injected torn commit"));
            }
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        if tdo_fault::fire(Site::StoreRenameFail).is_some() {
            return Err(io::Error::other("injected rename failure"));
        }
        fs::rename(&tmp, path)
    }

    fn write_index(&self, inner: &Inner) -> io::Result<()> {
        let mut entries: Vec<IndexEntry> = inner
            .index
            .iter()
            .map(|(&key, e)| IndexEntry {
                key,
                offset: e.offset,
                version: e.version,
                words: e.words,
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        self.commit(&self.dir.join(INDEX_FILE), &record::encode_index(&entries, inner.log_len))
    }

    fn read_record(&self, entry: &Entry) -> io::Result<Decoded> {
        let mut f = fs::File::open(self.dir.join(LOG_FILE))?;
        f.seek(SeekFrom::Start(entry.offset))?;
        let mut buf = vec![0u8; record::record_len(entry.words)];
        match f.read_exact(&mut buf) {
            Ok(()) => {
                if let Some(token) = tdo_fault::fire(Site::StoreReadCorrupt) {
                    // Injected bit rot on the read path: flip one bit so the
                    // checksum trips and the record is quarantined.
                    let pos = token as usize % buf.len();
                    buf[pos] ^= 1 << ((token >> 8) & 7);
                }
                Ok(record::decode_record(&buf))
            }
            Err(_) => Ok(Decoded::Garbage),
        }
    }

    fn quarantine_region(&self, offset: u64, len: u64) -> io::Result<()> {
        let mut f = fs::File::open(self.dir.join(LOG_FILE))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; usize::try_from(len).expect("region fits usize")];
        let n = f.read(&mut buf)?;
        buf.truncate(n);
        let mut q = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(QUARANTINE_FILE))?;
        q.write_all(&buf)
    }

    /// Loads the store: trusts a matching index, otherwise scans the log,
    /// quarantining corrupt records and rewriting the files.
    fn load(&self) -> io::Result<()> {
        let log_path = self.dir.join(LOG_FILE);
        if !log_path.exists() {
            let mut inner = self.lock();
            self.commit(&log_path, &record::log_header())?;
            inner.index.clear();
            inner.log_len = record::LOG_HEADER_BYTES;
            return self.write_index(&inner);
        }
        let log_len = fs::metadata(&log_path)?.len();
        if let Ok(bytes) = fs::read(self.dir.join(INDEX_FILE)) {
            if let Some((entries, indexed_len)) = record::decode_index(&bytes) {
                if indexed_len == log_len {
                    let mut inner = self.lock();
                    inner.index = entries
                        .into_iter()
                        .map(|e| {
                            (e.key, Entry { offset: e.offset, version: e.version, words: e.words })
                        })
                        .collect();
                    inner.log_len = log_len;
                    return Ok(());
                }
            }
        }
        self.rescan()
    }

    /// Full log scan: keep good records (newest per key wins), quarantine
    /// everything else, and commit a clean log + index.
    fn rescan(&self) -> io::Result<()> {
        let log_path = self.dir.join(LOG_FILE);
        let bytes = fs::read(&log_path)?;
        let mut good: Vec<Record> = Vec::new();
        let mut quarantine: Vec<u8> = Vec::new();
        let mut shadowed = 0u64;
        let mut pos = record::LOG_HEADER_BYTES as usize;
        if !record::check_log_header(&bytes) {
            quarantine.extend_from_slice(&bytes);
            pos = bytes.len();
        }
        while pos < bytes.len() {
            match record::decode_record(&bytes[pos..]) {
                Decoded::Good { rec, len } => {
                    if good.iter().any(|r| r.key == rec.key) {
                        shadowed += 1;
                    }
                    good.push(rec);
                    pos += len;
                }
                Decoded::BadChecksum { len } => {
                    quarantine.extend_from_slice(&bytes[pos..pos + len]);
                    self.quarantined.inc();
                    pos += len;
                }
                Decoded::Garbage => {
                    quarantine.extend_from_slice(&bytes[pos..]);
                    self.quarantined.inc();
                    pos = bytes.len();
                }
            }
        }
        let mut inner = self.lock();
        if quarantine.is_empty()
            && !good.is_empty()
            && bytes.len() as u64 > record::LOG_HEADER_BYTES
        {
            // Log intact, only the index was missing/stale: keep the log
            // bytes as-is and just rebuild the index.
            let mut index = HashMap::new();
            let mut offset = record::LOG_HEADER_BYTES;
            for rec in &good {
                let words = u32::try_from(rec.payload.len()).expect("payload fits u32");
                index.insert(rec.key, Entry { offset, version: rec.version, words });
                offset += rec.encoded_len() as u64;
            }
            inner.index = index;
            inner.log_len = bytes.len() as u64;
            inner.shadowed = shadowed;
            return self.write_index(&inner);
        }
        if !quarantine.is_empty() {
            let mut q = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(QUARANTINE_FILE))?;
            q.write_all(&quarantine)?;
        }
        // Rewrite the log with only the surviving records (newest per key
        // kept live; older duplicates are preserved as shadowed history).
        let mut log = record::log_header();
        let mut index = HashMap::new();
        let mut shadowed = 0u64;
        for rec in &good {
            let offset = log.len() as u64;
            let words = u32::try_from(rec.payload.len()).expect("payload fits u32");
            log.extend_from_slice(&record::encode_record(rec));
            if index.insert(rec.key, Entry { offset, version: rec.version, words }).is_some() {
                shadowed += 1;
            }
        }
        self.commit(&log_path, &log)?;
        inner.index = index;
        inner.log_len = log.len() as u64;
        inner.shadowed = shadowed;
        self.write_index(&inner)
    }
}

/// Whole microseconds elapsed since `t0`, saturating.
fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Scans `bytes` (a whole log file) and classifies every record.
fn verify_bytes(bytes: &[u8]) -> VerifyReport {
    let mut report = VerifyReport::default();
    if !record::check_log_header(bytes) {
        report.trailing_garbage_bytes = bytes.len() as u64;
        return report;
    }
    let mut pos = record::LOG_HEADER_BYTES as usize;
    while pos < bytes.len() {
        match record::decode_record(&bytes[pos..]) {
            Decoded::Good { len, .. } => {
                report.good += 1;
                pos += len;
            }
            Decoded::BadChecksum { len } => {
                report.corrupt += 1;
                pos += len;
            }
            Decoded::Garbage => {
                report.trailing_garbage_bytes = (bytes.len() - pos) as u64;
                break;
            }
        }
    }
    report
}
