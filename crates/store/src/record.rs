//! The on-disk binary formats: record log and index file.
//!
//! Everything is little-endian and integer-only. A record is
//!
//! ```text
//! offset  size  field
//!      0     4  record magic  (REC_MAGIC)
//!      4     4  schema version (the caller's payload schema)
//!      8     8  key           (FNV-1a of the cell fingerprint)
//!     16     4  words         (payload length in u64 words)
//!     20     4  reserved      (zero)
//!     24  8×w   payload
//!   24+8w     8  checksum     (FNV-1a over bytes 0 .. 24+8w)
//! ```
//!
//! The length is inside the checksummed region, so a corrupt length cannot
//! silently mis-frame a record: either the checksum at the claimed end
//! matches (and the length was good) or the record is quarantined.

use crate::fnv::{fnv1a64, Fnv1a};

/// Magic number opening the record log file.
pub const LOG_MAGIC: u64 = 0x5444_4f53_544f_5231; // "TDOSTOR1"
/// Magic number opening the index file.
pub const IDX_MAGIC: u64 = 0x5444_4f49_4e44_5831; // "TDOINDX1"
/// Magic number opening every record.
pub const REC_MAGIC: u32 = 0x5444_5245; // "TDRE"
/// On-disk container format version (bumped only when the framing changes;
/// payload schema versions are per-record and owned by the caller).
pub const FORMAT_VERSION: u32 = 1;

/// Log file header size in bytes.
pub const LOG_HEADER_BYTES: u64 = 16;
/// Fixed part of a record before the payload.
pub const REC_HEADER_BYTES: usize = 24;
/// Sanity cap on a record's payload length (1 MiB of words).
pub const MAX_WORDS: u32 = 1 << 17;

/// One decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Payload schema version.
    pub version: u32,
    /// Content-address key.
    pub key: u64,
    /// The integer payload.
    pub payload: Vec<u64>,
}

impl Record {
    /// Total encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        REC_HEADER_BYTES + self.payload.len() * 8 + 8
    }
}

/// Encoded size in bytes of a record with `words` payload words.
#[must_use]
pub fn record_len(words: u32) -> usize {
    REC_HEADER_BYTES + words as usize * 8 + 8
}

/// The log file header.
#[must_use]
pub fn log_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(LOG_HEADER_BYTES as usize);
    out.extend_from_slice(&LOG_MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

/// Whether `bytes` starts with a valid log header.
#[must_use]
pub fn check_log_header(bytes: &[u8]) -> bool {
    bytes.len() >= LOG_HEADER_BYTES as usize
        && bytes[0..8] == LOG_MAGIC.to_le_bytes()
        && bytes[8..12] == FORMAT_VERSION.to_le_bytes()
}

/// Serializes one record (header, payload, checksum).
#[must_use]
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(rec.encoded_len());
    out.extend_from_slice(&REC_MAGIC.to_le_bytes());
    out.extend_from_slice(&rec.version.to_le_bytes());
    out.extend_from_slice(&rec.key.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(rec.payload.len()).expect("payload fits u32").to_le_bytes(),
    );
    out.extend_from_slice(&0u32.to_le_bytes());
    for w in &rec.payload {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let mut h = Fnv1a::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Outcome of decoding the bytes at one log offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decoded {
    /// A record with a valid checksum; `len` is its encoded size.
    Good {
        /// The record.
        rec: Record,
        /// Encoded size in bytes.
        len: usize,
    },
    /// The framing was plausible (magic and length in range) but the
    /// checksum failed; `len` bytes can be skipped to stay in sync.
    BadChecksum {
        /// Encoded size claimed by the (untrusted) header.
        len: usize,
    },
    /// The bytes do not frame a record at all; resynchronization is not
    /// possible past this point.
    Garbage,
}

/// Decodes the record starting at `bytes[0]`.
#[must_use]
pub fn decode_record(bytes: &[u8]) -> Decoded {
    if bytes.len() < record_len(0) || u32_at(bytes, 0) != REC_MAGIC {
        return Decoded::Garbage;
    }
    let words = u32_at(bytes, 16);
    if words > MAX_WORDS {
        return Decoded::Garbage;
    }
    let len = record_len(words);
    if bytes.len() < len {
        return Decoded::Garbage;
    }
    let body = &bytes[..len - 8];
    let stored = u64_at(bytes, len - 8);
    if fnv1a64(body) != stored {
        return Decoded::BadChecksum { len };
    }
    let payload =
        (0..words as usize).map(|i| u64_at(bytes, REC_HEADER_BYTES + i * 8)).collect::<Vec<u64>>();
    Decoded::Good { rec: Record { version: u32_at(bytes, 4), key: u64_at(bytes, 8), payload }, len }
}

/// One index entry: where a key's newest record lives in the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// The record key.
    pub key: u64,
    /// Byte offset of the record in the log file.
    pub offset: u64,
    /// Payload schema version.
    pub version: u32,
    /// Payload length in words.
    pub words: u32,
}

/// Serializes the index file: header, entries, trailing checksum. `log_len`
/// binds the index to one exact log state — any mismatch on open forces a
/// full rescan.
#[must_use]
pub fn encode_index(entries: &[IndexEntry], log_len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + entries.len() * 24 + 8);
    out.extend_from_slice(&IDX_MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::try_from(entries.len()).expect("count fits u32").to_le_bytes());
    out.extend_from_slice(&log_len.to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.key.to_le_bytes());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.version.to_le_bytes());
        out.extend_from_slice(&e.words.to_le_bytes());
    }
    let mut h = Fnv1a::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Decodes an index file; `None` on any structural or checksum mismatch
/// (the caller falls back to scanning the log).
#[must_use]
pub fn decode_index(bytes: &[u8]) -> Option<(Vec<IndexEntry>, u64)> {
    if bytes.len() < 32
        || bytes[0..8] != IDX_MAGIC.to_le_bytes()
        || u32_at(bytes, 8) != FORMAT_VERSION
    {
        return None;
    }
    let count = u32_at(bytes, 12) as usize;
    let log_len = u64_at(bytes, 16);
    let body_len = 24 + count * 24;
    if bytes.len() != body_len + 8 {
        return None;
    }
    if fnv1a64(&bytes[..body_len]) != u64_at(bytes, body_len) {
        return None;
    }
    let entries = (0..count)
        .map(|i| {
            let at = 24 + i * 24;
            IndexEntry {
                key: u64_at(bytes, at),
                offset: u64_at(bytes, at + 8),
                version: u32_at(bytes, at + 16),
                words: u32_at(bytes, at + 20),
            }
        })
        .collect();
    Some((entries, log_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let rec = Record { version: 3, key: 0xdead_beef, payload: vec![1, 2, u64::MAX] };
        let bytes = encode_record(&rec);
        assert_eq!(bytes.len(), rec.encoded_len());
        assert_eq!(decode_record(&bytes), Decoded::Good { rec, len: bytes.len() });
    }

    #[test]
    fn bit_flip_is_bad_checksum_not_garbage() {
        let rec = Record { version: 1, key: 7, payload: vec![42; 4] };
        let mut bytes = encode_record(&rec);
        let len = bytes.len();
        bytes[REC_HEADER_BYTES + 3] ^= 0x10; // flip a payload bit
        assert_eq!(decode_record(&bytes), Decoded::BadChecksum { len });
    }

    #[test]
    fn truncation_is_garbage() {
        let rec = Record { version: 1, key: 7, payload: vec![42; 4] };
        let bytes = encode_record(&rec);
        assert_eq!(decode_record(&bytes[..bytes.len() - 9]), Decoded::Garbage);
        assert_eq!(decode_record(&[]), Decoded::Garbage);
    }

    #[test]
    fn index_round_trip_and_rejects_tampering() {
        let entries = vec![
            IndexEntry { key: 1, offset: 16, version: 1, words: 4 },
            IndexEntry { key: 2, offset: 80, version: 2, words: 0 },
        ];
        let bytes = encode_index(&entries, 1234);
        assert_eq!(decode_index(&bytes), Some((entries, 1234)));
        let mut bad = bytes.clone();
        bad[25] ^= 1;
        assert_eq!(decode_index(&bad), None);
        assert_eq!(decode_index(&bytes[..bytes.len() - 1]), None);
    }
}
