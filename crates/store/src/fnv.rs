//! FNV-1a hashing — the store's key and checksum function.
//!
//! FNV-1a is stable across platforms and Rust versions (unlike
//! `DefaultHasher`, which documents no such guarantee), trivially
//! implementable without dependencies, and good enough for content
//! addressing a few thousand experiment cells. Keys must be stable on disk
//! forever, so the algorithm is part of the store's file-format contract.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a hash of `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A streaming FNV-1a hasher for checksumming records as they serialize.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a(OFFSET_BASIS)
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
