//! Durability and recovery tests: reopen, torn tails, flipped bits, index
//! loss, shadowing and garbage collection.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tdo_store::{fnv1a64, Store, FORMAT_VERSION};

/// A unique scratch directory per test, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdo-store-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TestDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }

    fn log(&self) -> PathBuf {
        self.0.join("records.log")
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn round_trip_and_reopen() {
    let dir = TestDir::new("roundtrip");
    let payload: Vec<u64> = (0..60).map(|i| i * 3 + 1).collect();
    let key = fnv1a64(b"mcf|Test|SimConfig{...}");
    {
        let store = Store::open(dir.path()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.get(key, 1), None);
        store.put(key, 1, &payload).unwrap();
        assert_eq!(store.get(key, 1).as_deref(), Some(&payload[..]));
    }
    // Fresh process: the index fast-path must serve the same bytes.
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(key, 1).as_deref(), Some(&payload[..]));
    // A different schema version is a miss, not a wrong answer.
    assert_eq!(store.get(key, 2), None);
    let stats = store.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn reopen_without_index_rescans() {
    let dir = TestDir::new("noindex");
    {
        let store = Store::open(dir.path()).unwrap();
        store.put(1, 1, &[10, 20]).unwrap();
        store.put(2, 1, &[30]).unwrap();
    }
    fs::remove_file(dir.path().join("index.bin")).unwrap();
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(store.get(1, 1), Some(vec![10, 20]));
    assert_eq!(store.get(2, 1), Some(vec![30]));
    assert!(store.verify().unwrap().is_clean());
}

#[test]
fn truncated_log_quarantines_tail_and_keeps_the_rest() {
    let dir = TestDir::new("truncate");
    {
        let store = Store::open(dir.path()).unwrap();
        store.put(1, 1, &[11; 8]).unwrap();
        store.put(2, 1, &[22; 8]).unwrap();
    }
    // Tear the tail mid-record, as a crash during append would.
    let bytes = fs::read(dir.log()).unwrap();
    fs::write(dir.log(), &bytes[..bytes.len() - 13]).unwrap();

    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.len(), 1, "torn record dropped, earlier record kept");
    assert_eq!(store.get(1, 1), Some(vec![11; 8]));
    assert_eq!(store.get(2, 1), None);
    assert!(store.verify().unwrap().is_clean(), "log rewritten clean");
    assert!(store.stats().quarantine_bytes > 0, "torn bytes preserved in quarantine");
    // The healed store accepts new appends.
    store.put(2, 1, &[22; 8]).unwrap();
    assert_eq!(store.get(2, 1), Some(vec![22; 8]));
}

#[test]
fn bit_flip_is_quarantined_not_a_panic() {
    let dir = TestDir::new("bitflip");
    {
        let store = Store::open(dir.path()).unwrap();
        store.put(1, 1, &[5; 16]).unwrap();
        store.put(2, 1, &[6; 16]).unwrap();
    }
    // Flip one payload bit of the first record (header is 16 bytes, record
    // header 24, so byte 48 is inside record 1's payload).
    let mut bytes = fs::read(dir.log()).unwrap();
    bytes[48] ^= 0x01;
    fs::write(dir.log(), &bytes).unwrap();
    fs::remove_file(dir.path().join("index.bin")).unwrap(); // force rescan

    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.get(1, 1), None, "corrupt record dropped");
    assert_eq!(store.get(2, 1), Some(vec![6; 16]), "record after the bad one survives");
    assert_eq!(store.stats().quarantined, 1);
    assert!(store.verify().unwrap().is_clean());
}

#[test]
fn bit_flip_under_a_live_index_is_caught_at_read_time() {
    let dir = TestDir::new("bitflip-read");
    {
        let store = Store::open(dir.path()).unwrap();
        store.put(1, 1, &[5; 16]).unwrap();
    }
    let mut bytes = fs::read(dir.log()).unwrap();
    bytes[48] ^= 0x01;
    fs::write(dir.log(), &bytes).unwrap();
    // Index still matches the log length, so open trusts it; the checksum
    // check at read time must catch the flip.
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.get(1, 1), None);
    assert_eq!(store.stats().quarantined, 1);
    // Overwriting heals the key.
    store.put(1, 1, &[7; 16]).unwrap();
    assert_eq!(store.get(1, 1), Some(vec![7; 16]));
}

#[test]
fn overwrites_shadow_and_gc_reclaims() {
    let dir = TestDir::new("gc");
    let store = Store::open(dir.path()).unwrap();
    store.put(1, 1, &[1; 32]).unwrap();
    store.put(1, 1, &[2; 32]).unwrap(); // shadows the first
    store.put(2, 7, &[3; 32]).unwrap(); // stale schema version
    store.put(3, 1, &[4; 32]).unwrap();
    assert_eq!(store.get(1, 1), Some(vec![2; 32]));
    assert_eq!(store.stats().shadowed_records, 1);

    let report = store.gc(1).unwrap();
    assert_eq!(report.kept, 2);
    assert_eq!(report.dropped_stale, 1);
    assert_eq!(report.dropped_shadowed, 1);
    assert!(report.bytes_after < report.bytes_before);

    assert_eq!(store.get(1, 1), Some(vec![2; 32]), "latest value survives gc");
    assert_eq!(store.get(3, 1), Some(vec![4; 32]));
    assert_eq!(store.get(2, 7), None, "stale-schema record dropped");
    assert_eq!(store.len(), 2);

    // And the gc'd store reopens cleanly.
    drop(store);
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(store.get(1, 1), Some(vec![2; 32]));
}

#[test]
fn resolve_dir_precedence() {
    assert_eq!(Store::resolve_dir(Some("/x/y")), PathBuf::from("/x/y"));
    // Without an override the result is the env var or the default; both
    // are exercised by CI, here we just pin the default name.
    assert_eq!(FORMAT_VERSION, 1);
    assert_eq!(tdo_store::DEFAULT_DIR, ".tdo-store");
}

#[test]
fn size_stats_and_metric_histograms() {
    let dir = TestDir::new("sizestats");
    let store = Store::open(dir.path()).unwrap();
    store.put(1, 1, &[0; 4]).unwrap();
    store.put(2, 1, &[0; 64]).unwrap();
    store.put(3, 2, &[0; 4]).unwrap();
    let _ = store.get(1, 1);
    let _ = store.get(9, 1); // miss
    store.verify().unwrap();

    let sizes = store.size_stats();
    assert_eq!(sizes.per_generation.len(), 2, "two schema generations live");
    assert_eq!(sizes.per_generation[0].version, 1);
    assert_eq!(sizes.per_generation[0].records, 2);
    assert_eq!(sizes.per_generation[1].version, 2);
    assert_eq!(sizes.per_generation[1].records, 1);
    assert_eq!(sizes.record_bytes.count, 3);
    let log_payload_bytes: u64 = sizes.per_generation.iter().map(|g| g.bytes).sum();
    assert!(log_payload_bytes > 0);

    // The registry sees the same store counters and the latency
    // histograms recorded one observation per operation.
    let reg = tdo_metrics::Registry::new();
    store.register_metrics(&reg);
    let text = reg.render_prom();
    assert!(text.contains("tdo_store_puts_total 3\n"), "puts counter exposed:\n{text}");
    assert!(text.contains("tdo_store_get_latency_us_count 2\n"), "two timed gets:\n{text}");
    assert!(text.contains("tdo_store_put_latency_us_count 3\n"), "three timed puts:\n{text}");
    assert!(text.contains("tdo_store_verify_latency_us_count 1\n"), "one timed verify:\n{text}");
    assert!(text.contains("tdo_store_record_bytes_count 3\n"), "record sizes observed:\n{text}");
    tdo_metrics::expo::parse_text(&text).expect("store exposition parses");
}
