//! A tiny flat-JSON-object parser for `/run` request bodies.
//!
//! The cell spec grammar is deliberately small: one object whose values are
//! strings, non-negative integers or booleans — no nesting, no arrays, no
//! floats. Anything else is a parse error (and therefore an HTTP 400), never
//! a panic. Response bodies are built by hand (integer-only), so this is the
//! only JSON *reading* the daemon does.

/// One parsed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a flat JSON object into `(key, value)` pairs in document order.
///
/// # Errors
///
/// Returns a human-readable message on any deviation from the flat-object
/// grammar (which the server surfaces as a 400).
pub fn parse_object(text: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => {}
                Some(b'}') => break,
                _ => return Err("expected `,` or `}` in object".into()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(pairs)
}

/// Escapes a string for embedding in a hand-built JSON body.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            _ => Err(format!("expected `{}`", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    _ => return Err("unsupported string escape".into()),
                },
                Some(b) if b < 0x20 => return Err("control byte in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 sequences byte by byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or("invalid UTF-8 in string")?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 in string".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err("floats are not accepted".into());
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Value::Int)
                    .ok_or_else(|| "integer out of range".into())
            }
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Value::Bool(false))
            }
            _ => Err("expected a string, integer or boolean value".into()),
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_cell_spec() {
        let pairs = parse_object(
            r#"{ "workload": "mcf", "arm": "sr", "scale": "full", "insts": 5000, "store": true }"#,
        )
        .unwrap();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0], ("workload".into(), Value::Str("mcf".into())));
        assert_eq!(pairs[3], ("insts".into(), Value::Int(5000)));
        assert_eq!(pairs[4], ("store".into(), Value::Bool(true)));
    }

    #[test]
    fn empty_object_and_escapes() {
        assert!(parse_object("{}").unwrap().is_empty());
        let pairs = parse_object(r#"{"a":"x\"y\\z\n"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("x\"y\\z\n".into()));
        assert_eq!(escape("x\"y\\z\n\u{1}"), "x\\\"y\\\\z\\n\\u0001");
    }

    #[test]
    fn rejects_what_the_grammar_excludes() {
        for bad in [
            "",
            "[]",
            "{",
            r#"{"a"}"#,
            r#"{"a":1.5}"#,
            r#"{"a":-1}"#,
            r#"{"a":{}}"#,
            r#"{"a":[1]}"#,
            r#"{"a":null}"#,
            r#"{"a":1}x"#,
            r#"{"a":"\q"}"#,
            r#"{"a":99999999999999999999999}"#,
        ] {
            assert!(parse_object(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn utf8_survives() {
        let pairs = parse_object(r#"{"a":"héllo ⚙"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("héllo ⚙".into()));
    }
}
