//! The in-repo HTTP client behind `tdo ping` — the CI image has no `curl`,
//! so tests and the smoke pipeline talk to the daemon through this.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response: status code and body.
#[derive(Clone, Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: String,
    /// The request's trace id from the `X-Tdo-Trace` response header
    /// (16 lowercase hex digits), when the daemon sent one.
    pub trace: Option<String>,
}

impl Response {
    /// Whether the status is 2xx.
    #[must_use]
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one request and reads the full response (the daemon always closes
/// the connection after one exchange).
///
/// # Errors
///
/// Returns transport errors, timeouts (120 s read — simulations can take a
/// while at paper scale) and malformed response framing.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Shorthand for a GET.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// Shorthand for a POST with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body))
}

fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 response head"))?;
    let status_line = head.split("\r\n").next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let trace = head.split("\r\n").skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("x-tdo-trace").then(|| value.trim().to_string())
    });
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| bad("non-UTF-8 response body"))?;
    Ok(Response { status, body, trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, "{}");
        assert!(!r.ok());
        assert_eq!(r.trace, None);
    }

    #[test]
    fn captures_the_trace_header() {
        let raw =
            b"HTTP/1.1 200 OK\r\nX-Tdo-Trace: 00000000000000ab\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.trace.as_deref(), Some("00000000000000ab"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
