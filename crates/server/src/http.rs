//! Minimal HTTP/1.1 framing: enough to read one request and write one
//! response over a `TcpStream`. Connections are one-shot (`Connection:
//! close`); there is no keep-alive, chunking or TLS — the daemon serves
//! trusted lab traffic, not the open internet.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use tdo_fault::Site;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased).
    pub method: String,
    /// The request path, query string included.
    pub path: String,
    /// The request body (empty when there is none).
    pub body: String,
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns `InvalidData` on malformed requests and over-limit heads or
/// bodies, and propagates transport errors (including read timeouts).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    if tdo_fault::fire(Site::ServerReadFail).is_some() {
        // Injected transport failure while reading the request.
        return Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected read failure"));
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?.to_ascii_uppercase();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Maps a [`read_request`] failure to the stable `reason` label on
/// `tdo_server_bad_requests_total` — every malformed-request early-return
/// path gets its own bucket so reject spikes are attributable.
#[must_use]
pub fn reject_reason(e: &io::Error) -> &'static str {
    match e.to_string().as_str() {
        "request head too large" => "head_too_large",
        "request body too large" => "body_too_large",
        "connection closed mid-request" | "connection closed mid-body" => "closed_early",
        "non-UTF-8 head" | "non-UTF-8 body" => "bad_encoding",
        "empty request" | "missing method" | "missing path" => "bad_request_line",
        "bad Content-Length" => "bad_content_length",
        _ => "read_failed", // transport errors, timeouts, injected faults
    }
}

/// The reason phrase for the status codes this daemon emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes. Errors are returned for the
/// caller to log; the connection is closed either way.
///
/// # Errors
///
/// Propagates transport errors (including write timeouts).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

/// Like [`write_response`] with an explicit `Content-Type` (the metrics
/// endpoint serves Prometheus text exposition as `text/plain`).
///
/// # Errors
///
/// Propagates transport errors (including write timeouts).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    if let Some(token) = tdo_fault::fire(Site::ServerSlowClient) {
        // Injected slow client: stall the response without failing it. The
        // server must stay responsive to everyone else.
        std::thread::sleep(std::time::Duration::from_millis(token % 25));
    }
    if tdo_fault::fire(Site::ServerWriteFail).is_some() {
        // Injected transport failure while writing the response.
        return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected write failure"));
    }
    // Echo the request's trace id so a client can quote it back when
    // filing a report (and tests can join responses to flight records).
    // The accept thread installs the context before any response is
    // written, so this sees the right trace on every path.
    let trace = tdo_obs::span::current().trace;
    let trace_header =
        if trace != 0 { format!("X-Tdo-Trace: {trace:016x}\r\n") } else { String::new() };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reject_message_maps_to_a_stable_reason() {
        let data = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        for (msg, reason) in [
            ("request head too large", "head_too_large"),
            ("request body too large", "body_too_large"),
            ("connection closed mid-request", "closed_early"),
            ("connection closed mid-body", "closed_early"),
            ("non-UTF-8 head", "bad_encoding"),
            ("non-UTF-8 body", "bad_encoding"),
            ("empty request", "bad_request_line"),
            ("missing method", "bad_request_line"),
            ("missing path", "bad_request_line"),
            ("bad Content-Length", "bad_content_length"),
        ] {
            assert_eq!(reject_reason(&data(msg)), reason, "`{msg}`");
        }
        // Transport errors — timeouts, resets, injected read faults — all
        // land in the read_failed bucket.
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "read timed out");
        assert_eq!(reject_reason(&timeout), "read_failed");
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "injected read failure");
        assert_eq!(reject_reason(&reset), "read_failed");
    }
}
