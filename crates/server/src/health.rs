//! The continuous health plane: periodic sampling of the server's metrics
//! registry into a retained [`Series`] ring, the `GET /metrics/history`
//! JSONL rendering, and the SLO/anomaly watchdog that turns sustained bad
//! windows into flight-recorder dumps.
//!
//! **Sampling model.** The column schema is captured once at bind time —
//! every registered counter/gauge/histogram whose series name passes
//! [`sampled`] — and never changes afterwards, so history rows are
//! fixed-width and byte-deterministic. A row is appended only when some
//! sampled value changed since the last row ("skip-if-unchanged"), and the
//! filter excludes everything a history scrape itself perturbs (the global
//! request counter, non-`run` endpoint counters/latencies, the flight
//! recorder's own counters, the uptime tick), so two scrapes of an idle
//! server return identical bytes.
//!
//! **Watchdog.** Each background tick converts the retained window into
//! per-row deltas ([`WatchRow`]) and evaluates four rules; a tripped rule
//! bumps `tdo_watchdog_trips_total{rule}` and fires the flight-dump path
//! with reason `slo_burn` (the SLO rule) or `anomaly` (everything else).
//!
//! | rule | trigger |
//! |---|---|
//! | `slo_burn` | ≥50% of short-window `/run` requests over the SLO bucket *and* ≥10% over the long window |
//! | `queue_depth` | queue ≥80% of capacity for 3 consecutive rows |
//! | `shed_rate` | ≥3 requests shed inside the short window |
//! | `arm_switch_storm` | ≥8 policy arm switches inside the short window |

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tdo_metrics::series::{ColKind, Column, Series, SERIES_SCHEMA_VERSION};
use tdo_metrics::{Gauge, Histogram, Registry};

use crate::json::escape;
use crate::relock;

/// Retained history rows; at the default ~100 ms cadence this is ~25 s of
/// change-bearing samples (idle periods append nothing).
pub const HISTORY_CAPACITY: usize = 256;

/// Every `rule` label on `tdo_watchdog_trips_total`.
pub const WATCHDOG_RULES: [&str; 4] = ["slo_burn", "queue_depth", "shed_rate", "arm_switch_storm"];

/// Ticks a tripped rule stays quiet before it may trip again — one dump
/// per sustained incident, not one per tick.
pub const WATCHDOG_COOLDOWN_TICKS: u64 = 100;

/// Rows in the watchdog's short (burst) window.
const SHORT_WINDOW: usize = 5;
/// Rows in the watchdog's long (burn) window.
const LONG_WINDOW: usize = 50;

/// The flight-dump reason a tripped rule maps to.
#[must_use]
pub fn dump_reason(rule: &str) -> &'static str {
    if rule == "slo_burn" {
        "slo_burn"
    } else {
        "anomaly"
    }
}

/// Whether a metrics series is retained in history. Excluded: anything a
/// history/health scrape itself moves (else idle scrapes would never be
/// byte-identical), the flight recorder's bookkeeping, and the static
/// build-info gauge.
#[must_use]
pub fn sampled(name: &str) -> bool {
    if name.starts_with("tdo_obs_") || name.starts_with("tdo_build_info") {
        return false;
    }
    if name == "tdo_server_requests_total" || name == "tdo_server_uptime_ticks" {
        return false;
    }
    if (name.starts_with("tdo_server_endpoint_requests_total")
        || name.starts_with("tdo_server_request_latency_us"))
        && !name.contains("endpoint=\"run\"")
    {
        return false;
    }
    true
}

/// One delta row of the watchdog's inputs: windowed `/run` traffic, how
/// much of it breached the SLO bucket, and the anomaly counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WatchRow {
    /// `/run` requests completed in the row's window.
    pub run_count: u64,
    /// Of those, requests slower than the SLO bucket.
    pub run_slow: u64,
    /// Queue depth at sample time (gauge, not a delta).
    pub queue_depth: u64,
    /// Requests shed in the window.
    pub shed: u64,
    /// Policy arm switches in the window.
    pub arm_switches: u64,
}

/// The rule engine. Pure over its inputs: `evaluate` depends only on the
/// rows, the tick and its own cooldown state, so tests drive it with
/// synthetic rows.
pub struct Watchdog {
    queue_cap: u64,
    cooldown_until: [u64; WATCHDOG_RULES.len()],
}

impl Watchdog {
    /// A watchdog for a run queue of the given capacity.
    #[must_use]
    pub fn new(queue_cap: u64) -> Watchdog {
        Watchdog { queue_cap, cooldown_until: [0; WATCHDOG_RULES.len()] }
    }

    /// Evaluates every rule over the delta rows (oldest first) and returns
    /// the rules that trip at `tick`, cooldowns applied.
    pub fn evaluate(&mut self, tick: u64, rows: &[WatchRow]) -> Vec<&'static str> {
        let short = &rows[rows.len().saturating_sub(SHORT_WINDOW)..];
        let long = &rows[rows.len().saturating_sub(LONG_WINDOW)..];
        let sum = |rows: &[WatchRow], f: fn(&WatchRow) -> u64| rows.iter().map(f).sum::<u64>();
        let burn_milli = |rows: &[WatchRow]| {
            (sum(rows, |r| r.run_slow) * 1000).checked_div(sum(rows, |r| r.run_count)).unwrap_or(0)
        };
        let fired = [
            // slo_burn: the burst window is badly over SLO *and* the long
            // window confirms it is not one stray request.
            sum(short, |r| r.run_count) >= 4 && burn_milli(short) >= 500 && burn_milli(long) >= 100,
            // queue_depth: sustained ≥80% occupancy of the bounded queue.
            self.queue_cap > 0
                && rows.len() >= 3
                && rows[rows.len() - 3..].iter().all(|r| r.queue_depth * 10 >= self.queue_cap * 8),
            // shed_rate: admission control is actively dropping load.
            sum(short, |r| r.shed) >= 3,
            // arm_switch_storm: the policy controller is thrashing.
            sum(short, |r| r.arm_switches) >= 8,
        ];
        let mut trips = Vec::new();
        for (i, rule) in WATCHDOG_RULES.iter().enumerate() {
            if fired[i] && tick >= self.cooldown_until[i] {
                self.cooldown_until[i] = tick + WATCHDOG_COOLDOWN_TICKS;
                trips.push(*rule);
            }
        }
        trips
    }
}

/// Column indices the watchdog reads, resolved against the schema once.
struct WatchColumns {
    run_count: Option<usize>,
    /// Cumulative run-latency bucket at the SLO boundary; `run_slow` is
    /// `Δcount − Δbucket`. `None` when the SLO is disabled.
    run_slo_bucket: Option<usize>,
    queue_depth: Option<usize>,
    shed: Option<usize>,
    arm_switches: Option<usize>,
}

/// The sampler + retained series + watchdog, owned by the server state.
/// Single-writer: only the accept thread samples (background tick and
/// history-scrape pre-sample both run there).
pub struct HealthPlane {
    series: Series,
    columns: Vec<Column>,
    index: HashMap<String, usize>,
    kinds: Vec<ColKind>,
    ticks: AtomicU64,
    last: Mutex<Option<Vec<u64>>>,
    watchdog: Mutex<Watchdog>,
    watch: WatchColumns,
}

impl HealthPlane {
    /// Captures the column schema from a fully-populated registry. Call
    /// after every instrument the server will ever sample is registered.
    #[must_use]
    pub fn new(reg: &Registry, slo_us: u64, queue_cap: u64) -> HealthPlane {
        let columns: Vec<Column> =
            reg.sample_columns(&|name| sampled(name)).into_iter().map(|(c, _)| c).collect();
        let index: HashMap<String, usize> =
            columns.iter().enumerate().map(|(i, c)| (c.name.clone(), i)).collect();
        let kinds: Vec<ColKind> = columns.iter().map(|c| c.kind).collect();
        let run_lat = "tdo_server_request_latency_us{endpoint=\"run\"}";
        let col = |name: &str| index.get(name).copied();
        let watch = WatchColumns {
            run_count: col(&format!("{run_lat}#count")),
            run_slo_bucket: (slo_us > 0)
                .then(|| col(&format!("{run_lat}#b{}", Histogram::bucket_index(slo_us))))
                .flatten(),
            queue_depth: col("tdo_server_queue_depth"),
            shed: col("tdo_server_shed_total"),
            arm_switches: col("tdo_arm_switches_total"),
        };
        HealthPlane {
            series: Series::new(HISTORY_CAPACITY, columns.len()),
            columns,
            index,
            kinds,
            ticks: AtomicU64::new(0),
            last: Mutex::new(None),
            watchdog: Mutex::new(Watchdog::new(queue_cap)),
            watch,
        }
    }

    /// Background ticks so far (the logical timestamp of history rows).
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Samples the registry and appends a row stamped with the current
    /// tick — only if some sampled value changed since the last row.
    /// Accept-thread only (single writer).
    pub fn sample(&self, reg: &Registry) {
        let mut values = vec![0u64; self.columns.len()];
        for (col, v) in reg.sample_columns(&|name| sampled(name)) {
            // Instruments registered after bind (e.g. lazily-created fault
            // counters) are not in the schema and are skipped: the row
            // width is part of the history contract.
            if let Some(&i) = self.index.get(&col.name) {
                values[i] = v;
            }
        }
        let mut last = relock(&self.last);
        if last.as_ref() == Some(&values) {
            return;
        }
        self.series.push(self.ticks(), &values);
        *last = Some(values);
    }

    /// One background tick: advance the clock, refresh the uptime gauge,
    /// sample, and run the watchdog over the retained window. Returns the
    /// tripped rules.
    pub fn tick(&self, reg: &Registry, uptime: &Gauge) -> Vec<&'static str> {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        uptime.set(tick);
        self.sample(reg);
        let rows = self.watch_rows();
        relock(&self.watchdog).evaluate(tick, &rows)
    }

    /// The retained window as watchdog delta rows, oldest first.
    fn watch_rows(&self) -> Vec<WatchRow> {
        let snap = self.series.snapshot();
        let deltas = snap.deltas(&self.kinds);
        let get = |row: &tdo_metrics::series::SeriesRow, col: Option<usize>| {
            col.map_or(0, |i| row.values[i])
        };
        deltas
            .iter()
            .map(|row| {
                let count = get(row, self.watch.run_count);
                let within = get(row, self.watch.run_slo_bucket);
                WatchRow {
                    run_count: count,
                    run_slow: if self.watch.run_slo_bucket.is_some() {
                        count.saturating_sub(within)
                    } else {
                        0
                    },
                    queue_depth: get(row, self.watch.queue_depth),
                    shed: get(row, self.watch.shed),
                    arm_switches: get(row, self.watch.arm_switches),
                }
            })
            .collect()
    }

    /// Renders the last `window` rows (0 = everything retained) as JSONL:
    /// one header object naming the schema, then one object per row with
    /// the raw sampled values (clients difference counters themselves).
    #[must_use]
    pub fn render_history(&self, window: usize) -> String {
        let snap = self.series.snapshot().window(window);
        let mut out = String::with_capacity(256 + snap.rows.len() * (self.columns.len() * 8 + 32));
        out.push_str(&format!(
            "{{\"series_schema\":{SERIES_SCHEMA_VERSION},\"rows\":{},\"columns\":[",
            snap.rows.len()
        ));
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape(&c.name)));
        }
        out.push_str("],\"kinds\":[");
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(match k {
                ColKind::Counter => "\"counter\"",
                ColKind::Gauge => "\"gauge\"",
            });
        }
        out.push_str("]}\n");
        for row in &snap.rows {
            out.push_str(&format!("{{\"tick\":{},\"values\":[", row.tick));
            for (i, v) in row.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_burn_needs_both_windows_over_threshold() {
        let mut w = Watchdog::new(16);
        // Short burst entirely over SLO, long window quiet before it.
        let mut rows = vec![WatchRow { run_count: 10, ..WatchRow::default() }; 45];
        rows.extend(vec![WatchRow { run_count: 2, run_slow: 2, ..WatchRow::default() }; 5]);
        // short burn 1000‰, long burn 10/460 ≈ 21‰ < 100‰: no trip.
        assert!(w.evaluate(1, &rows).is_empty(), "long window must confirm the burn");
        let sustained = vec![WatchRow { run_count: 2, run_slow: 1, ..WatchRow::default() }; 50];
        assert_eq!(w.evaluate(2, &sustained), vec!["slo_burn"]);
    }

    #[test]
    fn queue_shed_and_storm_rules_trip_as_anomalies() {
        let mut w = Watchdog::new(10);
        let full = vec![WatchRow { queue_depth: 8, ..WatchRow::default() }; 3];
        assert_eq!(w.evaluate(1, &full), vec!["queue_depth"]);
        assert_eq!(dump_reason("queue_depth"), "anomaly");
        assert_eq!(dump_reason("slo_burn"), "slo_burn");

        let mut w = Watchdog::new(10);
        let shedding = vec![WatchRow { shed: 2, ..WatchRow::default() }; 2];
        assert_eq!(w.evaluate(1, &shedding), vec!["shed_rate"]);

        let mut w = Watchdog::new(10);
        let storm = vec![WatchRow { arm_switches: 8, ..WatchRow::default() }];
        assert_eq!(w.evaluate(1, &storm), vec!["arm_switch_storm"]);
        // Partial occupancy, light shedding, light switching: quiet.
        let mut w = Watchdog::new(10);
        let calm =
            vec![WatchRow { queue_depth: 7, shed: 2, arm_switches: 7, ..WatchRow::default() }];
        assert!(w.evaluate(1, &calm).is_empty());
    }

    #[test]
    fn cooldown_suppresses_repeat_trips_until_it_expires() {
        let mut w = Watchdog::new(10);
        let shedding = vec![WatchRow { shed: 5, ..WatchRow::default() }; 1];
        assert_eq!(w.evaluate(10, &shedding), vec!["shed_rate"]);
        assert!(w.evaluate(11, &shedding).is_empty(), "cooling down");
        assert!(w.evaluate(10 + WATCHDOG_COOLDOWN_TICKS - 1, &shedding).is_empty());
        assert_eq!(w.evaluate(10 + WATCHDOG_COOLDOWN_TICKS, &shedding), vec!["shed_rate"]);
    }

    #[test]
    fn sampling_filter_excludes_observer_effect_series() {
        assert!(!sampled("tdo_server_requests_total"));
        assert!(!sampled("tdo_server_uptime_ticks"));
        assert!(!sampled("tdo_obs_flight_recorded_total"));
        assert!(!sampled("tdo_build_info{result_schema=\"3\"}"));
        assert!(!sampled("tdo_server_endpoint_requests_total{endpoint=\"metrics\"}"));
        assert!(!sampled("tdo_server_request_latency_us{endpoint=\"health\"}"));
        assert!(sampled("tdo_server_endpoint_requests_total{endpoint=\"run\"}"));
        assert!(sampled("tdo_server_request_latency_us{endpoint=\"run\"}"));
        assert!(sampled("tdo_server_queue_depth"));
        assert!(sampled("tdo_arm_switches_total"));
        assert!(sampled("tdo_sim_sims_total"));
    }
}
