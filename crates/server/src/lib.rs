//! # tdo-server — the result-serving daemon behind `tdo serve`
//!
//! A hand-rolled HTTP/1.1 server over `std::net::TcpListener` (the build is
//! hermetic — no async runtime, no HTTP crate) that serves experiment
//! results to many clients from the persistent store (`tdo-store`),
//! simulating on miss and writing the result through so the next client is
//! a cache hit.
//!
//! **Architecture.** One accept thread parses each request and answers the
//! cheap read-only endpoints (`/health`, `/metrics`, `/workloads`) inline;
//! `POST /run` is handed to a small fixed pool of worker threads through a
//! bounded queue. When the queue is full the accept thread sheds the
//! request with an explicit `503` instead of letting latency collapse.
//! Identical cells requested concurrently are *single-flighted*: the first
//! request simulates, the rest wait on the same flight and share the one
//! result. `SIGINT`/ctrl-C (or `POST /shutdown`) stops accepting, drains
//! the queue, finishes in-flight simulations and exits cleanly.
//!
//! | Endpoint | Served by | Behaviour |
//! |---|---|---|
//! | `GET /health` | accept thread | liveness probe |
//! | `GET /metrics` | accept thread | integer counters (requests, coalesced, shed, store hits/misses, sims, queue depth) |
//! | `GET /workloads` | accept thread | the workload suite with descriptions |
//! | `GET /metrics/history?window=N` | accept thread | retained health-sampler rows as JSONL (see [`health`]) |
//! | `GET /debug/flight` | accept thread | the flight recorder's current contents as flight JSONL |
//! | `POST /run` | worker pool | JSON cell spec → result (store, then memo, then simulate) |
//! | `POST /shutdown` | accept thread | graceful shutdown (equivalent to SIGINT) |
//!
//! **Tracing.** Every connection is minted a trace id (echoed back as an
//! `X-Tdo-Trace` response header); the request, its queue wait, the engine
//! cell, store I/O and any fired fault sites all land in the process-global
//! flight recorder under that id. On a worker panic, a shed (saturated
//! queue) or an SLO-breaching `/run`, the recorder is dumped as validated
//! flight JSONL (to `flight_dir` when configured; `tdo flight` renders it).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod health;
pub mod http;
pub mod json;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use tdo_fault::Site;
use tdo_metrics::{Counter, Gauge, Histogram, Registry};
use tdo_obs::span::{self, OpenSpan};
use tdo_obs::{FlightKind, TraceCtx, TraceIdGen};
use tdo_sim::{Cell, PrefetchSetup, Runner, SimConfig, SimResult};
use tdo_workloads::{build, names, Scale};

use http::{read_request, write_response, write_response_typed, Request};
use json::{escape, parse_object};

/// Default listen address for `tdo serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7077";

/// Set by the SIGINT handler; honoured by every running server's accept
/// loop.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Installs a process-wide SIGINT (ctrl-C) handler that asks every running
/// [`Server`] to shut down gracefully. No-op off Unix. Idempotent.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_signum: i32) {
            // Only async-signal-safe work here: one atomic store.
            SIGINT_SEEN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads simulating `/run` requests.
    pub workers: usize,
    /// Bounded `/run` queue capacity; beyond it requests shed with 503.
    pub queue_cap: usize,
    /// Explicit store directory (`None` = `TDO_STORE` env or `.tdo-store/`).
    pub store_dir: Option<String>,
    /// Run without a persistent store (memo cache only).
    pub no_store: bool,
    /// Seed for the per-connection trace-id stream (ids are echoed back as
    /// `X-Tdo-Trace` and stamp every flight-recorder event).
    pub trace_seed: u64,
    /// `/run` latency SLO in whole microseconds; a slower request triggers
    /// a flight-recorder dump. `0` disables the trigger.
    pub slo_us: u64,
    /// Directory receiving flight-recorder dumps on worker panic, queue
    /// saturation or SLO breach (`None` = dump only via `/debug/flight`).
    pub flight_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: 2,
            queue_cap: 16,
            store_dir: None,
            no_store: false,
            trace_seed: 0x7d0_5eed,
            slo_us: 0,
            flight_dir: None,
        }
    }
}

/// One queued `/run` request: the connection, its already-read body, the
/// instant the request was read (latency includes queue wait), and the
/// trace context + open spans the worker resumes on its side of the queue.
struct Job {
    stream: TcpStream,
    body: String,
    t0: Instant,
    ctx: TraceCtx,
    queue_span: OpenSpan,
    request_span: OpenSpan,
}

/// Request counters and latency histograms, registered with the server's
/// metrics [`Registry`] so one set of bookkeeping feeds both the JSON
/// `/metrics` body and the Prometheus exposition.
struct Metrics {
    requests: Arc<Counter>,
    health: Arc<Counter>,
    metrics: Arc<Counter>,
    workloads: Arc<Counter>,
    run_requests: Arc<Counter>,
    run_ok: Arc<Counter>,
    run_rejected: Arc<Counter>,
    run_failed: Arc<Counter>,
    coalesced: Arc<Counter>,
    shed: Arc<Counter>,
    bad_requests: Vec<(&'static str, Arc<Counter>)>,
    debug_flight: Arc<Counter>,
    history: Arc<Counter>,
    flight_dumps: Vec<(&'static str, Arc<Counter>)>,
    watchdog_trips: Vec<(&'static str, Arc<Counter>)>,
    not_found: Arc<Counter>,
    runs_started: Arc<Counter>,
    runs_finished: Arc<Counter>,
    lat_health: Arc<Histogram>,
    lat_metrics: Arc<Histogram>,
    lat_workloads: Arc<Histogram>,
    lat_run: Arc<Histogram>,
    lat_history: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    queue_cap: Arc<Gauge>,
    uptime: Arc<Gauge>,
}

/// Every `reason` label on `tdo_server_bad_requests_total`; one per
/// malformed-request early-return path.
const BAD_REQUEST_REASONS: [&str; 10] = [
    "read_failed",
    "head_too_large",
    "body_too_large",
    "closed_early",
    "bad_encoding",
    "bad_request_line",
    "bad_content_length",
    "bad_query",
    "method_not_allowed",
    "bad_cell_spec",
];

/// `reason` labels on `tdo_server_flight_dumps_total` — every dump
/// trigger: the three request-path triggers plus the watchdog's two
/// (`slo_burn` for the burn-rate rule, `anomaly` for the rest).
pub const DUMP_REASONS: [&str; 5] =
    ["worker_panic", "queue_saturation", "slo_breach", "slo_burn", "anomaly"];

impl Metrics {
    fn new(reg: &Registry) -> Metrics {
        let c = |family, help| reg.counter(family, &[], help);
        let ep = |name| {
            reg.counter(
                "tdo_server_endpoint_requests_total",
                &[("endpoint", name)],
                "Requests routed per endpoint.",
            )
        };
        let lat = |name| {
            reg.histogram(
                "tdo_server_request_latency_us",
                &[("endpoint", name)],
                "Request latency, read to response (includes queue wait for run).",
            )
        };
        Metrics {
            requests: c("tdo_server_requests_total", "Requests successfully parsed."),
            health: ep("health"),
            metrics: ep("metrics"),
            workloads: ep("workloads"),
            run_requests: ep("run"),
            run_ok: c("tdo_server_run_ok_total", "Run requests answered 200."),
            run_rejected: c("tdo_server_run_rejected_total", "Run requests with a bad cell spec."),
            run_failed: c("tdo_server_run_failed_total", "Run requests whose simulation failed."),
            coalesced: c(
                "tdo_server_coalesced_total",
                "Run requests coalesced onto another flight.",
            ),
            shed: c("tdo_server_shed_total", "Run requests shed at a full queue."),
            bad_requests: BAD_REQUEST_REASONS
                .iter()
                .map(|&reason| {
                    let counter = reg.counter(
                        "tdo_server_bad_requests_total",
                        &[("reason", reason)],
                        "Requests answered 400, by reject path.",
                    );
                    (reason, counter)
                })
                .collect(),
            debug_flight: ep("debug_flight"),
            history: ep("history"),
            flight_dumps: DUMP_REASONS
                .iter()
                .map(|&reason| {
                    let counter = reg.counter(
                        "tdo_server_flight_dumps_total",
                        &[("reason", reason)],
                        "Flight-recorder dumps triggered, by cause.",
                    );
                    (reason, counter)
                })
                .collect(),
            watchdog_trips: health::WATCHDOG_RULES
                .iter()
                .map(|&rule| {
                    let counter = reg.counter(
                        "tdo_watchdog_trips_total",
                        &[("rule", rule)],
                        "Health-watchdog rules tripped.",
                    );
                    (rule, counter)
                })
                .collect(),
            not_found: c("tdo_server_not_found_total", "Requests for unknown endpoints."),
            runs_started: c("tdo_server_runs_started_total", "Single-flight leaders started."),
            runs_finished: c("tdo_server_runs_finished_total", "Single-flight leaders finished."),
            lat_health: lat("health"),
            lat_metrics: lat("metrics"),
            lat_workloads: lat("workloads"),
            lat_run: lat("run"),
            lat_history: lat("history"),
            queue_depth: reg.gauge(
                "tdo_server_queue_depth",
                &[],
                "Jobs waiting in the bounded run queue.",
            ),
            queue_cap: reg.gauge("tdo_server_queue_cap", &[], "Capacity of the bounded run queue."),
            uptime: reg.gauge(
                "tdo_server_uptime_ticks",
                &[],
                "Background health-sampler ticks since the server started.",
            ),
        }
    }

    /// Counts one watchdog trip on the named rule.
    fn watchdog_trip(&self, rule: &str) {
        let (_, counter) = self
            .watchdog_trips
            .iter()
            .find(|(r, _)| *r == rule)
            .expect("rule is in WATCHDOG_RULES");
        counter.inc();
    }

    /// Counts one 400 on the named reject path.
    fn bad_request(&self, reason: &str) {
        let (_, counter) = self
            .bad_requests
            .iter()
            .find(|(r, _)| *r == reason)
            .expect("reason is in BAD_REQUEST_REASONS");
        counter.inc();
    }

    /// Total 400s across every reject path (the JSON `/metrics` body).
    fn bad_requests_total(&self) -> u64 {
        self.bad_requests.iter().map(|(_, c)| c.get()).sum()
    }
}

/// Whole microseconds since `t0`, saturating.
fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A single-flight slot: the leader publishes here, followers wait. The
/// leader's trace id lets a follower's flight records link to the flight
/// that actually simulated.
#[derive(Default)]
struct Flight {
    done: Mutex<Option<Result<Arc<SimResult>, String>>>,
    cv: Condvar,
    leader_trace: AtomicU64,
}

/// Shared server state (accept thread + workers).
struct State {
    runner: Runner,
    workloads_json: String,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_cap: usize,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    shutdown: AtomicBool,
    registry: Registry,
    m: Metrics,
    traces: TraceIdGen,
    slo_us: u64,
    flight_dir: Option<String>,
    flight_files: AtomicU64,
    health: health::HealthPlane,
}

/// Cap on dump files written per process — a crash loop must not fill the
/// disk with flight dumps.
const MAX_FLIGHT_FILES: u64 = 16;

/// Fires one flight-dump trigger: counts it, marks it in the recorder,
/// logs it, and (when a dump directory is configured) writes the dump as
/// validated flight JSONL.
fn trigger_flight_dump(state: &State, reason: &'static str) {
    let (_, counter) =
        state.m.flight_dumps.iter().find(|(r, _)| *r == reason).expect("reason is in DUMP_REASONS");
    counter.inc();
    let reason_code = DUMP_REASONS.iter().position(|r| *r == reason).unwrap_or(0) as u64;
    span::point(FlightKind::Dump, reason_code);
    let mut fields: Vec<(&str, &str)> = vec![("reason", reason)];
    let path_text;
    if let Some(dir) = &state.flight_dir {
        let n = state.flight_files.fetch_add(1, Ordering::Relaxed);
        if n < MAX_FLIGHT_FILES {
            let path = std::path::Path::new(dir).join(format!("flight-{n:03}-{reason}.jsonl"));
            if std::fs::write(&path, span::global().dump()).is_ok() {
                path_text = path.display().to_string();
                fields.push(("dump", &path_text));
            }
        }
    }
    tdo_obs::logline::log(tdo_obs::Level::Warn, "server", "flight dump triggered", &fields);
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGINT_SEEN.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// Recovers from mutex poisoning — a panicking worker must not wedge the
/// daemon (the state it guards is always observed in a consistent shape).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A handle for asking a running server to stop (used by tests and the
/// `/shutdown` endpoint; ctrl-C does the same through the signal handler).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop accepting, drain the queue,
    /// finish in-flight work, exit.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    workers: usize,
}

impl Server {
    /// Binds the listen socket and opens the store (unless `no_store`).
    ///
    /// # Errors
    ///
    /// Returns the bind error; an unopenable store degrades to serving
    /// without one (a warning is printed), matching the engine's behaviour.
    pub fn bind(cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let runner = if cfg.no_store {
            Runner::new(1)
        } else {
            Runner::with_default_store(1, cfg.store_dir.as_deref())
        };
        let registry = Registry::new();
        let m = Metrics::new(&registry);
        runner.register_metrics(&registry);
        tdo_obs::register_metrics(&registry);
        // Build/schema identity: always-1 gauge whose labels carry the
        // versions a scraper needs to interpret everything else.
        let result_schema = tdo_sim::SCHEMA_VERSION.to_string();
        let series_schema = tdo_metrics::series::SERIES_SCHEMA_VERSION.to_string();
        let arms = tdo_sim::policy_candidates().len().to_string();
        registry
            .gauge(
                "tdo_build_info",
                &[
                    ("result_schema", &result_schema),
                    ("series_schema", &series_schema),
                    ("arms", &arms),
                ],
                "Schema/build identity; the value is always 1.",
            )
            .set(1);
        // The health plane captures its column schema here: every
        // instrument the server samples must already be registered.
        let health = health::HealthPlane::new(&registry, cfg.slo_us, cfg.queue_cap.max(1) as u64);
        let state = Arc::new(State {
            runner,
            workloads_json: workloads_json(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_cap: cfg.queue_cap.max(1),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            registry,
            m,
            traces: TraceIdGen::new(cfg.trace_seed),
            slo_us: cfg.slo_us,
            flight_dir: cfg.flight_dir.clone(),
            flight_files: AtomicU64::new(0),
            health,
        });
        state.m.queue_cap.set(state.queue_cap as u64);
        Ok(Server { listener, state, workers: cfg.workers.max(1) })
    }

    /// The bound address (resolves port `0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state) }
    }

    /// Serves until shutdown (SIGINT, `/shutdown` or [`ServerHandle`]),
    /// then drains the queue, joins the workers and returns.
    ///
    /// # Errors
    ///
    /// Returns listener configuration errors; per-connection errors are
    /// absorbed (logged as 400s in the metrics where attributable).
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let state = Arc::clone(&self.state);
            let t = std::thread::Builder::new()
                .name(format!("tdo-serve-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawn worker thread");
            workers.push(t);
        }
        // The health sampler rides the accept loop's idle sleeps: every
        // fifth 20 ms sleep (~100 ms) is one background tick. Busy periods
        // starve the tick, but every `/metrics/history` scrape pre-samples,
        // so history never misses a change — only the watchdog cadence
        // stretches under saturation.
        let mut idle_sleeps: u32 = 0;
        while !self.state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if tdo_fault::fire(Site::ServerAcceptFail).is_some() {
                        // Injected accept failure: the connection dies
                        // before it is ever read. The loop must keep
                        // serving the next client.
                        drop(stream);
                        continue;
                    }
                    handle_connection(&self.state, stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    idle_sleeps += 1;
                    if idle_sleeps.is_multiple_of(5) {
                        health_tick(&self.state);
                    }
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Stop the pool: workers drain the queue, then exit.
        self.state.request_shutdown();
        for t in workers {
            let _ = t.join();
        }
        Ok(())
    }

    /// The underlying engine (store counters etc.), for the CLI's exit
    /// summary.
    #[must_use]
    pub fn runner(&self) -> &Runner {
        &self.state.runner
    }
}

/// One background health tick: sample the registry into the history ring
/// and let the watchdog look at the window; tripped rules count and dump.
fn health_tick(state: &Arc<State>) {
    state.m.queue_depth.set(relock(&state.queue).len() as u64);
    for rule in state.health.tick(&state.registry, &state.m.uptime) {
        state.m.watchdog_trip(rule);
        tdo_obs::logline::log(
            tdo_obs::Level::Warn,
            "watchdog",
            "health rule tripped",
            &[("rule", rule)],
        );
        trigger_flight_dump(state, health::dump_reason(rule));
    }
}

/// Routes one parsed connection. Cheap endpoints answer inline; `/run`
/// goes through the bounded queue to the worker pool.
fn handle_connection(state: &Arc<State>, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let t0 = Instant::now();
    // Every connection gets a trace id before it is even parsed, so even a
    // 400 carries an `X-Tdo-Trace` header pointing into the recorder.
    let trace = state.traces.mint();
    let _ctx = span::resume(TraceCtx::fresh(trace));
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(e) => {
            state.m.bad_request(http::reject_reason(&e));
            respond_error(&mut stream, 400, &e.to_string());
            return;
        }
    };
    state.m.requests.inc();
    let request_span = span::begin(FlightKind::Request, 0);
    // Only `/metrics` interprets its query string; the path part alone
    // routes everywhere.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (req.path.clone(), None),
    };
    match (req.method.as_str(), path.as_str()) {
        ("GET", "/health") => {
            // Latency is observed before the response is written (here and on
            // every endpoint): once a client holds the response, its sample is
            // guaranteed visible to the next scrape, which keeps snapshot
            // tests single-shot. The unmeasured tail is one loopback write.
            state.m.health.inc();
            state.m.lat_health.observe_with_exemplar(elapsed_us(t0), trace);
            let _ = write_response(&mut stream, 200, "{\"status\":\"ok\"}");
        }
        ("GET", "/metrics") => {
            state.m.metrics.inc();
            state.m.lat_metrics.observe_with_exemplar(elapsed_us(t0), trace);
            match query.as_deref() {
                None | Some("") | Some("format=json") => {
                    let body = metrics_json(state);
                    let _ = write_response(&mut stream, 200, &body);
                }
                Some("format=prom") => {
                    let body = metrics_prom(state);
                    let _ =
                        write_response_typed(&mut stream, 200, "text/plain; version=0.0.4", &body);
                }
                Some(q) => {
                    state.m.bad_request("bad_query");
                    respond_error(&mut stream, 400, &format!("unsupported metrics query `{q}`"));
                }
            }
        }
        ("GET", "/workloads") => {
            state.m.workloads.inc();
            state.m.lat_workloads.observe_with_exemplar(elapsed_us(t0), trace);
            let body = state.workloads_json.clone();
            let _ = write_response(&mut stream, 200, &body);
        }
        ("GET", "/debug/flight") => {
            state.m.debug_flight.inc();
            let body = span::global().dump();
            let _ = write_response_typed(&mut stream, 200, "application/jsonl", &body);
        }
        ("GET", "/metrics/history") => {
            state.m.history.inc();
            state.m.lat_history.observe_with_exemplar(elapsed_us(t0), trace);
            let window = match query.as_deref() {
                None | Some("") => Some(0),
                Some(q) => q.strip_prefix("window=").and_then(|n| n.parse::<usize>().ok()),
            };
            match window {
                Some(window) => {
                    // Pre-sample so the scrape reflects everything up to
                    // this instant; the request's own counters are excluded
                    // from sampling, so an idle re-scrape is byte-identical.
                    state.m.queue_depth.set(relock(&state.queue).len() as u64);
                    state.health.sample(&state.registry);
                    let body = state.health.render_history(window);
                    let _ = write_response_typed(&mut stream, 200, "application/jsonl", &body);
                }
                None => {
                    state.m.bad_request("bad_query");
                    respond_error(&mut stream, 400, "expected ?window=N");
                }
            }
        }
        ("POST", "/shutdown") => {
            let _ = write_response(&mut stream, 200, "{\"shutting_down\":true}");
            state.request_shutdown();
        }
        ("POST", "/run") => {
            // The request span crosses the queue: the worker (or the shed
            // path) ends it after the response is written.
            enqueue_run(state, stream, req, t0, request_span);
            return;
        }
        (
            "GET" | "POST",
            "/health" | "/metrics" | "/metrics/history" | "/workloads" | "/debug/flight" | "/run"
            | "/shutdown",
        ) => {
            state.m.bad_request("method_not_allowed");
            respond_error(&mut stream, 405, "method not allowed");
        }
        _ => {
            state.m.not_found.inc();
            respond_error(&mut stream, 404, "no such endpoint");
        }
    }
    request_span.end(0);
}

/// Admits a `/run` request to the bounded queue, or sheds it with a 503.
fn enqueue_run(
    state: &Arc<State>,
    stream: TcpStream,
    req: Request,
    t0: Instant,
    request_span: OpenSpan,
) {
    state.m.run_requests.inc();
    // The queue-wait span opens before the context is captured so the job
    // carries a context whose logical clock is past the begin event.
    let queue_span = span::begin(FlightKind::QueueWait, 0);
    let ctx = span::current();
    let mut rejected = Some(stream); // taken on admission
    {
        let saturated = tdo_fault::fire(Site::ServerQueueSaturate).is_some();
        let mut q = relock(&state.queue);
        if q.len() < state.queue_cap && !state.shutting_down() && !saturated {
            let stream = rejected.take().expect("stream not yet moved");
            q.push_back(Job { stream, body: req.body, t0, ctx, queue_span, request_span });
            state.m.queue_depth.set(q.len() as u64);
        }
    }
    match rejected {
        None => state.queue_cv.notify_one(),
        Some(mut stream) => {
            state.m.shed.inc();
            span::point(FlightKind::Shed, 0);
            trigger_flight_dump(state, "queue_saturation");
            respond_error(&mut stream, 503, "run queue full, request shed");
            queue_span.end(0);
            request_span.end(0);
        }
    }
}

/// Worker thread: pop jobs until the queue is drained *and* shutdown was
/// requested.
fn worker_loop(state: &Arc<State>) {
    loop {
        let job = {
            let mut q = relock(&state.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    state.m.queue_depth.set(q.len() as u64);
                    break Some(job);
                }
                if state.shutting_down() {
                    break None;
                }
                q = state.queue_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(mut job) = job else { return };
        // Resume the request's trace context on this side of the queue and
        // close its queue-wait span with the wait in microseconds.
        let _ctx = span::resume(job.ctx);
        job.queue_span.end(elapsed_us(job.t0));
        // A panicking job — injected or real — must cost only its own
        // connection, never a pool thread: an uncaught panic here would
        // silently shrink the pool until the queue deadlocks.
        let served = catch_unwind(AssertUnwindSafe(|| {
            if tdo_fault::fire(Site::ServerWorkerPanic).is_some() {
                panic!("injected worker panic");
            }
            serve_run(state, &mut job.stream, &job.body, job.t0);
        }));
        if served.is_err() {
            trigger_flight_dump(state, "worker_panic");
        }
        job.request_span.end(elapsed_us(job.t0));
    }
}

/// Parses a cell spec, runs it (single-flighted) and writes the response.
fn serve_run(state: &Arc<State>, stream: &mut TcpStream, body: &str, t0: Instant) {
    let trace = span::current().trace;
    let (cell, arm) = match parse_cell_spec(body) {
        Ok(spec) => spec,
        Err(msg) => {
            state.m.run_rejected.inc();
            state.m.bad_request("bad_cell_spec");
            state.m.lat_run.observe_with_exemplar(elapsed_us(t0), trace);
            respond_error(stream, 400, &msg);
            return;
        }
    };
    // Latency covers read → queue wait → simulate; observed before the
    // response is written so a follow-up scrape always sees the sample.
    let (result, coalesced) = run_coalesced(state, &cell);
    let us = elapsed_us(t0);
    state.m.lat_run.observe_with_exemplar(us, trace);
    if state.slo_us > 0 && us > state.slo_us {
        trigger_flight_dump(state, "slo_breach");
    }
    match result {
        Ok(r) => {
            state.m.run_ok.inc();
            let body = result_json(&cell, arm, &r, coalesced);
            let _ = write_response(stream, 200, &body);
        }
        Err(msg) => {
            state.m.run_failed.inc();
            respond_error(stream, 500, &msg);
        }
    }
}

/// Runs one cell with single-flight coalescing: concurrent identical cells
/// share one simulation. Returns the result and whether this call was a
/// follower (coalesced onto another request's flight).
fn run_coalesced(state: &Arc<State>, cell: &Cell) -> (Result<Arc<SimResult>, String>, bool) {
    let key = cell.fingerprint();
    let (flight, leader) = {
        let mut map = relock(&state.inflight);
        match map.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(Flight::default());
                f.leader_trace.store(span::current().trace, Ordering::Relaxed);
                map.insert(key.clone(), Arc::clone(&f));
                (f, true)
            }
        }
    };
    if leader {
        state.m.runs_started.inc();
        let result = catch_unwind(AssertUnwindSafe(|| state.runner.run_cell(cell)))
            .map_err(|_| format!("simulation panicked for workload `{}`", cell.workload));
        *relock(&flight.done) = Some(result.clone());
        flight.cv.notify_all();
        relock(&state.inflight).remove(&key);
        state.m.runs_finished.inc();
        (result, false)
    } else {
        state.m.coalesced.inc();
        // Link this follower to the leader's trace so the two requests can
        // be joined in a flight dump.
        span::point(FlightKind::Coalesce, flight.leader_trace.load(Ordering::Relaxed));
        let mut done = relock(&flight.done);
        while done.is_none() {
            done = flight.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
        (done.clone().expect("flight published"), true)
    }
}

/// Decodes a `/run` body into an experiment cell.
///
/// Accepted keys: `workload` (required), `arm` (default `sr`), `scale`
/// (`test`|`full`, default `test`), `insts` (optional measured-instruction
/// override).
fn parse_cell_spec(body: &str) -> Result<(Cell, PrefetchSetup), String> {
    let pairs = parse_object(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let mut workload: Option<String> = None;
    let mut arm = PrefetchSetup::SwSelfRepair;
    let mut scale = Scale::Test;
    let mut insts: Option<u64> = None;
    for (key, value) in pairs {
        match key.as_str() {
            "workload" => {
                workload = Some(value.as_str().ok_or("`workload` must be a string")?.to_string());
            }
            "arm" => {
                let name = value.as_str().ok_or("`arm` must be a string")?;
                arm = PrefetchSetup::from_cli_name(name)
                    .ok_or_else(|| format!("unknown arm `{name}`"))?;
            }
            "scale" => {
                scale = match value.as_str().ok_or("`scale` must be a string")? {
                    "test" => Scale::Test,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "insts" => {
                insts = Some(value.as_int().ok_or("`insts` must be an integer")?);
            }
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    let workload = workload.ok_or("missing required key `workload`")?;
    // Authoritative check against the builder, not `names()`: extension
    // workloads outside the paper suite (e.g. `phaseshift`) are servable.
    if build(&workload, Scale::Test).is_none() {
        return Err(format!("unknown workload `{workload}`"));
    }
    let mut cfg = match scale {
        Scale::Test => SimConfig::test(arm),
        Scale::Full => SimConfig::paper(arm),
    };
    if let Some(n) = insts {
        cfg.measure_insts = n;
    }
    Ok((Cell::new(workload, scale, cfg), arm))
}

/// The integer-only `/run` response body.
fn result_json(cell: &Cell, arm: PrefetchSetup, r: &SimResult, coalesced: bool) -> String {
    format!(
        "{{\"workload\":\"{}\",\"arm\":\"{}\",\"scale\":\"{}\",\"coalesced\":{},\
         \"cycles\":{},\"orig_insts\":{},\"helper_active_cycles\":{},\"helper_committed\":{},\
         \"traces_installed\":{},\"reoptimizations\":{},\"backouts\":{},\
         \"events_queued\":{},\"events_dropped_saturated\":{},\"events_dropped_duplicate\":{},\
         \"insertions\":{},\"prefetches_inserted\":{},\"repairs\":{},\
         \"distance_up\":{},\"distance_down\":{},\"matured\":{},\
         \"sw_prefetch_issued\":{},\"sw_prefetch_redundant\":{},\"sw_prefetch_dropped\":{},\
         \"halted\":{}}}",
        escape(&cell.workload),
        arm.cli_name(),
        if cell.scale == Scale::Full { "full" } else { "test" },
        u8::from(coalesced),
        r.cycles,
        r.orig_insts,
        r.helper_active_cycles,
        r.helper_committed,
        r.trident.traces_installed,
        r.trident.reoptimizations,
        r.trident.backouts,
        r.trident.events_queued,
        r.trident.events_dropped_saturated,
        r.trident.events_dropped_duplicate,
        r.optimizer.insertions,
        r.optimizer.prefetches_inserted,
        r.optimizer.repairs,
        r.optimizer.distance_up,
        r.optimizer.distance_down,
        r.optimizer.matured,
        r.mem.sw_prefetch_issued,
        r.mem.sw_prefetch_redundant,
        r.mem.sw_prefetch_dropped,
        r.halted,
    )
}

/// The `GET /metrics` body: request counters, pool/queue gauges and the
/// engine's store counters, all integers.
fn metrics_json(state: &Arc<State>) -> String {
    let m = &state.m;
    let queue_depth = relock(&state.queue).len();
    m.queue_depth.set(queue_depth as u64);
    let runs_started = m.runs_started.get();
    let runs_finished = m.runs_finished.get();
    let store = state.runner.store().map(|s| s.stats());
    let store_json = match &store {
        Some(s) => format!(
            ",\"store\":{{\"live_records\":{},\"shadowed_records\":{},\"log_bytes\":{},\
             \"quarantine_bytes\":{},\"quarantined\":{},\"hits\":{},\"misses\":{},\"puts\":{}}}",
            s.live_records,
            s.shadowed_records,
            s.log_bytes,
            s.quarantine_bytes,
            s.quarantined,
            s.hits,
            s.misses,
            s.puts
        ),
        None => String::new(),
    };
    format!(
        "{{\"requests\":{},\"health\":{},\"metrics\":{},\"workloads\":{},\
         \"run_requests\":{},\"run_ok\":{},\"run_rejected\":{},\"run_failed\":{},\
         \"coalesced\":{},\"shed\":{},\"bad_requests\":{},\"not_found\":{},\
         \"runs_started\":{},\"runs_finished\":{},\"runs_inflight\":{},\
         \"queue_depth\":{queue_depth},\"queue_cap\":{},\
         \"sims\":{},\"store_hits\":{},\"store_misses\":{},\"cells_cached\":{},\
         \"events_queued\":{},\"events_dropped_saturated\":{},\
         \"events_dropped_duplicate\":{}{store_json}}}",
        m.requests.get(),
        m.health.get(),
        m.metrics.get(),
        m.workloads.get(),
        m.run_requests.get(),
        m.run_ok.get(),
        m.run_rejected.get(),
        m.run_failed.get(),
        m.coalesced.get(),
        m.shed.get(),
        m.bad_requests_total(),
        m.not_found.get(),
        runs_started,
        runs_finished,
        runs_started.saturating_sub(runs_finished),
        state.queue_cap,
        state.runner.sims_run(),
        state.runner.store_hits(),
        state.runner.store_misses(),
        state.runner.cells_cached(),
        state.runner.events_queued(),
        state.runner.events_dropped().0,
        state.runner.events_dropped().1,
    )
}

/// The `GET /metrics?format=prom` body: the whole registry in Prometheus
/// text exposition. Gauges sampled lazily are refreshed first.
fn metrics_prom(state: &Arc<State>) -> String {
    state.m.queue_depth.set(relock(&state.queue).len() as u64);
    state.registry.render_prom()
}

/// The precomputed `GET /workloads` body.
fn workloads_json() -> String {
    let mut out = String::from("{\"workloads\":[");
    for (i, name) in names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let description =
            build(name, Scale::Test).map(|w| w.description.to_string()).unwrap_or_default();
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"description\":\"{}\"}}",
            escape(name),
            escape(&description)
        ));
    }
    out.push_str("]}");
    out
}

fn respond_error(stream: &mut TcpStream, status: u16, msg: &str) {
    let body = format!("{{\"error\":\"{}\"}}", escape(msg));
    let _ = write_response(stream, status, &body);
}
