//! End-to-end daemon tests over real sockets: routing, single-flight
//! coalescing, bounded-queue shedding and graceful shutdown.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdo_server::client::{self, Response};
use tdo_server::{Server, ServerConfig, ServerHandle};

/// Starts a server on an ephemeral port, storeless by default (tests that
/// want persistence pass a directory).
fn start(workers: usize, queue_cap: usize) -> (String, ServerHandle, JoinHandle<()>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        store_dir: None,
        no_store: true,
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr: SocketAddr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let t = std::thread::spawn(move || server.run().expect("server run"));
    (addr.to_string(), handle, t)
}

/// Extracts an integer counter from a (flat or store-nested) metrics body.
fn counter(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("metric `{name}` in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer metric")
}

fn metrics(addr: &str) -> String {
    client::get(addr, "/metrics").expect("GET /metrics").body
}

/// Polls `/metrics` until `pred` holds (the accept thread serves metrics
/// inline, so this works even while every worker is busy).
fn wait_for(addr: &str, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let body = metrics(addr);
        if pred(&body) {
            return body;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}; metrics: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn post_run(addr: &str, body: &str) -> Response {
    client::post(addr, "/run", body).expect("POST /run")
}

/// A cell slow enough (~seconds in a debug build) that concurrent clients
/// reliably overlap with its simulation.
const SLOW_CELL: &str = r#"{"workload":"swim","arm":"sr","insts":400000}"#;

#[test]
fn routing_and_error_paths() {
    let (addr, handle, t) = start(1, 4);

    let health = client::get(&addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    let workloads = client::get(&addr, "/workloads").unwrap();
    assert_eq!(workloads.status, 200);
    assert!(workloads.body.contains("\"name\":\"mcf\""), "suite listed: {}", workloads.body);

    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/health", "").unwrap().status, 405);

    // Bad /run bodies are 400s decided on the worker, never crashes.
    for bad in [
        "",
        "not json",
        "{}",
        r#"{"workload":"no-such-workload"}"#,
        r#"{"workload":"mcf","arm":"warp-drive"}"#,
        r#"{"workload":"mcf","scale":"huge"}"#,
        r#"{"workload":"mcf","insts":"many"}"#,
        r#"{"workload":"mcf","surprise":1}"#,
    ] {
        let r = post_run(&addr, bad);
        assert_eq!(r.status, 400, "body `{bad}` must be rejected, got {}", r.body);
    }

    let m = metrics(&addr);
    assert_eq!(counter(&m, "health"), 1);
    assert_eq!(counter(&m, "workloads"), 1);
    assert_eq!(counter(&m, "not_found"), 1);
    assert_eq!(counter(&m, "run_rejected"), 8);
    assert_eq!(counter(&m, "run_ok"), 0);

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn identical_concurrent_runs_single_flight_into_one_simulation() {
    let (addr, handle, t) = start(4, 8);

    // Leader first; wait until its simulation is observably in flight.
    let leader = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, SLOW_CELL))
    };
    wait_for(&addr, "leader in flight", |m| counter(m, "runs_inflight") == 1);

    // Three identical followers arrive while the leader is simulating.
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || post_run(&addr, SLOW_CELL))
        })
        .collect();
    wait_for(&addr, "followers coalesced", |m| counter(m, "coalesced") == 3);

    let mut bodies = vec![leader.join().unwrap()];
    bodies.extend(followers.into_iter().map(|f| f.join().unwrap()));
    for r in &bodies {
        assert_eq!(r.status, 200, "{}", r.body);
    }
    // All four answers carry the same result.
    let cycles = counter(&bodies[0].body, "cycles");
    assert!(cycles > 0);
    for r in &bodies {
        assert_eq!(counter(&r.body, "cycles"), cycles);
    }

    let m = metrics(&addr);
    assert_eq!(counter(&m, "run_ok"), 4, "{m}");
    assert_eq!(counter(&m, "sims"), 1, "exactly one simulation ran: {m}");
    assert_eq!(counter(&m, "runs_started"), 1, "{m}");
    assert_eq!(counter(&m, "coalesced"), 3, "{m}");

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn full_queue_sheds_with_503() {
    // One worker, one queue slot: with a slow run in flight and one queued,
    // the third request must shed — deterministically, because we gate each
    // step on the (inline-served) metrics.
    let (addr, handle, t) = start(1, 1);

    let inflight = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, SLOW_CELL))
    };
    wait_for(&addr, "slow run in flight", |m| counter(m, "runs_inflight") == 1);

    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            post_run(&addr, r#"{"workload":"swim","arm":"none","insts":5000}"#)
        })
    };
    wait_for(&addr, "second run queued", |m| counter(m, "queue_depth") == 1);

    let shed = post_run(&addr, r#"{"workload":"swim","arm":"hw8x8","insts":5000}"#);
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(shed.body.contains("shed"), "{}", shed.body);

    let m = metrics(&addr);
    assert_eq!(counter(&m, "shed"), 1, "{m}");

    // The admitted requests still complete normally.
    assert_eq!(inflight.join().unwrap().status, 200);
    assert_eq!(queued.join().unwrap().status, 200);

    handle.shutdown();
    t.join().expect("clean shutdown");
}

/// Masks the only nondeterministic values in a prom exposition: bucket
/// counts and sums of wall-time histograms (families ending `_us`). Sample
/// counts stay — they are request-count determined.
fn mask_wall_values(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    for line in body.lines() {
        let wall = line.contains("_us_bucket{") || line.contains("_us_sum");
        match (wall, line.rsplit_once(' ')) {
            (true, Some((head, _))) => {
                out.push_str(head);
                out.push_str(" <wall>\n");
            }
            _ => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn prometheus_exposition_matches_golden_snapshot() {
    // A seeded sequence — one health ping, one tiny deterministic run — then
    // a single scrape. Everything except wall-clock values must be
    // byte-stable; the golden regenerates with
    // `TDO_BLESS=1 cargo test -p tdo-server --test server`.
    let (addr, handle, t) = start(1, 4);
    assert_eq!(client::get(&addr, "/health").unwrap().status, 200);
    let r = post_run(&addr, r#"{"workload":"swim","arm":"sr","insts":5000}"#);
    assert_eq!(r.status, 200, "{}", r.body);

    let resp = client::get(&addr, "/metrics?format=prom").unwrap();
    assert_eq!(resp.status, 200);

    // Every scrape must be strict, parseable text exposition.
    let stats = tdo_metrics::expo::parse_text(&resp.body).expect("prom text parses");
    assert!(stats.families >= 10, "registry is populated: {} families", stats.families);

    // The fault-injection family only exists on registries armed through
    // `tdo_fault::arm_with_registry`; a daemon that never arms must not
    // leak even an all-zero family into its exposition (the golden below
    // pins this too, but the intent deserves its own assertion).
    assert!(
        !resp.body.contains("tdo_fault_injected_total"),
        "disarmed daemon must not expose fault-injection metrics"
    );

    // Unknown query strings are rejected, JSON stays the default.
    assert_eq!(client::get(&addr, "/metrics?format=xml").unwrap().status, 400);
    assert!(client::get(&addr, "/metrics?format=json").unwrap().body.starts_with('{'));

    let masked = mask_wall_values(&resp.body);
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_prom.txt");
    if std::env::var_os("TDO_BLESS").is_some() {
        std::fs::write(golden, &masked).unwrap();
    } else {
        let expected = std::fs::read_to_string(golden)
            .expect("golden file missing; regenerate with TDO_BLESS=1");
        assert_eq!(
            masked, expected,
            "prom exposition drifted from the golden file; if intended, regenerate with TDO_BLESS=1"
        );
    }

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn shutdown_endpoint_stops_the_daemon_and_drains_the_queue() {
    let (addr, _handle, t) = start(2, 4);

    // Something in flight when shutdown arrives.
    let running = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, SLOW_CELL))
    };
    wait_for(&addr, "run in flight", |m| counter(m, "runs_inflight") == 1);

    let r = client::post(&addr, "/shutdown", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("shutting_down"));

    // The in-flight request finishes (drained, not dropped)...
    assert_eq!(running.join().unwrap().status, 200);
    // ...and the server thread exits.
    t.join().expect("clean shutdown");

    // New connections are refused once the listener is gone.
    let after = client::get(&addr, "/health");
    assert!(after.is_err(), "listener closed after shutdown");
}
