//! End-to-end daemon tests over real sockets: routing, single-flight
//! coalescing, bounded-queue shedding and graceful shutdown.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdo_server::client::{self, Response};
use tdo_server::{Server, ServerConfig, ServerHandle};

/// Starts a server on an ephemeral port, storeless by default (tests that
/// want persistence pass a directory).
fn start(workers: usize, queue_cap: usize) -> (String, ServerHandle, JoinHandle<()>) {
    let cfg = ServerConfig { workers, queue_cap, no_store: true, ..ServerConfig::default() };
    start_cfg(cfg)
}

fn start_cfg(mut cfg: ServerConfig) -> (String, ServerHandle, JoinHandle<()>) {
    cfg.addr = "127.0.0.1:0".into();
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr: SocketAddr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let t = std::thread::spawn(move || server.run().expect("server run"));
    (addr.to_string(), handle, t)
}

/// Extracts an integer counter from a (flat or store-nested) metrics body.
fn counter(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("metric `{name}` in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer metric")
}

fn metrics(addr: &str) -> String {
    client::get(addr, "/metrics").expect("GET /metrics").body
}

/// Polls `/metrics` until `pred` holds (the accept thread serves metrics
/// inline, so this works even while every worker is busy).
fn wait_for(addr: &str, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let body = metrics(addr);
        if pred(&body) {
            return body;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}; metrics: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn post_run(addr: &str, body: &str) -> Response {
    client::post(addr, "/run", body).expect("POST /run")
}

/// A cell slow enough (~seconds in a debug build) that concurrent clients
/// reliably overlap with its simulation.
const SLOW_CELL: &str = r#"{"workload":"swim","arm":"sr","insts":400000}"#;

#[test]
fn routing_and_error_paths() {
    let (addr, handle, t) = start(1, 4);

    let health = client::get(&addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    let workloads = client::get(&addr, "/workloads").unwrap();
    assert_eq!(workloads.status, 200);
    assert!(workloads.body.contains("\"name\":\"mcf\""), "suite listed: {}", workloads.body);

    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/health", "").unwrap().status, 405);

    // Bad /run bodies are 400s decided on the worker, never crashes.
    for bad in [
        "",
        "not json",
        "{}",
        r#"{"workload":"no-such-workload"}"#,
        r#"{"workload":"mcf","arm":"warp-drive"}"#,
        r#"{"workload":"mcf","scale":"huge"}"#,
        r#"{"workload":"mcf","insts":"many"}"#,
        r#"{"workload":"mcf","surprise":1}"#,
    ] {
        let r = post_run(&addr, bad);
        assert_eq!(r.status, 400, "body `{bad}` must be rejected, got {}", r.body);
    }

    let m = metrics(&addr);
    assert_eq!(counter(&m, "health"), 1);
    assert_eq!(counter(&m, "workloads"), 1);
    assert_eq!(counter(&m, "not_found"), 1);
    assert_eq!(counter(&m, "run_rejected"), 8);
    assert_eq!(counter(&m, "run_ok"), 0);

    // Extension workloads and the arsenal arms are servable: workload
    // validation defers to the builder, not the paper's 14-name suite.
    let r = post_run(&addr, r#"{"workload":"phaseshift","arm":"policy","insts":30000}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"workload\":\"phaseshift\""), "{}", r.body);
    assert!(r.body.contains("\"arm\":\"policy\""), "{}", r.body);

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn identical_concurrent_runs_single_flight_into_one_simulation() {
    let (addr, handle, t) = start(4, 8);

    // Leader first; wait until its simulation is observably in flight.
    let leader = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, SLOW_CELL))
    };
    wait_for(&addr, "leader in flight", |m| counter(m, "runs_inflight") == 1);

    // Three identical followers arrive while the leader is simulating.
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || post_run(&addr, SLOW_CELL))
        })
        .collect();
    wait_for(&addr, "followers coalesced", |m| counter(m, "coalesced") == 3);

    let mut bodies = vec![leader.join().unwrap()];
    bodies.extend(followers.into_iter().map(|f| f.join().unwrap()));
    for r in &bodies {
        assert_eq!(r.status, 200, "{}", r.body);
    }
    // All four answers carry the same result.
    let cycles = counter(&bodies[0].body, "cycles");
    assert!(cycles > 0);
    for r in &bodies {
        assert_eq!(counter(&r.body, "cycles"), cycles);
    }

    let m = metrics(&addr);
    assert_eq!(counter(&m, "run_ok"), 4, "{m}");
    assert_eq!(counter(&m, "sims"), 1, "exactly one simulation ran: {m}");
    assert_eq!(counter(&m, "runs_started"), 1, "{m}");
    assert_eq!(counter(&m, "coalesced"), 3, "{m}");

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn full_queue_sheds_with_503() {
    // One worker, one queue slot: with a slow run in flight and one queued,
    // the third request must shed — deterministically, because we gate each
    // step on the (inline-served) metrics.
    let (addr, handle, t) = start(1, 1);

    let inflight = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, SLOW_CELL))
    };
    wait_for(&addr, "slow run in flight", |m| counter(m, "runs_inflight") == 1);

    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            post_run(&addr, r#"{"workload":"swim","arm":"none","insts":5000}"#)
        })
    };
    wait_for(&addr, "second run queued", |m| counter(m, "queue_depth") == 1);

    let shed = post_run(&addr, r#"{"workload":"swim","arm":"hw8x8","insts":5000}"#);
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(shed.body.contains("shed"), "{}", shed.body);

    let m = metrics(&addr);
    assert_eq!(counter(&m, "shed"), 1, "{m}");

    // The admitted requests still complete normally.
    assert_eq!(inflight.join().unwrap().status, 200);
    assert_eq!(queued.join().unwrap().status, 200);

    handle.shutdown();
    t.join().expect("clean shutdown");
}

/// Sends raw bytes to the daemon and reads whatever comes back (possibly
/// nothing). Half-closes the write side so an incomplete request is seen as
/// a client that hung up.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Write errors are fine: the daemon may reject and close while bytes
    // are still in flight (the over-large head case).
    let _ = s.write_all(bytes);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

/// Extracts `tdo_server_bad_requests_total{reason="..."}` from a prom body.
fn bad_requests(prom: &str, reason: &str) -> u64 {
    let needle = format!("tdo_server_bad_requests_total{{reason=\"{reason}\"}} ");
    let at = prom.find(&needle).unwrap_or_else(|| panic!("family for `{reason}` in:\n{prom}"));
    prom[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer sample")
}

#[test]
fn every_malformed_request_path_gets_its_own_reason() {
    let (addr, handle, t) = start(1, 4);

    // One hit per early-return path, driven over raw sockets where the
    // malformation lives below the client helper.
    raw_exchange(&addr, b"\r\n\r\n"); // no method -> bad_request_line
    raw_exchange(&addr, b"\xff\xfe\r\n\r\n"); // non-UTF-8 head -> bad_encoding
    raw_exchange(&addr, b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
    raw_exchange(&addr, b"POST /run HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n");
    raw_exchange(&addr, b"GET / HTTP/1.1\r\n"); // hang up mid-head -> closed_early
    let big = vec![b'a'; 20 * 1024]; // head over limit -> head_too_large
    raw_exchange(&addr, &big);
    assert_eq!(client::get(&addr, "/metrics?format=xml").unwrap().status, 400);
    assert_eq!(client::post(&addr, "/health", "").unwrap().status, 405);
    assert_eq!(post_run(&addr, "not json").status, 400); // bad_cell_spec

    let prom = client::get(&addr, "/metrics?format=prom").unwrap().body;
    for reason in [
        "bad_request_line",
        "bad_encoding",
        "bad_content_length",
        "body_too_large",
        "closed_early",
        "head_too_large",
        "bad_query",
        "method_not_allowed",
        "bad_cell_spec",
    ] {
        assert_eq!(bad_requests(&prom, reason), 1, "reason `{reason}`:\n{prom}");
    }
    // The transport-failure bucket exists (zero here — nothing failed).
    assert_eq!(bad_requests(&prom, "read_failed"), 0);
    // The JSON body aggregates all reasons.
    assert_eq!(counter(&metrics(&addr), "bad_requests"), 9);

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn responses_carry_distinct_trace_ids_and_the_flight_dump_validates() {
    let (addr, handle, t) = start(1, 4);

    let a = client::get(&addr, "/health").unwrap();
    let b = client::get(&addr, "/health").unwrap();
    let ta = a.trace.expect("trace header on response a");
    let tb = b.trace.expect("trace header on response b");
    assert_eq!(ta.len(), 16, "16 hex digits: {ta}");
    assert_ne!(ta, tb, "each connection gets its own trace id");
    // Even a 400 is traceable.
    let bad = client::get(&addr, "/metrics?format=xml").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.trace.is_some(), "400s carry X-Tdo-Trace too");

    // A /run's records land in the recorder under the response's trace id.
    let run = post_run(&addr, r#"{"workload":"swim","arm":"sr","insts":5000}"#);
    assert_eq!(run.status, 200, "{}", run.body);
    let run_trace = u64::from_str_radix(run.trace.as_deref().expect("run trace"), 16).unwrap();

    let dump = client::get(&addr, "/debug/flight").unwrap();
    assert_eq!(dump.status, 200);
    tdo_obs::validate_flight(&dump.body).expect("dump validates");
    let log = tdo_obs::span::parse_flight(&dump.body).expect("dump parses");
    let mine: Vec<_> = log.iter().filter(|r| r.trace == run_trace).collect();
    assert!(!mine.is_empty(), "run trace {run_trace:#x} present in flight dump");
    assert!(
        mine.iter().any(|r| r.kind == tdo_obs::FlightKind::RunCell),
        "the engine cell span is attributed to the request's trace"
    );
    assert!(
        mine.iter().any(|r| r.kind == tdo_obs::FlightKind::QueueWait),
        "the queue wait is attributed to the request's trace"
    );

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn slo_breach_writes_a_validated_flight_dump() {
    let dir = std::env::temp_dir().join(format!("tdo-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A 1 µs SLO: every /run breaches it.
    let cfg = ServerConfig {
        workers: 1,
        queue_cap: 4,
        no_store: true,
        slo_us: 1,
        flight_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    };
    let (addr, handle, t) = start_cfg(cfg);

    let r = post_run(&addr, r#"{"workload":"swim","arm":"sr","insts":5000}"#);
    assert_eq!(r.status, 200, "{}", r.body);

    let prom = client::get(&addr, "/metrics?format=prom").unwrap().body;
    assert!(
        prom.contains("tdo_server_flight_dumps_total{reason=\"slo_breach\"} 1"),
        "slo dump counted:\n{prom}"
    );
    let dump_path = dir.join("flight-000-slo_breach.jsonl");
    let text = std::fs::read_to_string(&dump_path).expect("dump file written");
    tdo_obs::validate_flight(&text).expect("dump file validates");

    handle.shutdown();
    t.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Masks the nondeterministic values in a prom exposition: bucket counts,
/// sums and exemplars of wall-time histograms (families ending `_us`), and
/// the process-global `tdo_obs_*` counters (shared by every server in the
/// test binary, so their values depend on test interleaving). Sample counts
/// stay — they are request-count determined. The whole value tail after the
/// series name is masked so exemplar suffixes go with it.
fn mask_wall_values(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    for line in body.lines() {
        let wall = line.contains("_us_bucket{")
            || line.contains("_us_sum")
            || (line.starts_with("tdo_obs_") && !line.starts_with('#'))
            // The uptime gauge counts background sampler ticks — pure
            // wall-clock scheduling, masked like the latency samples.
            || (line.starts_with("tdo_server_uptime_ticks") && !line.starts_with('#'));
        match (wall, line.split_once(' ')) {
            (true, Some((series, _))) if !line.starts_with('#') => {
                out.push_str(series);
                out.push_str(" <wall>\n");
            }
            _ => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn prometheus_exposition_matches_golden_snapshot() {
    // A seeded sequence — one health ping, one tiny deterministic run — then
    // a single scrape. Everything except wall-clock values must be
    // byte-stable; the golden regenerates with
    // `TDO_BLESS=1 cargo test -p tdo-server --test server`.
    let (addr, handle, t) = start(1, 4);
    assert_eq!(client::get(&addr, "/health").unwrap().status, 200);
    let r = post_run(&addr, r#"{"workload":"swim","arm":"sr","insts":5000}"#);
    assert_eq!(r.status, 200, "{}", r.body);

    let resp = client::get(&addr, "/metrics?format=prom").unwrap();
    assert_eq!(resp.status, 200);

    // Every scrape must be strict, parseable text exposition.
    let stats = tdo_metrics::expo::parse_text(&resp.body).expect("prom text parses");
    assert!(stats.families >= 10, "registry is populated: {} families", stats.families);

    // The fault-injection family only exists on registries armed through
    // `tdo_fault::arm_with_registry`; a daemon that never arms must not
    // leak even an all-zero family into its exposition (the golden below
    // pins this too, but the intent deserves its own assertion).
    assert!(
        !resp.body.contains("tdo_fault_injected_total"),
        "disarmed daemon must not expose fault-injection metrics"
    );

    // Unknown query strings are rejected, JSON stays the default.
    assert_eq!(client::get(&addr, "/metrics?format=xml").unwrap().status, 400);
    assert!(client::get(&addr, "/metrics?format=json").unwrap().body.starts_with('{'));

    let masked = mask_wall_values(&resp.body);
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_prom.txt");
    if std::env::var_os("TDO_BLESS").is_some() {
        std::fs::write(golden, &masked).unwrap();
    } else {
        let expected = std::fs::read_to_string(golden)
            .expect("golden file missing; regenerate with TDO_BLESS=1");
        assert_eq!(
            masked, expected,
            "prom exposition drifted from the golden file; if intended, regenerate with TDO_BLESS=1"
        );
    }

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn metrics_history_is_byte_deterministic_when_idle() {
    let (addr, handle, t) = start(1, 4);

    // Some traffic so the history has rows worth retaining.
    for _ in 0..3 {
        let r = post_run(&addr, r#"{"workload":"swim","arm":"sr","insts":5000}"#);
        assert_eq!(r.status, 200, "{}", r.body);
    }

    // First scrape pre-samples whatever the runs changed; once idle, any
    // number of further scrapes must return identical bytes — the scrape's
    // own counters are excluded from sampling by design.
    let first = client::get(&addr, "/metrics/history").unwrap();
    assert_eq!(first.status, 200);
    let again = client::get(&addr, "/metrics/history").unwrap();
    let third = client::get(&addr, "/metrics/history?window=1000").unwrap();
    assert_eq!(first.body, again.body, "idle scrapes must be byte-identical");
    assert_eq!(first.body, third.body, "an over-wide window is the full history");

    // Shape: a schema header naming every column, then one row per line.
    let mut lines = first.body.lines();
    let header = lines.next().expect("header line");
    assert!(header.starts_with("{\"series_schema\":1,\"rows\":"), "{header}");
    assert!(header.contains("\"tdo_server_request_latency_us{endpoint=\\\"run\\\"}#count\""));
    assert!(header.contains("\"tdo_server_queue_depth\""));
    assert!(!header.contains("tdo_server_uptime_ticks"), "observer-effect series excluded");
    let rows: Vec<&str> = lines.collect();
    assert!(!rows.is_empty(), "traffic must have produced at least one row");
    assert!(rows.iter().all(|r| r.starts_with("{\"tick\":")), "rows are tick objects");

    // A window narrows the row set but keeps the newest row.
    let windowed = client::get(&addr, "/metrics/history?window=1").unwrap();
    assert_eq!(windowed.body.lines().count(), 2, "header + one row: {}", windowed.body);
    assert_eq!(windowed.body.lines().last(), first.body.lines().last());

    assert_eq!(client::get(&addr, "/metrics/history?window=soon").unwrap().status, 400);

    handle.shutdown();
    t.join().expect("clean shutdown");
}

#[test]
fn shutdown_endpoint_stops_the_daemon_and_drains_the_queue() {
    let (addr, _handle, t) = start(2, 4);

    // Something in flight when shutdown arrives.
    let running = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, SLOW_CELL))
    };
    wait_for(&addr, "run in flight", |m| counter(m, "runs_inflight") == 1);

    let r = client::post(&addr, "/shutdown", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("shutting_down"));

    // The in-flight request finishes (drained, not dropped)...
    assert_eq!(running.join().unwrap().status, 200);
    // ...and the server thread exits.
    t.join().expect("clean shutdown");

    // New connections are refused once the listener is gone.
    let after = client::get(&addr, "/health");
    assert!(after.is_err(), "listener closed after shutdown");
}
