//! Adaptive-degree next-line prefetching: the STATISTICS→BEST_DEGREE
//! hill-climbing state machine of ChampSim's `next_line_linear_mpki`
//! prefetcher, driving the shared next-line pool.
//!
//! The controller alternates two states:
//!
//! * **Statistics** — sweep every degree from `min_degree` to `max_degree`,
//!   running each for `stats_window` demand loads and recording its miss
//!   rate (misses per kilo-access, in milli-units — integer arithmetic
//!   keeps the sweep deterministic across platforms);
//! * **BestDegree** — commit to the degree with the lowest recorded miss
//!   rate (ties break toward the lower, cheaper degree) for `best_window`
//!   demand loads, then sweep again.
//!
//! The reference uses retired instructions as the window clock; an arm
//! only observes demand loads, so loads are the clock here and the window
//! constants are interpreted per-load (the reference's 5000/25000 shape is
//! kept).

use crate::nextline::LinePool;
use crate::{ArmHit, ArmKind, ArmStats, Prefetcher, RefillList, MAX_STREAM_ENTRIES};

/// Configuration of the adaptive-degree next-line arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveNextLineConfig {
    /// Number of independent line streams tracked at once.
    pub buffers: usize,
    /// Demand loads each candidate degree runs for during a sweep
    /// (`STATISTICS_INSTR_LIMIT_PER_DEGREE` in the reference).
    pub stats_window: u64,
    /// Demand loads the winning degree runs for before the next sweep
    /// (`BEST_DEGREE_INSTR_LIMIT` in the reference).
    pub best_window: u64,
    /// Lowest degree swept (0 = no prefetching is a candidate).
    pub min_degree: usize,
    /// Highest degree swept.
    pub max_degree: usize,
}

impl Default for AdaptiveNextLineConfig {
    /// The reference constants: 5000-load sweep windows, 25000-load commit
    /// windows, degrees 0..=16.
    fn default() -> AdaptiveNextLineConfig {
        AdaptiveNextLineConfig {
            buffers: 8,
            stats_window: 5000,
            best_window: 25000,
            min_degree: 0,
            max_degree: 16,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Statistics,
    BestDegree,
}

/// The adaptive-degree next-line arm.
pub struct AdaptiveNextLinePrefetcher {
    cfg: AdaptiveNextLineConfig,
    pool: LinePool,
    state: State,
    /// Demand loads and L1 misses observed in the current window.
    window_accesses: u64,
    window_misses: u64,
    /// Miss rate per swept degree, in milli-MPKA (misses per kilo-access
    /// × 1000). `u64::MAX` marks degrees not yet measured this sweep.
    mpka_milli: [u64; MAX_STREAM_ENTRIES + 1],
}

impl AdaptiveNextLinePrefetcher {
    /// Builds the arm for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_degree` exceeds [`MAX_STREAM_ENTRIES`] or the
    /// degree range is empty.
    #[must_use]
    pub fn new(cfg: AdaptiveNextLineConfig, line_bytes: u64) -> AdaptiveNextLinePrefetcher {
        assert!(
            cfg.max_degree <= MAX_STREAM_ENTRIES,
            "max degree {} exceeds the inline refill-list bound {MAX_STREAM_ENTRIES}",
            cfg.max_degree
        );
        assert!(cfg.min_degree <= cfg.max_degree, "empty degree range");
        AdaptiveNextLinePrefetcher {
            pool: LinePool::new(cfg.buffers, cfg.min_degree, line_bytes),
            cfg,
            state: State::Statistics,
            window_accesses: 0,
            window_misses: 0,
            mpka_milli: [u64::MAX; MAX_STREAM_ENTRIES + 1],
        }
    }

    /// The degree currently in force (test and report aid).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.pool.degree
    }

    fn window_limit(&self) -> u64 {
        match self.state {
            State::Statistics => self.cfg.stats_window,
            State::BestDegree => self.cfg.best_window,
        }
    }

    fn close_window(&mut self) {
        match self.state {
            State::Statistics => {
                // Milli-MPKA: misses per kilo-access × 1000, in integers.
                self.mpka_milli[self.pool.degree] =
                    (self.window_misses * 1_000_000) / self.window_accesses.max(1);
                if self.pool.degree < self.cfg.max_degree {
                    self.pool.degree += 1;
                } else {
                    // Sweep complete: commit to the argmin; ties break to
                    // the lower (cheaper) degree because the scan is
                    // strictly-less from below.
                    let best = (self.cfg.min_degree..=self.cfg.max_degree)
                        .min_by_key(|&d| self.mpka_milli[d])
                        .expect("non-empty degree range");
                    self.pool.degree = best;
                    self.state = State::BestDegree;
                }
            }
            State::BestDegree => {
                self.mpka_milli = [u64::MAX; MAX_STREAM_ENTRIES + 1];
                self.pool.degree = self.cfg.min_degree;
                self.state = State::Statistics;
            }
        }
        self.window_accesses = 0;
        self.window_misses = 0;
    }
}

impl Prefetcher for AdaptiveNextLinePrefetcher {
    fn kind(&self) -> ArmKind {
        ArmKind::AdaptiveNextLine
    }

    /// Steps the degree state machine (once per demand load, mirroring the
    /// reference's `prefetcher_cycle_operate` cadence).
    fn advance(&mut self, _now: u64) {
        if self.window_accesses >= self.window_limit() {
            self.close_window();
        }
    }

    fn train(&mut self, _pc: u64, _addr: u64, l1_miss: bool) {
        self.window_accesses += 1;
        if l1_miss {
            self.window_misses += 1;
        }
    }

    fn contains(&self, addr: u64) -> bool {
        self.pool.contains(addr)
    }

    fn probe_and_consume(&mut self, addr: u64) -> Option<ArmHit> {
        self.pool.probe_and_consume(addr)
    }

    fn refill_addresses(&mut self, slot: usize) -> RefillList {
        self.pool.refill_addresses(slot)
    }

    fn push_fill(&mut self, slot: usize, line_addr: u64, ready_at: u64) {
        self.pool.push_fill(slot, line_addr, ready_at)
    }

    fn consider_allocation(&mut self, _pc: u64, addr: u64) -> Option<(usize, RefillList)> {
        self.pool.consider_allocation(addr)
    }

    fn stats(&self) -> ArmStats {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ada(stats_window: u64, best_window: u64, max_degree: usize) -> AdaptiveNextLinePrefetcher {
        AdaptiveNextLinePrefetcher::new(
            AdaptiveNextLineConfig {
                buffers: 4,
                stats_window,
                best_window,
                min_degree: 0,
                max_degree,
            },
            64,
        )
    }

    /// Drives `loads` accesses with a fixed miss outcome per degree.
    fn drive(p: &mut AdaptiveNextLinePrefetcher, loads: u64, miss_for: impl Fn(usize) -> bool) {
        for i in 0..loads {
            p.advance(i);
            let d = p.degree();
            p.train(0x400, 0x1000 + i * 8, miss_for(d));
        }
    }

    #[test]
    fn sweep_walks_every_degree_then_commits_to_the_argmin() {
        let mut p = ada(10, 100, 4);
        // Degree 2 is the only one that never misses; every other degree
        // always misses.
        drive(&mut p, 10 * 5 + 1, |d| d != 2);
        assert_eq!(p.degree(), 2, "commits to the measured argmin");
        // The commit window holds the degree.
        drive(&mut p, 50, |_| false);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn commit_window_expiry_restarts_the_sweep() {
        let mut p = ada(10, 30, 2);
        drive(&mut p, 10 * 3 + 1, |d| d != 1);
        assert_eq!(p.degree(), 1);
        // Burn through the commit window; the next advance re-enters the
        // sweep at min_degree.
        drive(&mut p, 31, |_| false);
        assert_eq!(p.degree(), 0, "sweep restarts from the bottom");
    }

    #[test]
    fn ties_break_toward_the_lower_degree() {
        let mut p = ada(10, 100, 3);
        // All degrees miss equally: degree 0 (no prefetching) must win.
        drive(&mut p, 10 * 4 + 1, |_| true);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn reference_constants_are_the_default() {
        let c = AdaptiveNextLineConfig::default();
        assert_eq!((c.stats_window, c.best_window), (5000, 25000));
        assert_eq!((c.min_degree, c.max_degree), (0, 16));
    }
}
