//! Stride-predictor-directed stream buffers — the paper's *hardware*
//! prefetching baseline (Table 1: "8 stream buffers; each buffer 8 entries;
//! history table 1024 entries; prefetching is guided by a stride predictor"),
//! after Sherwood et al., "Predictor-Directed Stream Buffers" (MICRO 2000)
//! and Farkas et al.'s per-PC stride predictor.
//!
//! On a demand L1 miss the buffers are probed in parallel with the lower
//! hierarchy; a buffer hit promotes the line to L1 and streams the buffer
//! forward. A miss in all buffers trains the per-PC stride predictor and,
//! once the predictor is confident, allocates a buffer (LRU) that runs ahead
//! of the load.
//!
//! Ported unchanged from `tdo-mem` behind the [`Prefetcher`] trait; the
//! call sequence and every decision are bit-identical to the pre-arsenal
//! implementation.

use std::collections::VecDeque;

use crate::stride::StridePredictor;
use crate::{ArmHit, ArmKind, ArmStats, Prefetcher, RefillList, MAX_STREAM_ENTRIES};

/// Configuration of the hardware stream-buffer prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamBufferConfig {
    /// Number of independent stream buffers.
    pub buffers: usize,
    /// Entries (prefetched lines) per buffer.
    pub entries_per_buffer: usize,
    /// Entries in the PC-indexed stride history table.
    pub history_entries: usize,
    /// Confidence (0–3) the stride predictor must reach before a buffer is
    /// allocated for a missing load.
    pub allocation_confidence: u8,
}

impl StreamBufferConfig {
    /// The paper's 4-buffer × 4-entry configuration (Figure 2).
    #[must_use]
    pub fn four_by_four() -> StreamBufferConfig {
        StreamBufferConfig {
            buffers: 4,
            entries_per_buffer: 4,
            history_entries: 1024,
            allocation_confidence: 2,
        }
    }

    /// The paper's 8-buffer × 8-entry baseline configuration.
    #[must_use]
    pub fn eight_by_eight() -> StreamBufferConfig {
        StreamBufferConfig {
            buffers: 8,
            entries_per_buffer: 8,
            history_entries: 1024,
            allocation_confidence: 2,
        }
    }
}

/// One prefetched line sitting in a buffer.
#[derive(Clone, Copy, Debug)]
pub struct StreamEntry {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Cycle at which the fill completes.
    pub ready_at: u64,
}

pub(crate) struct Buffer {
    pub(crate) valid: bool,
    pub(crate) entries: VecDeque<StreamEntry>,
    pub(crate) stride: i64,
    pub(crate) next_addr: u64,
    pub(crate) last_use: u64,
}

impl Buffer {
    pub(crate) fn empty() -> Buffer {
        Buffer { valid: false, entries: VecDeque::new(), stride: 0, next_addr: 0, last_use: 0 }
    }
}

/// The set of stream buffers.
pub struct StreamBuffers {
    cfg: StreamBufferConfig,
    predictor: StridePredictor,
    buffers: Vec<Buffer>,
    line_bytes: u64,
    clock: u64,
    /// Total lines fetched into buffers (stat).
    pub issued: u64,
    /// Total buffer hits (stat).
    pub hits: u64,
    /// Total buffer allocations (stat).
    pub allocations: u64,
}

impl StreamBuffers {
    /// Builds the buffer set for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries_per_buffer` exceeds [`MAX_STREAM_ENTRIES`].
    #[must_use]
    pub fn new(cfg: StreamBufferConfig, line_bytes: u64) -> StreamBuffers {
        assert!(
            cfg.entries_per_buffer <= MAX_STREAM_ENTRIES,
            "buffer depth {} exceeds the inline refill-list bound {MAX_STREAM_ENTRIES}",
            cfg.entries_per_buffer
        );
        let buffers = (0..cfg.buffers).map(|_| Buffer::empty()).collect();
        StreamBuffers {
            predictor: StridePredictor::new(cfg.history_entries),
            cfg,
            buffers,
            line_bytes,
            clock: 0,
            issued: 0,
            hits: 0,
            allocations: 0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &StreamBufferConfig {
        &self.cfg
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }
}

impl Prefetcher for StreamBuffers {
    fn kind(&self) -> ArmKind {
        ArmKind::Stream
    }

    /// Trains the stride predictor with a committed load (the predictor
    /// trains on every access, hit or miss, exactly as before).
    fn train(&mut self, pc: u64, addr: u64, _l1_miss: bool) {
        self.predictor.train(pc, addr);
    }

    fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.buffers.iter().any(|b| b.valid && b.entries.iter().any(|e| e.line_addr == line))
    }

    /// Probes all buffers for the line containing `addr` and, on a hit,
    /// consumes entries up to and including it.
    fn probe_and_consume(&mut self, addr: u64) -> Option<ArmHit> {
        let line = self.line_of(addr);
        self.clock += 1;
        for (bi, b) in self.buffers.iter_mut().enumerate() {
            if !b.valid {
                continue;
            }
            if let Some(pos) = b.entries.iter().position(|e| e.line_addr == line) {
                let hit = b.entries[pos];
                b.entries.drain(..=pos);
                b.last_use = self.clock;
                self.hits += 1;
                return Some(ArmHit { ready_at: hit.ready_at, slot: bi });
            }
        }
        None
    }

    fn refill_addresses(&mut self, slot: usize) -> RefillList {
        let mut out = RefillList::EMPTY;
        let b = &mut self.buffers[slot];
        if !b.valid {
            return out;
        }
        let need = self.cfg.entries_per_buffer.saturating_sub(b.entries.len());
        for _ in 0..need {
            out.push(b.next_addr);
            b.next_addr = b.next_addr.wrapping_add(b.stride as u64);
        }
        out
    }

    fn push_fill(&mut self, slot: usize, line_addr: u64, ready_at: u64) {
        let line = self.line_of(line_addr);
        self.issued += 1;
        self.buffers[slot].entries.push_back(StreamEntry { line_addr: line, ready_at });
    }

    /// Considers allocating a buffer for a demand miss at `(pc, addr)`:
    /// allocates (LRU victim) when the stride predictor is confident and
    /// the miss does not already stream.
    fn consider_allocation(&mut self, pc: u64, addr: u64) -> Option<(usize, RefillList)> {
        let stride = self.predictor.predict(pc, self.cfg.allocation_confidence)?;
        // Skip tiny strides inside one line: next-line behaviour is already
        // covered by stride-1-line streams; a zero line-delta stream is useless.
        let line_stride = if stride.unsigned_abs() < self.line_bytes {
            if stride > 0 {
                self.line_bytes as i64
            } else {
                -(self.line_bytes as i64)
            }
        } else {
            stride
        };
        self.clock += 1;
        // Avoid duplicate streams: an existing buffer already holds (or is
        // about to fetch) the line this stream would start with.
        let first = self.line_of(addr.wrapping_add(line_stride as u64));
        if self.buffers.iter().any(|b| {
            b.valid
                && b.stride == line_stride
                && (self.line_of(b.next_addr) == first
                    || b.entries.iter().any(|e| e.line_addr == first))
        }) {
            return None;
        }
        let victim = self.buffers.iter().position(|b| !b.valid).unwrap_or_else(|| {
            self.buffers
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_use)
                .map(|(i, _)| i)
                .expect("at least one buffer")
        });
        let b = &mut self.buffers[victim];
        b.valid = true;
        b.entries.clear();
        b.stride = line_stride;
        b.next_addr = addr.wrapping_add(line_stride as u64);
        b.last_use = self.clock;
        self.allocations += 1;
        let addrs = self.refill_addresses(victim);
        Some((victim, addrs))
    }

    fn stats(&self) -> ArmStats {
        ArmStats { issued: self.issued, useful: self.hits, allocations: self.allocations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> StreamBuffers {
        StreamBuffers::new(StreamBufferConfig::four_by_four(), 64)
    }

    #[test]
    fn allocation_requires_confidence() {
        let mut s = sb();
        s.train(0x10, 0x1000, true);
        assert!(s.consider_allocation(0x10, 0x1000).is_none());
        for i in 1..4u64 {
            s.train(0x10, 0x1000 + i * 64, true);
        }
        let (buf, addrs) = s.consider_allocation(0x10, 0x10c0).expect("allocates");
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], 0x1100);
        assert_eq!(addrs[1], 0x1140);
        for (i, a) in addrs.iter().enumerate() {
            s.push_fill(buf, *a, 100 + i as u64);
        }
        // Now the streamed line hits.
        let hit = s.probe_and_consume(0x1100).expect("buffer hit");
        assert_eq!(hit.ready_at, 100);
        assert_eq!(s.hits, 1);
        assert_eq!(s.stats().useful, 1);
    }

    #[test]
    fn hit_consumes_preceding_entries_and_reports_refills() {
        let mut s = sb();
        for i in 0..5u64 {
            s.train(0x20, 0x2000 + i * 64, true);
        }
        let (buf, addrs) = s.consider_allocation(0x20, 0x2100).unwrap();
        for a in addrs.iter() {
            s.push_fill(buf, *a, 0);
        }
        // Hit the third entry: two earlier entries are skipped.
        let third = addrs[2];
        let hit = s.probe_and_consume(third).unwrap();
        assert_eq!(hit.slot, buf);
        let refills = s.refill_addresses(buf);
        assert_eq!(refills.len(), 3, "three entries consumed, three refills");
        assert_eq!(refills[0], addrs[3] + 64);
    }

    #[test]
    fn sub_line_strides_stream_whole_lines() {
        let mut s = sb();
        for i in 0..6u64 {
            s.train(0x30, 0x3000 + i * 8, true);
        }
        let (_, addrs) = s.consider_allocation(0x30, 0x3028).unwrap();
        assert_eq!(addrs[1] - addrs[0], 64, "line-granular streaming");
    }

    #[test]
    fn duplicate_streams_are_not_allocated() {
        let mut s = sb();
        for i in 0..5u64 {
            s.train(0x40, 0x4000 + i * 64, true);
        }
        let (buf, addrs) = s.consider_allocation(0x40, 0x4100).unwrap();
        for a in addrs.iter() {
            s.push_fill(buf, *a, 0);
        }
        assert!(s.consider_allocation(0x40, 0x4100).is_none());
        assert_eq!(s.allocations, 1);
    }

    #[test]
    fn probe_miss_returns_none() {
        let mut s = sb();
        assert!(s.probe_and_consume(0x9999).is_none());
        assert_eq!(s.hits, 0);
    }
}
