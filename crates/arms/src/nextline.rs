//! Miss-triggered next-line streaming (Smith & Hsu's sequential
//! prefetching, the paper's §2.2 precursor baseline) as an arsenal arm.
//!
//! A demand miss that no buffer covers allocates a small stream of the
//! `degree` sequentially next lines; a buffer hit consumes forward and
//! refills, so a sequential walk stays `degree` lines ahead of the
//! program. `degree` is fixed here; [`crate::AdaptiveNextLinePrefetcher`]
//! drives the same pool with a hill-climbed degree.

use crate::stream::Buffer;
use crate::{ArmHit, ArmKind, ArmStats, Prefetcher, RefillList, MAX_STREAM_ENTRIES};

/// Configuration of the fixed-degree next-line arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NextLineConfig {
    /// Number of independent line streams tracked at once.
    pub buffers: usize,
    /// Lines fetched ahead of each triggering miss.
    pub degree: usize,
}

impl Default for NextLineConfig {
    /// Eight streams, four lines ahead — the classic sequential-prefetch
    /// shape (matches the stream-buffer count of the paper baseline so the
    /// arms differ in policy, not capacity).
    fn default() -> NextLineConfig {
        NextLineConfig { buffers: 8, degree: 4 }
    }
}

/// A pool of next-line streams: stream buffers whose stride is always one
/// line and whose allocation needs no predictor confidence. Shared by the
/// fixed and adaptive arms, which differ only in how `degree` is chosen.
pub(crate) struct LinePool {
    pub(crate) buffers: Vec<Buffer>,
    pub(crate) degree: usize,
    line_bytes: u64,
    clock: u64,
    pub(crate) issued: u64,
    pub(crate) useful: u64,
    pub(crate) allocations: u64,
}

impl LinePool {
    pub(crate) fn new(buffers: usize, degree: usize, line_bytes: u64) -> LinePool {
        assert!(
            degree <= MAX_STREAM_ENTRIES,
            "next-line degree {degree} exceeds the inline refill-list bound {MAX_STREAM_ENTRIES}"
        );
        LinePool {
            buffers: (0..buffers).map(|_| Buffer::empty()).collect(),
            degree,
            line_bytes,
            clock: 0,
            issued: 0,
            useful: 0,
            allocations: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    pub(crate) fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.buffers.iter().any(|b| b.valid && b.entries.iter().any(|e| e.line_addr == line))
    }

    pub(crate) fn probe_and_consume(&mut self, addr: u64) -> Option<ArmHit> {
        let line = self.line_of(addr);
        self.clock += 1;
        for (bi, b) in self.buffers.iter_mut().enumerate() {
            if !b.valid {
                continue;
            }
            if let Some(pos) = b.entries.iter().position(|e| e.line_addr == line) {
                let hit = b.entries[pos];
                b.entries.drain(..=pos);
                b.last_use = self.clock;
                self.useful += 1;
                return Some(ArmHit { ready_at: hit.ready_at, slot: bi });
            }
        }
        None
    }

    pub(crate) fn refill_addresses(&mut self, slot: usize) -> RefillList {
        let mut out = RefillList::EMPTY;
        let b = &mut self.buffers[slot];
        if !b.valid {
            return out;
        }
        // A shrunk degree (the adaptive arm climbing down) simply stops
        // refilling; existing entries drain through demand hits.
        let need = self.degree.saturating_sub(b.entries.len());
        for _ in 0..need {
            out.push(b.next_addr);
            b.next_addr = b.next_addr.wrapping_add(self.line_bytes);
        }
        out
    }

    pub(crate) fn push_fill(&mut self, slot: usize, line_addr: u64, ready_at: u64) {
        let line = self.line_of(line_addr);
        self.issued += 1;
        self.buffers[slot]
            .entries
            .push_back(crate::stream::StreamEntry { line_addr: line, ready_at });
    }

    pub(crate) fn consider_allocation(&mut self, addr: u64) -> Option<(usize, RefillList)> {
        if self.degree == 0 {
            return None;
        }
        self.clock += 1;
        // The stream this miss wants starts at the next line; skip the
        // allocation when an existing stream already covers (or is about to
        // fetch) it — the miss is part of a walk that is already streaming.
        let first = self.line_of(addr).wrapping_add(self.line_bytes);
        if self.buffers.iter().any(|b| {
            b.valid
                && (self.line_of(b.next_addr) == first
                    || b.entries.iter().any(|e| e.line_addr == first))
        }) {
            return None;
        }
        let victim = self.buffers.iter().position(|b| !b.valid).unwrap_or_else(|| {
            self.buffers
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_use)
                .map(|(i, _)| i)
                .expect("at least one buffer")
        });
        let b = &mut self.buffers[victim];
        b.valid = true;
        b.entries.clear();
        b.stride = self.line_bytes as i64;
        b.next_addr = first;
        b.last_use = self.clock;
        self.allocations += 1;
        let addrs = self.refill_addresses(victim);
        Some((victim, addrs))
    }

    pub(crate) fn stats(&self) -> ArmStats {
        ArmStats { issued: self.issued, useful: self.useful, allocations: self.allocations }
    }
}

/// The fixed-degree next-line arm.
pub struct NextLinePrefetcher {
    pool: LinePool,
}

impl NextLinePrefetcher {
    /// Builds the arm for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.degree` exceeds [`MAX_STREAM_ENTRIES`].
    #[must_use]
    pub fn new(cfg: NextLineConfig, line_bytes: u64) -> NextLinePrefetcher {
        NextLinePrefetcher { pool: LinePool::new(cfg.buffers, cfg.degree, line_bytes) }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn kind(&self) -> ArmKind {
        ArmKind::NextLine
    }

    fn train(&mut self, _pc: u64, _addr: u64, _l1_miss: bool) {}

    fn contains(&self, addr: u64) -> bool {
        self.pool.contains(addr)
    }

    fn probe_and_consume(&mut self, addr: u64) -> Option<ArmHit> {
        self.pool.probe_and_consume(addr)
    }

    fn refill_addresses(&mut self, slot: usize) -> RefillList {
        self.pool.refill_addresses(slot)
    }

    fn push_fill(&mut self, slot: usize, line_addr: u64, ready_at: u64) {
        self.pool.push_fill(slot, line_addr, ready_at)
    }

    fn consider_allocation(&mut self, _pc: u64, addr: u64) -> Option<(usize, RefillList)> {
        self.pool.consider_allocation(addr)
    }

    fn stats(&self) -> ArmStats {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nl(degree: usize) -> NextLinePrefetcher {
        NextLinePrefetcher::new(NextLineConfig { buffers: 4, degree }, 64)
    }

    #[test]
    fn miss_allocates_the_next_degree_lines() {
        let mut p = nl(3);
        let (slot, addrs) = p.consider_allocation(0x9, 0x1008).expect("allocates on any miss");
        assert_eq!(&*addrs, &[0x1040, 0x1080, 0x10c0], "next lines, line-aligned");
        for (i, a) in addrs.iter().enumerate() {
            p.push_fill(slot, *a, 50 + i as u64);
        }
        let hit = p.probe_and_consume(0x1044).expect("next line hits");
        assert_eq!(hit.ready_at, 50);
        // Consuming the head asks for one refill to stay `degree` ahead.
        let refill = p.refill_addresses(slot);
        assert_eq!(&*refill, &[0x1100]);
    }

    #[test]
    fn covered_misses_do_not_reallocate() {
        let mut p = nl(4);
        let (slot, addrs) = p.consider_allocation(0x9, 0x2000).unwrap();
        for a in addrs.iter() {
            p.push_fill(slot, *a, 0);
        }
        // A miss whose next line is already streaming allocates nothing.
        assert!(p.consider_allocation(0x9, 0x2000).is_none());
        assert_eq!(p.stats().allocations, 1);
    }

    #[test]
    fn degree_zero_never_prefetches() {
        let mut p = nl(0);
        assert!(p.consider_allocation(0x9, 0x3000).is_none());
        assert_eq!(p.stats(), ArmStats::default());
    }

    #[test]
    fn sequential_walk_stays_covered() {
        let mut p = nl(4);
        let mut hits = 0;
        for i in 0..32u64 {
            let addr = 0x8000 + i * 64;
            if let Some(hit) = p.probe_and_consume(addr) {
                let refill = p.refill_addresses(hit.slot);
                for &a in refill.iter() {
                    p.push_fill(hit.slot, a, 0);
                }
                hits += 1;
            } else if let Some((slot, addrs)) = p.consider_allocation(0x9, addr) {
                for &a in addrs.iter() {
                    p.push_fill(slot, a, 0);
                }
            }
        }
        assert!(hits >= 30, "all but the cold start is covered, got {hits}");
    }
}
