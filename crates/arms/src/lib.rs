//! # tdo-arms — the pluggable prefetcher arsenal
//!
//! The paper evaluates exactly one hardware prefetcher: stride-predictor-
//! directed stream buffers. This crate generalizes that machinery into an
//! *arsenal*: a [`Prefetcher`] trait capturing the interactions the memory
//! hierarchy has with a hardware prefetch engine — train on every demand
//! load, probe-and-consume on misses, advance once per access, allocate on
//! misses, snapshot statistics — plus four concrete arms:
//!
//! * [`StreamBuffers`] — the paper's Table 1 baseline, ported verbatim
//!   from `tdo-mem` (Sherwood et al., "Predictor-Directed Stream Buffers",
//!   MICRO 2000);
//! * [`NextLinePrefetcher`] — miss-triggered next-line streaming at a
//!   fixed degree (Smith & Hsu's sequential prefetching);
//! * [`AdaptiveNextLinePrefetcher`] — next-line whose degree is set by the
//!   STATISTICS→BEST_DEGREE hill-climbing state machine of ChampSim's
//!   `next_line_linear_mpki` (sweep every degree, measure the miss rate of
//!   each, commit to the argmin for a long window, repeat);
//! * [`DeltaPrefetcher`] — a PC-stride/GHB-style delta prefetcher that
//!   bursts `degree` strided lines into a shared FIFO queue whenever a
//!   miss's PC has a confident stride.
//!
//! Arms are described by the plain-data [`ArmConfig`] (whose `Debug` form
//! feeds the experiment store's fingerprint in `tdo-sim`) and built with
//! [`ArmConfig::build`]. The hierarchy in `tdo-mem` drives whichever arm is
//! installed through the trait; the policy controller in `tdo-sim` swaps
//! arms at run time using the same call.
//!
//! ## Example
//!
//! ```
//! use tdo_arms::{ArmConfig, NextLineConfig, Prefetcher};
//!
//! let mut arm = ArmConfig::NextLine(NextLineConfig::default()).build(64).unwrap();
//! // A miss at 0x1000 allocates a stream of the next `degree` lines...
//! let (slot, addrs) = arm.consider_allocation(0x400, 0x1000).unwrap();
//! for (i, a) in addrs.iter().enumerate() {
//!     arm.push_fill(slot, *a, 10 + i as u64);
//! }
//! // ...so the next line is now a buffer hit.
//! assert!(arm.probe_and_consume(0x1040).is_some());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod delta;
pub mod nextline;
pub mod stream;
pub mod stride;

pub use adaptive::{AdaptiveNextLineConfig, AdaptiveNextLinePrefetcher};
pub use delta::{DeltaConfig, DeltaPrefetcher};
pub use nextline::{NextLineConfig, NextLinePrefetcher};
pub use stream::{StreamBufferConfig, StreamBuffers};
pub use stride::StridePredictor;

/// Which arm of the arsenal a prefetcher is — the key for per-arm
/// statistics folding and metric labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArmKind {
    /// Stride-predictor-directed stream buffers (the paper baseline).
    Stream,
    /// Fixed-degree next-line streaming.
    NextLine,
    /// Next-line with the hill-climbing degree controller.
    AdaptiveNextLine,
    /// PC-stride/GHB-style delta bursts.
    Delta,
}

impl ArmKind {
    /// Number of arm kinds (sizes the per-arm stat arrays in `tdo-mem`).
    pub const COUNT: usize = 4;

    /// Every kind, in stat-array index order.
    pub const ALL: [ArmKind; ArmKind::COUNT] =
        [ArmKind::Stream, ArmKind::NextLine, ArmKind::AdaptiveNextLine, ArmKind::Delta];

    /// Stable index into per-arm stat arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ArmKind::Stream => 0,
            ArmKind::NextLine => 1,
            ArmKind::AdaptiveNextLine => 2,
            ArmKind::Delta => 3,
        }
    }

    /// Stable short name, used as the `arm` metric label value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArmKind::Stream => "stream",
            ArmKind::NextLine => "nextline",
            ArmKind::AdaptiveNextLine => "adanl",
            ArmKind::Delta => "delta",
        }
    }
}

/// A snapshot of one arm's effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArmStats {
    /// Lines fetched into the arm's buffers.
    pub issued: u64,
    /// Demand accesses served out of the arm's buffers.
    pub useful: u64,
    /// Streams (or bursts) allocated.
    pub allocations: u64,
}

/// A hit found while probing an arm's buffers.
#[derive(Clone, Copy, Debug)]
pub struct ArmHit {
    /// Cycle at which the hit line's fill completes (may be in the past).
    pub ready_at: u64,
    /// Buffer slot that hit (passed back to
    /// [`Prefetcher::refill_addresses`] to stream it forward).
    pub slot: usize,
}

/// Hard upper bound on entries per buffer slot and per allocation burst
/// (the paper's deepest configuration is 8; the adaptive arm climbs to 16);
/// sizes [`RefillList`]'s inline storage.
pub const MAX_STREAM_ENTRIES: usize = 16;

/// Up to one buffer depth of refill addresses, stored inline.
///
/// [`Prefetcher::refill_addresses`] runs after every buffer hit — the
/// hierarchy's hottest prefetcher path — so returning a heap `Vec` there
/// would be a per-access allocation. Dereferences as a `&[u64]`.
#[derive(Clone, Copy, Debug)]
pub struct RefillList {
    addrs: [u64; MAX_STREAM_ENTRIES],
    len: usize,
}

impl RefillList {
    /// The empty list.
    pub const EMPTY: RefillList = RefillList { addrs: [0; MAX_STREAM_ENTRIES], len: 0 };

    #[inline]
    pub(crate) fn push(&mut self, a: u64) {
        self.addrs[self.len] = a;
        self.len += 1;
    }
}

impl std::ops::Deref for RefillList {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.addrs[..self.len]
    }
}

/// One hardware prefetch engine, as seen by the memory hierarchy.
///
/// The hierarchy drives an arm with a fixed call discipline (the one the
/// original stream buffers defined):
///
/// 1. [`Prefetcher::advance`] then [`Prefetcher::train`] once per demand
///    load, in program order;
/// 2. [`Prefetcher::probe_and_consume`] when the L1 misses (or a fill is
///    still in flight); on a hit, [`Prefetcher::refill_addresses`] for the
///    hit slot, then one [`Prefetcher::push_fill`] per returned address
///    carrying the fill's completion time;
/// 3. [`Prefetcher::consider_allocation`] on misses that hit no buffer,
///    followed by the same refill/push discipline for the returned burst;
/// 4. [`Prefetcher::contains`] as a side-effect-free probe (software
///    prefetches skip lines an arm already holds).
///
/// Arms must be deterministic: the same call sequence must produce the same
/// decisions on every run and every platform (no clocks, no randomness).
pub trait Prefetcher {
    /// Which arm this is (keys per-arm statistics and metric labels).
    fn kind(&self) -> ArmKind;

    /// Called once per demand load, before [`Prefetcher::train`], with the
    /// current cycle. Arms with internal state machines (the adaptive
    /// degree controller) step them here; the default is a no-op.
    fn advance(&mut self, _now: u64) {}

    /// Observes a committed demand load. `l1_miss` is true when the load
    /// missed in the L1 tag array (the miss-rate signal adaptive arms feed
    /// on).
    fn train(&mut self, pc: u64, addr: u64, l1_miss: bool);

    /// Whether any buffer currently holds the line containing `addr`
    /// (non-consuming probe).
    fn contains(&self, addr: u64) -> bool;

    /// Probes the arm's buffers for the line containing `addr` and, on a
    /// hit, consumes it (and anything the arm skips past).
    fn probe_and_consume(&mut self, addr: u64) -> Option<ArmHit>;

    /// Addresses slot `slot` wants fetched to return to full depth. Call
    /// after a [`Prefetcher::probe_and_consume`] hit; pair each returned
    /// address with a [`Prefetcher::push_fill`] carrying its fill time.
    fn refill_addresses(&mut self, slot: usize) -> RefillList;

    /// Records a completed fetch request for slot `slot`.
    fn push_fill(&mut self, slot: usize, line_addr: u64, ready_at: u64);

    /// Considers allocating buffer space for a demand miss at `(pc, addr)`.
    /// Returns the slot and the addresses to fetch when the arm decides to
    /// prefetch.
    fn consider_allocation(&mut self, pc: u64, addr: u64) -> Option<(usize, RefillList)>;

    /// Snapshot of the arm's effectiveness counters.
    fn stats(&self) -> ArmStats;
}

/// Plain-data description of one arm (or of no prefetching at all).
///
/// The `Debug` form of this enum is part of every experiment cell's store
/// fingerprint, so variants and fields must stay stable-in-meaning: any
/// semantic change wants a persist schema bump in `tdo-sim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArmConfig {
    /// No hardware prefetching.
    None,
    /// Stride-predictor-directed stream buffers.
    Stream(StreamBufferConfig),
    /// Fixed-degree next-line streaming.
    NextLine(NextLineConfig),
    /// Next-line with the hill-climbing degree controller.
    AdaptiveNextLine(AdaptiveNextLineConfig),
    /// PC-stride delta bursts.
    Delta(DeltaConfig),
}

impl ArmConfig {
    /// The kind this configuration builds, if any.
    #[must_use]
    pub fn kind(&self) -> Option<ArmKind> {
        match self {
            ArmConfig::None => None,
            ArmConfig::Stream(_) => Some(ArmKind::Stream),
            ArmConfig::NextLine(_) => Some(ArmKind::NextLine),
            ArmConfig::AdaptiveNextLine(_) => Some(ArmKind::AdaptiveNextLine),
            ArmConfig::Delta(_) => Some(ArmKind::Delta),
        }
    }

    /// The stream-buffer configuration, when this arm is one (back-compat
    /// accessor for Table 1 assertions).
    #[must_use]
    pub fn stream(&self) -> Option<StreamBufferConfig> {
        match self {
            ArmConfig::Stream(c) => Some(*c),
            _ => None,
        }
    }

    /// Builds the configured arm for lines of `line_bytes` bytes.
    #[must_use]
    pub fn build(&self, line_bytes: u64) -> Option<Box<dyn Prefetcher>> {
        match self {
            ArmConfig::None => None,
            ArmConfig::Stream(c) => Some(Box::new(StreamBuffers::new(*c, line_bytes))),
            ArmConfig::NextLine(c) => Some(Box::new(NextLinePrefetcher::new(*c, line_bytes))),
            ArmConfig::AdaptiveNextLine(c) => {
                Some(Box::new(AdaptiveNextLinePrefetcher::new(*c, line_bytes)))
            }
            ArmConfig::Delta(c) => Some(Box::new(DeltaPrefetcher::new(*c, line_bytes))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_their_stat_slots() {
        for (i, k) in ArmKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let names: Vec<&str> = ArmKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["stream", "nextline", "adanl", "delta"]);
    }

    #[test]
    fn configs_build_their_kinds() {
        let cfgs = [
            ArmConfig::Stream(StreamBufferConfig::eight_by_eight()),
            ArmConfig::NextLine(NextLineConfig::default()),
            ArmConfig::AdaptiveNextLine(AdaptiveNextLineConfig::default()),
            ArmConfig::Delta(DeltaConfig::default()),
        ];
        for cfg in cfgs {
            let arm = cfg.build(64).expect("builds");
            assert_eq!(Some(arm.kind()), cfg.kind());
            assert_eq!(arm.stats(), ArmStats::default(), "fresh arms have zero stats");
        }
        assert!(ArmConfig::None.build(64).is_none());
        assert_eq!(ArmConfig::None.kind(), None);
    }

    #[test]
    fn refill_list_derefs_to_pushed_prefix() {
        let mut l = RefillList::EMPTY;
        assert!(l.is_empty());
        l.push(10);
        l.push(20);
        assert_eq!(&*l, &[10, 20]);
    }
}
