//! A PC-stride/GHB-style delta prefetcher: when a miss's PC has a
//! confident stride, burst `degree` strided lines into a shared FIFO
//! prefetch queue (Nesbit & Smith's GHB stride prefetching, reduced to the
//! per-PC delta case the repo's [`StridePredictor`] captures).
//!
//! Unlike stream buffers there is no per-stream storage and no streaming
//! refill: every confident miss re-bursts from the miss address, and hits
//! consume single queue entries. That makes the arm cheap and quick to
//! re-aim after a phase change, at the cost of stream depth.

use std::collections::VecDeque;

use crate::stream::StreamEntry;
use crate::stride::StridePredictor;
use crate::{ArmHit, ArmKind, ArmStats, Prefetcher, RefillList, MAX_STREAM_ENTRIES};

/// Configuration of the delta arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Entries in the PC-indexed stride history table.
    pub history_entries: usize,
    /// Confidence (0–3) the stride predictor must reach before a miss
    /// bursts prefetches.
    pub allocation_confidence: u8,
    /// Strided lines fetched per confident miss.
    pub degree: usize,
    /// Capacity of the shared FIFO prefetch queue (oldest entries are
    /// evicted when a burst overflows it).
    pub queue_entries: usize,
}

impl Default for DeltaConfig {
    /// The stream-buffer baseline's table and confidence with a degree-4
    /// burst into a 32-entry queue.
    fn default() -> DeltaConfig {
        DeltaConfig {
            history_entries: 1024,
            allocation_confidence: 2,
            degree: 4,
            queue_entries: 32,
        }
    }
}

/// The delta arm.
pub struct DeltaPrefetcher {
    cfg: DeltaConfig,
    predictor: StridePredictor,
    queue: VecDeque<StreamEntry>,
    line_bytes: u64,
    issued: u64,
    useful: u64,
    allocations: u64,
}

impl DeltaPrefetcher {
    /// Builds the arm for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.degree` exceeds [`MAX_STREAM_ENTRIES`].
    #[must_use]
    pub fn new(cfg: DeltaConfig, line_bytes: u64) -> DeltaPrefetcher {
        assert!(
            cfg.degree <= MAX_STREAM_ENTRIES,
            "delta degree {} exceeds the inline refill-list bound {MAX_STREAM_ENTRIES}",
            cfg.degree
        );
        DeltaPrefetcher {
            predictor: StridePredictor::new(cfg.history_entries),
            queue: VecDeque::with_capacity(cfg.queue_entries),
            cfg,
            line_bytes,
            issued: 0,
            useful: 0,
            allocations: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }
}

impl Prefetcher for DeltaPrefetcher {
    fn kind(&self) -> ArmKind {
        ArmKind::Delta
    }

    fn train(&mut self, pc: u64, addr: u64, _l1_miss: bool) {
        self.predictor.train(pc, addr);
    }

    fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.queue.iter().any(|e| e.line_addr == line)
    }

    fn probe_and_consume(&mut self, addr: u64) -> Option<ArmHit> {
        let line = self.line_of(addr);
        let pos = self.queue.iter().position(|e| e.line_addr == line)?;
        let hit = self.queue.remove(pos).expect("position just found");
        self.useful += 1;
        Some(ArmHit { ready_at: hit.ready_at, slot: 0 })
    }

    /// Delta bursts never stream forward: hits consume single entries.
    fn refill_addresses(&mut self, _slot: usize) -> RefillList {
        RefillList::EMPTY
    }

    fn push_fill(&mut self, _slot: usize, line_addr: u64, ready_at: u64) {
        let line = self.line_of(line_addr);
        if self.queue.len() >= self.cfg.queue_entries {
            self.queue.pop_front();
        }
        self.issued += 1;
        self.queue.push_back(StreamEntry { line_addr: line, ready_at });
    }

    /// A confident miss bursts `degree` strided lines (sub-line strides are
    /// widened to one line, as in the stream-buffer arm), skipping lines the
    /// queue already holds.
    fn consider_allocation(&mut self, pc: u64, addr: u64) -> Option<(usize, RefillList)> {
        let stride = self.predictor.predict(pc, self.cfg.allocation_confidence)?;
        let line_stride = if stride.unsigned_abs() < self.line_bytes {
            if stride > 0 {
                self.line_bytes as i64
            } else {
                -(self.line_bytes as i64)
            }
        } else {
            stride
        };
        let mut out = RefillList::EMPTY;
        let mut next = addr;
        for _ in 0..self.cfg.degree {
            next = next.wrapping_add(line_stride as u64);
            let line = self.line_of(next);
            if !self.queue.iter().any(|e| e.line_addr == line) {
                out.push(line);
            }
        }
        if out.is_empty() {
            return None;
        }
        self.allocations += 1;
        Some((0, out))
    }

    fn stats(&self) -> ArmStats {
        ArmStats { issued: self.issued, useful: self.useful, allocations: self.allocations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta() -> DeltaPrefetcher {
        DeltaPrefetcher::new(DeltaConfig { queue_entries: 8, ..DeltaConfig::default() }, 64)
    }

    #[test]
    fn confident_miss_bursts_strided_lines() {
        let mut p = delta();
        for i in 0..4u64 {
            p.train(0x10, 0x1000 + i * 128, true);
        }
        let (slot, addrs) = p.consider_allocation(0x10, 0x1180).expect("confident burst");
        assert_eq!(&*addrs, &[0x1200, 0x1280, 0x1300, 0x1380]);
        for (i, a) in addrs.iter().enumerate() {
            p.push_fill(slot, *a, 10 * i as u64);
        }
        let hit = p.probe_and_consume(0x1280).expect("queued line hits");
        assert_eq!(hit.ready_at, 10);
        // Hits consume only their own entry.
        assert!(p.contains(0x1200));
        assert!(!p.contains(0x1280));
        assert!(p.refill_addresses(hit.slot).is_empty(), "no streaming refill");
    }

    #[test]
    fn unconfident_pcs_burst_nothing() {
        let mut p = delta();
        p.train(0x20, 0x2000, true);
        p.train(0x20, 0x2400, true);
        assert!(p.consider_allocation(0x20, 0x2400).is_none());
    }

    #[test]
    fn queued_lines_are_not_rebursted() {
        let mut p = delta();
        for i in 0..4u64 {
            p.train(0x30, 0x3000 + i * 64, true);
        }
        let (slot, addrs) = p.consider_allocation(0x30, 0x30c0).unwrap();
        for a in addrs.iter() {
            p.push_fill(slot, *a, 0);
        }
        // The same miss again: every target line is queued, so no burst.
        assert!(p.consider_allocation(0x30, 0x30c0).is_none());
        assert_eq!(p.stats().allocations, 1);
    }

    #[test]
    fn queue_is_a_bounded_fifo() {
        let mut p = delta();
        for i in 0..12u64 {
            p.push_fill(0, 0x9000 + i * 64, 0);
        }
        assert_eq!(p.stats().issued, 12);
        assert!(!p.contains(0x9000), "oldest entries evicted");
        assert!(p.contains(0x9000 + 11 * 64));
    }

    #[test]
    fn sub_line_strides_widen_to_a_line() {
        let mut p = delta();
        for i in 0..5u64 {
            p.train(0x40, 0x4000 + i * 8, true);
        }
        let (_, addrs) = p.consider_allocation(0x40, 0x4020).unwrap();
        assert_eq!(addrs[0], 0x4040);
        assert_eq!(addrs[1] - addrs[0], 64);
    }
}
