//! The per-PC stride predictor (Farkas et al.) shared by the stream-buffer
//! and delta arms.

/// A per-PC stride predictor with 2-bit confidence.
pub struct StridePredictor {
    entries: Vec<SpEntry>,
    mask: usize,
}

#[derive(Clone, Copy, Default)]
struct SpEntry {
    tag: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    conf: u8,
}

impl StridePredictor {
    /// Builds a predictor with `entries` slots (rounded up to a power of two).
    #[must_use]
    pub fn new(entries: usize) -> StridePredictor {
        let n = entries.next_power_of_two().max(1);
        StridePredictor { entries: vec![SpEntry::default(); n], mask: n - 1 }
    }

    fn slot(&mut self, pc: u64) -> &mut SpEntry {
        let idx = ((pc >> 3) as usize) & self.mask;
        &mut self.entries[idx]
    }

    /// Trains the predictor with an observed `(pc, addr)` access.
    pub fn train(&mut self, pc: u64, addr: u64) {
        let e = self.slot(pc);
        if !e.valid || e.tag != pc {
            *e = SpEntry { tag: pc, valid: true, last_addr: addr, stride: 0, conf: 0 };
            return;
        }
        let new_stride = addr.wrapping_sub(e.last_addr) as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.conf = (e.conf + 1).min(3);
        } else {
            if e.conf == 0 {
                e.stride = new_stride;
            }
            e.conf = e.conf.saturating_sub(1);
        }
        e.last_addr = addr;
    }

    /// The confident stride for `pc`, if any.
    #[must_use]
    pub fn predict(&self, pc: u64, min_conf: u8) -> Option<i64> {
        let idx = ((pc >> 3) as usize) & self.mask;
        let e = &self.entries[idx];
        (e.valid && e.tag == pc && e.conf >= min_conf && e.stride != 0).then_some(e.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_needs_repeated_identical_strides() {
        let mut p = StridePredictor::new(64);
        p.train(0x100, 1000);
        assert_eq!(p.predict(0x100, 2), None);
        p.train(0x100, 1064); // stride learned, conf 0
        assert_eq!(p.predict(0x100, 2), None);
        p.train(0x100, 1128); // conf 1
        p.train(0x100, 1192); // conf 2
        assert_eq!(p.predict(0x100, 2), Some(64));
    }

    #[test]
    fn predictor_loses_confidence_on_stride_change() {
        let mut p = StridePredictor::new(64);
        for i in 0..5 {
            p.train(0x8, 100 + i * 8);
        }
        assert_eq!(p.predict(0x8, 2), Some(8));
        p.train(0x8, 5000);
        p.train(0x8, 5001);
        assert_eq!(p.predict(0x8, 2), None);
    }
}
