//! The chaos harness's own contract: a quick sweep passes every invariant,
//! the whole report is a pure function of the seed, and the engine phase
//! makes `--jobs` invisible to every byte after the header line.

use tdo_bench::chaos::{run, ChaosOpts};

/// Report lines with the header (which prints `jobs=`) stripped.
fn tail(report: &str) -> String {
    report.lines().skip(1).collect::<Vec<_>>().join("\n")
}

#[test]
fn quick_sweep_passes_and_is_seed_deterministic() {
    let opts = ChaosOpts { seed: 11, quick: true, jobs: 2, ..ChaosOpts::default() };
    let first = run(&opts);
    assert!(first.passed(), "violations: {:?}", first.violations);
    assert!(first.report.contains("result: PASS"));
    assert!(first.report.contains("coverage:"));

    // Byte-identical on a re-run with the same options — the flight dump
    // and its captured structured log included.
    let second = run(&opts);
    assert_eq!(first.report, second.report, "same seed must reproduce the same report");
    assert_eq!(first.coverage_text, second.coverage_text);
    assert_eq!(first.flight_dump, second.flight_dump, "flight dump must be byte-deterministic");
    assert_eq!(first.flight_log, second.flight_log, "captured log must be byte-deterministic");
    tdo_obs::validate_flight(&first.flight_dump).expect("flight dump validates");
    tdo_obs::validate_log(&first.flight_log).expect("captured log validates");

    // A different seed draws a different fault schedule.
    let other = run(&ChaosOpts { seed: 12, ..opts.clone() });
    assert!(other.passed(), "violations: {:?}", other.violations);
    assert_ne!(first.report, other.report, "a new seed must change the schedule");

    // The worker count shows up in the header and nowhere else.
    let serial = run(&ChaosOpts { jobs: 1, ..opts });
    assert!(serial.passed(), "violations: {:?}", serial.violations);
    assert_eq!(tail(&first.report), tail(&serial.report), "--jobs must not change the sweep");
}
