//! Micro-benchmarks of the substrates: how fast the simulator's building
//! blocks run on the host (useful when sizing longer experiments).
//!
//! Formerly criterion-based; now a self-contained `std::time` harness so the
//! workspace builds with no external dependencies. Run with
//! `cargo bench -p tdo-bench`. Each benchmark is timed over enough
//! iterations to exceed a minimum measurement window and reports the median
//! of several samples.

use std::hint::black_box;
use std::time::{Duration, Instant};

use tdo_core::{Dlt, DltConfig};
use tdo_isa::{decode, encode, AluOp, Cond, Inst, Reg};
use tdo_mem::{Cache, CacheConfig, Hierarchy, MemConfig};
use tdo_sim::{PrefetchSetup, SimConfig};
use tdo_trident::{form_trace, opt, CodeSource, TraceId};
use tdo_workloads::{build, Scale};

const SAMPLES: usize = 7;
const MIN_WINDOW: Duration = Duration::from_millis(20);

/// Times `f` (a whole pass over `elems` elements) and prints ns/element
/// throughput: median over [`SAMPLES`] windows of at least [`MIN_WINDOW`].
fn bench(name: &str, elems: u64, mut f: impl FnMut()) {
    // Calibrate: how many passes fill the window?
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed() >= MIN_WINDOW || iters > 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let mut per_elem: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / (iters * elems) as f64 * 1e9
        })
        .collect();
    per_elem.sort_by(f64::total_cmp);
    let median = per_elem[SAMPLES / 2];
    let rate = 1e9 / median;
    println!("{name:<28} {median:>10.1} ns/elem   {rate:>12.0} elem/s");
}

fn bench_encode_decode() {
    let insts = [
        Inst::Op { op: AluOp::Add, ra: Reg::int(1), rb: Reg::int(2), rc: Reg::int(3) },
        Inst::Load { ra: Reg::int(4), rb: Reg::int(5), off: 128, kind: tdo_isa::LoadKind::Int },
        Inst::Prefetch { base: Reg::int(6), off: 8, stride: 64, dist: 17 },
        Inst::Bcond { cond: Cond::Ne, ra: Reg::int(7), disp: -12 },
    ];
    let words: Vec<u64> = insts.iter().map(|i| encode(i).unwrap()).collect();
    bench("isa/encode", insts.len() as u64, || {
        for i in &insts {
            black_box(encode(black_box(i)).unwrap());
        }
    });
    bench("isa/decode", insts.len() as u64, || {
        for w in &words {
            black_box(decode(black_box(*w)).unwrap());
        }
    });
}

fn bench_cache() {
    let cfg = CacheConfig { size_bytes: 64 << 10, assoc: 2, line_bytes: 64, latency: 3 };
    let mut cache = Cache::new(cfg);
    for i in 0..1024u64 {
        cache.insert(i * 64, false);
    }
    bench("mem/l1_lookup_hit", 1024, || {
        for i in 0..1024u64 {
            black_box(cache.lookup(black_box(i * 64)));
        }
    });
    bench("mem/hierarchy_load_stream", 1024, || {
        let mut h = Hierarchy::new(MemConfig::paper_baseline());
        let mut now = 0;
        for i in 0..1024u64 {
            let r = h.load(now, 0x400, 0x10_0000 + i * 8);
            now += r.latency / 4;
        }
        black_box(h.stats.loads());
    });
}

fn bench_dlt() {
    let mut dlt = Dlt::new(DltConfig::paper_baseline());
    bench("dlt/observe", 4096, || {
        for i in 0..4096u64 {
            black_box(dlt.observe(0x1000 + (i % 64) * 8, i * 64, i % 8 == 0, 350));
        }
    });
}

fn bench_trace() {
    // A 32-instruction loop body to form and optimize.
    let mut a = tdo_isa::Asm::new(0x1000);
    a.label("head");
    for i in 0..28u8 {
        a.op_imm(AluOp::Add, Reg::int(1 + i % 8), 1, Reg::int(1 + i % 8));
    }
    a.ldq(Reg::int(9), Reg::int(10), 0);
    a.lda(Reg::int(10), Reg::int(10), 8);
    a.op_imm(AluOp::Sub, Reg::int(11), 1, Reg::int(11));
    a.bcond_to(Cond::Ne, Reg::int(11), "head");
    let words = a.assemble().unwrap();
    let map: std::collections::HashMap<u64, Inst> = words
        .iter()
        .enumerate()
        .map(|(i, w)| (0x1000 + i as u64 * 8, decode(*w).unwrap()))
        .collect();
    let src = move |pc: u64| map.get(&pc).copied();
    let _: &dyn CodeSource = &src;

    bench("trident/form_trace_32", 1, || {
        black_box(form_trace(&src, TraceId(0), 0x1000, 0b1, 1).unwrap());
    });
    let (trace, _) = form_trace(&src, TraceId(0), 0x1000, 0b1, 1).unwrap();
    bench("trident/optimize_trace_32", 1, || {
        let mut insts = trace.insts.clone();
        opt::optimize(&mut insts);
        black_box(&insts);
    });
}

fn bench_full_sim() {
    let w = build("mcf", Scale::Test).unwrap();
    let mut cfg = SimConfig::test(PrefetchSetup::SwSelfRepair);
    cfg.warmup_insts = 10_000;
    cfg.measure_insts = 90_000;
    bench("sim/mcf_100k_insts_selfrepair", 100_000, || {
        black_box(tdo_sim::run(&w, &cfg));
    });
}

fn main() {
    println!("{:<28} {:>18} {:>15}", "benchmark", "time", "throughput");
    println!("{}", "-".repeat(64));
    bench_encode_decode();
    bench_cache();
    bench_dlt();
    bench_trace();
    bench_full_sim();
}
