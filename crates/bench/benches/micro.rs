//! Criterion micro-benchmarks of the substrates: how fast the simulator's
//! building blocks run on the host (useful when sizing longer experiments).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tdo_core::{Dlt, DltConfig};
use tdo_isa::{decode, encode, AluOp, Cond, Inst, Reg};
use tdo_mem::{Cache, CacheConfig, Hierarchy, MemConfig};
use tdo_sim::{PrefetchSetup, SimConfig};
use tdo_trident::{form_trace, opt, CodeSource, TraceId};
use tdo_workloads::{build, Scale};

fn bench_encode_decode(c: &mut Criterion) {
    let insts = [
        Inst::Op { op: AluOp::Add, ra: Reg::int(1), rb: Reg::int(2), rc: Reg::int(3) },
        Inst::Load { ra: Reg::int(4), rb: Reg::int(5), off: 128, kind: tdo_isa::LoadKind::Int },
        Inst::Prefetch { base: Reg::int(6), off: 8, stride: 64, dist: 17 },
        Inst::Bcond { cond: Cond::Ne, ra: Reg::int(7), disp: -12 },
    ];
    let words: Vec<u64> = insts.iter().map(|i| encode(i).unwrap()).collect();
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(insts.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            for i in &insts {
                black_box(encode(black_box(i)).unwrap());
            }
        });
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            for w in &words {
                black_box(decode(black_box(*w)).unwrap());
            }
        });
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig { size_bytes: 64 << 10, assoc: 2, line_bytes: 64, latency: 3 };
    let mut g = c.benchmark_group("mem");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("l1_lookup_hit", |b| {
        let mut cache = Cache::new(cfg);
        for i in 0..1024u64 {
            cache.insert(i * 64, false);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.lookup(black_box(i * 64)));
            }
        });
    });
    g.bench_function("hierarchy_load_stream", |b| {
        b.iter_batched(
            || Hierarchy::new(MemConfig::paper_baseline()),
            |mut h| {
                let mut now = 0;
                for i in 0..1024u64 {
                    let r = h.load(now, 0x400, 0x10_0000 + i * 8);
                    now += r.latency / 4;
                }
                h
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_dlt(c: &mut Criterion) {
    let mut g = c.benchmark_group("dlt");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("observe", |b| {
        let mut dlt = Dlt::new(DltConfig::paper_baseline());
        b.iter(|| {
            for i in 0..4096u64 {
                black_box(dlt.observe(0x1000 + (i % 64) * 8, i * 64, i % 8 == 0, 350));
            }
        });
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    // A 32-instruction loop body to form and optimize.
    let mut a = tdo_isa::Asm::new(0x1000);
    a.label("head");
    for i in 0..28u8 {
        a.op_imm(AluOp::Add, Reg::int(1 + i % 8), 1, Reg::int(1 + i % 8));
    }
    a.ldq(Reg::int(9), Reg::int(10), 0);
    a.lda(Reg::int(10), Reg::int(10), 8);
    a.op_imm(AluOp::Sub, Reg::int(11), 1, Reg::int(11));
    a.bcond_to(Cond::Ne, Reg::int(11), "head");
    let words = a.assemble().unwrap();
    let map: std::collections::HashMap<u64, Inst> = words
        .iter()
        .enumerate()
        .map(|(i, w)| (0x1000 + i as u64 * 8, decode(*w).unwrap()))
        .collect();
    let src = move |pc: u64| map.get(&pc).copied();
    let _: &dyn CodeSource = &src;

    let mut g = c.benchmark_group("trident");
    g.bench_function("form_trace_32", |b| {
        b.iter(|| black_box(form_trace(&src, TraceId(0), 0x1000, 0b1, 1).unwrap()));
    });
    g.bench_function("optimize_trace_32", |b| {
        let (trace, _) = form_trace(&src, TraceId(0), 0x1000, 0b1, 1).unwrap();
        b.iter_batched(
            || trace.insts.clone(),
            |mut insts| {
                opt::optimize(&mut insts);
                insts
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("mcf_100k_insts_selfrepair", |b| {
        let w = build("mcf", Scale::Test).unwrap();
        let mut cfg = SimConfig::test(PrefetchSetup::SwSelfRepair);
        cfg.warmup_insts = 10_000;
        cfg.measure_insts = 90_000;
        b.iter(|| black_box(tdo_sim::run(&w, &cfg)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_cache,
    bench_dlt,
    bench_trace,
    bench_full_sim
);
criterion_main!(benches);
