//! `tdo perf` — the throughput-baseline pipeline.
//!
//! Runs the whole suite twice: once through the parallel memoizing engine
//! (phase A — exercises the store and the engine's metrics), then once per
//! workload serially under the self-profiler (phase B — host-throughput and
//! phase attribution, unpolluted by worker contention). The outcome is a
//! schema-versioned `BENCH_PR6.json` whose keys split into two classes:
//!
//! * deterministic keys — byte-identical for a given (scale, insts) across
//!   `--jobs` and across hosts;
//! * `wall_*` keys — host wall-clock measurements (throughput, latency
//!   histograms, phase breakdowns).
//!
//! CI re-runs the pipeline and gates on `wall_total_insts_per_sec` against
//! the committed baseline with a percentage tolerance (`--check`), while
//! determinism tests strip `"wall_` lines and byte-compare the rest.

use std::fmt::Write as _;

use tdo_metrics::{Histogram, HistogramSnapshot};
use tdo_sim::{
    run_profiled, Cell, ExperimentSpec, Format, MachineProfile, PrefetchSetup, Report, Runner,
    SimConfig,
};
use tdo_workloads::{build, names, Scale};

/// Version stamp of the emitted JSON layout. Bump on any key change.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The key CI gates on, and the tolerance comparison's input.
pub const GATE_KEY: &str = "wall_total_insts_per_sec";

/// Options for one `tdo perf` invocation.
#[derive(Clone, Debug)]
pub struct PerfOpts {
    /// Test scale (`--quick`) instead of the paper configuration.
    pub quick: bool,
    /// Engine worker threads for phase A (`0` = one per core).
    pub jobs: usize,
    /// Measured-instruction override (shrinks runs for tests).
    pub insts: Option<u64>,
    /// Write the JSON baseline here.
    pub out: Option<String>,
    /// Compare against this committed baseline file.
    pub check: Option<String>,
    /// Allowed throughput regression, percent (default 15).
    pub tolerance: u32,
    /// Output format for the summary table.
    pub format: Format,
    /// Persistent-store directory override.
    pub store_dir: Option<String>,
    /// Skip the persistent store.
    pub no_store: bool,
}

impl Default for PerfOpts {
    fn default() -> PerfOpts {
        PerfOpts {
            quick: false,
            jobs: 0,
            insts: None,
            out: None,
            check: None,
            tolerance: 15,
            format: Format::Table,
            store_dir: None,
            no_store: true,
        }
    }
}

/// One workload's measurements: the deterministic result plus the serial
/// profiled rerun.
struct WorkloadPerf {
    name: &'static str,
    profile: MachineProfile,
    orig_insts: u64,
    cycles: u64,
    ipc_milli: u64,
    events_queued: u64,
    dropped_saturated: u64,
    dropped_duplicate: u64,
}

/// Everything `tdo perf` measured, ready to render or serialize.
pub struct PerfOutcome {
    /// The emitted JSON document (what `--out` writes).
    pub json: String,
    /// The human summary table.
    pub table: String,
    /// The gate value measured this run.
    pub insts_per_sec: u64,
    /// The store accounting footer, when a store was attached.
    pub store_summary: Option<String>,
}

/// Integer instructions-per-host-second from a profiled run.
fn insts_per_sec(insts: u64, wall_ns: u64) -> u64 {
    if wall_ns == 0 {
        return 0;
    }
    ((insts as u128 * 1_000_000_000) / wall_ns as u128) as u64
}

/// Runs the full pipeline. Pure measurement — no I/O besides the
/// simulations; the caller writes `--out` and applies `--check`.
#[must_use]
pub fn measure(opts: &PerfOpts) -> PerfOutcome {
    let scale = if opts.quick { Scale::Test } else { Scale::Full };
    let arm = PrefetchSetup::SwSelfRepair;
    let cfg_for = |_name: &str| {
        let mut cfg = if opts.quick { SimConfig::test(arm) } else { SimConfig::paper(arm) };
        if let Some(n) = opts.insts {
            cfg.measure_insts = n;
        }
        cfg
    };

    // Phase A: the parallel memoizing engine over the whole suite. Fills
    // the store (when attached) and the engine's wall-time histogram.
    let runner = if opts.no_store {
        Runner::new(opts.jobs)
    } else {
        Runner::with_default_store(opts.jobs, opts.store_dir.as_deref())
    };
    let mut spec = ExperimentSpec::new();
    for &name in names() {
        spec.push(Cell::new(name, scale, cfg_for(name)));
    }
    let _ = runner.run_spec(&spec);

    // Phase B: one serial, profiled machine per workload. Serial on
    // purpose: throughput numbers must not include worker contention.
    let mut rows: Vec<WorkloadPerf> = Vec::new();
    for &name in names() {
        let w = build(name, scale).expect("suite workload");
        let (r, profile) = run_profiled(&w, &cfg_for(name));
        rows.push(WorkloadPerf {
            name,
            orig_insts: r.orig_insts,
            cycles: r.cycles,
            ipc_milli: (r.ipc() * 1000.0).round() as u64,
            events_queued: r.trident.events_queued,
            dropped_saturated: r.trident.events_dropped_saturated,
            dropped_duplicate: r.trident.events_dropped_duplicate,
            profile,
        });
    }

    let total_insts: u64 = rows.iter().map(|r| r.orig_insts).sum();
    let total_wall_ns: u64 = rows.iter().map(|r| r.profile.run_wall_ns).sum();
    let gate = insts_per_sec(total_insts, total_wall_ns);

    PerfOutcome {
        json: render_json(opts, scale, &rows, &runner, gate),
        table: render_table(opts, &rows, gate),
        insts_per_sec: gate,
        store_summary: runner.store_summary(),
    }
}

/// The flat, one-key-per-line JSON baseline.
fn render_json(
    opts: &PerfOpts,
    scale: Scale,
    rows: &[WorkloadPerf],
    runner: &Runner,
    gate: u64,
) -> String {
    let mut out = String::from("{\n");
    let mut push = |k: &str, v: String| {
        let _ = writeln!(out, "  \"{k}\": {v},");
    };
    push("bench_schema_version", BENCH_SCHEMA_VERSION.to_string());
    push("scale", format!("\"{}\"", if scale == Scale::Test { "test" } else { "full" }));
    push("arm", "\"sr\"".to_string());
    push("insts_override", opts.insts.unwrap_or(0).to_string());
    push("workloads", rows.len().to_string());

    // Per-workload: deterministic keys first, wall keys after.
    for r in rows {
        push(&format!("{}_cycles", r.name), r.cycles.to_string());
        push(&format!("{}_insts", r.name), r.orig_insts.to_string());
        push(&format!("{}_ipc_milli", r.name), r.ipc_milli.to_string());
        push(&format!("{}_events_queued", r.name), r.events_queued.to_string());
        push(&format!("{}_dropped_saturated", r.name), r.dropped_saturated.to_string());
        push(&format!("{}_dropped_duplicate", r.name), r.dropped_duplicate.to_string());
        push(&format!("wall_{}_run_ns", r.name), r.profile.run_wall_ns.to_string());
        push(
            &format!("wall_{}_insts_per_sec", r.name),
            insts_per_sec(r.orig_insts, r.profile.run_wall_ns).to_string(),
        );
    }

    // Suite aggregates: helper-job attribution is simulated (deterministic),
    // phase attribution is host time (wall).
    let mut helper: Vec<(&str, u64, u64)> = Vec::new();
    let mut phases: Vec<(&str, u64)> = Vec::new();
    for r in rows {
        for (i, (name, cycles, jobs)) in r.profile.helper_kinds().enumerate() {
            if helper.len() <= i {
                helper.push((name, 0, 0));
            }
            helper[i].1 += cycles;
            helper[i].2 += jobs;
        }
        for (i, (name, ns)) in r.profile.phases().enumerate() {
            if phases.len() <= i {
                phases.push((name, 0));
            }
            phases[i].1 += ns;
        }
    }
    for (name, cycles, jobs) in &helper {
        push(&format!("helper_{name}_jobs"), jobs.to_string());
        push(&format!("helper_{name}_cycles"), cycles.to_string());
    }
    for (name, ns) in &phases {
        push(&format!("wall_phase_{name}_ns"), ns.to_string());
    }

    // Engine + store accounting from phase A.
    push("sims", runner.sims_run().to_string());
    push("store_hits", runner.store_hits().to_string());
    push("store_misses", runner.store_misses().to_string());
    let (sat, dup) = runner.events_dropped();
    push("engine_events_queued", runner.events_queued().to_string());
    push("engine_events_dropped_saturated", sat.to_string());
    push("engine_events_dropped_duplicate", dup.to_string());

    // The engine's fresh-simulation wall-time histogram, bucket by bucket.
    let cell = runner.cell_wall_us();
    push_histogram(&mut push, "wall_cell_us", &cell);

    let total_insts: u64 = rows.iter().map(|r| r.orig_insts).sum();
    let total_wall: u64 = rows.iter().map(|r| r.profile.run_wall_ns).sum();
    push("total_insts", total_insts.to_string());
    push("wall_total_run_ns", total_wall.to_string());
    let _ = writeln!(out, "  \"{GATE_KEY}\": {gate}");
    out.push_str("}\n");
    out
}

/// Emits a histogram snapshot as cumulative `<prefix>_le_*` keys plus sum
/// and count. Bucket keys are wall-class whenever the prefix is.
fn push_histogram(push: &mut impl FnMut(&str, String), prefix: &str, h: &HistogramSnapshot) {
    let mut cum = 0u64;
    for (i, n) in h.buckets.iter().enumerate() {
        cum += n;
        // Skip empty leading/inner buckets: only boundaries that saw
        // observations (and +Inf) keep the file short and readable.
        if *n == 0 && i + 1 < h.buckets.len() {
            continue;
        }
        match Histogram::bucket_le(i) {
            Some(le) => push(&format!("{prefix}_le_{le}"), cum.to_string()),
            None => push(&format!("{prefix}_le_inf"), cum.to_string()),
        }
    }
    push(&format!("{prefix}_sum"), h.sum.to_string());
    push(&format!("{prefix}_count"), h.count.to_string());
}

/// The stdout summary: one row per workload, throughput aggregate last.
fn render_table(opts: &PerfOpts, rows: &[WorkloadPerf], gate: u64) -> String {
    let mut rep = Report::new("perf")
        .key("workload", 10)
        .col("cycles", 12)
        .col("IPC", 8)
        .col("wall ms", 9)
        .col("kinsts/s", 10)
        .rule(0);
    for r in rows {
        rep.row(
            r.name,
            [
                r.cycles.to_string(),
                format!("{:.3}", r.ipc_milli as f64 / 1000.0),
                (r.profile.run_wall_ns / 1_000_000).to_string(),
                (insts_per_sec(r.orig_insts, r.profile.run_wall_ns) / 1000).to_string(),
            ],
        );
    }
    let mut out = rep.render(opts.format);
    let _ = writeln!(out, "total throughput: {gate} simulated insts/sec");
    out
}

/// Extracts an integer value for `key` from a flat baseline document.
#[must_use]
pub fn extract_key(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)?;
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// Renders the per-phase wall-time delta table between a committed baseline
/// and the current run, from each document's `wall_phase_*_ns` keys (the
/// 6-phase self-profiler attribution). Shown alongside `--check` so a gate
/// failure says *where* the cycles went, not just that they went somewhere.
/// Phases present in only one document render `-` on the missing side.
#[must_use]
pub fn phase_delta_table(baseline_json: &str, current_json: &str) -> String {
    let keys = |doc: &str| -> Vec<String> {
        doc.lines()
            .filter_map(|l| {
                let name = l.trim_start().strip_prefix("\"wall_phase_")?.split("_ns\"").next()?;
                Some(name.to_string())
            })
            .collect()
    };
    // Current-run phase order first, then any baseline-only stragglers.
    let mut order = keys(current_json);
    for k in keys(baseline_json) {
        if !order.contains(&k) {
            order.push(k);
        }
    }
    let ms = |v: Option<u64>| v.map_or("-".to_string(), |ns| format!("{:.1}", ns as f64 / 1e6));
    let mut out = String::from("phase                      base ms    now ms     delta\n");
    for name in &order {
        let key = format!("wall_phase_{name}_ns");
        let old = extract_key(baseline_json, &key);
        let new = extract_key(current_json, &key);
        let delta = match (old, new) {
            (Some(o), Some(n)) if o > 0 => {
                format!("{:+.1}%", (n as f64 - o as f64) * 100.0 / o as f64)
            }
            _ => "-".to_string(),
        };
        let _ = writeln!(out, "{name:<24} {:>9} {:>9} {delta:>9}", ms(old), ms(new));
    }
    out
}

/// Applies the regression gate: `current` may fall at most `tolerance_pct`
/// percent below `baseline`'s gate value.
///
/// # Errors
///
/// An unreadable baseline (missing gate key) or a regression beyond the
/// tolerance; the message carries both values.
pub fn check_against(
    baseline_json: &str,
    current: u64,
    tolerance_pct: u32,
) -> Result<String, String> {
    let base = extract_key(baseline_json, GATE_KEY)
        .ok_or_else(|| format!("baseline has no `{GATE_KEY}` key"))?;
    let floor = base.saturating_mul(100u64.saturating_sub(u64::from(tolerance_pct))) / 100;
    if current < floor {
        return Err(format!(
            "throughput regression: {current} insts/sec vs baseline {base} \
             (floor {floor} at -{tolerance_pct}%)"
        ));
    }
    Ok(format!(
        "throughput ok: {current} insts/sec vs baseline {base} (floor {floor} at -{tolerance_pct}%)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_extraction() {
        let doc = "{\n  \"a\": 1,\n  \"wall_total_insts_per_sec\": 123456\n}\n";
        assert_eq!(extract_key(doc, GATE_KEY), Some(123_456));
        assert_eq!(extract_key(doc, "a"), Some(1));
        assert_eq!(extract_key(doc, "missing"), None);
    }

    #[test]
    fn gate_tolerance_boundaries() {
        let doc = format!("{{\n  \"{GATE_KEY}\": 1000\n}}\n");
        assert!(check_against(&doc, 1000, 15).is_ok());
        assert!(check_against(&doc, 850, 15).is_ok(), "exactly at the floor passes");
        assert!(check_against(&doc, 849, 15).is_err());
        assert!(check_against(&doc, 5000, 15).is_ok(), "improvements always pass");
        assert!(check_against("{}", 1, 15).is_err(), "missing gate key is an error");
    }

    #[test]
    fn phase_delta_table_pairs_baseline_and_current() {
        let old = "{\n  \"wall_phase_core_ns\": 2000000,\n  \"wall_phase_gone_ns\": 5000000\n}\n";
        let new = "{\n  \"wall_phase_core_ns\": 1000000,\n  \"wall_phase_events_ns\": 3000000\n}\n";
        let t = phase_delta_table(old, new);
        let row = |name: &str| {
            t.lines().find(|l| l.starts_with(name)).unwrap_or_else(|| panic!("no {name} row"))
        };
        assert!(row("core").contains("2.0") && row("core").contains("-50.0%"), "{t}");
        assert!(row("events").contains("3.0") && row("events").ends_with('-'), "new-only phase");
        assert!(row("gone").contains("5.0") && row("gone").ends_with('-'), "baseline-only phase");
        // Current-run phases lead; baseline-only phases trail.
        let pos = |name: &str| t.find(&format!("\n{name}")).expect("row present");
        assert!(pos("events") < pos("gone"));
    }

    #[test]
    fn throughput_math() {
        assert_eq!(insts_per_sec(1_000, 1_000_000_000), 1_000);
        assert_eq!(insts_per_sec(1_000, 500_000_000), 2_000);
        assert_eq!(insts_per_sec(1_000, 0), 0, "zero wall time cannot divide");
    }

    #[test]
    fn histogram_keys_are_cumulative_and_sparse() {
        let h = Histogram::new();
        h.observe(3); // bucket le_4
        h.observe(4); // bucket le_4
        h.observe(100); // bucket le_128
        let mut got: Vec<(String, String)> = Vec::new();
        push_histogram(&mut |k, v| got.push((k.to_string(), v)), "wall_x_us", &h.snapshot());
        let find = |k: &str| got.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(find("wall_x_us_le_4").as_deref(), Some("2"));
        assert_eq!(find("wall_x_us_le_128").as_deref(), Some("3"), "cumulative");
        assert_eq!(find("wall_x_us_le_inf").as_deref(), Some("3"));
        assert_eq!(find("wall_x_us_le_2"), None, "empty buckets are skipped");
        assert_eq!(find("wall_x_us_sum").as_deref(), Some("107"));
        assert_eq!(find("wall_x_us_count").as_deref(), Some("3"));
    }

    #[test]
    fn quick_measure_is_deterministic_modulo_wall_keys() {
        // The acceptance bar: `--jobs 1` and `--jobs 4` agree byte-for-byte
        // once `"wall_` lines are stripped. A tiny insts override keeps the
        // suite cheap; determinism is scale-independent.
        let strip = |json: &str| {
            json.lines().filter(|l| !l.contains("\"wall_")).collect::<Vec<_>>().join("\n")
        };
        let base = PerfOpts { quick: true, insts: Some(4_000), ..PerfOpts::default() };
        let a = measure(&PerfOpts { jobs: 1, ..base.clone() });
        let b = measure(&PerfOpts { jobs: 4, ..base });
        assert_eq!(strip(&a.json), strip(&b.json), "worker count leaked into the baseline");
        assert!(a.insts_per_sec > 0);
        assert!(a.json.contains(GATE_KEY));
        assert!(
            extract_key(&a.json, "bench_schema_version") == Some(u64::from(BENCH_SCHEMA_VERSION))
        );
    }
}
