//! `tdo chaos` — the seeded crash-recovery chaos harness.
//!
//! Arms the `tdo-fault` plane with schedules derived from one seed and
//! drives the store, the experiment engine and the serving daemon through
//! them, asserting the standing robustness invariants:
//!
//! * **No acknowledged record is ever lost.** Every `put` that returned
//!   `Ok` survives a kill (drop) and restart (reopen) of the store, at
//!   every injection point of the write path.
//! * **Corruption quarantines, never poisons.** A flipped bit on the read
//!   path yields `None` (and a quarantined record), never garbage data,
//!   and the store recovers its good prefix.
//! * **Reports are byte-identical** between a faulted-then-retried run and
//!   a clean run, and across `--jobs` values.
//! * **The server never deadlocks**: `/health` keeps answering under the
//!   fault barrage, the worker pool survives injected panics, and graceful
//!   shutdown completes.
//!
//! The whole run is serial-deterministic: every number in the report is a
//! pure function of `(seed, quick, jobs)`, so a failing sweep reproduces
//! exactly from the seed it prints.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tdo_fault::{arm, arm_with_registry, ArmGuard, FaultPlan, Site};
use tdo_metrics::Registry;
use tdo_rand::Rng;
use tdo_server::{client, Server, ServerConfig};
use tdo_sim::{Cell, ExperimentSpec, Runner, SimConfig, SimResult};
use tdo_store::{fnv1a64, Store};
use tdo_workloads::{names, Scale};

/// Options for one `tdo chaos` invocation.
#[derive(Clone, Debug)]
pub struct ChaosOpts {
    /// Seed every fault schedule derives from.
    pub seed: u64,
    /// Smaller sweeps for CI.
    pub quick: bool,
    /// Engine worker threads for the parallel determinism check.
    pub jobs: usize,
    /// Write the coverage summary here as well (CI artifact).
    pub summary_out: Option<String>,
    /// Write the attribution scenario's flight dump here (and its captured
    /// structured log as `<path>.log`) — the CI chaos artifact.
    pub flight_out: Option<String>,
}

impl Default for ChaosOpts {
    fn default() -> ChaosOpts {
        ChaosOpts { seed: 1, quick: false, jobs: 2, summary_out: None, flight_out: None }
    }
}

/// Everything one chaos run produced.
pub struct ChaosOutcome {
    /// The deterministic stdout report (coverage included).
    pub report: String,
    /// The coverage summary alone (what `--summary-out` writes).
    pub coverage_text: String,
    /// Invariant violations; empty means the run passed.
    pub violations: Vec<String>,
    /// The attribution scenario's flight-recorder dump (flight JSONL).
    pub flight_dump: String,
    /// The structured log lines the attribution scenario emitted.
    pub flight_log: String,
}

impl ChaosOutcome {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregated per-site coverage across every scenario of a run.
#[derive(Default)]
struct Coverage {
    per_site: BTreeMap<&'static str, (u64, u64)>,
}

impl Coverage {
    fn absorb(&mut self, guard: &ArmGuard) {
        for row in guard.summary() {
            let slot = self.per_site.entry(row.site.name()).or_insert((0, 0));
            slot.0 += row.hits;
            slot.1 += row.fires;
        }
    }

    fn render(&self) -> String {
        let mut out = String::from("coverage:\n");
        for site in Site::ALL {
            let (hits, fires) = self.per_site.get(site.name()).copied().unwrap_or((0, 0));
            let _ = writeln!(out, "  site={} hits={hits} fires={fires}", site.name());
        }
        out
    }
}

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdo-chaos-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Serializes whole chaos runs in one process: a concurrent run's armed
/// sections would otherwise inject faults into this run's clean phases.
fn run_gate() -> MutexGuard<'static, ()> {
    static GATE: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic payload for a sweep key.
fn payload_for(seed: u64, key: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let len = 4 + (rng.next_u64() % 21) as usize;
    (0..len).map(|_| rng.next_u64()).collect()
}

const SCHEMA: u32 = 7;

/// Runs the whole harness. Every byte of the returned report is a pure
/// function of `opts` (seed, quick, jobs).
#[must_use]
pub fn run(opts: &ChaosOpts) -> ChaosOutcome {
    let _serial = run_gate();
    let mut violations: Vec<String> = Vec::new();
    let mut coverage = Coverage::default();
    let mut report =
        format!("chaos: seed={} quick={} jobs={}\n", opts.seed, u8::from(opts.quick), opts.jobs);

    report.push_str(&store_write_sweep(opts, &mut violations, &mut coverage));
    report.push_str(&store_corrupt_sweep(opts, &mut violations, &mut coverage));
    report.push_str(&kill_restart_sweep(opts, &mut violations, &mut coverage));
    report.push_str(&engine_chaos(opts, &mut violations, &mut coverage));
    report.push_str(&server_chaos(opts, &mut violations, &mut coverage));
    // Last, so its recorder reset erases only the scenarios above.
    let (flight_report, flight_dump, flight_log) =
        flight_attribution(opts, &mut violations, &mut coverage);
    report.push_str(&flight_report);

    let coverage_text = coverage.render();
    report.push_str(&coverage_text);
    if violations.is_empty() {
        report.push_str("result: PASS (0 invariant violations)\n");
    } else {
        let _ = writeln!(report, "result: FAIL ({} invariant violations)", violations.len());
        for v in &violations {
            let _ = writeln!(report, "  violation: {v}");
        }
    }
    ChaosOutcome { report, coverage_text, violations, flight_dump, flight_log }
}

/// Scenario 1: probabilistic faults on every store write path. Acknowledged
/// records must survive in-process reads and a kill-and-restart; fired
/// injections must show up in the metrics registry.
fn store_write_sweep(opts: &ChaosOpts, violations: &mut Vec<String>, cov: &mut Coverage) -> String {
    let dir = TempDir::new("write-sweep");
    let puts: u64 = if opts.quick { 48 } else { 160 };
    let store = Store::open(dir.path()).expect("open scratch store");
    let reg = Registry::new();
    let mut acked: Vec<u64> = Vec::new();
    let mut failed = 0u64;
    let write_fires;
    {
        let guard = arm_with_registry(
            FaultPlan::new(opts.seed)
                .with_prob(Site::StoreShortWrite, 110)
                .with_prob(Site::StoreFsyncFail, 90)
                .with_prob(Site::StoreRenameFail, 90)
                .with_prob(Site::StoreTornRename, 90),
            &reg,
        );
        for key in 1..=puts {
            match store.put(key, SCHEMA, &payload_for(opts.seed, key)) {
                Ok(()) => acked.push(key),
                Err(_) => failed += 1,
            }
        }
        // In-process: every acknowledged record reads back exactly.
        for &key in &acked {
            if store.get(key, SCHEMA).as_deref() != Some(&payload_for(opts.seed, key)[..]) {
                violations.push(format!("write-sweep: acked key {key} unreadable in-process"));
            }
        }
        write_fires = guard
            .summary()
            .iter()
            .filter(|r| {
                matches!(
                    r.site,
                    Site::StoreShortWrite
                        | Site::StoreFsyncFail
                        | Site::StoreRenameFail
                        | Site::StoreTornRename
                )
            })
            .map(|r| r.fires)
            .sum();
        cov.absorb(&guard);
    }
    // Kill and restart: recovery must preserve every acknowledged record.
    drop(store);
    let reopened = Store::open(dir.path()).expect("reopen after sweep");
    let mut lost = 0u64;
    for &key in &acked {
        if reopened.get(key, SCHEMA).as_deref() != Some(&payload_for(opts.seed, key)[..]) {
            lost += 1;
            violations.push(format!("write-sweep: acked key {key} lost across restart"));
        }
    }
    let verify = reopened.verify().expect("verify reopened log");
    if !verify.is_clean() {
        violations.push(format!(
            "write-sweep: reopened log not clean (corrupt={} garbage={})",
            verify.corrupt, verify.trailing_garbage_bytes
        ));
    }
    // The injected faults are visible in the Prometheus exposition.
    let prom = reg.render_prom();
    let metrics_ok = prom.contains("tdo_fault_injected_total{site=");
    let counted: u64 = prom
        .lines()
        .filter(|l| l.starts_with("tdo_fault_injected_total{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    if !metrics_ok || counted != write_fires {
        violations.push(format!(
            "write-sweep: fault metrics mismatch (family_present={metrics_ok} \
             counted={counted} fired={write_fires})"
        ));
    }
    format!(
        "[store-write-sweep] puts={puts} acked={} failed={failed} fires={write_fires} \
         lost={lost} clean={} metrics-ok={}\n",
        acked.len(),
        u8::from(verify.is_clean()),
        u8::from(metrics_ok && counted == write_fires),
    )
}

/// Scenario 2: bit rot on the read path. A corrupted read must return
/// `None` and quarantine the record — never serve garbage — and the store
/// must stay consistent for the surviving records.
fn store_corrupt_sweep(
    opts: &ChaosOpts,
    violations: &mut Vec<String>,
    cov: &mut Coverage,
) -> String {
    let dir = TempDir::new("corrupt-sweep");
    let keys: u64 = if opts.quick { 32 } else { 96 };
    let store = Store::open(dir.path()).expect("open scratch store");
    for key in 1..=keys {
        store.put(key, SCHEMA, &payload_for(opts.seed, key)).expect("clean put");
    }
    let mut served = 0u64;
    let mut quarantined = 0u64;
    {
        let guard = arm(FaultPlan::new(opts.seed ^ 0xC0).with_prob(Site::StoreReadCorrupt, 350));
        for key in 1..=keys {
            match store.get(key, SCHEMA) {
                Some(p) if p == payload_for(opts.seed, key) => served += 1,
                Some(_) => {
                    violations.push(format!("corrupt-sweep: key {key} served garbage data"));
                }
                None => quarantined += 1,
            }
        }
        cov.absorb(&guard);
    }
    if store.stats().quarantined != quarantined {
        violations.push(format!(
            "corrupt-sweep: quarantine accounting off (stat={} observed={quarantined})",
            store.stats().quarantined
        ));
    }
    // Survivors stay intact across a restart; the log is clean again.
    drop(store);
    let reopened = Store::open(dir.path()).expect("reopen after corruption");
    let mut survivors = 0u64;
    for key in 1..=keys {
        match reopened.get(key, SCHEMA) {
            Some(p) if p == payload_for(opts.seed, key) => survivors += 1,
            Some(_) => violations.push(format!("corrupt-sweep: key {key} garbled after restart")),
            None => {}
        }
    }
    let clean = reopened.verify().map(|v| v.is_clean()).unwrap_or(false);
    if !clean {
        violations.push("corrupt-sweep: reopened log not clean".to_string());
    }
    if survivors < served {
        violations.push(format!(
            "corrupt-sweep: surviving records regressed across restart \
             (served={served} survivors={survivors})"
        ));
    }
    format!(
        "[store-corrupt-sweep] keys={keys} served={served} quarantined={quarantined} \
         survivors={survivors} clean={}\n",
        u8::from(clean)
    )
}

/// Scenario 3: the exhaustive kill-and-restart sweep. For every write-path
/// site and every injection point `nth`, fault exactly the nth hit, keep
/// writing, then kill and restart: zero acknowledged records may be lost.
fn kill_restart_sweep(
    opts: &ChaosOpts,
    violations: &mut Vec<String>,
    cov: &mut Coverage,
) -> String {
    let sites =
        [Site::StoreShortWrite, Site::StoreFsyncFail, Site::StoreRenameFail, Site::StoreTornRename];
    let points: u64 = if opts.quick { 3 } else { 6 };
    let mut recoveries = 0u64;
    let mut lost = 0u64;
    let mut faults_fired = 0u64;
    for site in sites {
        for nth in 1..=points {
            let dir = TempDir::new("kill-restart");
            let store = Store::open(dir.path()).expect("open scratch store");
            let mut acked: Vec<u64> = Vec::new();
            {
                let guard = arm(FaultPlan::new(opts.seed ^ nth).with_at(site, nth));
                for key in 1..=(points + 4) {
                    if store.put(key, SCHEMA, &payload_for(opts.seed, key)).is_ok() {
                        acked.push(key);
                    }
                }
                faults_fired +=
                    guard.summary().iter().find(|r| r.site == site).map_or(0, |r| r.fires);
                cov.absorb(&guard);
            }
            drop(store);
            let reopened = Store::open(dir.path()).expect("reopen mid-commit kill");
            let mut ok = true;
            for &key in &acked {
                if reopened.get(key, SCHEMA).as_deref() != Some(&payload_for(opts.seed, key)[..]) {
                    ok = false;
                    lost += 1;
                    violations.push(format!(
                        "kill-restart: site={} nth={nth}: acked key {key} lost",
                        site.name()
                    ));
                }
            }
            if !reopened.verify().map(|v| v.is_clean()).unwrap_or(false) {
                ok = false;
                violations
                    .push(format!("kill-restart: site={} nth={nth}: log not clean", site.name()));
            }
            if ok {
                recoveries += 1;
            }
        }
    }
    format!(
        "[kill-restart] sites={} points={points} recoveries={recoveries} \
         faults={faults_fired} lost={lost}\n",
        sites.len()
    )
}

/// Digest of one simulation result (the whole result, every field).
fn digest(r: &SimResult) -> u64 {
    fnv1a64(format!("{r:?}").as_bytes())
}

fn chaos_spec(opts: &ChaosOpts) -> ExperimentSpec {
    let picks: Vec<&str> = names().iter().copied().take(if opts.quick { 3 } else { 4 }).collect();
    let mut spec = ExperimentSpec::new();
    for workload in picks {
        for arm in [tdo_sim::PrefetchSetup::NoPrefetch, tdo_sim::PrefetchSetup::SwSelfRepair] {
            let mut cfg = SimConfig::test(arm);
            cfg.warmup_insts = 2_000;
            cfg.measure_insts = if opts.quick { 4_000 } else { 8_000 };
            spec.push(Cell::new(workload, Scale::Test, cfg));
        }
    }
    spec
}

fn spec_digests(results: &[Arc<SimResult>]) -> Vec<u64> {
    results.iter().map(|r| digest(r)).collect()
}

/// Scenario 4: engine chaos. Helper-job jitter and store degrades must not
/// change a single report byte (across `--jobs` values too), and a cell
/// that panics under injection must succeed on retry with a result
/// identical to a clean run's.
fn engine_chaos(opts: &ChaosOpts, violations: &mut Vec<String>, cov: &mut Coverage) -> String {
    let spec = chaos_spec(opts);

    // Clean baseline (no store, plane deliberately armed with an all-off
    // plan so a concurrent armer cannot slip faults into this phase).
    let baseline = {
        let _quiet = arm(FaultPlan::new(0));
        spec_digests(&Runner::new(1).run_spec(&spec))
    };

    // Jitter + store degrades, at the requested job count and serially.
    let mut digests_match = true;
    {
        let guard = arm(FaultPlan::new(opts.seed ^ 0xE1)
            .with_prob(Site::EngineHelperJitter, 600)
            .with_prob(Site::EngineStoreDegrade, 500));
        for jobs in [opts.jobs.max(1), 1] {
            let dir = TempDir::new("engine");
            let runner = Runner::with_store(jobs, Arc::new(Store::open(dir.path()).unwrap()));
            let got = spec_digests(&runner.run_spec(&spec));
            if got != baseline {
                digests_match = false;
                violations.push(format!(
                    "engine: faulted run (jobs={jobs}) diverged from the clean baseline"
                ));
            }
        }
        cov.absorb(&guard);
    }

    // An injected panic fails exactly one cell; the retry (faults gone)
    // reproduces the clean baseline bit for bit.
    let dir = TempDir::new("engine-panic");
    let runner = Runner::with_store(1, Arc::new(Store::open(dir.path()).unwrap()));
    let failed_cells;
    {
        let guard = arm(FaultPlan::new(opts.seed ^ 0xE2).with_at(Site::EngineCellPanic, 2));
        let outcome = catch_unwind(AssertUnwindSafe(|| runner.run_spec(&spec)));
        if outcome.is_ok() {
            violations.push("engine: injected cell panic was silently swallowed".to_string());
        }
        failed_cells = runner.failed_cells().len();
        if failed_cells != 1 {
            violations.push(format!("engine: expected 1 failed cell, got {failed_cells}"));
        }
        cov.absorb(&guard);
    }
    let retry_matches = {
        let _quiet = arm(FaultPlan::new(0));
        spec_digests(&runner.run_spec(&spec)) == baseline
    };
    if !retry_matches {
        violations.push("engine: faulted-then-retried report differs from clean run".to_string());
    }
    format!(
        "[engine] cells={} digests-match-across-jobs={} failed-under-panic={failed_cells} \
         retry-matches-clean={}\n",
        spec.len(),
        u8::from(digests_match),
        u8::from(retry_matches)
    )
}

/// Scenario 5: the serving daemon under a socket/worker fault barrage.
/// Errors and sheds are expected; deadlocks, dead workers and an
/// unanswerable `/health` are not.
fn server_chaos(opts: &ChaosOpts, violations: &mut Vec<String>, cov: &mut Coverage) -> String {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 4,
        no_store: true,
        ..ServerConfig::default()
    };
    let server = Server::bind(&cfg).expect("bind chaos server");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let requests: u64 = if opts.quick { 24 } else { 60 };
    let run_body = "{\"workload\":\"mcf\",\"arm\":\"sr\",\"scale\":\"test\",\"insts\":2000}";
    let mut ok = 0u64;
    let mut http_err = 0u64;
    let mut transport_err = 0u64;
    let mut health_ok = false;
    {
        let guard = arm(FaultPlan::new(opts.seed ^ 0x5E)
            .with_prob(Site::ServerAcceptFail, 120)
            .with_prob(Site::ServerReadFail, 120)
            .with_prob(Site::ServerWriteFail, 120)
            .with_prob(Site::ServerSlowClient, 150)
            .with_prob(Site::ServerWorkerPanic, 250)
            .with_prob(Site::ServerQueueSaturate, 200));
        for i in 0..requests {
            let resp = match i % 3 {
                0 => client::get(&addr, "/health"),
                1 => client::post(&addr, "/run", run_body),
                _ => client::get(&addr, "/metrics"),
            };
            match resp {
                Ok(r) if r.ok() => ok += 1,
                Ok(_) => http_err += 1,
                Err(_) => transport_err += 1,
            }
        }
        // The liveness invariant: /health answers within a bounded number
        // of attempts even while the barrage plan is armed.
        for _ in 0..20 {
            if client::get(&addr, "/health").map(|r| r.ok()).unwrap_or(false) {
                health_ok = true;
                break;
            }
        }
        cov.absorb(&guard);
    }
    if !health_ok {
        violations.push("server: /health did not answer within 20 attempts".to_string());
    }
    // Disarmed: the worker pool must have survived every injected panic.
    let pool_alive = {
        let _quiet = arm(FaultPlan::new(0));
        client::post(&addr, "/run", run_body).map(|r| r.ok()).unwrap_or(false)
    };
    if !pool_alive {
        violations.push("server: worker pool dead after injected panics".to_string());
    }
    // Graceful shutdown must complete (a hang here fails the whole run).
    handle.shutdown();
    let shutdown_ok = thread.join().map(|r| r.is_ok()).unwrap_or(false);
    if !shutdown_ok {
        violations.push("server: run loop did not shut down cleanly".to_string());
    }
    format!(
        "[server] requests={requests} ok={ok} http-err={http_err} transport-err={transport_err} \
         health-ok={} pool-alive={} shutdown-ok={}\n",
        u8::from(health_ok),
        u8::from(pool_alive),
        u8::from(shutdown_ok)
    )
}

/// Scenario 6: flight-recorder attribution. Seeded request traces drive the
/// store under armed faults; the recorder's dump must be valid flight
/// JSONL, byte-deterministic (logical clock, digest in the report), and
/// must attribute at least one fired fault site — and at least one health
/// watchdog trip — to the exact request trace that hit it. Returns
/// `(report line, flight dump, captured log)`.
fn flight_attribution(
    opts: &ChaosOpts,
    violations: &mut Vec<String>,
    cov: &mut Coverage,
) -> (String, String, String) {
    use tdo_obs::span;
    use tdo_server::health::{dump_reason, WatchRow, Watchdog};
    // Logical clock + a reset ring: the dump reflects only this scenario,
    // with per-trace sequence numbers instead of wall timestamps.
    let _clock = span::logical_clock_guard();
    span::global().reset();
    let dir = TempDir::new("flight");
    let store = Store::open(dir.path()).expect("open scratch store");
    let traces = tdo_obs::TraceIdGen::new(opts.seed ^ 0xF11);
    let requests: u64 = if opts.quick { 24 } else { 64 };
    let mut acked = 0u64;
    let mut watchdog_trace = 0u64;
    let mut tripped: Vec<&'static str> = Vec::new();
    let ((), log_text) = tdo_obs::logline::capture(|| {
        // `with_at` pins one guaranteed write fault; the probabilistic read
        // corruption adds seed-dependent extras on top.
        let guard = arm(FaultPlan::new(opts.seed ^ 0xF12)
            .with_at(Site::StoreShortWrite, 3)
            .with_prob(Site::StoreReadCorrupt, 200));
        for key in 1..=requests {
            let _root = span::SpanScope::root(traces.mint(), tdo_obs::FlightKind::Request, key);
            if store.put(key, SCHEMA, &payload_for(opts.seed, key)).is_ok() {
                acked += 1;
            }
            let _ = store.get(key, SCHEMA);
        }
        cov.absorb(&guard);
        drop(guard);
        // Watchdog trip → dump attribution: synthetic breaching rows drive
        // the daemon's real rule engine, and each trip's dump point is
        // recorded inside a rooted request trace — exactly how a health
        // tick's flight dump hangs off the request that breached the SLO.
        // Every `/run` request in the window is over the SLO bucket (the
        // slo_burn rule) while admission control sheds (the shed_rate
        // rule), so both new dump reasons are exercised.
        let mut watchdog = Watchdog::new(8);
        let breaching =
            vec![WatchRow { run_count: 2, run_slow: 2, shed: 1, ..WatchRow::default() }; 5];
        watchdog_trace = traces.mint();
        {
            let _root =
                span::SpanScope::root(watchdog_trace, tdo_obs::FlightKind::Request, requests + 1);
            tripped = watchdog.evaluate(1, &breaching);
            for rule in &tripped {
                let reason = dump_reason(rule);
                let code = tdo_server::DUMP_REASONS
                    .iter()
                    .position(|r| *r == reason)
                    .expect("watchdog reasons are dump reasons") as u64;
                span::point(tdo_obs::FlightKind::Dump, code);
                tdo_obs::logline::log(
                    tdo_obs::Level::Warn,
                    "watchdog",
                    "health rule tripped",
                    &[("rule", rule), ("reason", reason)],
                );
            }
        }
        // A fresh zero context pins the line's logical timestamp: the
        // thread-local sequence would otherwise carry whatever this thread
        // recorded before the scenario.
        let _ctx = span::resume(tdo_obs::TraceCtx::fresh(0));
        let requests_text = requests.to_string();
        tdo_obs::logline::log(
            tdo_obs::Level::Info,
            "chaos",
            "flight attribution swept",
            &[("requests", &requests_text)],
        );
    });
    let dump = span::global().dump();
    if let Err(e) = tdo_obs::validate_flight(&dump) {
        violations.push(format!("flight: dump is not valid flight JSONL: {e}"));
    }
    if let Err(e) = tdo_obs::validate_log(&log_text) {
        violations.push(format!("flight: captured log fails the schema lint: {e}"));
    }
    let records = span::parse_flight(&dump).unwrap_or_default();
    let faults =
        records.iter().filter(|r| r.kind == tdo_obs::FlightKind::Fault).collect::<Vec<_>>();
    let attributed = faults.iter().filter(|r| r.trace != 0).count();
    if attributed == 0 {
        violations.push("flight: no fired fault site attributed to a request trace".to_string());
    }
    // The watchdog segment is deterministic: both rules trip, and every
    // dump point carries the minting request's exact trace id.
    if tripped != ["slo_burn", "shed_rate"] {
        violations.push(format!("flight: watchdog rules tripped unexpectedly: {tripped:?}"));
    }
    let watchdog_dumps = records
        .iter()
        .filter(|r| r.kind == tdo_obs::FlightKind::Dump && r.trace == watchdog_trace)
        .collect::<Vec<_>>();
    if watchdog_dumps.len() != tripped.len() {
        violations.push(format!(
            "flight: {} watchdog dump records attributed to trace {watchdog_trace:016x}, \
             want {}",
            watchdog_dumps.len(),
            tripped.len()
        ));
    }
    for (rec, rule) in watchdog_dumps.iter().zip(&tripped) {
        let want = tdo_server::DUMP_REASONS.iter().position(|r| *r == dump_reason(rule));
        if Some(rec.arg as usize) != want {
            violations.push(format!(
                "flight: watchdog dump reason code {} does not match rule `{rule}`",
                rec.arg
            ));
        }
    }
    let report = format!(
        "[flight] requests={requests} acked={acked} events={} faults={} attributed={attributed} \
         watchdog-trips={} watchdog-attributed={} log-lines={} dump-digest={:016x}\n",
        records.len(),
        faults.len(),
        tripped.len(),
        watchdog_dumps.len(),
        log_text.lines().count(),
        fnv1a64(dump.as_bytes())
    );
    (report, dump, log_text)
}
