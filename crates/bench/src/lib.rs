//! # tdo-bench — the paper-reproduction harness
//!
//! One binary per table and figure of the CGO 2006 evaluation (see
//! DESIGN.md §3 for the experiment index). Each binary prints the same rows
//! or series the paper reports, so `cargo run -p tdo-bench --bin fig5_speedup`
//! regenerates the paper's Figure 5 on the simulated system.
//!
//! All binaries accept `--quick` to run at test scale (smaller working sets
//! and windows against the scaled-down hierarchy) for a fast sanity pass;
//! without it they run the full paper configuration.

#![warn(missing_docs)]
#![warn(clippy::all)]

use tdo_sim::{run, PrefetchSetup, SimConfig, SimResult};
use tdo_workloads::{build, names, Scale, Workload};

/// Harness options parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOpts {
    /// Run at test scale for a fast pass.
    pub quick: bool,
}

impl HarnessOpts {
    /// Parses `--quick` from `std::env::args`.
    #[must_use]
    pub fn from_args() -> HarnessOpts {
        HarnessOpts { quick: std::env::args().any(|a| a == "--quick") }
    }

    /// The workload scale implied by the options.
    #[must_use]
    pub fn scale(&self) -> Scale {
        if self.quick {
            Scale::Test
        } else {
            Scale::Full
        }
    }

    /// The simulation configuration for one experimental arm.
    #[must_use]
    pub fn config(&self, setup: PrefetchSetup) -> SimConfig {
        if self.quick {
            SimConfig::test(setup)
        } else {
            SimConfig::paper(setup)
        }
    }
}

/// Builds the named workload at the harness scale.
///
/// # Panics
///
/// Panics on unknown names (harness binaries use the fixed suite).
#[must_use]
pub fn workload(name: &str, opts: &HarnessOpts) -> Workload {
    build(name, opts.scale()).unwrap_or_else(|| panic!("unknown workload {name}"))
}

/// Runs one workload under one arm.
#[must_use]
pub fn run_arm(name: &str, setup: PrefetchSetup, opts: &HarnessOpts) -> SimResult {
    let w = workload(name, opts);
    run(&w, &opts.config(setup))
}

/// Runs one workload under a custom configuration.
#[must_use]
pub fn run_cfg(name: &str, cfg: &SimConfig, opts: &HarnessOpts) -> SimResult {
    let w = workload(name, opts);
    run(&w, cfg)
}

/// The benchmark suite in the paper's order.
#[must_use]
pub fn suite() -> &'static [&'static str] {
    names()
}

/// Geometric mean of speedups (the conventional average for ratios).
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a table header: workload column plus the given value columns.
pub fn print_header(cols: &[&str]) {
    print!("{:<10}", "workload");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
    println!("{}", "-".repeat(10 + cols.len() * 13));
}

/// Prints one row of f64 values with a formatter.
pub fn print_row(name: &str, values: &[f64], fmt: impl Fn(f64) -> String) {
    print!("{name:<10}");
    for v in values {
        print!(" {:>12}", fmt(*v));
    }
    println!();
}

/// Formats a ratio as a percent delta ("+23.4%").
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", (x - 1.0) * 100.0)
}

/// Formats a fraction as a percent ("23.4%").
#[must_use]
pub fn frac(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(1.234), "+23.4%");
        assert_eq!(frac(0.5), "50.0%");
    }
}
