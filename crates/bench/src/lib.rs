//! # tdo-bench — the paper-reproduction harness
//!
//! One binary per table and figure of the CGO 2006 evaluation (see
//! DESIGN.md §3 for the experiment index). Each binary prints the same rows
//! or series the paper reports, so `cargo run -p tdo-bench --bin fig5_speedup`
//! regenerates the paper's Figure 5 on the simulated system.
//!
//! All binaries run on the shared experiment engine ([`tdo_sim::Runner`]):
//! they declare their cells as an [`ExperimentSpec`], the engine simulates
//! the unique cells across worker threads (memoizing results, so arms shared
//! between sections are computed once), and the rows render through the
//! common [`Report`] layer.
//!
//! Common flags, parsed strictly (unknown flags are an error):
//!
//! * `--quick` — run at test scale (smaller working sets and windows against
//!   the scaled-down hierarchy) for a fast sanity pass; without it the full
//!   paper configuration runs.
//! * `--jobs N` — simulate up to `N` cells in parallel (default: one per
//!   hardware thread). Output is byte-identical regardless of `N`.
//! * `--format {table,csv,json}` — rendering of the result rows.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chaos;
pub mod perf;

use std::sync::Arc;

use tdo_sim::{
    run_traced, Cell, ExperimentSpec, Format, PrefetchSetup, Report, Runner, SimConfig, SimResult,
};
use tdo_workloads::{build, names, Scale};

/// Harness options parsed from the command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Run at test scale for a fast pass.
    pub quick: bool,
    /// Worker threads for the engine (`0` = one per hardware thread).
    pub jobs: usize,
    /// Requested output format, if any (`None` = the binary's default).
    pub format: Option<Format>,
    /// Re-run the spec's first cell with recording on and write the event
    /// trace here (`.json` = Chrome trace_event, anything else = JSONL).
    pub trace_out: Option<String>,
    /// Explicit persistent-store directory (default: `TDO_STORE` env or
    /// `.tdo-store/`).
    pub store_dir: Option<String>,
    /// Disable the persistent result store (in-memory memoization only).
    pub no_store: bool,
}

/// Usage text shared by every harness binary.
pub const USAGE: &str = "options:
  --quick            run at test scale (fast sanity pass)
  --jobs N           simulate up to N cells in parallel (0 = all cores)
  --format FORMAT    output format: table, csv or json
  --trace-out PATH   record the first cell's event trace to PATH
                     (.json = Chrome trace_event, otherwise JSONL)
  --store-dir DIR    persistent result store directory
                     (default: $TDO_STORE or .tdo-store/)
  --no-store         skip the persistent result store entirely
  --help             show this help";

impl HarnessOpts {
    /// Parses harness flags from an argument list (without the program
    /// name). Rejects unknown flags, missing values and malformed values.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending argument.
    pub fn parse<I>(args: I) -> Result<HarnessOpts, String>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut opts = HarnessOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (arg, None),
            };
            let value = |it: &mut I::IntoIter| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it
                        .next()
                        .map(|v| v.as_ref().to_string())
                        .ok_or_else(|| format!("`{flag}` needs a value")),
                }
            };
            match flag {
                "--quick" if inline.is_none() => opts.quick = true,
                "--jobs" => {
                    let v = value(&mut it)?;
                    opts.jobs = v.parse().map_err(|_| format!("invalid `--jobs` value `{v}`"))?;
                }
                "--format" => {
                    opts.format = Some(value(&mut it)?.parse()?);
                }
                "--trace-out" => {
                    opts.trace_out = Some(value(&mut it)?);
                }
                "--store-dir" => {
                    opts.store_dir = Some(value(&mut it)?);
                }
                "--no-store" if inline.is_none() => opts.no_store = true,
                _ => return Err(format!("unknown option `{arg}`")),
            }
        }
        Ok(opts)
    }

    /// Parses `std::env::args`, printing usage and exiting on bad flags or
    /// `--help`.
    #[must_use]
    pub fn from_args() -> HarnessOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match HarnessOpts::parse(&args) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The workload scale implied by the options.
    #[must_use]
    pub fn scale(&self) -> Scale {
        if self.quick {
            Scale::Test
        } else {
            Scale::Full
        }
    }

    /// The simulation configuration for one experimental arm.
    #[must_use]
    pub fn config(&self, setup: PrefetchSetup) -> SimConfig {
        if self.quick {
            SimConfig::test(setup)
        } else {
            SimConfig::paper(setup)
        }
    }

    /// The output format, with a per-binary default.
    #[must_use]
    pub fn format_or(&self, dflt: Format) -> Format {
        self.format.unwrap_or(dflt)
    }
}

/// A harness: parsed options plus the memoizing parallel engine.
pub struct Harness {
    /// The parsed command-line options.
    pub opts: HarnessOpts,
    runner: Runner,
}

impl Default for Harness {
    fn default() -> Harness {
        // The programmatic default is storeless: only explicit flags (or
        // `from_args`'s defaults) touch the filesystem.
        Harness::new(HarnessOpts { no_store: true, ..HarnessOpts::default() })
    }
}

impl Harness {
    /// Creates a harness over explicit options. Unless `--no-store` was
    /// given, the engine reads through to (and writes through to) the
    /// persistent result store, so repeat invocations of any harness binary
    /// against a warm store perform zero simulations.
    #[must_use]
    pub fn new(opts: HarnessOpts) -> Harness {
        let runner = if opts.no_store {
            Runner::new(opts.jobs)
        } else {
            Runner::with_default_store(opts.jobs, opts.store_dir.as_deref())
        };
        Harness { opts, runner }
    }

    /// Creates a harness from `std::env::args` (exits on bad flags).
    #[must_use]
    pub fn from_args() -> Harness {
        Harness::new(HarnessOpts::from_args())
    }

    /// A cell for one workload under one standard arm, at the harness scale.
    #[must_use]
    pub fn cell(&self, name: &str, setup: PrefetchSetup) -> Cell {
        self.cell_cfg(name, self.opts.config(setup))
    }

    /// A cell for one workload under a custom configuration.
    #[must_use]
    pub fn cell_cfg(&self, name: &str, cfg: SimConfig) -> Cell {
        Cell::new(name, self.opts.scale(), cfg)
    }

    /// Simulates every cell of a spec in parallel (memoized); later
    /// [`Harness::arm`]/[`Harness::cfg`] calls for the same cells are cache
    /// hits.
    pub fn run(&self, spec: &ExperimentSpec) -> Vec<Arc<SimResult>> {
        self.runner.run_spec(spec)
    }

    /// Result for one workload under one standard arm (memoized).
    #[must_use]
    pub fn arm(&self, name: &str, setup: PrefetchSetup) -> Arc<SimResult> {
        self.runner.run_cell(&self.cell(name, setup))
    }

    /// Result for one workload under a custom configuration (memoized).
    #[must_use]
    pub fn cfg(&self, name: &str, cfg: &SimConfig) -> Arc<SimResult> {
        self.runner.run_cell(&self.cell_cfg(name, cfg.clone()))
    }

    /// Prints a report in the harness format (default: aligned table).
    pub fn emit(&self, report: &Report) {
        print!("{}", report.render(self.opts.format_or(Format::Table)));
    }

    /// The underlying engine.
    #[must_use]
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The store accounting footer, if a store is attached.
    #[must_use]
    pub fn store_summary(&self) -> Option<String> {
        self.runner.store_summary()
    }

    /// Honours `--trace-out`: re-simulates the spec's first cell with event
    /// recording on and writes the trace to the requested path (`.json` =
    /// Chrome trace_event format, anything else = JSONL). A no-op without the
    /// flag; recording runs a fresh single machine, so the memoized results
    /// and the report bytes are untouched.
    pub fn dump_trace(&self, spec: &ExperimentSpec) {
        let Some(path) = self.opts.trace_out.as_deref() else { return };
        let Some(cell) = spec.cells.first() else {
            eprintln!("--trace-out: spec has no cells, nothing to trace");
            return;
        };
        let w = build(&cell.workload, cell.scale)
            .unwrap_or_else(|| panic!("unknown workload `{}`", cell.workload));
        let (_, recorder) = run_traced(&w, &cell.cfg);
        let text =
            if path.ends_with(".json") { recorder.to_chrome_trace() } else { recorder.to_jsonl() };
        match std::fs::write(path, text) {
            Ok(()) => eprintln!(
                "wrote {} events for cell `{}` to {path}",
                recorder.events().len(),
                cell.workload
            ),
            Err(e) => eprintln!("--trace-out: cannot write `{path}`: {e}"),
        }
    }
}

impl Drop for Harness {
    /// Every harness binary reports its store accounting on exit — to
    /// stderr, so report bytes on stdout stay identical warm or cold (CI
    /// asserts both properties).
    fn drop(&mut self) {
        if let Some(summary) = self.runner.store_summary() {
            eprintln!("{summary}");
        }
    }
}

/// The benchmark suite in the paper's order.
#[must_use]
pub fn suite() -> &'static [&'static str] {
    names()
}

/// Geometric mean of speedups (the conventional average for ratios).
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Formats a ratio as a percent delta ("+23.4%").
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", (x - 1.0) * 100.0)
}

/// Formats a fraction as a percent ("23.4%").
#[must_use]
pub fn frac(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(1.234), "+23.4%");
        assert_eq!(frac(0.5), "50.0%");
    }

    #[test]
    fn flags_parse() {
        let o = HarnessOpts::parse(["--quick", "--jobs", "4", "--format", "csv"]).unwrap();
        assert_eq!(
            o,
            HarnessOpts {
                quick: true,
                jobs: 4,
                format: Some(Format::Csv),
                ..HarnessOpts::default()
            }
        );
        let o = HarnessOpts::parse(["--jobs=2", "--format=json"]).unwrap();
        assert_eq!(
            o,
            HarnessOpts { jobs: 2, format: Some(Format::Json), ..HarnessOpts::default() }
        );
        let o = HarnessOpts::parse(["--trace-out", "t.json"]).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        let o = HarnessOpts::parse(["--trace-out=t.jsonl"]).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        let o = HarnessOpts::parse(["--store-dir", "/tmp/s", "--no-store"]).unwrap();
        assert_eq!(o.store_dir.as_deref(), Some("/tmp/s"));
        assert!(o.no_store);
        let o = HarnessOpts::parse(["--store-dir=/x"]).unwrap();
        assert_eq!(o.store_dir.as_deref(), Some("/x"));
        assert_eq!(HarnessOpts::parse(Vec::<String>::new()).unwrap(), HarnessOpts::default());
    }

    #[test]
    fn flags_reject_garbage() {
        assert!(HarnessOpts::parse(["--qick"]).is_err());
        assert!(HarnessOpts::parse(["--jobs"]).is_err());
        assert!(HarnessOpts::parse(["--jobs", "many"]).is_err());
        assert!(HarnessOpts::parse(["--format", "yaml"]).is_err());
        assert!(HarnessOpts::parse(["--trace-out"]).is_err());
        assert!(HarnessOpts::parse(["--store-dir"]).is_err());
        assert!(HarnessOpts::parse(["--no-store=1"]).is_err());
        assert!(HarnessOpts::parse(["--quick=1"]).is_err());
        assert!(HarnessOpts::parse(["extra"]).is_err());
        assert!(HarnessOpts::parse(["-q"]).is_err());
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in ["--quick", "--jobs", "--format", "--trace-out", "--store-dir", "--no-store"] {
            assert!(USAGE.contains(flag), "USAGE is missing `{flag}`");
        }
    }
}
