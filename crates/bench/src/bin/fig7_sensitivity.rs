//! Figure 7: sensitivity of the self-repairing prefetcher to the DLT's
//! load-monitoring window size and miss-rate threshold.

use tdo_bench::{geomean, mean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report, SimConfig};

fn main() {
    let h = Harness::from_args();
    let windows = [128u32, 256, 512];
    let rates = [1.0f64, 3.0, 6.0, 12.0];
    let sweep_cfg = |w: u32, rate: f64| -> SimConfig {
        let mut cfg = h.opts.config(PrefetchSetup::SwSelfRepair);
        cfg.dlt = cfg.dlt.with_window(w, rate);
        cfg
    };
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        spec.push(h.cell(name, PrefetchSetup::Hw8x8));
        for w in windows {
            for rate in rates {
                spec.push(h.cell_cfg(name, sweep_cfg(w, rate)));
            }
        }
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig7")
        .title("Figure 7: average speedup vs DLT monitoring window x miss-rate threshold")
        .key("window", 10);
    for r in rates {
        rep = rep.col(format!("{r:.0}% rate"), 9);
    }

    // Baselines per workload, shared across the sweep.
    let baselines: Vec<f64> =
        suite().iter().map(|name| h.arm(name, PrefetchSetup::Hw8x8).ipc()).collect();

    for w in windows {
        let cells: Vec<String> = rates
            .iter()
            .map(|&rate| {
                let mut speedups = Vec::new();
                for (name, base_ipc) in suite().iter().zip(&baselines) {
                    let r = h.cfg(name, &sweep_cfg(w, rate));
                    speedups.push(r.ipc() / base_ipc);
                }
                pct(geomean(&speedups))
            })
            .collect();
        rep.row(w.to_string(), cells);
    }
    rep.note("paper: a 3% miss-rate threshold over a 256-access window works best;");
    rep.note("       too-aggressive thresholds over-prefetch, too-lax ones miss loads (Fig. 7).");
    h.emit(&rep);

    // Repair effort behind the sweep: how hard the self-repairing prefetcher
    // worked to converge under each DLT setting (mean over the suite).
    let mut effort = Report::new("fig7_effort")
        .title("Figure 7 companion: repairs/group (mean cycles to converge) per DLT setting")
        .key("window", 10);
    for r in rates {
        effort = effort.col(format!("{r:.0}% rate"), 16);
    }
    for w in windows {
        let cells: Vec<String> = rates
            .iter()
            .map(|&rate| {
                let (mut rpg, mut conv) = (Vec::new(), Vec::new());
                for name in suite() {
                    let r = h.cfg(name, &sweep_cfg(w, rate));
                    rpg.push(r.repairs_per_group());
                    conv.push(r.avg_cycles_to_converge());
                }
                format!("{:.1} ({:.0}k)", mean(&rpg), mean(&conv) / 1000.0)
            })
            .collect();
        effort.row(w.to_string(), cells);
    }
    effort.note("repairs/group counts in-place distance repairs per inserted prefetch");
    effort.note("group; cycles to converge spans insertion to the last distance change.");
    h.emit(&effort);
}
