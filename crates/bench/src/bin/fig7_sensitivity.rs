//! Figure 7: sensitivity of the self-repairing prefetcher to the DLT's
//! load-monitoring window size and miss-rate threshold.

use tdo_bench::{geomean, pct, run_arm, run_cfg, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    let windows = [128u32, 256, 512];
    let rates = [1.0f64, 3.0, 6.0, 12.0];
    println!("Figure 7: average speedup vs DLT monitoring window x miss-rate threshold");
    print!("{:<10}", "window");
    for r in rates {
        print!(" {:>9}", format!("{r:.0}% rate"));
    }
    println!();
    println!("{}", "-".repeat(10 + rates.len() * 10));

    // Baselines per workload, shared across the sweep.
    let baselines: Vec<f64> = suite()
        .iter()
        .map(|name| run_arm(name, PrefetchSetup::Hw8x8, &opts).ipc())
        .collect();

    for w in windows {
        print!("{:<10}", w);
        for rate in rates {
            let mut speedups = Vec::new();
            for (name, base_ipc) in suite().iter().zip(&baselines) {
                let mut cfg = opts.config(PrefetchSetup::SwSelfRepair);
                cfg.dlt = cfg.dlt.with_window(w, rate);
                let r = run_cfg(name, &cfg, &opts);
                speedups.push(r.ipc() / base_ipc);
            }
            print!(" {:>9}", pct(geomean(&speedups)));
        }
        println!();
    }
    println!("\npaper: a 3% miss-rate threshold over a 256-access window works best;");
    println!("       too-aggressive thresholds over-prefetch, too-lax ones miss loads (Fig. 7).");
}
