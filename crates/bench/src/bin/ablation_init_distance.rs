//! Ablation (paper section 3.5.1): self-repairing prefetching starting from
//! distance 1 versus starting from the estimated distance (eq. 2) and
//! repairing from there. The paper reports "performance almost identical" —
//! the adaptation converges so quickly that the initial value is irrelevant,
//! which justifies dropping the estimation hardware.

use tdo_bench::{geomean, pct, run_arm, run_cfg, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Ablation: initial prefetch distance under self-repair");
    println!("{:<10} {:>14} {:>16}", "workload", "start at 1", "start estimated");
    println!("{}", "-".repeat(43));
    let (mut one, mut est) = (Vec::new(), Vec::new());
    for name in suite() {
        let base = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let from_one = run_arm(name, PrefetchSetup::SwSelfRepair, &opts);
        let mut cfg = opts.config(PrefetchSetup::SwSelfRepair);
        cfg.estimated_initial = true;
        let from_est = run_cfg(name, &cfg, &opts);
        let (a, b) = (from_one.speedup_over(&base), from_est.speedup_over(&base));
        one.push(a);
        est.push(b);
        println!("{:<10} {:>14} {:>16}", name, pct(a), pct(b));
    }
    println!("{}", "-".repeat(43));
    println!("{:<10} {:>14} {:>16}", "geomean", pct(geomean(&one)), pct(geomean(&est)));
    println!("\npaper: the two strategies perform almost identically — the system");
    println!("       adapts fast enough that the initial value is irrelevant (section 3.5.1).");
}
