//! Ablation (paper section 3.5.1): self-repairing prefetching starting from
//! distance 1 versus starting from the estimated distance (eq. 2) and
//! repairing from there. The paper reports "performance almost identical" —
//! the adaptation converges so quickly that the initial value is irrelevant,
//! which justifies dropping the estimation hardware.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

fn main() {
    let h = Harness::from_args();
    let est_cfg = {
        let mut cfg = h.opts.config(PrefetchSetup::SwSelfRepair);
        cfg.estimated_initial = true;
        cfg
    };
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        spec.push(h.cell(name, PrefetchSetup::Hw8x8));
        spec.push(h.cell(name, PrefetchSetup::SwSelfRepair));
        spec.push(h.cell_cfg(name, est_cfg.clone()));
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("ablation_init_distance")
        .title("Ablation: initial prefetch distance under self-repair")
        .col("start at 1", 14)
        .col("start estimated", 16)
        .rule(43);
    let (mut one, mut est) = (Vec::new(), Vec::new());
    for name in suite() {
        let base = h.arm(name, PrefetchSetup::Hw8x8);
        let from_one = h.arm(name, PrefetchSetup::SwSelfRepair);
        let from_est = h.cfg(name, &est_cfg);
        let (a, b) = (from_one.speedup_over(&base), from_est.speedup_over(&base));
        one.push(a);
        est.push(b);
        rep.row(*name, [pct(a), pct(b)]);
    }
    rep.footer("geomean", [pct(geomean(&one)), pct(geomean(&est))]);
    rep.note("paper: the two strategies perform almost identically — the system");
    rep.note("       adapts fast enough that the initial value is irrelevant (section 3.5.1).");
    h.emit(&rep);
}
