//! Figure 6: breakdown of all dynamic loads under the self-repairing
//! prefetcher — hits, prefetched hits, partial prefetch hits, misses, and
//! misses caused by prefetch displacement.

use tdo_bench::{frac, run_arm, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Figure 6: dynamic-load breakdown (self-repairing prefetcher)");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>8} {:>12}",
        "workload", "hits", "hit-prefetch", "partial", "miss", "miss-by-pref"
    );
    println!("{}", "-".repeat(68));
    let mut sums = [0.0f64; 5];
    for name in suite() {
        let r = run_arm(name, PrefetchSetup::SwSelfRepair, &opts);
        let b = r.load_breakdown();
        for (s, v) in sums.iter_mut().zip(b.iter()) {
            *s += v;
        }
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>8} {:>12}",
            name,
            frac(b[0]),
            frac(b[1]),
            frac(b[2]),
            frac(b[3]),
            frac(b[4])
        );
    }
    println!("{}", "-".repeat(68));
    let n = suite().len() as f64;
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>8} {:>12}",
        "mean",
        frac(sums[0] / n),
        frac(sums[1] / n),
        frac(sums[2] / n),
        frac(sums[3] / n),
        frac(sums[4] / n)
    );
    println!("\npaper: misses due to prefetching rarely occur and partial prefetch");
    println!("       hits are a very small fraction (Fig. 6).");
}
