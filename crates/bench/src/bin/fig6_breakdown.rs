//! Figure 6: breakdown of all dynamic loads under the self-repairing
//! prefetcher — hits, prefetched hits, partial prefetch hits, misses, and
//! misses caused by prefetch displacement.

use tdo_bench::{frac, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

fn main() {
    let h = Harness::from_args();
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        spec.push(h.cell(name, PrefetchSetup::SwSelfRepair));
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig6")
        .title("Figure 6: dynamic-load breakdown (self-repairing prefetcher)")
        .col("hits", 10)
        .col("hit-prefetch", 12)
        .col("partial", 10)
        .col("miss", 8)
        .col("miss-by-pref", 12)
        .rule(68);
    let mut sums = [0.0f64; 5];
    for name in suite() {
        let r = h.arm(name, PrefetchSetup::SwSelfRepair);
        let b = r.load_breakdown();
        for (s, v) in sums.iter_mut().zip(b.iter()) {
            *s += v;
        }
        rep.row(*name, b.map(frac));
    }
    let n = suite().len() as f64;
    rep.footer("mean", sums.map(|s| frac(s / n)));
    rep.note("paper: misses due to prefetching rarely occur and partial prefetch");
    rep.note("       hits are a very small fraction (Fig. 6).");
    h.emit(&rep);
}
