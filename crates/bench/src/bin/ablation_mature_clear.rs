//! Ablation (paper section 3.5.2, future work): periodically clearing the
//! DLT's mature flags — and refreshing repair budgets — so loads matured
//! during one program phase can be re-tuned when behaviour changes.
//!
//! On the steady-state suite the expected effect is small (the paper's
//! default only resets maturity on DLT eviction); the interesting columns
//! are the extra repair activity the clearing re-enables.

use tdo_bench::{geomean, pct, run_arm, run_cfg, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Ablation: periodic mature-flag clearing (every 2M cycles)");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "workload", "persist", "clearing", "repairs", "repairs+"
    );
    println!("{}", "-".repeat(58));
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for name in suite() {
        let base = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let persist = run_arm(name, PrefetchSetup::SwSelfRepair, &opts);
        let mut cfg = opts.config(PrefetchSetup::SwSelfRepair);
        cfg.mature_clear_interval = Some(2_000_000);
        let clearing = run_cfg(name, &cfg, &opts);
        let (ra, rb) = (persist.speedup_over(&base), clearing.speedup_over(&base));
        a.push(ra);
        b.push(rb);
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>10}",
            name,
            pct(ra),
            pct(rb),
            persist.optimizer.repairs,
            clearing.optimizer.repairs
        );
    }
    println!("{}", "-".repeat(58));
    println!(
        "{:<10} {:>12} {:>12}",
        "geomean",
        pct(geomean(&a)),
        pct(geomean(&b))
    );
}
