//! Ablation (paper section 3.5.2, future work): periodically clearing the
//! DLT's mature flags — and refreshing repair budgets — so loads matured
//! during one program phase can be re-tuned when behaviour changes.
//!
//! On the steady-state suite the expected effect is small (the paper's
//! default only resets maturity on DLT eviction); the interesting columns
//! are the extra repair activity the clearing re-enables.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

fn main() {
    let h = Harness::from_args();
    let clear_cfg = {
        let mut cfg = h.opts.config(PrefetchSetup::SwSelfRepair);
        cfg.mature_clear_interval = Some(2_000_000);
        cfg
    };
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        spec.push(h.cell(name, PrefetchSetup::Hw8x8));
        spec.push(h.cell(name, PrefetchSetup::SwSelfRepair));
        spec.push(h.cell_cfg(name, clear_cfg.clone()));
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("ablation_mature_clear")
        .title("Ablation: periodic mature-flag clearing (every 2M cycles)")
        .col("persist", 12)
        .col("clearing", 12)
        .col("repairs", 10)
        .col("repairs+", 10);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for name in suite() {
        let base = h.arm(name, PrefetchSetup::Hw8x8);
        let persist = h.arm(name, PrefetchSetup::SwSelfRepair);
        let clearing = h.cfg(name, &clear_cfg);
        let (ra, rb) = (persist.speedup_over(&base), clearing.speedup_over(&base));
        a.push(ra);
        b.push(rb);
        rep.row(
            *name,
            [
                pct(ra),
                pct(rb),
                persist.optimizer.repairs.to_string(),
                clearing.optimizer.repairs.to_string(),
            ],
        );
    }
    rep.footer("geomean", [pct(geomean(&a)), pct(geomean(&b))]);
    h.emit(&rep);
}
