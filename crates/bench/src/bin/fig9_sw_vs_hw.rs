//! Figure 9: software self-repairing prefetching vs hardware prefetching,
//! each alone, relative to a machine with no prefetching at all.

use tdo_bench::{geomean, pct, run_arm, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Figure 9: prefetching alone — software (self-repairing) vs hardware (8x8)");
    println!("{:<10} {:>14} {:>14}", "workload", "hw over none", "sw over none");
    println!("{}", "-".repeat(40));
    let (mut hw, mut sw) = (Vec::new(), Vec::new());
    for name in suite() {
        let none = run_arm(name, PrefetchSetup::NoPrefetch, &opts);
        let hw88 = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let swonly = run_arm(name, PrefetchSetup::SwOnlySelfRepair, &opts);
        let (rh, rs) = (hw88.speedup_over(&none), swonly.speedup_over(&none));
        hw.push(rh);
        sw.push(rs);
        println!("{:<10} {:>14} {:>14}", name, pct(rh), pct(rs));
    }
    println!("{}", "-".repeat(40));
    println!("{:<10} {:>14} {:>14}", "geomean", pct(geomean(&hw)), pct(geomean(&sw)));
    println!("\npaper: software prefetching alone beats hardware alone on most");
    println!("       benchmarks (~11% more speedup on average), except dot, equake");
    println!("       and swim where coverage or short strides favour hardware (Fig. 9).");
}
