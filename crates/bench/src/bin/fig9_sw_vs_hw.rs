//! Figure 9: software self-repairing prefetching vs hardware prefetching,
//! each alone, relative to a machine with no prefetching at all.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

const ARMS: [PrefetchSetup; 3] =
    [PrefetchSetup::NoPrefetch, PrefetchSetup::Hw8x8, PrefetchSetup::SwOnlySelfRepair];

fn main() {
    let h = Harness::from_args();
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        for arm in ARMS {
            spec.push(h.cell(name, arm));
        }
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig9")
        .title("Figure 9: prefetching alone — software (self-repairing) vs hardware (8x8)")
        .col("hw over none", 14)
        .col("sw over none", 14);
    let (mut hw, mut sw) = (Vec::new(), Vec::new());
    for name in suite() {
        let none = h.arm(name, PrefetchSetup::NoPrefetch);
        let hw88 = h.arm(name, PrefetchSetup::Hw8x8);
        let swonly = h.arm(name, PrefetchSetup::SwOnlySelfRepair);
        let (rh, rs) = (hw88.speedup_over(&none), swonly.speedup_over(&none));
        hw.push(rh);
        sw.push(rs);
        rep.row(*name, [pct(rh), pct(rs)]);
    }
    rep.footer("geomean", [pct(geomean(&hw)), pct(geomean(&sw))]);
    rep.note("paper: software prefetching alone beats hardware alone on most");
    rep.note("       benchmarks (~11% more speedup on average), except dot, equake");
    rep.note("       and swim where coverage or short strides favour hardware (Fig. 9).");
    h.emit(&rep);
}
