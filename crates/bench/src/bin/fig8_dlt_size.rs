//! Figure 8 and the section 5.4 area experiment: sensitivity to the
//! Delinquent Load Table size, and what the DLT's bits would buy as extra
//! L1 capacity instead.

use tdo_bench::{geomean, pct, run_arm, run_cfg, suite, HarnessOpts};
use tdo_core::Dlt;
use tdo_mem::CacheConfig;
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    let sizes = [256usize, 512, 1024, 2048];
    println!("Figure 8: average speedup vs DLT size (self-repairing over hw-8x8)");
    print!("{:<10}", "workload");
    for s in sizes {
        print!(" {:>9}", s);
    }
    println!();
    println!("{}", "-".repeat(10 + sizes.len() * 10));

    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for name in suite() {
        let base = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        print!("{:<10}", name);
        for (i, s) in sizes.iter().enumerate() {
            let mut cfg = opts.config(PrefetchSetup::SwSelfRepair);
            cfg.dlt = cfg.dlt.with_entries(*s);
            let r = run_cfg(name, &cfg, &opts);
            let sp = r.speedup_over(&base);
            per_size[i].push(sp);
            print!(" {:>9}", pct(sp));
        }
        println!();
    }
    println!("{}", "-".repeat(10 + sizes.len() * 10));
    print!("{:<10}", "geomean");
    for col in &per_size {
        print!(" {:>9}", pct(geomean(col)));
    }
    println!();

    // Section 5.4: invest the DLT + watch-table bits into L1 capacity.
    let dlt_bits = Dlt::new(tdo_core::DltConfig::paper_baseline()).state_bits();
    println!("\nSection 5.4: DLT+watch bits (~{} KB) reinvested as L1 capacity", dlt_bits / 8 / 1024);
    let mut speedups = Vec::new();
    for name in suite() {
        let base = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let mut cfg = opts.config(PrefetchSetup::Hw8x8);
        // One extra L1 way (same set count) over-provisions the DLT's area.
        cfg.mem.l1 = CacheConfig { assoc: cfg.mem.l1.assoc + 1,
            size_bytes: cfg.mem.l1.size_bytes / u64::from(cfg.mem.l1.assoc)
                * u64::from(cfg.mem.l1.assoc + 1),
            ..cfg.mem.l1 };
        let bigger = run_cfg(name, &cfg, &opts);
        speedups.push(bigger.speedup_over(&base));
    }
    println!("bigger-L1 speedup over baseline (geomean): {}", pct(geomean(&speedups)));
    println!("\npaper: performance saturates around 1024 DLT entries; dot and parser");
    println!("       benefit most from larger tables; the same bits as L1 capacity");
    println!("       buy only ~0.8% (Fig. 8 and section 5.4).");
}
