//! Figure 8 and the section 5.4 area experiment: sensitivity to the
//! Delinquent Load Table size, and what the DLT's bits would buy as extra
//! L1 capacity instead.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_core::Dlt;
use tdo_mem::CacheConfig;
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report, SimConfig};

fn main() {
    let h = Harness::from_args();
    let sizes = [256usize, 512, 1024, 2048];
    let sized_cfg = |s: usize| -> SimConfig {
        let mut cfg = h.opts.config(PrefetchSetup::SwSelfRepair);
        cfg.dlt = cfg.dlt.with_entries(s);
        cfg
    };
    // Section 5.4: invest the DLT + watch-table bits into L1 capacity.
    let bigger_l1_cfg = {
        let mut cfg = h.opts.config(PrefetchSetup::Hw8x8);
        // One extra L1 way (same set count) over-provisions the DLT's area.
        cfg.mem.l1 = CacheConfig {
            assoc: cfg.mem.l1.assoc + 1,
            size_bytes: cfg.mem.l1.size_bytes / u64::from(cfg.mem.l1.assoc)
                * u64::from(cfg.mem.l1.assoc + 1),
            ..cfg.mem.l1
        };
        cfg
    };
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        spec.push(h.cell(name, PrefetchSetup::Hw8x8));
        for s in sizes {
            spec.push(h.cell_cfg(name, sized_cfg(s)));
        }
        spec.push(h.cell_cfg(name, bigger_l1_cfg.clone()));
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig8")
        .title("Figure 8: average speedup vs DLT size (self-repairing over hw-8x8)");
    for s in sizes {
        rep = rep.col(s.to_string(), 9);
    }
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for name in suite() {
        let base = h.arm(name, PrefetchSetup::Hw8x8);
        let cells: Vec<String> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let sp = h.cfg(name, &sized_cfg(s)).speedup_over(&base);
                per_size[i].push(sp);
                pct(sp)
            })
            .collect();
        rep.row(*name, cells);
    }
    rep.footer("geomean", per_size.iter().map(|col| pct(geomean(col))));

    let dlt_bits = Dlt::new(tdo_core::DltConfig::paper_baseline()).state_bits();
    let mut speedups = Vec::new();
    for name in suite() {
        let base = h.arm(name, PrefetchSetup::Hw8x8);
        let bigger = h.cfg(name, &bigger_l1_cfg);
        speedups.push(bigger.speedup_over(&base));
    }
    rep.note(format!(
        "Section 5.4: DLT+watch bits (~{} KB) reinvested as L1 capacity",
        dlt_bits / 8 / 1024
    ));
    rep.note(format!("bigger-L1 speedup over baseline (geomean): {}", pct(geomean(&speedups))));
    rep.note("");
    rep.note("paper: performance saturates around 1024 DLT entries; dot and parser");
    rep.note("       benefit most from larger tables; the same bits as L1 capacity");
    rep.note("       buy only ~0.8% (Fig. 8 and section 5.4).");
    h.emit(&rep);
}
