//! Table 1: the baseline SMT processor configuration.

use tdo_bench::HarnessOpts;
use tdo_cpu::CpuConfig;
use tdo_mem::MemConfig;

fn main() {
    // Static configuration dump: flags are validated but have no effect.
    let _ = HarnessOpts::from_args();
    let cpu = CpuConfig::paper_baseline();
    let mem = MemConfig::paper_baseline();
    println!("Table 1: baseline SMT processor configuration");
    println!("---------------------------------------------");
    println!(
        "Pipeline            20-stage (mispredict refill {} cycles), 2 hardware contexts",
        cpu.mispredict_penalty
    );
    println!(
        "Issue bandwidth     {} instructions/cycle ({} loads/stores, {} FP)",
        cpu.issue_width, cpu.mem_ports, cpu.fp_units
    );
    println!("Branch predictor    gshare 64K + bimodal 16K + 64K meta chooser");
    println!(
        "L1 size & latency   {} KB {}-way, {} cycles",
        mem.l1.size_bytes >> 10,
        mem.l1.assoc,
        mem.l1.latency
    );
    println!(
        "L2 size & latency   {} KB {}-way, {} cycles",
        mem.l2.size_bytes >> 10,
        mem.l2.assoc,
        mem.l2.latency
    );
    println!(
        "L3 size & latency   {} MB {}-way, {} cycles",
        mem.l3.size_bytes >> 20,
        mem.l3.assoc,
        mem.l3.latency
    );
    println!(
        "Memory latency      {} cycles (bus occupancy {}/line, {} MSHRs)",
        mem.mem_latency, mem.bus_occupancy, mem.mshrs
    );
    let sb = mem.arm.stream().expect("baseline has stream buffers");
    println!(
        "Stream buffers      {} buffers x {} entries, {}-entry history table",
        sb.buffers, sb.entries_per_buffer, sb.history_entries
    );
    println!("Helper thread       {}-cycle startup latency", cpu.helper_startup_cycles);
}
