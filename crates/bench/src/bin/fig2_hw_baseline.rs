//! Figure 2: performance of the hardware stream-buffer prefetcher —
//! speedup of the 4x4 and 8x8 configurations over no prefetching.

use tdo_bench::{geomean, pct, run_arm, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Figure 2: hardware stream-buffer prefetching vs no prefetching");
    println!("{:<10} {:>12} {:>12} {:>12}", "workload", "ipc-none", "4x4 speedup", "8x8 speedup");
    println!("{}", "-".repeat(50));
    let (mut s44, mut s88) = (Vec::new(), Vec::new());
    for name in suite() {
        let none = run_arm(name, PrefetchSetup::NoPrefetch, &opts);
        let hw44 = run_arm(name, PrefetchSetup::Hw4x4, &opts);
        let hw88 = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let (r44, r88) = (hw44.speedup_over(&none), hw88.speedup_over(&none));
        s44.push(r44);
        s88.push(r88);
        println!("{:<10} {:>12.4} {:>12} {:>12}", name, none.ipc(), pct(r44), pct(r88));
    }
    println!("{}", "-".repeat(50));
    println!("{:<10} {:>12} {:>12} {:>12}", "geomean", "", pct(geomean(&s44)), pct(geomean(&s88)));
    println!("\npaper: 4x4 averages ~+35%, 8x8 ~+40% over no prefetching (Fig. 2).");
}
