//! Figure 2: performance of the hardware stream-buffer prefetcher —
//! speedup of the 4x4 and 8x8 configurations over no prefetching.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

const ARMS: [PrefetchSetup; 3] =
    [PrefetchSetup::NoPrefetch, PrefetchSetup::Hw4x4, PrefetchSetup::Hw8x8];

fn main() {
    let h = Harness::from_args();
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        for arm in ARMS {
            spec.push(h.cell(name, arm));
        }
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig2")
        .title("Figure 2: hardware stream-buffer prefetching vs no prefetching")
        .col("ipc-none", 12)
        .col("4x4 speedup", 12)
        .col("8x8 speedup", 12)
        .rule(50);
    let (mut s44, mut s88) = (Vec::new(), Vec::new());
    for name in suite() {
        let none = h.arm(name, PrefetchSetup::NoPrefetch);
        let hw44 = h.arm(name, PrefetchSetup::Hw4x4);
        let hw88 = h.arm(name, PrefetchSetup::Hw8x8);
        let (r44, r88) = (hw44.speedup_over(&none), hw88.speedup_over(&none));
        s44.push(r44);
        s88.push(r88);
        rep.row(*name, [format!("{:.4}", none.ipc()), pct(r44), pct(r88)]);
    }
    rep.footer("geomean", [String::new(), pct(geomean(&s44)), pct(geomean(&s88))]);
    rep.note("paper: 4x4 averages ~+35%, 8x8 ~+40% over no prefetching (Fig. 2).");
    h.emit(&rep);
}
