//! Figure 5: performance of software prefetching with and without
//! self-repairing, relative to the hardware-prefetching (8x8) baseline.

use tdo_bench::{geomean, pct, run_arm, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Figure 5: software prefetching speedup over the hw-8x8 baseline");
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "workload", "basic", "whole object", "self-repair"
    );
    println!("{}", "-".repeat(54));
    let (mut b, mut w, mut s) = (Vec::new(), Vec::new(), Vec::new());
    for name in suite() {
        let base = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let basic = run_arm(name, PrefetchSetup::SwBasic, &opts);
        let whole = run_arm(name, PrefetchSetup::SwWholeObject, &opts);
        let sr = run_arm(name, PrefetchSetup::SwSelfRepair, &opts);
        let (rb, rw, rs) = (
            basic.speedup_over(&base),
            whole.speedup_over(&base),
            sr.speedup_over(&base),
        );
        b.push(rb);
        w.push(rw);
        s.push(rs);
        println!("{:<10} {:>12} {:>14} {:>14}", name, pct(rb), pct(rw), pct(rs));
    }
    println!("{}", "-".repeat(54));
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "geomean",
        pct(geomean(&b)),
        pct(geomean(&w)),
        pct(geomean(&s))
    );
    println!("\npaper: basic ~+11%, self-repairing ~+23% on average; applu, facerec");
    println!("       and fma3d gain nothing further from self-repairing; dot and mcf");
    println!("       favour whole-object prefetching (Fig. 5).");
}
