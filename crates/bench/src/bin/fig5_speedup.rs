//! Figure 5: performance of software prefetching with and without
//! self-repairing, relative to the hardware-prefetching (8x8) baseline.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

const ARMS: [PrefetchSetup; 4] = [
    PrefetchSetup::Hw8x8,
    PrefetchSetup::SwBasic,
    PrefetchSetup::SwWholeObject,
    PrefetchSetup::SwSelfRepair,
];

fn main() {
    let h = Harness::from_args();
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        for arm in ARMS {
            spec.push(h.cell(name, arm));
        }
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig5")
        .title("Figure 5: software prefetching speedup over the hw-8x8 baseline")
        .col("basic", 12)
        .col("whole object", 14)
        .col("self-repair", 14)
        .rule(54);
    let (mut b, mut w, mut s) = (Vec::new(), Vec::new(), Vec::new());
    for name in suite() {
        let base = h.arm(name, PrefetchSetup::Hw8x8);
        let basic = h.arm(name, PrefetchSetup::SwBasic);
        let whole = h.arm(name, PrefetchSetup::SwWholeObject);
        let sr = h.arm(name, PrefetchSetup::SwSelfRepair);
        let (rb, rw, rs) =
            (basic.speedup_over(&base), whole.speedup_over(&base), sr.speedup_over(&base));
        b.push(rb);
        w.push(rw);
        s.push(rs);
        rep.row(*name, [pct(rb), pct(rw), pct(rs)]);
    }
    rep.footer("geomean", [pct(geomean(&b)), pct(geomean(&w)), pct(geomean(&s))]);
    rep.note("paper: basic ~+11%, self-repairing ~+23% on average; applu, facerec");
    rep.note("       and fma3d gain nothing further from self-repairing; dot and mcf");
    rep.note("       favour whole-object prefetching (Fig. 5).");
    h.emit(&rep);
}
