//! Table 2: the Trident hardware monitoring structures.

use tdo_bench::HarnessOpts;
use tdo_core::DltConfig;
use tdo_trident::{ProfilerConfig, WatchConfig};

fn main() {
    // Static configuration dump: flags are validated but have no effect.
    let _ = HarnessOpts::from_args();
    let p = ProfilerConfig::paper_baseline();
    let w = WatchConfig::paper_baseline();
    let d = DltConfig::paper_baseline();
    println!("Table 2: Trident hardware monitoring structures");
    println!("-----------------------------------------------");
    println!(
        "Branch profiler      {}-entry, {}-way associative, {}-saturating counters,",
        p.entries, p.assoc, p.hot_threshold
    );
    println!(
        "                     {} standalone {}-bit direction bitmaps",
        p.capture_units, p.max_bits
    );
    println!("Watch table          {}-entry; per-trace minimal execution time,", w.entries);
    println!("                     optimization flag, early-exit back-out");
    println!(
        "Delinquent load tbl  {}-entry, {}-way associative; access counter {},",
        d.entries, d.assoc, d.window
    );
    println!(
        "                     miss counter threshold {} (~{:.0}% miss rate),",
        d.miss_threshold,
        100.0 * f64::from(d.miss_threshold) / f64::from(d.window)
    );
    println!(
        "                     avg-miss-latency threshold {} cycles (half the L2-miss latency),",
        d.latency_threshold
    );
    println!(
        "                     stride confidence {}-max (+1 match / -{} mismatch), mature flag",
        d.conf_max, d.conf_dec
    );
}
