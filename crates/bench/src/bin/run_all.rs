//! Runs the complete evaluation matrix — every workload under every arm —
//! and emits one CSV row per run, for downstream plotting or regression
//! tracking.
//!
//! ```sh
//! cargo run --release -p tdo-bench --bin run_all [--quick] > results.csv
//! ```

use tdo_bench::{run_arm, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!(
        "workload,arm,cycles,orig_insts,ipc,helper_active_frac,\
         miss_in_traces_frac,miss_prefetched_frac,\
         hits,hit_prefetched,partial,miss,miss_by_prefetch,\
         traces_installed,reoptimizations,backouts,\
         dlt_events,insertions,prefetches_inserted,repairs,dist_up,dist_down,matured,\
         sw_pf_issued,sw_pf_redundant,sw_pf_dropped"
    );
    for name in suite() {
        for setup in PrefetchSetup::ALL {
            let r = run_arm(name, setup, &opts);
            let b = r.load_breakdown();
            println!(
                "{},{:?},{},{},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                name,
                setup,
                r.cycles,
                r.orig_insts,
                r.ipc(),
                r.helper_active_fraction(),
                r.miss_coverage_by_traces(),
                r.miss_coverage_by_prefetcher(),
                b[0],
                b[1],
                b[2],
                b[3],
                b[4],
                r.trident.traces_installed,
                r.trident.reoptimizations,
                r.trident.backouts,
                r.optimizer.events,
                r.optimizer.insertions,
                r.optimizer.prefetches_inserted,
                r.optimizer.repairs,
                r.optimizer.distance_up,
                r.optimizer.distance_down,
                r.optimizer.matured,
                r.mem.sw_prefetch_issued,
                r.mem.sw_prefetch_redundant,
                r.mem.sw_prefetch_dropped,
            );
        }
    }
}
