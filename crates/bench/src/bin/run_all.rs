//! Runs the complete evaluation matrix — every workload under every arm —
//! through the parallel experiment engine, and emits one row per run for
//! downstream plotting or regression tracking (CSV by default; `--format`
//! selects table or JSON lines).
//!
//! ```sh
//! cargo run --release -p tdo-bench --bin run_all [--quick] [--jobs N] > results.csv
//! ```

use tdo_bench::{suite, Harness};
use tdo_sim::{ExperimentSpec, Format, PrefetchSetup, Report};

fn main() {
    let h = Harness::from_args();
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        for setup in PrefetchSetup::ALL {
            spec.push(h.cell(name, setup));
        }
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("run_all");
    for (header, width) in [
        ("arm", 16),
        ("cycles", 12),
        ("orig_insts", 12),
        ("ipc", 8),
        ("helper_active_frac", 18),
        ("miss_in_traces_frac", 19),
        ("miss_prefetched_frac", 20),
        ("hits", 8),
        ("hit_prefetched", 14),
        ("partial", 8),
        ("miss", 8),
        ("miss_by_prefetch", 16),
        ("traces_installed", 16),
        ("reoptimizations", 15),
        ("backouts", 8),
        ("dlt_events", 10),
        ("insertions", 10),
        ("prefetches_inserted", 19),
        ("repairs", 7),
        ("dist_up", 7),
        ("dist_down", 9),
        ("matured", 7),
        ("sw_pf_issued", 12),
        ("sw_pf_redundant", 15),
        ("sw_pf_dropped", 13),
    ] {
        rep = rep.col(header, width);
    }
    for name in suite() {
        for setup in PrefetchSetup::ALL {
            let r = h.arm(name, setup);
            let b = r.load_breakdown();
            rep.row(
                *name,
                [
                    format!("{setup:?}"),
                    r.cycles.to_string(),
                    r.orig_insts.to_string(),
                    format!("{:.5}", r.ipc()),
                    format!("{:.5}", r.helper_active_fraction()),
                    format!("{:.5}", r.miss_coverage_by_traces()),
                    format!("{:.5}", r.miss_coverage_by_prefetcher()),
                    format!("{:.5}", b[0]),
                    format!("{:.5}", b[1]),
                    format!("{:.5}", b[2]),
                    format!("{:.5}", b[3]),
                    format!("{:.5}", b[4]),
                    r.trident.traces_installed.to_string(),
                    r.trident.reoptimizations.to_string(),
                    r.trident.backouts.to_string(),
                    r.optimizer.events.to_string(),
                    r.optimizer.insertions.to_string(),
                    r.optimizer.prefetches_inserted.to_string(),
                    r.optimizer.repairs.to_string(),
                    r.optimizer.distance_up.to_string(),
                    r.optimizer.distance_down.to_string(),
                    r.optimizer.matured.to_string(),
                    r.mem.sw_prefetch_issued.to_string(),
                    r.mem.sw_prefetch_redundant.to_string(),
                    r.mem.sw_prefetch_dropped.to_string(),
                ],
            );
        }
    }
    print!("{}", rep.render(h.opts.format_or(Format::Csv)));
}
