//! Figure 3 and section 5.1: the cost of the dynamic prefetch optimizer.
//!
//! * Figure 3: percentage of execution cycles the optimization (helper)
//!   thread is active, per benchmark.
//! * Section 5.1: total overhead with traces formed but never linked
//!   (pure helper-thread interference; the paper reports 0.6%).

use tdo_bench::{frac, mean, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report, SimConfig};

fn main() {
    let h = Harness::from_args();
    // Section 5.1 arms: an undisturbed hardware-only baseline, and the same
    // work with traces never linked.
    let base_cfg = {
        let mut cfg = h.opts.config(PrefetchSetup::Hw8x8);
        cfg.trident_enabled = false;
        cfg
    };
    let nolink_cfg = {
        let mut cfg = h.opts.config(PrefetchSetup::SwSelfRepair);
        cfg.no_link = true;
        cfg
    };
    let arms: [&SimConfig; 3] =
        [&h.opts.config(PrefetchSetup::SwSelfRepair), &base_cfg, &nolink_cfg];
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        for cfg in arms {
            spec.push(h.cell_cfg(name, cfg.clone()));
        }
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig3")
        .title("Figure 3: optimization-thread activity (self-repairing prefetcher)")
        .col("helper active", 16)
        .col("no-link overhead", 16)
        .rule(45);
    let (mut active, mut overhead) = (Vec::new(), Vec::new());
    for name in suite() {
        // Helper activity under the full self-repairing configuration.
        let sr = h.arm(name, PrefetchSetup::SwSelfRepair);
        let base = h.cfg(name, &base_cfg);
        let nolink = h.cfg(name, &nolink_cfg);
        let ov = (1.0 - nolink.ipc() / base.ipc()).max(0.0);
        active.push(sr.helper_active_fraction());
        overhead.push(ov);
        rep.row(*name, [frac(sr.helper_active_fraction()), frac(ov)]);
    }
    rep.footer("mean", [frac(mean(&active)), frac(mean(&overhead))]);
    rep.note("paper: helper threads active ~2.2% of cycles on average (Fig. 3);");
    rep.note("       never-linked optimizer overhead ~0.6% (section 5.1).");
    h.emit(&rep);
}
