//! Figure 3 and section 5.1: the cost of the dynamic prefetch optimizer.
//!
//! * Figure 3: percentage of execution cycles the optimization (helper)
//!   thread is active, per benchmark.
//! * Section 5.1: total overhead with traces formed but never linked
//!   (pure helper-thread interference; the paper reports 0.6%).

use tdo_bench::{frac, mean, run_cfg, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Figure 3: optimization-thread activity (self-repairing prefetcher)");
    println!("{:<10} {:>16} {:>16}", "workload", "helper active", "no-link overhead");
    println!("{}", "-".repeat(45));
    let (mut active, mut overhead) = (Vec::new(), Vec::new());
    for name in suite() {
        // Helper activity under the full self-repairing configuration.
        let sr = run_cfg(name, &opts.config(PrefetchSetup::SwSelfRepair), &opts);
        // Section 5.1: same work, traces never linked, vs an undisturbed
        // hardware-only baseline.
        let mut base_cfg = opts.config(PrefetchSetup::Hw8x8);
        base_cfg.trident_enabled = false;
        let base = run_cfg(name, &base_cfg, &opts);
        let mut nolink_cfg = opts.config(PrefetchSetup::SwSelfRepair);
        nolink_cfg.no_link = true;
        let nolink = run_cfg(name, &nolink_cfg, &opts);
        let ov = (1.0 - nolink.ipc() / base.ipc()).max(0.0);
        active.push(sr.helper_active_fraction());
        overhead.push(ov);
        println!(
            "{:<10} {:>16} {:>16}",
            name,
            frac(sr.helper_active_fraction()),
            frac(ov)
        );
    }
    println!("{}", "-".repeat(45));
    println!("{:<10} {:>16} {:>16}", "mean", frac(mean(&active)), frac(mean(&overhead)));
    println!("\npaper: helper threads active ~2.2% of cycles on average (Fig. 3);");
    println!("       never-linked optimizer overhead ~0.6% (section 5.1).");
}
