//! Figure 4: percentage of load misses covered by hot traces, and the
//! fraction the software prefetcher can target.

use tdo_bench::{frac, mean, run_arm, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Figure 4: load-miss coverage by hot traces and the prefetcher");
    println!("{:<10} {:>14} {:>14}", "workload", "in hot traces", "prefetched");
    println!("{}", "-".repeat(40));
    let (mut traces, mut covered) = (Vec::new(), Vec::new());
    for name in suite() {
        let r = run_arm(name, PrefetchSetup::SwSelfRepair, &opts);
        traces.push(r.miss_coverage_by_traces());
        covered.push(r.miss_coverage_by_prefetcher());
        println!(
            "{:<10} {:>14} {:>14}",
            name,
            frac(r.miss_coverage_by_traces()),
            frac(r.miss_coverage_by_prefetcher())
        );
    }
    println!("{}", "-".repeat(40));
    println!("{:<10} {:>14} {:>14}", "mean", frac(mean(&traces)), frac(mean(&covered)));
    println!("\npaper: hot traces cover >85% of load misses, ~55% potentially");
    println!("       prefetched; dot and parser are the low-coverage outliers (Fig. 4).");
}
