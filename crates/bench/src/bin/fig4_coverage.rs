//! Figure 4: percentage of load misses covered by hot traces, and the
//! fraction the software prefetcher can target.

use tdo_bench::{frac, mean, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

fn main() {
    let h = Harness::from_args();
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        spec.push(h.cell(name, PrefetchSetup::SwSelfRepair));
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("fig4")
        .title("Figure 4: load-miss coverage by hot traces and the prefetcher")
        .col("in hot traces", 14)
        .col("prefetched", 14);
    let (mut traces, mut covered) = (Vec::new(), Vec::new());
    for name in suite() {
        let r = h.arm(name, PrefetchSetup::SwSelfRepair);
        traces.push(r.miss_coverage_by_traces());
        covered.push(r.miss_coverage_by_prefetcher());
        rep.row(*name, [frac(r.miss_coverage_by_traces()), frac(r.miss_coverage_by_prefetcher())]);
    }
    rep.footer("mean", [frac(mean(&traces)), frac(mean(&covered))]);
    rep.note("paper: hot traces cover >85% of load misses, ~55% potentially");
    rep.note("       prefetched; dot and parser are the low-coverage outliers (Fig. 4).");
    h.emit(&rep);
}
