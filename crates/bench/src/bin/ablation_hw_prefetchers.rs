//! Ablation: hardware prefetcher generations (paper section 2.2's lineage) —
//! tagged next-line prefetching (Smith & Hsu) versus predictor-directed
//! stream buffers (Sherwood et al., the paper's baseline), versus the
//! self-repairing software prefetcher on top of the 8x8 baseline.

use tdo_bench::{geomean, pct, run_arm, run_cfg, suite, HarnessOpts};
use tdo_sim::PrefetchSetup;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("Ablation: hardware prefetcher generations (speedup over no prefetching)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "next-line", "sb 4x4", "sb 8x8", "8x8 + sw-sr"
    );
    println!("{}", "-".repeat(62));
    let mut cols: [Vec<f64>; 4] = Default::default();
    for name in suite() {
        let none = run_arm(name, PrefetchSetup::NoPrefetch, &opts);
        let mut nl_cfg = opts.config(PrefetchSetup::NoPrefetch);
        nl_cfg.mem.next_line = true;
        let nl = run_cfg(name, &nl_cfg, &opts);
        let sb44 = run_arm(name, PrefetchSetup::Hw4x4, &opts);
        let sb88 = run_arm(name, PrefetchSetup::Hw8x8, &opts);
        let sr = run_arm(name, PrefetchSetup::SwSelfRepair, &opts);
        let vals = [
            nl.speedup_over(&none),
            sb44.speedup_over(&none),
            sb88.speedup_over(&none),
            sr.speedup_over(&none),
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            name,
            pct(vals[0]),
            pct(vals[1]),
            pct(vals[2]),
            pct(vals[3])
        );
    }
    println!("{}", "-".repeat(62));
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "geomean",
        pct(geomean(&cols[0])),
        pct(geomean(&cols[1])),
        pct(geomean(&cols[2])),
        pct(geomean(&cols[3]))
    );
    println!("\nexpected shape: next-line < stream buffers < stream buffers + self-repair.");
}
