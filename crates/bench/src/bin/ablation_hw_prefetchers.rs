//! Ablation: hardware prefetcher generations (paper section 2.2's lineage) —
//! tagged next-line prefetching (Smith & Hsu) versus predictor-directed
//! stream buffers (Sherwood et al., the paper's baseline), versus the
//! self-repairing software prefetcher on top of the 8x8 baseline.

use tdo_bench::{geomean, pct, suite, Harness};
use tdo_sim::{ExperimentSpec, PrefetchSetup, Report};

const ARMS: [PrefetchSetup; 4] = [
    PrefetchSetup::NoPrefetch,
    PrefetchSetup::Hw4x4,
    PrefetchSetup::Hw8x8,
    PrefetchSetup::SwSelfRepair,
];

fn main() {
    let h = Harness::from_args();
    let nl_cfg = {
        let mut cfg = h.opts.config(PrefetchSetup::NoPrefetch);
        cfg.mem.next_line = true;
        cfg
    };
    let mut spec = ExperimentSpec::new();
    for name in suite() {
        for arm in ARMS {
            spec.push(h.cell(name, arm));
        }
        spec.push(h.cell_cfg(name, nl_cfg.clone()));
    }
    let _ = h.run(&spec);
    h.dump_trace(&spec);

    let mut rep = Report::new("ablation_hw_prefetchers")
        .title("Ablation: hardware prefetcher generations (speedup over no prefetching)")
        .col("next-line", 12)
        .col("sb 4x4", 12)
        .col("sb 8x8", 12)
        .col("8x8 + sw-sr", 12)
        .rule(62);
    let mut cols: [Vec<f64>; 4] = Default::default();
    for name in suite() {
        let none = h.arm(name, PrefetchSetup::NoPrefetch);
        let nl = h.cfg(name, &nl_cfg);
        let sb44 = h.arm(name, PrefetchSetup::Hw4x4);
        let sb88 = h.arm(name, PrefetchSetup::Hw8x8);
        let sr = h.arm(name, PrefetchSetup::SwSelfRepair);
        let vals = [
            nl.speedup_over(&none),
            sb44.speedup_over(&none),
            sb88.speedup_over(&none),
            sr.speedup_over(&none),
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        rep.row(*name, vals.map(pct));
    }
    rep.footer("geomean", cols.iter().map(|c| pct(geomean(c))));
    rep.note("expected shape: next-line < stream buffers < stream buffers + self-repair.");
    h.emit(&rep);
}
