//! Property test: the timed SMT core computes exactly the same architectural
//! results as a trivial reference interpreter, for random straight-line
//! programs over ALU, move, load/store and lda instructions.

use proptest::prelude::*;
use tdo_cpu::{CodeImage, Core, CpuConfig};
use tdo_isa::{encode, AluOp, Inst, LoadKind, Program, Reg};
use tdo_mem::{Hierarchy, MemConfig, Memory};

const DATA_BASE: u64 = 0x20_0000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    // Integer registers 0..8 keep programs dense; avoid r31 (zero).
    (0u8..8).prop_map(Reg::int)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let alu = prop::sample::select(AluOp::ALL.to_vec());
    prop_oneof![
        (alu.clone(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, ra, rb, rc)| Inst::Op { op, ra, rb, rc }),
        (alu, arb_reg(), -1000i64..1000, arb_reg())
            .prop_map(|(op, ra, imm, rc)| Inst::OpImm { op, ra, imm, rc }),
        (arb_reg(), arb_reg(), -64i64..64).prop_map(|(ra, rb, imm)| Inst::Lda { ra, rb, imm }),
        (arb_reg(), arb_reg()).prop_map(|(ra, rc)| Inst::Move { ra, rc }),
        // Loads/stores at bounded offsets from the data base register (r9).
        (arb_reg(), 0i64..512).prop_map(|(ra, off)| Inst::Load {
            ra,
            rb: Reg::int(9),
            off: off * 8,
            kind: LoadKind::Int,
        }),
        (arb_reg(), 0i64..512).prop_map(|(ra, off)| Inst::Store {
            ra,
            rb: Reg::int(9),
            off: off * 8,
        }),
    ]
}

/// The reference interpreter: pure architectural semantics, no timing.
fn reference_run(insts: &[Inst]) -> ([u64; 64], Vec<(u64, u64)>) {
    let mut regs = [0u64; 64];
    regs[9] = DATA_BASE;
    let mut mem: std::collections::BTreeMap<u64, u64> = Default::default();
    for inst in insts {
        match *inst {
            Inst::Op { op, ra, rb, rc } => {
                let v = op.apply(regs[ra.index()], regs[rb.index()]);
                if !rc.is_zero() {
                    regs[rc.index()] = v;
                }
            }
            Inst::OpImm { op, ra, imm, rc } => {
                let v = op.apply(regs[ra.index()], imm as u64);
                if !rc.is_zero() {
                    regs[rc.index()] = v;
                }
            }
            Inst::Lda { ra, rb, imm } => {
                if !ra.is_zero() {
                    regs[ra.index()] = regs[rb.index()].wrapping_add(imm as u64);
                }
            }
            Inst::Move { ra, rc } => {
                if !rc.is_zero() {
                    regs[rc.index()] = regs[ra.index()];
                }
            }
            Inst::Load { ra, rb, off, .. } => {
                let addr = regs[rb.index()].wrapping_add(off as u64);
                if !ra.is_zero() {
                    regs[ra.index()] = mem.get(&addr).copied().unwrap_or(0);
                }
            }
            Inst::Store { ra, rb, off } => {
                let addr = regs[rb.index()].wrapping_add(off as u64);
                mem.insert(addr, regs[ra.index()]);
            }
            _ => unreachable!("generator emits only straight-line instructions"),
        }
    }
    (regs, mem.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn core_matches_reference_interpreter(insts in prop::collection::vec(arb_inst(), 1..120)) {
        // Build the program: initialize r9 = data base, then the body, halt.
        let mut code = Vec::new();
        code.push(encode(&Inst::Lda { ra: Reg::int(9), rb: Reg::ZERO, imm: DATA_BASE as i64 }).unwrap());
        for i in &insts {
            code.push(encode(i).unwrap());
        }
        code.push(encode(&Inst::Halt).unwrap());
        let prog = Program {
            name: "prop".into(),
            entry: 0x1000,
            code_base: 0x1000,
            code,
            data: vec![],
        };
        let img = CodeImage::new(&prog, 0x100_0000);
        let mut data = Memory::new();
        let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
        let mut cycles = 0u64;
        while !core.halted() {
            core.cycle(&img, &mut data, &mut hier);
            cycles += 1;
            prop_assert!(cycles < 2_000_000, "program must terminate");
        }

        let (ref_regs, ref_mem) = reference_run(&insts);
        for i in 0..31u8 {
            let r = Reg::int(i);
            prop_assert_eq!(core.reg(r), ref_regs[r.index()], "register r{} diverged", i);
        }
        for (addr, val) in ref_mem {
            prop_assert_eq!(data.read_u64(addr), val, "memory {:#x} diverged", addr);
        }

        // Timing sanity: in-order 4-wide issue can never beat 1 instruction
        // per issue slot, and committed counts match the program.
        let n = core.stats.main_committed;
        prop_assert_eq!(n, insts.len() as u64 + 2);
        prop_assert!(core.stats.cycles >= n.div_ceil(4));
    }
}
