//! Randomized test: the timed SMT core computes exactly the same
//! architectural results as a trivial reference interpreter, for random
//! straight-line programs over ALU, move, load/store and lda instructions.
//! (Seeded `tdo_rand` sweeps; `--features exhaustive` widens them.)

use tdo_cpu::{CodeImage, Core, CpuConfig};
use tdo_isa::{encode, AluOp, Inst, LoadKind, Program, Reg};
use tdo_mem::{Hierarchy, MemConfig, Memory};
use tdo_rand::{cases, Rng};

const DATA_BASE: u64 = 0x20_0000;

fn arb_reg(rng: &mut Rng) -> Reg {
    // Integer registers 0..8 keep programs dense; avoid r31 (zero).
    Reg::int(rng.gen_range(0..8) as u8)
}

fn arb_inst(rng: &mut Rng) -> Inst {
    match rng.gen_range(0..6) {
        0 => Inst::Op {
            op: *rng.choose(&AluOp::ALL),
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            rc: arb_reg(rng),
        },
        1 => Inst::OpImm {
            op: *rng.choose(&AluOp::ALL),
            ra: arb_reg(rng),
            imm: rng.gen_range_i64(-1000..1000),
            rc: arb_reg(rng),
        },
        2 => Inst::Lda { ra: arb_reg(rng), rb: arb_reg(rng), imm: rng.gen_range_i64(-64..64) },
        3 => Inst::Move { ra: arb_reg(rng), rc: arb_reg(rng) },
        // Loads/stores at bounded offsets from the data base register (r9).
        4 => Inst::Load {
            ra: arb_reg(rng),
            rb: Reg::int(9),
            off: rng.gen_range_i64(0..512) * 8,
            kind: LoadKind::Int,
        },
        _ => Inst::Store { ra: arb_reg(rng), rb: Reg::int(9), off: rng.gen_range_i64(0..512) * 8 },
    }
}

/// The reference interpreter: pure architectural semantics, no timing.
fn reference_run(insts: &[Inst]) -> ([u64; 64], Vec<(u64, u64)>) {
    let mut regs = [0u64; 64];
    regs[9] = DATA_BASE;
    let mut mem: std::collections::BTreeMap<u64, u64> = Default::default();
    for inst in insts {
        match *inst {
            Inst::Op { op, ra, rb, rc } => {
                let v = op.apply(regs[ra.index()], regs[rb.index()]);
                if !rc.is_zero() {
                    regs[rc.index()] = v;
                }
            }
            Inst::OpImm { op, ra, imm, rc } => {
                let v = op.apply(regs[ra.index()], imm as u64);
                if !rc.is_zero() {
                    regs[rc.index()] = v;
                }
            }
            Inst::Lda { ra, rb, imm } => {
                if !ra.is_zero() {
                    regs[ra.index()] = regs[rb.index()].wrapping_add(imm as u64);
                }
            }
            Inst::Move { ra, rc } => {
                if !rc.is_zero() {
                    regs[rc.index()] = regs[ra.index()];
                }
            }
            Inst::Load { ra, rb, off, .. } => {
                let addr = regs[rb.index()].wrapping_add(off as u64);
                if !ra.is_zero() {
                    regs[ra.index()] = mem.get(&addr).copied().unwrap_or(0);
                }
            }
            Inst::Store { ra, rb, off } => {
                let addr = regs[rb.index()].wrapping_add(off as u64);
                mem.insert(addr, regs[ra.index()]);
            }
            _ => unreachable!("generator emits only straight-line instructions"),
        }
    }
    (regs, mem.into_iter().collect())
}

#[test]
fn core_matches_reference_interpreter() {
    let mut rng = Rng::new(0xc0de_0001);
    for case in 0..cases(64) {
        let n = rng.gen_range(1..120);
        let insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng)).collect();

        // Build the program: initialize r9 = data base, then the body, halt.
        let mut code = Vec::new();
        code.push(
            encode(&Inst::Lda { ra: Reg::int(9), rb: Reg::ZERO, imm: DATA_BASE as i64 }).unwrap(),
        );
        for i in &insts {
            code.push(encode(i).unwrap());
        }
        code.push(encode(&Inst::Halt).unwrap());
        let prog =
            Program { name: "prop".into(), entry: 0x1000, code_base: 0x1000, code, data: vec![] };
        let img = CodeImage::new(&prog, 0x100_0000);
        let mut data = Memory::new();
        let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
        let mut cycles = 0u64;
        while !core.halted() {
            core.cycle(&img, &mut data, &mut hier);
            cycles += 1;
            assert!(cycles < 2_000_000, "case {case}: program must terminate");
        }

        let (ref_regs, ref_mem) = reference_run(&insts);
        for i in 0..31u8 {
            let r = Reg::int(i);
            assert_eq!(core.reg(r), ref_regs[r.index()], "case {case}: register r{i} diverged");
        }
        for (addr, val) in ref_mem {
            assert_eq!(data.read_u64(addr), val, "case {case}: memory {addr:#x} diverged");
        }

        // Timing sanity: in-order 4-wide issue can never beat 1 instruction
        // per issue slot, and committed counts match the program.
        let committed = core.stats.main_committed;
        assert_eq!(committed, insts.len() as u64 + 2, "case {case}");
        assert!(core.stats.cycles >= committed.div_ceil(4), "case {case}");
    }
}
