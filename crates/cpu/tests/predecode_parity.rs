//! Differential parity suite for the predecoded hot loop.
//!
//! The core normally executes from the decode-once [`tdo_cpu::PredecodedOp`]
//! arrays; `Machine::set_per_fetch_decode(true)` forces it back to decoding
//! the stored word on every fetch, exactly as the pre-predecode simulator
//! did. These tests prove the two modes are *commit-for-commit identical* —
//! same cycles, same stats, same probe-event trajectories, same persisted
//! bytes — across all 14 workloads, including the arm where the optimizer
//! patches prefetch-distance immediates into live code mid-run (the path
//! that exercises the patch→re-predecode invalidation protocol).

use tdo_sim::{
    encode_result, run, Cell, ExperimentSpec, Machine, PrefetchSetup, Runner, SimConfig, SimResult,
};
use tdo_workloads::{build, names, Scale};

/// Short but optimizer-exercising window (same shape the engine tests use;
/// the suite runs unoptimized under `cargo test`, so keep cells small).
fn cfg(setup: PrefetchSetup) -> SimConfig {
    let mut cfg = SimConfig::test(setup);
    cfg.warmup_insts = 5_000;
    cfg.measure_insts = 45_000;
    cfg
}

/// Runs one workload in the given decode mode and returns its result.
fn run_mode(workload: &str, setup: PrefetchSetup, per_fetch: bool) -> SimResult {
    let w = build(workload, Scale::Test).expect("known workload");
    let mut m = Machine::new(&w, cfg(setup));
    m.set_per_fetch_decode(per_fetch);
    m.run()
}

/// The persisted representation is the strongest equality we have: every
/// counter the store round-trips, as raw codec words.
fn digest(r: &SimResult) -> Vec<u64> {
    encode_result(r)
}

#[test]
fn all_workloads_identical_without_patching() {
    // NoPrefetch: the optimizer never runs, so the code image is immutable
    // and parity isolates the predecoded *execution* path.
    for name in names() {
        let pre = run_mode(name, PrefetchSetup::NoPrefetch, false);
        let raw = run_mode(name, PrefetchSetup::NoPrefetch, true);
        assert_eq!(digest(&pre), digest(&raw), "{name}: predecoded != per-fetch (no-patch arm)");
    }
}

#[test]
fn all_workloads_identical_with_mid_run_distance_patching() {
    // SwSelfRepair: the helper thread installs prefetch-carrying traces and
    // then repairs their distances in place while the main context executes
    // them — every patched word must be re-predecoded before its next fetch.
    let mut total_repairs = 0u64;
    let mut total_groups = 0u64;
    for name in names() {
        let pre = run_mode(name, PrefetchSetup::SwSelfRepair, false);
        let raw = run_mode(name, PrefetchSetup::SwSelfRepair, true);
        assert_eq!(digest(&pre), digest(&raw), "{name}: predecoded != per-fetch (self-repair arm)");
        total_repairs += pre.optimizer.repairs;
        total_groups += pre.optimizer.groups;
    }
    // The whole point of this arm: prove the suite actually covered
    // mid-execution patches, not just cold predecode.
    assert!(total_groups > 0, "self-repair arm installed no prefetch groups");
    assert!(total_repairs > 0, "self-repair arm performed no distance repairs");
}

#[test]
fn repair_trajectories_match_in_both_modes() {
    // Beyond end-state stats: the full cycle-stamped probe-event log (trace
    // installs, repairs, backouts...) must be identical event-for-event.
    for name in ["mcf", "equake", "art"] {
        let w = build(name, Scale::Test).expect("known workload");
        let trace = |per_fetch: bool| {
            let recorder = tdo_obs::Recorder::shared();
            let mut m = Machine::new(&w, cfg(PrefetchSetup::SwSelfRepair));
            m.set_per_fetch_decode(per_fetch);
            m.set_probe(recorder.clone());
            let r = m.run();
            let rec = std::rc::Rc::try_unwrap(recorder).expect("probe released").into_inner();
            (digest(&r), rec.to_jsonl())
        };
        let (pre_digest, pre_events) = trace(false);
        let (raw_digest, raw_events) = trace(true);
        assert_eq!(pre_digest, raw_digest, "{name}: traced-run digests differ");
        assert_eq!(pre_events, raw_events, "{name}: repair trajectories differ");
    }
}

#[test]
fn predecoded_results_are_stable_across_worker_counts() {
    // The engine memoizes and parallelizes over the predecoded machines;
    // serial and 4-way runs must produce the same digests in cell order.
    let mut spec = ExperimentSpec::new();
    for name in ["mcf", "gap", "swim"] {
        for setup in [PrefetchSetup::NoPrefetch, PrefetchSetup::SwSelfRepair] {
            spec.push(Cell::new(name, Scale::Test, cfg(setup)));
        }
    }
    let serial: Vec<Vec<u64>> = Runner::new(1).run_spec(&spec).iter().map(|r| digest(r)).collect();
    let parallel: Vec<Vec<u64>> =
        Runner::new(4).run_spec(&spec).iter().map(|r| digest(r)).collect();
    assert_eq!(serial, parallel);
}

#[test]
fn plain_run_helper_uses_predecoded_mode() {
    // `run()` is what the engine calls; confirm it matches an explicit
    // predecoded machine, so the suite's `run_mode(false)` arm really is
    // the production path.
    let w = build("dot", Scale::Test).expect("known workload");
    let via_helper = run(&w, &cfg(PrefetchSetup::SwSelfRepair));
    let via_machine = run_mode("dot", PrefetchSetup::SwSelfRepair, false);
    assert_eq!(digest(&via_helper), digest(&via_machine));
}
