//! Commit records — the event stream the core hands to the monitoring
//! hardware (branch profiler, watch table, delinquent load table) each cycle.

use tdo_mem::{AccessResult, PrefetchOutcome};

/// What one committed instruction did.
#[derive(Clone, Copy, Debug)]
pub enum CommitKind {
    /// ALU/move/nop — nothing the monitors care about beyond the PC.
    Simple,
    /// A conditional branch.
    Branch {
        /// Whether it was taken.
        taken: bool,
        /// The taken-path target.
        target: u64,
        /// Whether the predictor got it wrong.
        mispredicted: bool,
    },
    /// An unconditional control transfer (br/jmp).
    Jump {
        /// The target address.
        target: u64,
    },
    /// A demand load.
    Load {
        /// Effective address.
        addr: u64,
        /// Timing classification from the hierarchy.
        result: AccessResult,
    },
    /// A store.
    Store {
        /// Effective address.
        addr: u64,
    },
    /// A software prefetch.
    Prefetch {
        /// Prefetched effective address.
        addr: u64,
        /// What the hierarchy did with it.
        outcome: PrefetchOutcome,
    },
    /// The context halted.
    Halt,
}

/// One committed instruction.
#[derive(Clone, Copy, Debug)]
pub struct Commit {
    /// Hardware context (0 = main thread, 1 = helper).
    pub ctx: usize,
    /// Address of the instruction.
    pub pc: u64,
    /// Address of the next instruction to execute.
    pub next_pc: u64,
    /// Cycle of issue.
    pub cycle: u64,
    /// Payload.
    pub kind: CommitKind,
}

impl Commit {
    /// Whether this commit is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.kind, CommitKind::Branch { .. })
    }

    /// Whether this commit is a demand load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, CommitKind::Load { .. })
    }
}
