//! Conditional-branch predictor: bimodal + gshare with a meta chooser,
//! a practical stand-in for the 2bcgskew/meta arrangement of Table 1.

/// A two-bit saturating counter.
#[derive(Clone, Copy, Default)]
struct Ctr2(u8);

impl Ctr2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Hybrid branch predictor.
///
/// * gshare: 64 K two-bit counters indexed by `pc ^ global_history`
/// * bimodal: 16 K two-bit counters indexed by `pc`
/// * meta: 64 K two-bit choosers picking between them
pub struct BranchPredictor {
    gshare: Vec<Ctr2>,
    bimodal: Vec<Ctr2>,
    meta: Vec<Ctr2>,
    history: u64,
    gmask: u64,
    bmask: u64,
    /// Conditional branches predicted (stat).
    pub predictions: u64,
    /// Conditional branches mispredicted (stat).
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Builds the Table 1 predictor (64 K gshare/meta, 16 K bimodal).
    #[must_use]
    pub fn paper_baseline() -> BranchPredictor {
        BranchPredictor::new(64 << 10, 16 << 10)
    }

    /// Builds a predictor with the given (power-of-two) table sizes.
    #[must_use]
    pub fn new(gshare_entries: usize, bimodal_entries: usize) -> BranchPredictor {
        assert!(gshare_entries.is_power_of_two() && bimodal_entries.is_power_of_two());
        BranchPredictor {
            // Weakly-taken initial state converges fastest for loop code.
            gshare: vec![Ctr2(2); gshare_entries],
            bimodal: vec![Ctr2(2); bimodal_entries],
            meta: vec![Ctr2(2); gshare_entries],
            history: 0,
            gmask: gshare_entries as u64 - 1,
            bmask: bimodal_entries as u64 - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn gidx(&self, pc: u64) -> usize {
        (((pc >> 3) ^ self.history) & self.gmask) as usize
    }

    fn bidx(&self, pc: u64) -> usize {
        ((pc >> 3) & self.bmask) as usize
    }

    /// Predicts, updates all tables with the actual outcome, and reports
    /// whether the prediction was wrong.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let gi = self.gidx(pc);
        let bi = self.bidx(pc);
        let g = self.gshare[gi].taken();
        let b = self.bimodal[bi].taken();
        let use_gshare = self.meta[gi].taken();
        let prediction = if use_gshare { g } else { b };

        // Meta trains toward whichever component was right (when they differ).
        if g != b {
            self.meta[gi].update(g == taken);
        }
        self.gshare[gi].update(taken);
        self.bimodal[bi].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & 0xffff;

        self.predictions += 1;
        let wrong = prediction != taken;
        if wrong {
            self.mispredictions += 1;
        }
        wrong
    }

    /// Misprediction rate over everything seen so far.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_quickly() {
        let mut bp = BranchPredictor::new(1024, 256);
        for _ in 0..100 {
            bp.predict_and_update(0x100, true);
        }
        // After warmup the branch is predicted correctly.
        let before = bp.mispredictions;
        for _ in 0..100 {
            bp.predict_and_update(0x100, true);
        }
        assert_eq!(bp.mispredictions, before);
    }

    #[test]
    fn learns_loop_exit_pattern_via_history() {
        let mut bp = BranchPredictor::new(1 << 16, 1 << 14);
        // Pattern: taken 7, not-taken 1, repeating (inner loop of 8).
        let mut wrong_late = 0;
        for i in 0..4000u64 {
            let taken = i % 8 != 7;
            let wrong = bp.predict_and_update(0x200, taken);
            if i > 2000 && wrong {
                wrong_late += 1;
            }
        }
        // gshare should capture the period-8 pattern almost perfectly.
        assert!(wrong_late < 40, "late mispredictions: {wrong_late}");
    }

    #[test]
    fn miss_rate_reflects_random_behaviour() {
        let mut bp = BranchPredictor::new(1024, 256);
        // Deterministic pseudo-random outcomes.
        let mut x = 0x12345678u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            bp.predict_and_update(0x300, (x >> 63) != 0);
        }
        let r = bp.miss_rate();
        assert!(r > 0.3 && r < 0.7, "random stream must be hard: {r}");
    }
}
