//! Core configuration (paper Table 1, processor side).

/// Configuration of the SMT core's timing model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Total instructions issued per cycle across both contexts.
    pub issue_width: u32,
    /// Loads/stores/prefetches issued per cycle.
    pub mem_ports: u32,
    /// Floating-point operations issued per cycle.
    pub fp_units: u32,
    /// Cycles lost on a conditional-branch misprediction (front-end refill of
    /// the 20-stage pipeline).
    pub mispredict_penalty: u64,
    /// Latency of FP add/sub.
    pub fp_add_latency: u64,
    /// Latency of FP multiply.
    pub fp_mul_latency: u64,
    /// Latency of FP divide.
    pub fp_div_latency: u64,
    /// Latency of integer multiply.
    pub int_mul_latency: u64,
    /// Cycles from a helper-thread spawn request until the helper begins
    /// executing optimizer code (the paper simulates 2000).
    pub helper_startup_cycles: u64,
    /// Base address of the runtime optimizer's scratch buffer; the helper
    /// thread's synthetic instruction stream loads from this region, so the
    /// optimizer's cache footprint is modelled.
    pub helper_scratch_base: u64,
    /// Size of the optimizer scratch buffer in bytes.
    pub helper_scratch_bytes: u64,
}

impl CpuConfig {
    /// The paper's baseline core: 4-wide issue, 2 load/store ports, 2 FP
    /// units, 20-stage pipeline (≈15-cycle mispredict refill), 2000-cycle
    /// helper-thread startup.
    #[must_use]
    pub fn paper_baseline() -> CpuConfig {
        CpuConfig {
            issue_width: 4,
            mem_ports: 2,
            fp_units: 2,
            mispredict_penalty: 15,
            fp_add_latency: 4,
            fp_mul_latency: 4,
            fp_div_latency: 16,
            int_mul_latency: 3,
            helper_startup_cycles: 2000,
            helper_scratch_base: 0x7000_0000,
            helper_scratch_bytes: 32 << 10,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let c = CpuConfig::paper_baseline();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.mem_ports, 2);
        assert_eq!(c.fp_units, 2);
        assert_eq!(c.helper_startup_cycles, 2000);
    }
}
