//! Core-side statistics.

/// Counters kept by the SMT core.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed by the main thread (context 0).
    pub main_committed: u64,
    /// Synthetic optimizer instructions committed by the helper (context 1).
    pub helper_committed: u64,
    /// Cycles during which the helper context was active (starting up or
    /// executing) — the numerator of the paper's Figure 3.
    pub helper_active_cycles: u64,
    /// Helper jobs completed.
    pub helper_jobs: u64,
    /// Demand loads committed by the main thread.
    pub main_loads: u64,
    /// Stores committed by the main thread.
    pub main_stores: u64,
    /// Software prefetches committed by the main thread.
    pub main_prefetches: u64,
}

impl CpuStats {
    /// Raw main-thread IPC (committed instructions / cycles).
    #[must_use]
    pub fn main_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.main_committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the helper was active (Figure 3).
    #[must_use]
    pub fn helper_active_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.helper_active_cycles as f64 / self.cycles as f64
        }
    }
}
