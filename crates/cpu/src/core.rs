//! The cycle-based SMT core.
//!
//! Two hardware contexts share the fetch/issue bandwidth of one pipeline.
//! Context 0 runs the simulated program; context 1 is the *helper* context
//! that Trident occupies to run the dynamic optimizer concurrently with the
//! main thread (paper §3.1). The main thread has issue priority; the helper
//! consumes only leftover slots, which is what keeps the measured optimizer
//! overhead small (paper §5.1).
//!
//! The timing model is in-order issue with out-of-order completion: a
//! register scoreboard delays consumers of long-latency results (loads in
//! particular are non-blocking), which preserves the property the paper's
//! evaluation rests on — exposed memory latency, not raw pipeline shape,
//! dominates performance.

use tdo_isa::{AluOp, FpuOp, Inst, INST_BYTES};
use tdo_mem::{Hierarchy, Memory};

use crate::branch::BranchPredictor;
use crate::code::{CodeImage, PredecodedOp};
use crate::commit::{Commit, CommitKind};
use crate::config::CpuConfig;
use crate::stats::CpuStats;

/// Number of hardware contexts.
pub const NUM_CONTEXTS: usize = 2;

/// Index of the main (program) context.
pub const MAIN_CTX: usize = 0;

/// Index of the helper (optimizer) context.
pub const HELPER_CTX: usize = 1;

/// Synthetic PC base used for helper-thread memory accesses so they are
/// distinguishable in the hierarchy's PC-indexed structures.
const HELPER_PC_BASE: u64 = 0x7f00_0000;

#[derive(Clone)]
struct Context {
    pc: u64,
    regs: [u64; 64],
    /// Scoreboard, one slot per register plus a permanently-ready 65th
    /// slot that [`crate::code::NO_USE`] operand indices point at — the
    /// issue loop then needs no `Option` tests on its sources.
    ready_at: [u64; 65],
    stall_until: u64,
    halted: bool,
}

impl Context {
    fn new(entry: u64) -> Context {
        Context { pc: entry, regs: [0; 64], ready_at: [0; 65], stall_until: 0, halted: false }
    }
}

/// A unit of optimizer work executed on the helper context.
///
/// The real analysis runs natively (in the Trident/prefetcher crates); this
/// job charges its *simulated* cost: a startup delay followed by a synthetic
/// instruction stream that occupies issue slots and touches the optimizer's
/// scratch memory.
#[derive(Clone, Copy, Debug)]
pub struct HelperJob {
    /// Caller-chosen identifier, reported back on completion.
    pub id: u64,
    /// Number of optimizer instructions to simulate.
    pub instructions: u64,
}

enum HelperState {
    Idle,
    Starting { job: HelperJob, ready_at: u64 },
    Running { job: HelperJob, remaining: u64, index: u64, dep_ready: u64 },
}

/// The SMT core.
pub struct Core {
    cfg: CpuConfig,
    /// The conditional-branch predictor (public for inspection).
    pub bp: BranchPredictor,
    cycle: u64,
    ctx: Context,
    helper: HelperState,
    finished_job: Option<u64>,
    commits: Vec<Commit>,
    /// Counters.
    pub stats: CpuStats,
}

impl Core {
    /// Builds a core whose main context starts at `entry`.
    #[must_use]
    pub fn new(cfg: CpuConfig, entry: u64) -> Core {
        Core {
            cfg,
            bp: BranchPredictor::paper_baseline(),
            cycle: 0,
            ctx: Context::new(entry),
            helper: HelperState::Idle,
            finished_job: None,
            commits: Vec::with_capacity(8),
            stats: CpuStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Whether the main context has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.ctx.halted
    }

    /// Current main-thread PC (test/debug aid).
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.ctx.pc
    }

    /// Reads a main-thread register (test/debug aid).
    #[must_use]
    pub fn reg(&self, r: tdo_isa::Reg) -> u64 {
        self.ctx.regs[r.index()]
    }

    /// Whether the helper context is free to accept a job.
    #[must_use]
    pub fn helper_idle(&self) -> bool {
        matches!(self.helper, HelperState::Idle)
    }

    /// Starts an optimizer job on the helper context.
    ///
    /// Returns `false` (and does nothing) if the helper is busy — the caller
    /// must queue the event, as Trident does when no context is available.
    pub fn start_helper(&mut self, job: HelperJob) -> bool {
        if !self.helper_idle() {
            return false;
        }
        self.helper =
            HelperState::Starting { job, ready_at: self.cycle + self.cfg.helper_startup_cycles };
        true
    }

    /// Takes the id of a helper job that completed, if one just did.
    pub fn take_finished_job(&mut self) -> Option<u64> {
        self.finished_job.take()
    }

    /// If the core provably cannot commit anything before some future
    /// cycle, returns that cycle; `None` means work may happen right now.
    ///
    /// Only valid when the helper context is idle (a running helper makes
    /// progress every cycle). The main context is stalled until the later
    /// of its pipeline stall and the scoreboard readiness of the next
    /// instruction's sources; nothing else in the core advances state on
    /// an idle cycle, so the driver may batch-skip the clock to the hint
    /// (see [`Core::skip_to`]) without changing architectural behaviour.
    #[must_use]
    pub fn idle_hint(&self, code: &CodeImage) -> Option<u64> {
        if !matches!(self.helper, HelperState::Idle) || self.ctx.halted {
            return None;
        }
        let op = code.fetch_op(self.ctx.pc)?;
        if op.is_invalid() {
            return None; // let the issue path fault loudly
        }
        let t = self
            .ctx
            .stall_until
            .max(self.ctx.ready_at[op.use0 as usize])
            .max(self.ctx.ready_at[op.use1 as usize]);
        (t > self.cycle).then_some(t)
    }

    /// Advances the clock to `target` without issuing — the batched
    /// equivalent of running `target - now` empty cycles. Callers must
    /// first prove idleness via [`Core::idle_hint`].
    pub fn skip_to(&mut self, target: u64) {
        debug_assert!(target >= self.cycle, "skip_to may not rewind");
        self.stats.cycles += target - self.cycle;
        self.cycle = target;
    }

    /// Runs one cycle; returns the instructions committed this cycle.
    pub fn cycle(
        &mut self,
        code: &CodeImage,
        data: &mut Memory,
        hier: &mut Hierarchy,
    ) -> &[Commit] {
        self.commits.clear();
        let mut budget = self.cfg.issue_width;
        let mut mem_ports = self.cfg.mem_ports;
        let mut fp_units = self.cfg.fp_units;

        self.issue_main(code, data, hier, &mut budget, &mut mem_ports, &mut fp_units);
        self.issue_helper(hier, &mut budget, &mut mem_ports);

        self.cycle += 1;
        self.stats.cycles += 1;
        &self.commits
    }

    #[allow(clippy::too_many_lines)]
    fn issue_main(
        &mut self,
        code: &CodeImage,
        data: &mut Memory,
        hier: &mut Hierarchy,
        budget: &mut u32,
        mem_ports: &mut u32,
        fp_units: &mut u32,
    ) {
        let now = self.cycle;
        while *budget > 0 {
            if self.ctx.halted || self.ctx.stall_until > now {
                return;
            }
            let pc = self.ctx.pc;
            let Some(op) = code.fetch_op(pc) else {
                // Ran off mapped code: treat as halt.
                self.ctx.halted = true;
                self.commits.push(Commit {
                    ctx: MAIN_CTX,
                    pc,
                    next_pc: pc,
                    cycle: now,
                    kind: CommitKind::Halt,
                });
                return;
            };
            if op.is_invalid() {
                // A mapped word that does not decode is image corruption
                // (bad optimizer patch, predecoder bug) — fail loudly.
                panic!("invalid instruction word {:#018x} at pc {pc:#x}", op.target);
            }

            // Scoreboard: in-order issue waits for source operands. The
            // predecoded indices point at real registers or the
            // always-ready 65th slot.
            if self.ctx.ready_at[op.use0 as usize] > now
                || self.ctx.ready_at[op.use1 as usize] > now
            {
                return;
            }
            // Structural hazards, from predecoded flags.
            if op.flags & PredecodedOp::F_MEM != 0 && *mem_ports == 0 {
                return;
            }
            if op.flags & PredecodedOp::F_FP != 0 && *fp_units == 0 {
                return;
            }

            let mut next_pc = pc + INST_BYTES;
            let mut kind = CommitKind::Simple;
            let mut redirect = false;

            match op.inst {
                Inst::Nop => {}
                Inst::Op { op, ra, rb, rc } => {
                    let v = op.apply(self.ctx.regs[ra.index()], self.ctx.regs[rb.index()]);
                    self.write_reg(rc, v, now + self.int_latency(op));
                }
                Inst::OpImm { op, ra, imm, rc } => {
                    let v = op.apply(self.ctx.regs[ra.index()], imm as u64);
                    self.write_reg(rc, v, now + self.int_latency(op));
                }
                Inst::Lda { ra, rb, imm } => {
                    let v = self.ctx.regs[rb.index()].wrapping_add(imm as u64);
                    self.write_reg(ra, v, now + 1);
                }
                Inst::Move { ra, rc } => {
                    let v = self.ctx.regs[ra.index()];
                    self.write_reg(rc, v, now + 1);
                }
                Inst::FOp { op, ra, rb, rc } => {
                    let v = op.apply(self.ctx.regs[ra.index()], self.ctx.regs[rb.index()]);
                    let lat = match op {
                        FpuOp::Add | FpuOp::Sub => self.cfg.fp_add_latency,
                        FpuOp::Mul => self.cfg.fp_mul_latency,
                        FpuOp::Div => self.cfg.fp_div_latency,
                    };
                    self.write_reg(rc, v, now + lat);
                    *fp_units -= 1;
                }
                Inst::Load { ra, rb, off, kind: _ } => {
                    let addr = self.ctx.regs[rb.index()].wrapping_add(off as u64);
                    let value = data.read_u64(addr);
                    let result = hier.load(now, pc, addr);
                    self.write_reg(ra, value, now + result.latency);
                    self.stats.main_loads += 1;
                    *mem_ports -= 1;
                    kind = CommitKind::Load { addr, result };
                }
                Inst::Store { ra, rb, off } => {
                    let addr = self.ctx.regs[rb.index()].wrapping_add(off as u64);
                    data.write_u64(addr, self.ctx.regs[ra.index()]);
                    hier.store(now, pc, addr);
                    self.stats.main_stores += 1;
                    *mem_ports -= 1;
                    kind = CommitKind::Store { addr };
                }
                Inst::Prefetch { base, off, stride, dist } => {
                    let delta = i64::from(off) + i64::from(stride) * i64::from(dist);
                    let addr = self.ctx.regs[base.index()].wrapping_add(delta as u64);
                    let outcome = hier.sw_prefetch(now, pc, addr);
                    self.stats.main_prefetches += 1;
                    *mem_ports -= 1;
                    kind = CommitKind::Prefetch { addr, outcome };
                }
                Inst::Br { .. } => {
                    let target = op.target;
                    next_pc = target;
                    redirect = true;
                    kind = CommitKind::Jump { target };
                }
                Inst::Bcond { cond, ra, .. } => {
                    let taken = cond.eval(self.ctx.regs[ra.index()]);
                    let target = op.target;
                    let mispredicted = self.bp.predict_and_update(pc, taken);
                    if taken {
                        next_pc = target;
                        redirect = true;
                    }
                    if mispredicted {
                        self.ctx.stall_until = now + self.cfg.mispredict_penalty;
                        redirect = true;
                    }
                    kind = CommitKind::Branch { taken, target, mispredicted };
                }
                Inst::Jmp { rb } => {
                    let target = self.ctx.regs[rb.index()];
                    next_pc = target;
                    redirect = true;
                    kind = CommitKind::Jump { target };
                }
                Inst::Halt => {
                    self.ctx.halted = true;
                    kind = CommitKind::Halt;
                }
            }

            self.ctx.pc = next_pc;
            self.stats.main_committed += 1;
            *budget -= 1;
            self.commits.push(Commit { ctx: MAIN_CTX, pc, next_pc, cycle: now, kind });
            if redirect || self.ctx.halted {
                // Cannot fetch past a taken control transfer in the same cycle.
                return;
            }
        }
    }

    fn int_latency(&self, op: AluOp) -> u64 {
        match op {
            AluOp::Mul => self.cfg.int_mul_latency,
            _ => 1,
        }
    }

    fn write_reg(&mut self, r: tdo_isa::Reg, value: u64, ready_at: u64) {
        if r.is_zero() {
            return;
        }
        self.ctx.regs[r.index()] = value;
        self.ctx.ready_at[r.index()] = ready_at;
    }

    fn issue_helper(&mut self, hier: &mut Hierarchy, budget: &mut u32, mem_ports: &mut u32) {
        let now = self.cycle;
        match self.helper {
            HelperState::Idle => return,
            HelperState::Starting { job, ready_at } => {
                self.stats.helper_active_cycles += 1;
                if now >= ready_at {
                    self.helper = HelperState::Running {
                        job,
                        remaining: job.instructions,
                        index: 0,
                        dep_ready: 0,
                    };
                }
                return;
            }
            HelperState::Running { .. } => {}
        }
        self.stats.helper_active_cycles += 1;
        let HelperState::Running { job, mut remaining, mut index, mut dep_ready } = self.helper
        else {
            unreachable!("matched above");
        };
        while *budget > 0 && remaining > 0 {
            if dep_ready > now {
                break;
            }
            // Every eighth optimizer instruction reads the optimizer's
            // in-memory work buffer (trace bodies, DLT snapshots, repair
            // history); the next instruction consumes the loaded value.
            if index % 8 == 0 {
                if *mem_ports == 0 {
                    break;
                }
                let addr =
                    self.cfg.helper_scratch_base + (index * 64) % self.cfg.helper_scratch_bytes;
                let r = hier.load(now, HELPER_PC_BASE + (index % 64) * 8, addr);
                dep_ready = now + r.latency;
                *mem_ports -= 1;
            }
            remaining -= 1;
            index += 1;
            *budget -= 1;
            self.stats.helper_committed += 1;
        }
        if remaining == 0 {
            self.finished_job = Some(job.id);
            self.stats.helper_jobs += 1;
            self.helper = HelperState::Idle;
        } else {
            self.helper = HelperState::Running { job, remaining, index, dep_ready };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_isa::{Asm, Cond, Program, Reg};
    use tdo_mem::MemConfig;

    fn run_program(asm: &Asm, max_cycles: u64) -> (Core, Memory) {
        let code = asm.assemble().expect("assembles");
        let prog = Program {
            name: "t".into(),
            entry: asm.base(),
            code_base: asm.base(),
            code,
            data: vec![],
        };
        let img = CodeImage::new(&prog, 0x100_0000);
        let mut data = Memory::new();
        let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
        for _ in 0..max_cycles {
            core.cycle(&img, &mut data, &mut hier);
            if core.halted() {
                break;
            }
        }
        (core, data)
    }

    #[test]
    fn computes_a_sum_loop() {
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x1000);
        a.li(r1, 10);
        a.label("loop");
        a.op(AluOp::Add, r2, r1, r2); // r2 += r1
        a.op_imm(AluOp::Sub, r1, 1, r1);
        a.bcond_to(Cond::Ne, r1, "loop");
        a.halt();
        let (core, _) = run_program(&a, 100_000);
        assert!(core.halted());
        assert_eq!(core.reg(r2), 10 + 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let (rp, rv) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x1000);
        a.li(rp, 0x8000);
        a.li(rv, 1234);
        a.stq(rv, rp, 0);
        a.ldq(Reg::int(3), rp, 0);
        a.halt();
        let (core, data) = run_program(&a, 100_000);
        assert_eq!(core.reg(Reg::int(3)), 1234);
        assert_eq!(data.read_u64(0x8000), 1234);
    }

    #[test]
    fn zero_register_stays_zero() {
        let mut a = Asm::new(0x1000);
        a.lda(Reg::ZERO, Reg::ZERO, 99);
        a.op_imm(AluOp::Add, Reg::ZERO, 5, Reg::ZERO);
        a.halt();
        let (core, _) = run_program(&a, 1000);
        assert_eq!(core.reg(Reg::ZERO), 0);
    }

    #[test]
    fn load_latency_stalls_dependent_instruction() {
        // A load from cold memory followed immediately by a consumer: the
        // total runtime must include the full memory latency.
        let (rp, rv, rs) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut a = Asm::new(0x1000);
        a.li(rp, 0x10_0000);
        a.ldq(rv, rp, 0);
        a.op(AluOp::Add, rs, rv, rs);
        a.halt();
        let (core, _) = run_program(&a, 100_000);
        assert!(core.stats.cycles >= 350, "cycles: {}", core.stats.cycles);
    }

    #[test]
    fn independent_instructions_issue_during_load_miss() {
        // The same cold load, but followed by 200 independent ALU ops before
        // the consumer: most of the miss is overlapped.
        let (rp, rv, rs, rt) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut with_work = Asm::new(0x1000);
        with_work.li(rp, 0x10_0000);
        with_work.ldq(rv, rp, 0);
        for _ in 0..200 {
            with_work.op_imm(AluOp::Add, rt, 1, rt);
        }
        with_work.op(AluOp::Add, rs, rv, rs);
        with_work.halt();
        let (c1, _) = run_program(&with_work, 100_000);
        // Upper bound: latency + independent work serialized would be ~560.
        assert!(
            c1.stats.cycles < 450,
            "independent work should overlap the miss: {}",
            c1.stats.cycles
        );
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // A data-dependent unpredictable branch pattern costs more cycles
        // than a fixed pattern of the same instruction count.
        fn loop_with(pattern: fn(u64) -> i64) -> u64 {
            let (ri, rx, rc) = (Reg::int(1), Reg::int(2), Reg::int(3));
            let mut a = Asm::new(0x1000);
            a.li(ri, 2000);
            a.label("loop");
            // rx = pseudo-random-ish value derived from ri
            a.op_imm(AluOp::Mul, ri, pattern(0), rx);
            a.op_imm(AluOp::And, rx, 1, rx);
            a.bcond_to(Cond::Ne, rx, "skip");
            a.op_imm(AluOp::Add, rc, 1, rc);
            a.label("skip");
            a.op_imm(AluOp::Sub, ri, 1, ri);
            a.bcond_to(Cond::Ne, ri, "loop");
            a.halt();
            let (core, _) = run_program(&a, 1_000_000);
            core.stats.cycles
        }
        // Multiplier 2 => rx always even => branch never taken (predictable).
        let predictable = loop_with(|_| 2);
        // Multiplier 0x9E3779B97F4A7C15 & odd => alternating-ish pattern is
        // still learnable; use a multiplier that yields an irregular bit.
        let noisy = loop_with(|_| 0x5DEECE66D_i64);
        assert!(noisy >= predictable, "noisy {noisy} < predictable {predictable}");
    }

    #[test]
    fn helper_job_runs_at_low_priority_and_completes() {
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x1000);
        a.li(r1, 500_000);
        a.label("loop");
        a.op(AluOp::Add, r2, r1, r2);
        a.op_imm(AluOp::Sub, r1, 1, r1);
        a.bcond_to(Cond::Ne, r1, "loop");
        a.halt();
        let code = a.assemble().unwrap();
        let prog =
            Program { name: "t".into(), entry: 0x1000, code_base: 0x1000, code, data: vec![] };
        let img = CodeImage::new(&prog, 0x100_0000);
        let mut data = Memory::new();
        let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
        assert!(core.start_helper(HelperJob { id: 7, instructions: 3000 }));
        assert!(!core.start_helper(HelperJob { id: 8, instructions: 1 }), "busy");
        let mut finished = None;
        for _ in 0..2_000_000 {
            core.cycle(&img, &mut data, &mut hier);
            if let Some(id) = core.take_finished_job() {
                finished = Some((id, core.now()));
            }
            if core.halted() {
                break;
            }
        }
        let (id, at) = finished.expect("job finishes");
        assert_eq!(id, 7);
        assert!(at >= 2000, "startup latency respected, finished at {at}");
        assert!(core.stats.helper_active_cycles >= 2000);
        assert!(core.stats.helper_committed == 3000);
        // Main thread still made progress to completion.
        assert!(core.halted());
    }

    #[test]
    #[should_panic(expected = "invalid instruction word")]
    fn executing_an_invalid_word_panics() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let code = a.assemble().unwrap();
        let prog =
            Program { name: "t".into(), entry: 0x1000, code_base: 0x1000, code, data: vec![] };
        let mut img = CodeImage::new(&prog, 0x100_0000);
        img.write_word(0x1000, 0xff << 56).unwrap(); // unknown opcode
        let mut data = Memory::new();
        let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
        core.cycle(&img, &mut data, &mut hier);
    }

    #[test]
    fn idle_skip_matches_cycle_by_cycle_execution() {
        // A cold load followed by a dependent consumer exposes a long
        // scoreboard stall; driving it with idle_hint/skip_to must land on
        // the same architectural state and cycle count as stepping through
        // every stall cycle.
        fn program() -> Asm {
            let (rp, rv, rs) = (Reg::int(1), Reg::int(2), Reg::int(3));
            let mut a = Asm::new(0x1000);
            a.li(rp, 0x10_0000);
            a.ldq(rv, rp, 0);
            a.op(AluOp::Add, rs, rv, rs);
            a.halt();
            a
        }
        let run = |skip: bool| {
            let code = program().assemble().unwrap();
            let prog =
                Program { name: "t".into(), entry: 0x1000, code_base: 0x1000, code, data: vec![] };
            let img = CodeImage::new(&prog, 0x100_0000);
            let mut data = Memory::new();
            let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
            let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
            for _ in 0..100_000 {
                if skip {
                    if let Some(t) = core.idle_hint(&img) {
                        core.skip_to(t);
                    }
                }
                core.cycle(&img, &mut data, &mut hier);
                if core.halted() {
                    break;
                }
            }
            (core.stats.cycles, core.reg(Reg::int(3)), core.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn halt_commit_is_reported() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let code = a.assemble().unwrap();
        let prog =
            Program { name: "t".into(), entry: 0x1000, code_base: 0x1000, code, data: vec![] };
        let img = CodeImage::new(&prog, 0x100_0000);
        let mut data = Memory::new();
        let mut hier = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut core = Core::new(CpuConfig::paper_baseline(), prog.entry);
        let commits = core.cycle(&img, &mut data, &mut hier);
        assert!(matches!(commits[0].kind, CommitKind::Halt));
    }
}
