//! # tdo-cpu — the SMT processor substrate
//!
//! A cycle-based model of the paper's two-context SMT core (Table 1): 4-wide
//! shared issue, a register scoreboard with non-blocking loads, a hybrid
//! gshare/bimodal branch predictor with a 20-stage-pipeline misprediction
//! penalty, and a *helper context* on which Trident's dynamic optimizer runs
//! concurrently with — and at lower priority than — the main thread.
//!
//! The core executes [`tdo_isa`] programs functionally while computing
//! timing against a [`tdo_mem::Hierarchy`]. Every committed instruction is
//! reported as a [`Commit`] record; the simulation driver feeds those records
//! to Trident's monitoring hardware (branch profiler, watch table) and the
//! prefetcher's delinquent load table.
//!
//! Code is fetched from a mutable [`CodeImage`], so the optimizer can patch
//! the running binary: linking hot traces by rewriting their entry
//! instruction into a jump, and repairing prefetch distances by rewriting
//! instruction bits inside the code cache.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod branch;
pub mod code;
pub mod commit;
pub mod config;
pub mod core;
pub mod stats;

pub use crate::core::{Core, HelperJob, HELPER_CTX, MAIN_CTX, NUM_CONTEXTS};
pub use branch::BranchPredictor;
pub use code::{CodeImage, FetchError, PatchError, PredecodedOp, NO_USE};
pub use commit::{Commit, CommitKind};
pub use config::CpuConfig;
pub use stats::CpuStats;
