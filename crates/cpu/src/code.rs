//! The mutable runtime code image, predecoded for the interpreter hot loop.
//!
//! Holds the original program's instructions plus a sparse overlay for the
//! code-cache region where Trident installs hot traces. Both the original
//! code (for linking a trace: the first instruction of a hot region is
//! patched into a jump) and installed traces (for prefetch-distance repair)
//! can be rewritten at runtime through [`CodeImage::write_word`].
//!
//! # Predecoded op arrays
//!
//! The per-cycle fetch path used to be `word_at(pc)` followed by a fresh
//! `decode(w)` — a bounds check, an overlay probe, and a full bit-field
//! unpack on *every* issued instruction. The image now predecodes each word
//! exactly once into a dense [`PredecodedOp`] array: a flat struct carrying
//! the decoded [`Inst`] alongside everything the issue loop needs without
//! re-deriving it per fetch — scoreboard source indices, structural-hazard
//! flags, and the precomputed branch target.
//!
//! Two dense regions are maintained: the original program (`ops`, mirroring
//! `words`) and the code cache (`cc_ops`, indexed from `code_cache_base`,
//! grown on demand as Trident installs traces). Every [`CodeImage::write_word`]
//! re-predecodes the single affected entry — the patch→invalidate protocol
//! that keeps in-place prefetch-distance repair coherent with predecoded
//! execution. Addresses outside both regions (never produced by the
//! optimizer) fall back to the sparse overlay and decode on the fly.
//!
//! A word that fails to decode predecodes into an op carrying
//! [`PredecodedOp::F_INVALID`]; executing it is a loud, distinct fault
//! (see [`FetchError`]) rather than a silent halt.

use std::collections::HashMap;

use tdo_isa::{decode, Inst, Program, Word, INST_BYTES};

/// Errors from patching the code image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// The address is not 8-byte aligned.
    Unaligned {
        /// Offending address.
        addr: u64,
    },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::Unaligned { addr } => write!(f, "unaligned code address {addr:#x}"),
        }
    }
}

impl std::error::Error for PatchError {}

/// Error from fetching a mapped word that does not decode.
///
/// Distinct from "no code at pc" (which is a graceful halt): an invalid
/// word means the image was corrupted — a bad optimizer patch or a bug in
/// the predecoder — and must be loud, never silently swallowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchError {
    /// The word at `pc` is not a valid instruction encoding.
    InvalidWord {
        /// Address of the offending word.
        pc: u64,
        /// The raw word that failed to decode.
        word: Word,
    },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::InvalidWord { pc, word } => {
                write!(f, "invalid instruction word {word:#018x} at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for FetchError {}

/// Scoreboard index meaning "no source operand": one past the register
/// file, pointing at a permanently-ready slot.
pub const NO_USE: u8 = 64;

/// One instruction, decoded once, with the issue loop's derived facts
/// precomputed so the per-cycle path is flat loads and compares.
#[derive(Clone, Copy, Debug)]
pub struct PredecodedOp {
    /// The decoded instruction.
    pub inst: Inst,
    /// Scoreboard index of the first source operand ([`NO_USE`] if none).
    pub use0: u8,
    /// Scoreboard index of the second source operand ([`NO_USE`] if none).
    pub use1: u8,
    /// Derived-fact bits (`F_*`).
    pub flags: u8,
    /// Precomputed taken-path target for PC-relative branches; for an
    /// invalid op, the raw word that failed to decode.
    pub target: u64,
}

impl Default for PredecodedOp {
    /// An absent slot: no `F_PRESENT`, never served to the core.
    fn default() -> PredecodedOp {
        PredecodedOp { inst: Inst::Nop, use0: NO_USE, use1: NO_USE, flags: 0, target: 0 }
    }
}

impl PredecodedOp {
    /// Needs a load/store port this cycle.
    pub const F_MEM: u8 = 1 << 0;
    /// Needs an FP unit this cycle.
    pub const F_FP: u8 = 1 << 1;
    /// The underlying word failed to decode; executing this op faults.
    pub const F_INVALID: u8 = 1 << 2;
    /// Slot holds real code (distinguishes dense-array entries from the
    /// never-written default).
    pub const F_PRESENT: u8 = 1 << 3;

    /// Predecodes one instruction located at `pc`.
    #[must_use]
    pub fn new(inst: Inst, pc: u64) -> PredecodedOp {
        let [u0, u1] = inst.uses();
        let mut flags = Self::F_PRESENT;
        if matches!(inst, Inst::Load { .. } | Inst::Store { .. } | Inst::Prefetch { .. }) {
            flags |= Self::F_MEM;
        }
        if matches!(inst, Inst::FOp { .. }) {
            flags |= Self::F_FP;
        }
        PredecodedOp {
            inst,
            use0: u0.map_or(NO_USE, |r| r.index() as u8),
            use1: u1.map_or(NO_USE, |r| r.index() as u8),
            flags,
            target: inst.branch_target(pc).unwrap_or(0),
        }
    }

    /// Predecodes a word at `pc`: a valid op, or an invalid-marked op
    /// carrying the raw word.
    #[must_use]
    pub fn from_word(word: Word, pc: u64) -> PredecodedOp {
        match decode(word) {
            Ok(inst) => PredecodedOp::new(inst, pc),
            Err(_) => PredecodedOp {
                inst: Inst::Nop,
                use0: NO_USE,
                use1: NO_USE,
                flags: Self::F_PRESENT | Self::F_INVALID,
                target: word,
            },
        }
    }

    /// Whether the op is an undecodable word.
    #[must_use]
    pub fn is_invalid(&self) -> bool {
        self.flags & Self::F_INVALID != 0
    }
}

/// Dense code-cache mirror growth cap, in ops. The 4 MB code cache holds
/// at most 512 K instructions; anything addressed beyond this (impossible
/// through the Trident allocator) stays overlay-only.
const CC_DENSE_MAX: usize = 1 << 20;

/// The runtime code store: original program + code-cache overlay, both
/// mirrored as predecoded op arrays.
pub struct CodeImage {
    base: u64,
    words: Vec<Word>,
    /// Predecoded mirror of `words`, index-for-index.
    ops: Vec<PredecodedOp>,
    /// Sparse storage for everything outside the original program — the code
    /// cache region lives here.
    overlay: HashMap<u64, Word>,
    /// Predecoded mirror of the code-cache region, indexed from
    /// `code_cache_base` and grown on demand. Entries without
    /// [`PredecodedOp::F_PRESENT`] are holes.
    cc_ops: Vec<PredecodedOp>,
    /// First address of the code-cache region (everything at or above is
    /// "inside a hot trace" for the monitoring hardware).
    code_cache_base: u64,
    /// Parity-test aid: when set, [`CodeImage::fetch_op`] ignores the
    /// predecoded arrays and decodes the stored word on every fetch.
    per_fetch_decode: bool,
}

impl CodeImage {
    /// Builds the image from a program, placing the code cache at
    /// `code_cache_base` (must be above the program's code).
    ///
    /// # Panics
    ///
    /// Panics if the code-cache region overlaps the program code.
    #[must_use]
    pub fn new(program: &Program, code_cache_base: u64) -> CodeImage {
        assert!(code_cache_base >= program.code_end(), "code cache must sit above program code");
        let base = program.code_base;
        let ops = program
            .code
            .iter()
            .enumerate()
            .map(|(i, &w)| PredecodedOp::from_word(w, base + i as u64 * INST_BYTES))
            .collect();
        CodeImage {
            base,
            words: program.code.clone(),
            ops,
            overlay: HashMap::new(),
            cc_ops: Vec::new(),
            code_cache_base,
            per_fetch_decode: false,
        }
    }

    /// Switches between predecoded execution (the default) and per-fetch
    /// word decoding. The two modes are architecturally identical; the
    /// differential parity suite runs both and byte-compares the results.
    pub fn set_per_fetch_decode(&mut self, on: bool) {
        self.per_fetch_decode = on;
    }

    /// Base address of the code-cache region.
    #[must_use]
    pub fn code_cache_base(&self) -> u64 {
        self.code_cache_base
    }

    /// Whether `pc` points into the code-cache region (i.e. into a hot
    /// trace). This is the test Trident's watch-table hardware performs to
    /// decide whether a committed load should update the DLT.
    #[must_use]
    pub fn in_code_cache(&self, pc: u64) -> bool {
        pc >= self.code_cache_base
    }

    /// The encoded word at `pc`, if any code exists there.
    #[must_use]
    pub fn word_at(&self, pc: u64) -> Option<Word> {
        if !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        if pc >= self.base {
            let idx = ((pc - self.base) / INST_BYTES) as usize;
            if idx < self.words.len() {
                return Some(self.words[idx]);
            }
        }
        self.overlay.get(&pc).copied()
    }

    /// Decodes the instruction at `pc`.
    ///
    /// Returns `Ok(None)` where no code is mapped (the core treats that as
    /// a halt).
    ///
    /// # Errors
    ///
    /// [`FetchError::InvalidWord`] when a word exists at `pc` but does not
    /// decode — a corrupted image must never be silently swallowed.
    pub fn fetch(&self, pc: u64) -> Result<Option<Inst>, FetchError> {
        match self.word_at(pc) {
            None => Ok(None),
            Some(w) => match decode(w) {
                Ok(inst) => Ok(Some(inst)),
                Err(_) => Err(FetchError::InvalidWord { pc, word: w }),
            },
        }
    }

    /// The predecoded op at `pc` — the interpreter's hot fetch path. One
    /// alignment test plus one or two range compares reach a dense array
    /// slot; no per-fetch decoding (unless the parity mode is on).
    #[must_use]
    pub fn fetch_op(&self, pc: u64) -> Option<PredecodedOp> {
        if self.per_fetch_decode {
            return self.word_at(pc).map(|w| PredecodedOp::from_word(w, pc));
        }
        if pc & (INST_BYTES - 1) != 0 {
            return None;
        }
        if pc >= self.base {
            let idx = ((pc - self.base) / INST_BYTES) as usize;
            if idx < self.ops.len() {
                return Some(self.ops[idx]);
            }
        }
        if pc >= self.code_cache_base {
            let idx = ((pc - self.code_cache_base) / INST_BYTES) as usize;
            if idx < self.cc_ops.len() {
                let op = self.cc_ops[idx];
                if op.flags & PredecodedOp::F_PRESENT != 0 {
                    return Some(op);
                }
                return None;
            }
        }
        // Cold fallback: overlay addresses outside both dense regions.
        self.overlay.get(&pc).map(|&w| PredecodedOp::from_word(w, pc))
    }

    /// Re-predecodes the single entry covering `pc` after a word write —
    /// the targeted invalidation step of the patch protocol.
    fn repredecode(&mut self, pc: u64, word: Word) {
        if pc >= self.base {
            let idx = ((pc - self.base) / INST_BYTES) as usize;
            if idx < self.ops.len() {
                self.ops[idx] = PredecodedOp::from_word(word, pc);
                return;
            }
        }
        if pc >= self.code_cache_base {
            let idx = ((pc - self.code_cache_base) / INST_BYTES) as usize;
            if idx < CC_DENSE_MAX {
                if idx >= self.cc_ops.len() {
                    self.cc_ops.resize(idx + 1, PredecodedOp::default());
                }
                self.cc_ops[idx] = PredecodedOp::from_word(word, pc);
            }
        }
        // Outside both dense regions: the overlay fallback in `fetch_op`
        // decodes on the fly, so there is nothing to refresh.
    }

    /// Writes an encoded word at `pc` — patching original code or installing
    /// or repairing code-cache contents. The predecoded mirror entry is
    /// refreshed in the same call, so a patched distance is visible to the
    /// very next fetch.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::Unaligned`] for misaligned addresses.
    pub fn write_word(&mut self, pc: u64, word: Word) -> Result<(), PatchError> {
        if !pc.is_multiple_of(INST_BYTES) {
            return Err(PatchError::Unaligned { addr: pc });
        }
        if pc >= self.base {
            let idx = ((pc - self.base) / INST_BYTES) as usize;
            if idx < self.words.len() {
                self.words[idx] = word;
                self.repredecode(pc, word);
                return Ok(());
            }
        }
        self.overlay.insert(pc, word);
        self.repredecode(pc, word);
        Ok(())
    }

    /// Convenience: installs a sequence of words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`PatchError`] from individual writes.
    pub fn write_block(&mut self, addr: u64, words: &[Word]) -> Result<(), PatchError> {
        for (i, w) in words.iter().enumerate() {
            self.write_word(addr + i as u64 * INST_BYTES, *w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_isa::{encode, patch_prefetch_distance, Reg};

    fn img() -> CodeImage {
        let prog = Program {
            name: "t".into(),
            entry: 0x1000,
            code_base: 0x1000,
            code: vec![encode(&Inst::Nop).unwrap(), encode(&Inst::Halt).unwrap()],
            data: vec![],
        };
        CodeImage::new(&prog, 0x10_0000)
    }

    #[test]
    fn fetch_original_and_overlay() {
        let mut c = img();
        assert_eq!(c.fetch(0x1000), Ok(Some(Inst::Nop)));
        assert_eq!(c.fetch(0x1008), Ok(Some(Inst::Halt)));
        assert_eq!(c.fetch(0x1010), Ok(None));
        let w = encode(&Inst::Move { ra: Reg::int(1), rc: Reg::int(2) }).unwrap();
        c.write_word(0x10_0000, w).unwrap();
        assert_eq!(c.fetch(0x10_0000), Ok(Some(Inst::Move { ra: Reg::int(1), rc: Reg::int(2) })));
    }

    #[test]
    fn patching_original_code_takes_effect() {
        let mut c = img();
        let w = encode(&Inst::Br { disp: 10 }).unwrap();
        c.write_word(0x1000, w).unwrap();
        assert_eq!(c.fetch(0x1000), Ok(Some(Inst::Br { disp: 10 })));
        // The predecoded mirror was refreshed too, target included.
        let op = c.fetch_op(0x1000).expect("predecoded");
        assert_eq!(op.inst, Inst::Br { disp: 10 });
        assert_eq!(op.target, 0x1000 + 8 + 10 * 8);
    }

    #[test]
    fn unaligned_patch_is_rejected() {
        let mut c = img();
        assert_eq!(c.write_word(0x1001, 0), Err(PatchError::Unaligned { addr: 0x1001 }));
        assert_eq!(c.word_at(0x1001), None);
        assert!(c.fetch_op(0x1001).is_none());
    }

    #[test]
    fn code_cache_membership() {
        let c = img();
        assert!(!c.in_code_cache(0x1000));
        assert!(c.in_code_cache(0x10_0000));
        assert!(c.in_code_cache(0x10_0008));
    }

    #[test]
    fn write_block_is_contiguous() {
        let mut c = img();
        let words = [encode(&Inst::Nop).unwrap(), encode(&Inst::Halt).unwrap()];
        c.write_block(0x10_0000, &words).unwrap();
        assert_eq!(c.fetch(0x10_0008), Ok(Some(Inst::Halt)));
        assert_eq!(c.fetch_op(0x10_0008).unwrap().inst, Inst::Halt);
    }

    #[test]
    fn invalid_word_is_a_loud_fetch_error() {
        let mut c = img();
        let bad: Word = 0xff << 56; // unknown opcode
        c.write_word(0x1000, bad).unwrap();
        assert_eq!(c.fetch(0x1000), Err(FetchError::InvalidWord { pc: 0x1000, word: bad }));
        let op = c.fetch_op(0x1000).expect("slot is mapped");
        assert!(op.is_invalid());
        assert_eq!(op.target, bad, "invalid op carries the raw word");
        // Same behaviour through the overlay/code-cache path.
        c.write_word(0x10_0000, bad).unwrap();
        assert_eq!(c.fetch(0x10_0000), Err(FetchError::InvalidWord { pc: 0x10_0000, word: bad }));
        assert!(c.fetch_op(0x10_0000).unwrap().is_invalid());
    }

    #[test]
    fn predecoded_ops_carry_issue_facts() {
        let prog = Program {
            name: "t".into(),
            entry: 0x1000,
            code_base: 0x1000,
            code: vec![
                encode(&Inst::Store { ra: Reg::int(1), rb: Reg::int(2), off: 0 }).unwrap(),
                encode(&Inst::FOp {
                    op: tdo_isa::FpuOp::Add,
                    ra: Reg::fp(1),
                    rb: Reg::fp(2),
                    rc: Reg::fp(3),
                })
                .unwrap(),
                encode(&Inst::Bcond { cond: tdo_isa::Cond::Ne, ra: Reg::int(3), disp: -2 })
                    .unwrap(),
            ],
            data: vec![],
        };
        let c = CodeImage::new(&prog, 0x10_0000);
        let st = c.fetch_op(0x1000).unwrap();
        assert_eq!(st.flags & PredecodedOp::F_MEM, PredecodedOp::F_MEM);
        assert_eq!((st.use0, st.use1), (Reg::int(1).index() as u8, Reg::int(2).index() as u8));
        let f = c.fetch_op(0x1008).unwrap();
        assert_eq!(f.flags & PredecodedOp::F_FP, PredecodedOp::F_FP);
        let b = c.fetch_op(0x1010).unwrap();
        assert_eq!(b.target, 0x1010 + 8 - 2 * 8, "branch target precomputed");
        assert_eq!(b.use1, NO_USE);
    }

    #[test]
    fn distance_patch_invalidates_predecoded_entry() {
        // The cache-invalidation regression test: an in-place distance
        // repair must be visible through `fetch_op` immediately.
        let mut c = img();
        let pf = Inst::Prefetch { base: Reg::int(4), off: 8, stride: 64, dist: 1 };
        let w = encode(&pf).unwrap();
        c.write_word(0x10_0000, w).unwrap();
        match c.fetch_op(0x10_0000).unwrap().inst {
            Inst::Prefetch { dist, .. } => assert_eq!(dist, 1),
            other => panic!("expected prefetch, got {other}"),
        }
        let patched = patch_prefetch_distance(w, 17).unwrap();
        c.write_word(0x10_0000, patched).unwrap();
        match c.fetch_op(0x10_0000).unwrap().inst {
            Inst::Prefetch { dist, .. } => assert_eq!(dist, 17, "stale predecode served"),
            other => panic!("expected prefetch, got {other}"),
        }
        // And in the original-program region too.
        c.write_word(0x1008, w).unwrap();
        c.write_word(0x1008, patch_prefetch_distance(w, 9).unwrap()).unwrap();
        match c.fetch_op(0x1008).unwrap().inst {
            Inst::Prefetch { dist, .. } => assert_eq!(dist, 9),
            other => panic!("expected prefetch, got {other}"),
        }
    }

    #[test]
    fn per_fetch_mode_matches_predecoded_mode() {
        let mut c = img();
        let w = encode(&Inst::Bcond { cond: tdo_isa::Cond::Eq, ra: Reg::int(1), disp: 3 }).unwrap();
        c.write_word(0x10_0000, w).unwrap();
        for pc in [0x1000u64, 0x1008, 0x1010, 0x10_0000, 0x10_0008] {
            let pre = c.fetch_op(pc);
            c.set_per_fetch_decode(true);
            let raw = c.fetch_op(pc);
            c.set_per_fetch_decode(false);
            match (pre, raw) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.inst, b.inst);
                    assert_eq!(
                        (a.use0, a.use1, a.flags, a.target),
                        (b.use0, b.use1, b.flags, b.target)
                    );
                }
                (a, b) => panic!("mode mismatch at {pc:#x}: {a:?} vs {b:?}"),
            }
        }
    }
}
