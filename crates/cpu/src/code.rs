//! The mutable runtime code image.
//!
//! Holds the original program's instructions plus a sparse overlay for the
//! code-cache region where Trident installs hot traces. Both the original
//! code (for linking a trace: the first instruction of a hot region is
//! patched into a jump) and installed traces (for prefetch-distance repair)
//! can be rewritten at runtime through [`CodeImage::write_word`].

use std::collections::HashMap;

use tdo_isa::{decode, Inst, Program, Word, INST_BYTES};

/// Errors from patching the code image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// The address is not 8-byte aligned.
    Unaligned {
        /// Offending address.
        addr: u64,
    },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::Unaligned { addr } => write!(f, "unaligned code address {addr:#x}"),
        }
    }
}

impl std::error::Error for PatchError {}

/// The runtime code store: original program + code-cache overlay.
pub struct CodeImage {
    base: u64,
    words: Vec<Word>,
    /// Sparse storage for everything outside the original program — the code
    /// cache region lives here.
    overlay: HashMap<u64, Word>,
    /// First address of the code-cache region (everything at or above is
    /// "inside a hot trace" for the monitoring hardware).
    code_cache_base: u64,
}

impl CodeImage {
    /// Builds the image from a program, placing the code cache at
    /// `code_cache_base` (must be above the program's code).
    ///
    /// # Panics
    ///
    /// Panics if the code-cache region overlaps the program code.
    #[must_use]
    pub fn new(program: &Program, code_cache_base: u64) -> CodeImage {
        assert!(code_cache_base >= program.code_end(), "code cache must sit above program code");
        CodeImage {
            base: program.code_base,
            words: program.code.clone(),
            overlay: HashMap::new(),
            code_cache_base,
        }
    }

    /// Base address of the code-cache region.
    #[must_use]
    pub fn code_cache_base(&self) -> u64 {
        self.code_cache_base
    }

    /// Whether `pc` points into the code-cache region (i.e. into a hot
    /// trace). This is the test Trident's watch-table hardware performs to
    /// decide whether a committed load should update the DLT.
    #[must_use]
    pub fn in_code_cache(&self, pc: u64) -> bool {
        pc >= self.code_cache_base
    }

    /// The encoded word at `pc`, if any code exists there.
    #[must_use]
    pub fn word_at(&self, pc: u64) -> Option<Word> {
        if !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        if pc >= self.base {
            let idx = ((pc - self.base) / INST_BYTES) as usize;
            if idx < self.words.len() {
                return Some(self.words[idx]);
            }
        }
        self.overlay.get(&pc).copied()
    }

    /// Decodes the instruction at `pc`.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        self.word_at(pc).and_then(|w| decode(w).ok())
    }

    /// Writes an encoded word at `pc` — patching original code or installing
    /// or repairing code-cache contents.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::Unaligned`] for misaligned addresses.
    pub fn write_word(&mut self, pc: u64, word: Word) -> Result<(), PatchError> {
        if !pc.is_multiple_of(INST_BYTES) {
            return Err(PatchError::Unaligned { addr: pc });
        }
        if pc >= self.base {
            let idx = ((pc - self.base) / INST_BYTES) as usize;
            if idx < self.words.len() {
                self.words[idx] = word;
                return Ok(());
            }
        }
        self.overlay.insert(pc, word);
        Ok(())
    }

    /// Convenience: installs a sequence of words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`PatchError`] from individual writes.
    pub fn write_block(&mut self, addr: u64, words: &[Word]) -> Result<(), PatchError> {
        for (i, w) in words.iter().enumerate() {
            self.write_word(addr + i as u64 * INST_BYTES, *w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_isa::{encode, Reg};

    fn img() -> CodeImage {
        let prog = Program {
            name: "t".into(),
            entry: 0x1000,
            code_base: 0x1000,
            code: vec![encode(&Inst::Nop).unwrap(), encode(&Inst::Halt).unwrap()],
            data: vec![],
        };
        CodeImage::new(&prog, 0x10_0000)
    }

    #[test]
    fn fetch_original_and_overlay() {
        let mut c = img();
        assert_eq!(c.fetch(0x1000), Some(Inst::Nop));
        assert_eq!(c.fetch(0x1008), Some(Inst::Halt));
        assert_eq!(c.fetch(0x1010), None);
        let w = encode(&Inst::Move { ra: Reg::int(1), rc: Reg::int(2) }).unwrap();
        c.write_word(0x10_0000, w).unwrap();
        assert_eq!(c.fetch(0x10_0000), Some(Inst::Move { ra: Reg::int(1), rc: Reg::int(2) }));
    }

    #[test]
    fn patching_original_code_takes_effect() {
        let mut c = img();
        let w = encode(&Inst::Br { disp: 10 }).unwrap();
        c.write_word(0x1000, w).unwrap();
        assert_eq!(c.fetch(0x1000), Some(Inst::Br { disp: 10 }));
    }

    #[test]
    fn unaligned_patch_is_rejected() {
        let mut c = img();
        assert_eq!(c.write_word(0x1001, 0), Err(PatchError::Unaligned { addr: 0x1001 }));
        assert_eq!(c.word_at(0x1001), None);
    }

    #[test]
    fn code_cache_membership() {
        let c = img();
        assert!(!c.in_code_cache(0x1000));
        assert!(c.in_code_cache(0x10_0000));
        assert!(c.in_code_cache(0x10_0008));
    }

    #[test]
    fn write_block_is_contiguous() {
        let mut c = img();
        let words = [encode(&Inst::Nop).unwrap(), encode(&Inst::Halt).unwrap()];
        c.write_block(0x10_0000, &words).unwrap();
        assert_eq!(c.fetch(0x10_0008), Some(Inst::Halt));
    }
}
