//! Time-series retention for a [`Registry`]: a fixed-capacity, seqlock
//! snapshot ring of periodic samples — the continuous-health plane behind
//! `GET /metrics/history` and `tdo top`.
//!
//! A [`Series`] holds the last `capacity` *rows*; each row is one integer
//! timestamp (a logical tick supplied by the sampler, never wall clock)
//! plus one value per *column*. Columns come from
//! [`Registry::sample_columns`]: every registered counter and gauge is one
//! column, every histogram expands into its cumulative buckets plus
//! `sum`/`count` — so windowed quantiles can be recovered from row deltas
//! with [`crate::quantile_from_buckets`].
//!
//! Concurrency model: exactly one writer (the sampler tick) and any number
//! of readers. The ring is a seqlock — the writer bumps a sequence word to
//! odd, stores the row, bumps it to even; readers retry until they observe
//! a stable even sequence. Readers never block the writer and the writer
//! never blocks readers; all state is `AtomicU64`, no allocation after
//! construction.
//!
//! Memory bound: `capacity * (1 + width)` words, fixed at construction.
//! A 64-row ring over a 120-column registry is ~62 KiB, forever.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Instrument, Registry, TOTAL_BUCKETS};

/// Version stamped into every encoded snapshot; bump on any layout change.
pub const SERIES_SCHEMA_VERSION: u64 = 1;

/// How a column combines across snapshots: counters add, gauges take the
/// maximum (both commutative, so merge order cannot matter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColKind {
    /// Monotone cumulative count (includes histogram buckets/sum/count).
    Counter,
    /// Point-in-time level.
    Gauge,
}

/// One sampling column: its stable name and combine kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// `family{labels}` series name, suffixed `#bN`/`#sum`/`#count` for
    /// histogram expansions.
    pub name: String,
    /// Combine kind under [`SeriesSnapshot::merge`].
    pub kind: ColKind,
}

impl Registry {
    /// Samples every registered instrument whose series name passes `keep`
    /// into `(column, value)` pairs, in the registry's deterministic
    /// render order (sorted by family, then label set).
    ///
    /// Counters and gauges yield one column each; a histogram yields its
    /// `TOTAL_BUCKETS` *cumulative* bucket counts (`#b0`..`#b32`, the same
    /// `le`-cumulative form the exposition renders) then `#sum` and
    /// `#count`. Call once at startup for the schema and once per tick for
    /// values: registration is append-only, so as long as `keep` is pure
    /// the column list for a fixed registry population never changes.
    #[must_use]
    pub fn sample_columns(&self, keep: &dyn Fn(&str) -> bool) -> Vec<(Column, u64)> {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            (&entries[a].family, &entries[a].labels).cmp(&(&entries[b].family, &entries[b].labels))
        });
        let mut out = Vec::new();
        for &i in &order {
            let e = &entries[i];
            let name = format!("{}{}", e.family, crate::label_block(&e.labels, None));
            if !keep(&name) {
                continue;
            }
            let col = |suffix: &str, kind| Column { name: format!("{name}{suffix}"), kind };
            match &e.inst {
                Instrument::Counter(c) => out.push((col("", ColKind::Counter), c.get())),
                Instrument::Gauge(g) => out.push((col("", ColKind::Gauge), g.get())),
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (b, n) in snap.buckets.iter().enumerate() {
                        cum += n;
                        out.push((col(&format!("#b{b}"), ColKind::Counter), cum));
                    }
                    out.push((col("#sum", ColKind::Counter), snap.sum));
                    out.push((col("#count", ColKind::Counter), snap.count));
                }
            }
        }
        out
    }
}

/// Reassembles a histogram's per-bucket counts from `width` consecutive
/// cumulative-bucket columns (the `#b0..#b32` block a histogram expands
/// into), e.g. to feed [`crate::quantile_from_buckets`].
#[must_use]
pub fn buckets_from_cumulative(cum: &[u64]) -> [u64; TOTAL_BUCKETS] {
    let mut out = [0u64; TOTAL_BUCKETS];
    let mut prev = 0u64;
    for (i, slot) in out.iter_mut().enumerate() {
        let c = cum.get(i).copied().unwrap_or(prev);
        *slot = c.saturating_sub(prev);
        prev = c;
    }
    out
}

/// Columns a run-latency histogram occupies (`#b0..#b32`, `#sum`,
/// `#count`).
pub const HISTOGRAM_COLUMNS: usize = TOTAL_BUCKETS + 2;

/// One retained sample row: a logical tick plus one value per column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesRow {
    /// The sampler's logical tick when the row was appended.
    pub tick: u64,
    /// Column values, in schema order.
    pub values: Vec<u64>,
}

/// An owned, consistent copy of a [`Series`]' contents.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SeriesSnapshot {
    /// Retained rows, oldest first.
    pub rows: Vec<SeriesRow>,
}

/// The fixed-capacity seqlock ring described in the module docs.
pub struct Series {
    width: usize,
    capacity: usize,
    /// Rows ever appended (head = appended % capacity).
    appended: AtomicU64,
    /// Seqlock word: odd while the writer is mid-row.
    seq: AtomicU64,
    /// `capacity` slots of `1 + width` words: tick then values.
    slots: Vec<AtomicU64>,
}

impl Series {
    /// A ring retaining the last `capacity` rows of `width` columns.
    #[must_use]
    pub fn new(capacity: usize, width: usize) -> Series {
        let capacity = capacity.max(1);
        Series {
            width,
            capacity,
            appended: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            slots: (0..capacity * (1 + width)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Columns per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum retained rows.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows ever appended (≥ retained rows once the ring wraps).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// Appends one row, overwriting the oldest when full. Single-writer:
    /// concurrent `push` calls must be externally serialized (the sampler
    /// tick is the only writer by construction).
    ///
    /// # Panics
    ///
    /// Panics when `values.len()` differs from the ring's width.
    pub fn push(&self, tick: u64, values: &[u64]) {
        assert_eq!(values.len(), self.width, "row width must match the ring");
        let n = self.appended.load(Ordering::Relaxed);
        let base = usize::try_from(n % self.capacity as u64).expect("capacity fits usize")
            * (1 + self.width);
        self.seq.fetch_add(1, Ordering::AcqRel); // odd: row is torn
        self.slots[base].store(tick, Ordering::Relaxed);
        for (i, v) in values.iter().enumerate() {
            self.slots[base + 1 + i].store(*v, Ordering::Relaxed);
        }
        self.appended.store(n + 1, Ordering::Release);
        self.seq.fetch_add(1, Ordering::AcqRel); // even: row is whole
    }

    /// A consistent copy of the retained rows, oldest first. Lock-free:
    /// retries while a writer is mid-append.
    #[must_use]
    pub fn snapshot(&self) -> SeriesSnapshot {
        loop {
            let s0 = self.seq.load(Ordering::Acquire);
            if s0 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let appended = self.appended.load(Ordering::Acquire);
            let retained = usize::try_from(appended.min(self.capacity as u64)).expect("capped");
            let first = appended - retained as u64;
            let mut rows = Vec::with_capacity(retained);
            for r in first..appended {
                let base =
                    usize::try_from(r % self.capacity as u64).expect("fits") * (1 + self.width);
                let tick = self.slots[base].load(Ordering::Relaxed);
                let values =
                    (0..self.width).map(|i| self.slots[base + 1 + i].load(Ordering::Relaxed));
                rows.push(SeriesRow { tick, values: values.collect() });
            }
            if self.seq.load(Ordering::Acquire) == s0 {
                return SeriesSnapshot { rows };
            }
        }
    }
}

impl SeriesSnapshot {
    /// The last `window` rows (all rows when `window` is 0 or larger than
    /// the retained set).
    #[must_use]
    pub fn window(&self, window: usize) -> SeriesSnapshot {
        let n = self.rows.len();
        let keep = if window == 0 { n } else { window.min(n) };
        SeriesSnapshot { rows: self.rows[n - keep..].to_vec() }
    }

    /// Windowed deltas between consecutive rows: counter columns become
    /// per-window increments (saturating at 0 so a restarted counter reads
    /// as quiet, not as underflow), gauge columns keep their raw level.
    /// Returns one row per input row after the first, stamped with the
    /// later row's tick.
    #[must_use]
    pub fn deltas(&self, kinds: &[ColKind]) -> Vec<SeriesRow> {
        self.rows
            .windows(2)
            .map(|w| SeriesRow {
                tick: w[1].tick,
                values: w[1]
                    .values
                    .iter()
                    .zip(&w[0].values)
                    .zip(kinds)
                    .map(|((cur, prev), kind)| match kind {
                        ColKind::Counter => cur.saturating_sub(*prev),
                        ColKind::Gauge => *cur,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Merges two snapshots of the *same schema* deterministically: rows
    /// are keyed by tick; where both sides have a tick, counter columns
    /// add and gauge columns take the maximum. Both combines are
    /// commutative and associative, so `merge(a, b) == merge(b, a)` and
    /// shard merge order cannot change the result.
    #[must_use]
    pub fn merge(&self, other: &SeriesSnapshot, kinds: &[ColKind]) -> SeriesSnapshot {
        let mut rows: Vec<SeriesRow> = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (mut a, mut b) = (self.rows.iter().peekable(), other.rows.iter().peekable());
        loop {
            let row = match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(_), None) => a.next().expect("peeked").clone(),
                (None, Some(_)) => b.next().expect("peeked").clone(),
                (Some(ra), Some(rb)) if ra.tick < rb.tick => a.next().expect("peeked").clone(),
                (Some(ra), Some(rb)) if rb.tick < ra.tick => b.next().expect("peeked").clone(),
                (Some(_), Some(_)) => {
                    let (ra, rb) = (a.next().expect("peeked"), b.next().expect("peeked"));
                    SeriesRow {
                        tick: ra.tick,
                        values: ra
                            .values
                            .iter()
                            .zip(&rb.values)
                            .zip(kinds)
                            .map(|((va, vb), kind)| match kind {
                                ColKind::Counter => va.wrapping_add(*vb),
                                ColKind::Gauge => (*va).max(*vb),
                            })
                            .collect(),
                    }
                }
            };
            rows.push(row);
        }
        SeriesSnapshot { rows }
    }

    /// Encodes the snapshot as a versioned, integer-only word stream:
    /// `[version, width, rows, (tick, values...)*]`.
    #[must_use]
    pub fn encode(&self) -> Vec<u64> {
        let width = self.rows.first().map_or(0, |r| r.values.len());
        let mut out = Vec::with_capacity(3 + self.rows.len() * (1 + width));
        out.push(SERIES_SCHEMA_VERSION);
        out.push(width as u64);
        out.push(self.rows.len() as u64);
        for row in &self.rows {
            out.push(row.tick);
            out.extend_from_slice(&row.values);
        }
        out
    }

    /// Decodes [`SeriesSnapshot::encode`] output. Returns `None` on a
    /// version mismatch or any structural damage — a stale or truncated
    /// history is dropped, never misread.
    #[must_use]
    pub fn decode(words: &[u64]) -> Option<SeriesSnapshot> {
        let (&version, rest) = words.split_first()?;
        if version != SERIES_SCHEMA_VERSION {
            return None;
        }
        let (&width, rest) = rest.split_first()?;
        let (&rows, rest) = rest.split_first()?;
        let width = usize::try_from(width).ok()?;
        let rows = usize::try_from(rows).ok()?;
        let per = 1 + width;
        if rest.len() != rows.checked_mul(per)? {
            return None;
        }
        Some(SeriesSnapshot {
            rows: rest
                .chunks_exact(per)
                .map(|c| SeriesRow { tick: c[0], values: c[1..].to_vec() })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds2() -> Vec<ColKind> {
        vec![ColKind::Counter, ColKind::Gauge]
    }

    #[test]
    fn ring_retains_the_last_capacity_rows_in_order() {
        let s = Series::new(4, 2);
        for t in 1..=6u64 {
            s.push(t, &[t * 10, t * 100]);
        }
        let snap = s.snapshot();
        assert_eq!(s.appended(), 6);
        assert_eq!(snap.rows.len(), 4);
        assert_eq!(snap.rows[0], SeriesRow { tick: 3, values: vec![30, 300] });
        assert_eq!(snap.rows[3], SeriesRow { tick: 6, values: vec![60, 600] });
        assert_eq!(snap.window(2).rows[0].tick, 5);
        assert_eq!(snap.window(0).rows.len(), 4, "window 0 keeps everything");
    }

    #[test]
    fn snapshots_are_never_torn_under_a_concurrent_writer() {
        // Every row is written as [tick, tick+1]; any snapshot mixing words
        // from two pushes breaks that invariant.
        let s = Series::new(8, 1);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for t in 1..=20_000u64 {
                    s.push(t, &[t + 1]);
                }
            });
            for _ in 0..2_000 {
                for row in s.snapshot().rows {
                    assert_eq!(row.values[0], row.tick + 1, "torn row");
                }
            }
            writer.join().expect("writer");
        });
    }

    #[test]
    fn deltas_subtract_counters_and_keep_gauges() {
        let snap = SeriesSnapshot {
            rows: vec![
                SeriesRow { tick: 1, values: vec![10, 7] },
                SeriesRow { tick: 2, values: vec![25, 3] },
                SeriesRow { tick: 3, values: vec![5, 9] }, // counter reset
            ],
        };
        let d = snap.deltas(&kinds2());
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], SeriesRow { tick: 2, values: vec![15, 3] });
        assert_eq!(d[1], SeriesRow { tick: 3, values: vec![0, 9] }, "reset clamps to 0");
    }

    #[test]
    fn merge_is_commutative_and_tick_keyed() {
        let a = SeriesSnapshot {
            rows: vec![
                SeriesRow { tick: 1, values: vec![5, 2] },
                SeriesRow { tick: 3, values: vec![8, 9] },
            ],
        };
        let b = SeriesSnapshot {
            rows: vec![
                SeriesRow { tick: 2, values: vec![1, 1] },
                SeriesRow { tick: 3, values: vec![4, 3] },
            ],
        };
        let ab = a.merge(&b, &kinds2());
        assert_eq!(ab, b.merge(&a, &kinds2()), "merge order cannot matter");
        assert_eq!(ab.rows.iter().map(|r| r.tick).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(ab.rows[2], SeriesRow { tick: 3, values: vec![12, 9] });
    }

    #[test]
    fn codec_round_trips_and_rejects_damage() {
        let snap = SeriesSnapshot {
            rows: vec![
                SeriesRow { tick: 7, values: vec![1, 2, 3] },
                SeriesRow { tick: 8, values: vec![4, 5, 6] },
            ],
        };
        let words = snap.encode();
        assert_eq!(words[0], SERIES_SCHEMA_VERSION);
        assert_eq!(SeriesSnapshot::decode(&words), Some(snap.clone()));
        assert_eq!(SeriesSnapshot::decode(&words[..words.len() - 1]), None, "truncated");
        let mut stale = words.clone();
        stale[0] = SERIES_SCHEMA_VERSION + 1;
        assert_eq!(SeriesSnapshot::decode(&stale), None, "future version");
        assert_eq!(SeriesSnapshot::decode(&[]), None);
        assert_eq!(
            SeriesSnapshot::decode(&SeriesSnapshot::default().encode()),
            Some(SeriesSnapshot::default()),
            "empty snapshot round-trips"
        );
    }

    #[test]
    fn registry_columns_expand_histograms_cumulatively() {
        let reg = Registry::new();
        let c = reg.counter("tdo_test_reqs_total", &[("endpoint", "run")], "Requests.");
        let g = reg.gauge("tdo_test_depth", &[], "Depth.");
        let h = reg.histogram("tdo_test_lat_us", &[], "Latency.");
        c.add(3);
        g.set(9);
        h.observe(3);
        h.observe(5);
        let cols = reg.sample_columns(&|_| true);
        assert_eq!(cols.len(), 2 + HISTOGRAM_COLUMNS);
        assert_eq!(cols[0].0.name, "tdo_test_depth");
        assert_eq!(cols[0].1, 9);
        let by_name = |n: &str| cols.iter().find(|(c, _)| c.name == n).expect(n).1;
        assert_eq!(by_name("tdo_test_lat_us#b2"), 1, "cumulative through le=4");
        assert_eq!(by_name("tdo_test_lat_us#b3"), 2);
        assert_eq!(by_name("tdo_test_lat_us#b32"), 2, "+Inf bucket is the total");
        assert_eq!(by_name("tdo_test_lat_us#count"), 2);
        assert_eq!(by_name("tdo_test_reqs_total{endpoint=\"run\"}"), 3);
        let filtered = reg.sample_columns(&|n| !n.contains("lat_us"));
        assert_eq!(filtered.len(), 2, "filter drops whole instruments");
        let cum: Vec<u64> =
            (0..TOTAL_BUCKETS).map(|b| by_name(&format!("tdo_test_lat_us#b{b}"))).collect();
        let per = buckets_from_cumulative(&cum);
        assert_eq!(per[2], 1);
        assert_eq!(per[3], 1);
        assert_eq!(per.iter().sum::<u64>(), 2);
    }
}
