//! Lock-free metrics for the TDO stack: atomic [`Counter`]s and
//! [`Gauge`]s, a fixed-bucket log2 [`Histogram`] with a deterministic
//! integer merge, and a [`Registry`] that renders every registered
//! instrument as Prometheus-style text exposition (see [`expo`]).
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** Everything is `std::sync::atomic` + `Mutex`
//!    (the mutex guards only the registry's entry list, never the hot
//!    path of an instrument).
//! 2. **Deterministic aggregation.** All state is unsigned integers and
//!    every combining operation is commutative addition, so merging
//!    per-worker histograms — or racing `observe` calls from any number
//!    of `--jobs` threads — produces the same final snapshot regardless
//!    of interleaving.
//! 3. **Cheap when idle.** An un-scraped instrument costs one relaxed
//!    atomic RMW per update; there is no allocation after registration.
//!
//! Naming convention (enforced by [`Registry`] in debug builds):
//! `tdo_<crate>_<name>_<unit>`, e.g. `tdo_store_get_latency_us`.
//! Counters additionally end in `_total`. Units are base units spelled
//! out (`us`, `bytes`, `cycles`) — never scaled.

pub mod expo;
pub mod series;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, inflight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets; upper bounds are `2^0 .. 2^31`.
pub const FINITE_BUCKETS: usize = 32;
/// Total buckets including the saturating overflow (`+Inf`) bucket.
pub const TOTAL_BUCKETS: usize = FINITE_BUCKETS + 1;

/// A fixed-bucket base-2 histogram of `u64` observations.
///
/// Bucket `i < 32` counts observations `v` with `v <= 2^i` (cumulatively
/// rendered as Prometheus `le` buckets); anything above `2^31` saturates
/// into the final `+Inf` bucket. Buckets, sum and count are independent
/// relaxed atomics: a concurrent scrape may observe a sample in the
/// bucket array before it is in `sum`, which is acceptable for
/// monitoring and irrelevant once threads are joined (merges and
/// post-run reads are exact).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; TOTAL_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    // Last trace id / value observed per bucket (0 = no exemplar). Two
    // independent relaxed words: a scrape may pair a trace with a value
    // from an adjacent observation in the same bucket, which is fine for
    // an exemplar (any recent representative will do).
    exemplar_trace: [AtomicU64; TOTAL_BUCKETS],
    exemplar_value: [AtomicU64; TOTAL_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An owned, plain-integer copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; TOTAL_BUCKETS],
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; TOTAL_BUCKETS], sum: 0, count: 0 }
    }
}

impl HistogramSnapshot {
    /// Mean observation, rounded down; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The estimated `q_milli`/1000 quantile (see [`quantile_from_buckets`]).
    #[must_use]
    pub fn quantile_milli(&self, q_milli: u64) -> u64 {
        quantile_from_buckets(&self.buckets, q_milli)
    }

    /// Estimated median observation.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_milli(500)
    }

    /// Estimated 95th-percentile observation.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile_milli(950)
    }

    /// Estimated 99th-percentile observation.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile_milli(990)
    }
}

/// Estimates the `q_milli`/1000 quantile of a log2-bucketed observation
/// set (per-bucket counts as stored by [`Histogram`], `+Inf` last).
///
/// The target rank is `ceil(q * count)`; the estimate interpolates
/// linearly between the containing bucket's exclusive lower bound and its
/// inclusive upper bound, matching Prometheus' `histogram_quantile`
/// convention but in pure integers. An empty set estimates 0; a rank
/// landing in the `+Inf` bucket saturates to the largest finite bound
/// (`2^31`), the only honest point estimate a bounded histogram can give.
#[must_use]
pub fn quantile_from_buckets(buckets: &[u64; TOTAL_BUCKETS], q_milli: u64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    let rank = (q_milli.min(1000) * count).div_ceil(1000).max(1);
    let mut cum = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        let Some(hi) = Histogram::bucket_le(i) else {
            return 1u64 << (FINITE_BUCKETS - 1); // +Inf: saturate
        };
        cum += n;
        if rank <= cum {
            let lo = if i == 0 { 0 } else { Histogram::bucket_le(i - 1).expect("finite") };
            let into = rank - (cum - n); // 1..=n, rank's position inside the bucket
            return lo + (hi - lo) * into / n;
        }
    }
    // Unreachable (rank <= count and cum reaches count), but stay total.
    1u64 << (FINITE_BUCKETS - 1)
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplar_trace: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_value: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index recording value `v`: the smallest `i` with
    /// `v <= 2^i`, saturating at the `+Inf` bucket.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v > 1.
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(FINITE_BUCKETS)
    }

    /// The inclusive upper bound of finite bucket `i`, or `None` for the
    /// `+Inf` overflow bucket.
    #[must_use]
    pub fn bucket_le(i: usize) -> Option<u64> {
        (i < FINITE_BUCKETS).then(|| 1u64 << i)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation and remembers `trace` as the bucket's
    /// exemplar — the trace id a scrape can follow from a latency bucket
    /// back into the flight recorder. A zero trace records no exemplar.
    pub fn observe_with_exemplar(&self, v: u64, trace: u64) {
        self.observe(v);
        if trace != 0 {
            let i = Self::bucket_index(v);
            self.exemplar_trace[i].store(trace, Ordering::Relaxed);
            self.exemplar_value[i].store(v, Ordering::Relaxed);
        }
    }

    /// The last `(trace, value)` exemplar recorded in bucket `i`, if any.
    #[must_use]
    pub fn exemplar(&self, i: usize) -> Option<(u64, u64)> {
        let trace = self.exemplar_trace[i].load(Ordering::Relaxed);
        (trace != 0).then(|| (trace, self.exemplar_value[i].load(Ordering::Relaxed)))
    }

    /// Adds every bucket, the sum and the count of `other` into `self`.
    ///
    /// Addition is commutative and associative on integers, so merging
    /// per-worker histograms yields the same result in any order — the
    /// property the `--jobs`-independence tests pin down.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Copies the current state out as plain integers.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// One registered instrument.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    help: String,
    inst: Instrument,
}

/// A set of named instruments that can render itself as exposition text.
///
/// The registry owns `Arc` handles; callers keep clones and update them
/// lock-free. Registration order is irrelevant — rendering sorts by
/// `(family, labels)` so the output is deterministic.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// `true` if `name` is a valid metric family or label name:
/// `[a-z_][a-z0-9_]*`.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, family: &str, labels: &[(&str, &str)], help: &str, inst: Instrument) {
        debug_assert!(valid_name(family), "bad metric family name: {family}");
        debug_assert!(labels.iter().all(|(k, _)| valid_name(k)), "bad label name in {family}");
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(
            entries.iter().filter(|e| e.family == family).all(|e| {
                let same_labels = e.labels.len() == labels.len()
                    && e.labels.iter().zip(labels).all(|((k0, v0), (k1, v1))| k0 == k1 && v0 == v1);
                e.inst.type_name() == inst.type_name() && !same_labels
            }),
            "family {family} re-registered with a conflicting type or duplicate label set"
        );
        entries.push(Entry {
            family: family.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            help: help.to_string(),
            inst,
        });
    }

    /// Creates, registers and returns a counter.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register_counter(family, labels, help, Arc::clone(&c));
        c
    }

    /// Registers an existing counter handle.
    pub fn register_counter(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        c: Arc<Counter>,
    ) {
        self.push(family, labels, help, Instrument::Counter(c));
    }

    /// Creates, registers and returns a gauge.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register_gauge(family, labels, help, Arc::clone(&g));
        g
    }

    /// Registers an existing gauge handle.
    pub fn register_gauge(&self, family: &str, labels: &[(&str, &str)], help: &str, g: Arc<Gauge>) {
        self.push(family, labels, help, Instrument::Gauge(g));
    }

    /// Creates, registers and returns a histogram.
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register_histogram(family, labels, help, Arc::clone(&h));
        h
    }

    /// Registers an existing histogram handle.
    pub fn register_histogram(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        h: Arc<Histogram>,
    ) {
        self.push(family, labels, help, Instrument::Histogram(h));
    }

    /// Renders every instrument as Prometheus text exposition.
    ///
    /// Families are sorted by name, series within a family by label set;
    /// `# HELP` / `# TYPE` appear once per family. Only integers are
    /// ever emitted, which keeps the output byte-deterministic for a
    /// deterministic workload.
    #[must_use]
    pub fn render_prom(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            (&entries[a].family, &entries[a].labels).cmp(&(&entries[b].family, &entries[b].labels))
        });
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for &i in &order {
            let e = &entries[i];
            if last_family != Some(e.family.as_str()) {
                out.push_str(&format!("# HELP {} {}\n", e.family, e.help));
                out.push_str(&format!("# TYPE {} {}\n", e.family, e.inst.type_name()));
                last_family = Some(e.family.as_str());
            }
            match &e.inst {
                Instrument::Counter(c) => {
                    out.push_str(&sample_line(&e.family, &e.labels, None, c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&sample_line(&e.family, &e.labels, None, g.get()));
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (b, n) in snap.buckets.iter().enumerate() {
                        cumulative += n;
                        let le = Histogram::bucket_le(b)
                            .map_or_else(|| "+Inf".to_string(), |v| v.to_string());
                        out.push_str(&bucket_line(
                            &e.family,
                            &e.labels,
                            &le,
                            cumulative,
                            h.exemplar(b),
                        ));
                    }
                    out.push_str(&sample_line(
                        &format!("{}_sum", e.family),
                        &e.labels,
                        None,
                        snap.sum,
                    ));
                    out.push_str(&sample_line(
                        &format!("{}_count", e.family),
                        &e.labels,
                        None,
                        snap.count,
                    ));
                }
            }
        }
        out
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn sample_line(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    v: u64,
) -> String {
    format!("{name}{} {v}\n", label_block(labels, extra))
}

fn bucket_line(
    family: &str,
    labels: &[(String, String)],
    le: &str,
    v: u64,
    exemplar: Option<(u64, u64)>,
) -> String {
    let mut line = sample_line(&format!("{family}_bucket"), labels, Some(("le", le)), v);
    if let Some((trace, value)) = exemplar {
        // OpenMetrics-style exemplar: ` # {trace_id="<16 hex>"} <value>`.
        line.pop(); // drop the newline
        line.push_str(&format!(" # {{trace_id=\"{trace:016x}\"}} {value}\n"));
    }
    line
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // An exact power of two lands in the bucket whose le equals it;
        // one past it spills into the next bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        for i in 1..FINITE_BUCKETS {
            let p = 1u64 << i;
            assert_eq!(Histogram::bucket_index(p), i, "2^{i} belongs in its own bucket");
            assert_eq!(Histogram::bucket_index(p + 1), (i + 1).min(FINITE_BUCKETS));
            if i > 1 {
                assert_eq!(Histogram::bucket_index(p - 1), i, "just under 2^{i}");
            }
        }
    }

    #[test]
    fn overflow_bucket_saturates() {
        let h = Histogram::new();
        h.observe(1u64 << 31); // last finite bucket
        h.observe((1u64 << 31) + 1); // first overflow value
        h.observe(u64::MAX - 1); // deep overflow still saturates, no panic
        let snap = h.snapshot();
        assert_eq!(snap.buckets[FINITE_BUCKETS - 1], 1);
        assert_eq!(snap.buckets[FINITE_BUCKETS], 2, "values past 2^31 saturate into +Inf");
        assert_eq!(snap.count, 3);
    }

    #[test]
    fn merge_is_deterministic_across_worker_counts() {
        // Shard the same observation stream across 1, 2 and 4 workers;
        // merged snapshots must be identical because merge is pure
        // integer addition.
        let values: Vec<u64> = (0..1000).map(|i| i * 37 % 5000).collect();
        let mut snaps = Vec::new();
        for jobs in [1usize, 2, 4] {
            let shards: Vec<Histogram> = (0..jobs).map(|_| Histogram::new()).collect();
            std::thread::scope(|s| {
                for (w, shard) in shards.iter().enumerate() {
                    let values = &values;
                    s.spawn(move || {
                        for v in values.iter().skip(w).step_by(jobs) {
                            shard.observe(*v);
                        }
                    });
                }
            });
            let merged = Histogram::new();
            for shard in &shards {
                merged.merge_from(shard);
            }
            snaps.push(merged.snapshot());
        }
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[0], snaps[2]);
        assert_eq!(snaps[0].count, 1000);
    }

    #[test]
    fn registry_renders_sorted_families_with_single_headers() {
        let reg = Registry::new();
        let c2 = reg.counter("tdo_test_b_total", &[("endpoint", "x")], "Second family.");
        let c1 = reg.counter("tdo_test_a_total", &[], "First family.");
        let c3 = reg.counter("tdo_test_b_total", &[("endpoint", "a")], "Second family.");
        c1.add(5);
        c2.inc();
        c3.add(7);
        let text = reg.render_prom();
        let expected = "# HELP tdo_test_a_total First family.\n\
                        # TYPE tdo_test_a_total counter\n\
                        tdo_test_a_total 5\n\
                        # HELP tdo_test_b_total Second family.\n\
                        # TYPE tdo_test_b_total counter\n\
                        tdo_test_b_total{endpoint=\"a\"} 7\n\
                        tdo_test_b_total{endpoint=\"x\"} 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_rendering_is_cumulative_and_parses() {
        let reg = Registry::new();
        let h = reg.histogram("tdo_test_latency_us", &[], "A latency.");
        h.observe(1);
        h.observe(3);
        h.observe(3);
        h.observe(1u64 << 40);
        let text = reg.render_prom();
        assert!(text.contains("tdo_test_latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("tdo_test_latency_us_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("tdo_test_latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("tdo_test_latency_us_count 4\n"));
        let stats = expo::parse_text(&text).expect("own output must parse");
        assert_eq!(stats.families, 1);
    }

    #[test]
    fn exemplars_render_on_their_bucket_and_reparse() {
        let reg = Registry::new();
        let h = reg.histogram("tdo_test_traced_us", &[], "A traced latency.");
        h.observe_with_exemplar(3, 0xabcd);
        h.observe_with_exemplar(900, 0); // zero trace: no exemplar recorded
        let text = reg.render_prom();
        assert!(
            text.contains(
                "tdo_test_traced_us_bucket{le=\"4\"} 1 # {trace_id=\"000000000000abcd\"} 3\n"
            ),
            "{text}"
        );
        assert_eq!(text.matches(" # {").count(), 1, "only the traced bucket has an exemplar");
        expo::parse_text(&text).expect("exposition with exemplars must parse");
        assert_eq!(h.exemplar(Histogram::bucket_index(3)), Some((0xabcd, 3)));
        assert_eq!(h.exemplar(Histogram::bucket_index(900)), None);
    }

    #[test]
    fn quantiles_hit_bucket_boundaries_exactly() {
        // A single observation at a power of two is its own p50/p95/p99:
        // the interpolation walks the whole bucket and lands on `le`.
        for k in [0u32, 1, 5, 13, 31] {
            let h = Histogram::new();
            h.observe(1u64 << k);
            let s = h.snapshot();
            assert_eq!(s.p50(), 1u64 << k, "p50 of one 2^{k}");
            assert_eq!(s.p99(), 1u64 << k, "p99 of one 2^{k}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // 100 observations of 3 land in the (2, 4] bucket; the median rank
        // (50 of 100) sits halfway through it: 2 + 2*50/100 = 3.
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(3);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 3);
        assert_eq!(s.p99(), 2 + 2 * 99 / 100);
        assert_eq!(s.quantile_milli(1000), 4, "p100 is the bucket's upper bound");
    }

    #[test]
    fn quantiles_split_across_buckets() {
        // 90 fast + 10 slow: p50 stays in the fast bucket, p95/p99 move to
        // the slow one. le=1 bucket (lo=0, hi=1): rank 45 of 90 -> 0+1*45/90.
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..10 {
            h.observe(1000); // (512, 1024] bucket
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 0); // rank 50 of 90 interpolates inside the [0,1] bucket
        assert_eq!(s.p95(), 512 + 512 * 5 / 10);
        assert_eq!(s.p99(), 512 + 512 * 9 / 10);
    }

    #[test]
    fn quantiles_saturate_in_the_overflow_bucket_and_zero_when_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().p50(), 0, "empty histogram estimates 0");
        h.observe(u64::MAX);
        h.observe((1u64 << 31) + 1);
        let s = h.snapshot();
        assert_eq!(s.p50(), 1u64 << 31, "+Inf ranks saturate to the last finite bound");
        assert_eq!(s.p99(), 1u64 << 31);
    }

    #[test]
    fn gauge_set_overwrites() {
        let g = Gauge::new();
        g.set(9);
        g.set(4);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("tdo_store_get_latency_us"));
        assert!(!valid_name("TdoBad"));
        assert!(!valid_name("9starts_with_digit"));
        assert!(!valid_name(""));
        assert!(!valid_name("has-dash"));
    }
}
