//! A strict validator/parser for the Prometheus-style text exposition
//! this crate emits.
//!
//! The server smoke test and `tdo ping --prom` run every scrape through
//! [`parse_text`] so a malformed exposition fails CI rather than a
//! downstream scraper. The grammar accepted is deliberately the subset
//! we produce: `# HELP` / `# TYPE` comments, integer-valued samples,
//! and cumulative histogram series whose `+Inf` bucket matches the
//! family `_count`.

use std::collections::HashMap;

/// Summary of a successfully validated exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoStats {
    /// Number of metric families (`# TYPE` lines).
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
}

/// One parsed sample line.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: u64,
}

/// Validates exposition text, returning summary statistics.
///
/// # Errors
/// Returns a one-line description of the first violation found:
/// unknown comment, bad metric/label name, non-integer value, a sample
/// for an undeclared family, a non-monotone histogram bucket series, or
/// a `+Inf` bucket that disagrees with `_count`.
pub fn parse_text(text: &str) -> Result<ExpoStats, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            let payload = parts.next().unwrap_or_default();
            match kind {
                "HELP" => {
                    if !crate::valid_name(name) {
                        return Err(format!("line {n}: bad family name in HELP: {name:?}"));
                    }
                    if payload.is_empty() {
                        return Err(format!("line {n}: HELP without text for {name}"));
                    }
                }
                "TYPE" => {
                    if !crate::valid_name(name) {
                        return Err(format!("line {n}: bad family name in TYPE: {name:?}"));
                    }
                    if !matches!(payload, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {n}: unknown type {payload:?} for {name}"));
                    }
                    if types.insert(name.to_string(), payload.to_string()).is_some() {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => return Err(format!("line {n}: unknown comment kind {kind:?}")),
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {n}: {e}"))?);
    }

    // Every sample must belong to a declared family (histogram samples
    // via their _bucket/_sum/_count suffixes).
    for s in &samples {
        if family_of(&s.name, &types).is_none() {
            return Err(format!("sample {} has no TYPE declaration", s.name));
        }
    }
    check_histograms(&types, &samples)?;
    Ok(ExpoStats { families: types.len(), samples: samples.len() })
}

/// Resolves a sample name to its declared family, honouring histogram
/// suffixes.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram") {
                return Some(stem);
            }
        }
    }
    None
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    // Bucket lines may carry an OpenMetrics-style exemplar suffix:
    // `name{le="8"} 3 # {trace_id="00ab..."} 7`. Strip and validate it,
    // then parse the remainder as an ordinary sample.
    let line = match line.split_once(" # ") {
        None => line,
        Some((main, exemplar)) => {
            parse_exemplar(exemplar)?;
            if !main.contains("_bucket") {
                return Err(format!("exemplar on a non-bucket sample {main:?}"));
            }
            main
        }
    };
    let (series, value) =
        line.rsplit_once(' ').ok_or_else(|| format!("no value separator in {line:?}"))?;
    let value: u64 = value.parse().map_err(|_| format!("non-integer sample value {value:?}"))?;
    let (name, labels) = match series.split_once('{') {
        None => (series, Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label block in {series:?}"))?;
            (name, parse_labels(body)?)
        }
    };
    if !crate::valid_name(name) {
        return Err(format!("bad sample name {name:?}"));
    }
    Ok(Sample { name: name.to_string(), labels, value })
}

/// Validates an exemplar suffix body: `{trace_id="<hex>"} <integer>`.
fn parse_exemplar(exemplar: &str) -> Result<(), String> {
    let (labels, value) = exemplar
        .strip_prefix('{')
        .and_then(|rest| rest.split_once("} "))
        .ok_or_else(|| format!("malformed exemplar {exemplar:?}"))?;
    parse_labels(labels)?;
    value.parse::<u64>().map_err(|_| format!("non-integer exemplar value {value:?}"))?;
    Ok(())
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in body.split(',') {
        let (k, v) = pair.split_once('=').ok_or_else(|| format!("bad label pair {pair:?}"))?;
        if !crate::valid_name(k) && k != "le" {
            return Err(format!("bad label name {k:?}"));
        }
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value {v:?}"))?;
        out.push((k.to_string(), v.to_string()));
    }
    Ok(out)
}

/// Verifies every histogram family: bucket series cumulative and
/// non-decreasing in emission order, ending in a `+Inf` bucket equal to
/// the series' `_count`.
fn check_histograms(types: &HashMap<String, String>, samples: &[Sample]) -> Result<(), String> {
    for (family, ty) in types {
        if ty != "histogram" {
            continue;
        }
        // Group bucket samples by their non-le label set, preserving order.
        let mut series: Vec<(String, Vec<&Sample>)> = Vec::new();
        for s in samples.iter().filter(|s| s.name == format!("{family}_bucket")) {
            let key = series_key(s);
            match series.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(s),
                None => series.push((key, vec![s])),
            }
        }
        if series.is_empty() {
            return Err(format!("histogram {family} has no bucket samples"));
        }
        for (key, buckets) in &series {
            let mut last = 0u64;
            for b in buckets {
                if b.value < last {
                    return Err(format!("histogram {family}{key} buckets not cumulative"));
                }
                last = b.value;
            }
            let inf = buckets
                .last()
                .filter(|b| b.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
                .ok_or_else(|| format!("histogram {family}{key} missing +Inf bucket"))?;
            let count = samples
                .iter()
                .find(|s| s.name == format!("{family}_count") && series_key(s) == *key)
                .ok_or_else(|| format!("histogram {family}{key} missing _count"))?;
            if inf.value != count.value {
                return Err(format!(
                    "histogram {family}{key}: +Inf bucket {} != count {}",
                    inf.value, count.value
                ));
            }
        }
    }
    Ok(())
}

/// A stable key for a sample's labels with `le` removed.
fn series_key(s: &Sample) -> String {
    let mut parts: Vec<String> =
        s.labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
    parts.sort();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "# HELP tdo_x_total Things.\n\
                    # TYPE tdo_x_total counter\n\
                    tdo_x_total{endpoint=\"health\"} 3\n\
                    # HELP tdo_lat_us Latency.\n\
                    # TYPE tdo_lat_us histogram\n\
                    tdo_lat_us_bucket{le=\"1\"} 1\n\
                    tdo_lat_us_bucket{le=\"+Inf\"} 2\n\
                    tdo_lat_us_sum 41\n\
                    tdo_lat_us_count 2\n";
        let stats = parse_text(text).expect("valid");
        assert_eq!(stats, ExpoStats { families: 2, samples: 5 });
    }

    #[test]
    fn rejects_undeclared_samples_and_bad_values() {
        assert!(parse_text("tdo_mystery_total 1\n").is_err(), "no TYPE");
        let bad_value = "# HELP tdo_x_total X.\n# TYPE tdo_x_total counter\ntdo_x_total 1.5\n";
        assert!(parse_text(bad_value).is_err(), "float value");
    }

    #[test]
    fn accepts_exemplars_on_bucket_lines_only() {
        let good = "# HELP tdo_l_us L.\n# TYPE tdo_l_us histogram\n\
                    tdo_l_us_bucket{le=\"1\"} 1 # {trace_id=\"00000000000000ab\"} 1\n\
                    tdo_l_us_bucket{le=\"+Inf\"} 2\n\
                    tdo_l_us_sum 41\ntdo_l_us_count 2\n";
        assert!(parse_text(good).is_ok(), "{:?}", parse_text(good));
        let on_counter = "# HELP tdo_x_total X.\n# TYPE tdo_x_total counter\n\
                          tdo_x_total 1 # {trace_id=\"ab\"} 1\n";
        assert!(parse_text(on_counter).is_err(), "exemplar on a counter");
        let bad_value = "# HELP tdo_l_us L.\n# TYPE tdo_l_us histogram\n\
                         tdo_l_us_bucket{le=\"1\"} 1 # {trace_id=\"ab\"} x\n\
                         tdo_l_us_bucket{le=\"+Inf\"} 1\n\
                         tdo_l_us_sum 1\ntdo_l_us_count 1\n";
        assert!(parse_text(bad_value).is_err(), "non-integer exemplar value");
    }

    #[test]
    fn rejects_non_cumulative_or_mismatched_histograms() {
        let shrinking = "# HELP tdo_l_us L.\n# TYPE tdo_l_us histogram\n\
                         tdo_l_us_bucket{le=\"1\"} 5\n\
                         tdo_l_us_bucket{le=\"+Inf\"} 3\n\
                         tdo_l_us_sum 1\ntdo_l_us_count 3\n";
        assert!(parse_text(shrinking).unwrap_err().contains("not cumulative"));
        let mismatch = "# HELP tdo_l_us L.\n# TYPE tdo_l_us histogram\n\
                        tdo_l_us_bucket{le=\"1\"} 1\n\
                        tdo_l_us_bucket{le=\"+Inf\"} 2\n\
                        tdo_l_us_sum 1\ntdo_l_us_count 9\n";
        assert!(parse_text(mismatch).unwrap_err().contains("!= count"));
    }
}
