//! The full-system simulation driver.
//!
//! Wires the SMT core, the memory hierarchy, the Trident framework, and the
//! self-repairing prefetcher together, exactly mirroring the paper's flow:
//!
//! 1. the core commits instructions; the driver feeds original-code branches
//!    to the branch profiler and hot-trace loads to the DLT;
//! 2. hot events (hot trace, delinquent load) queue until the helper
//!    context is free; the optimizer's *analysis* runs at event time while
//!    its *simulated cost* occupies the helper context (startup 2000 cycles
//!    plus a work charge);
//! 3. when the helper job completes, the prepared code changes — trace
//!    linking, prefetch insertion, or in-place distance repair — are patched
//!    into the running binary;
//! 4. the watch table monitors per-trace minimal execution time and backs
//!    out under-performing traces.

use std::collections::HashMap;

use tdo_core::{Dlt, OptimizerConfig, PrefetchOptimizer, PreparedAction};
use tdo_cpu::{CodeImage, Commit, CommitKind, Core, HelperJob};
use tdo_mem::{ArmConfig, Hierarchy, LoadClass, Memory};
use tdo_obs::{Event, HelperJobKind, QueueEventKind, Recorder, SharedProbe};
use tdo_trident::{HotEvent, PendingInstall, TraceId, Trident};
use tdo_workloads::Workload;

use crate::config::{policy_candidates, PolicyConfig, SimConfig};
use crate::profile::{
    MachineProfile, MachineProfiler, PHASE_CORE, PHASE_EVENTS, PHASE_MATURE, PHASE_MONITORS,
    PHASE_OPTIMIZER, PHASE_SAMPLING,
};
use crate::result::{DriverCounters, SimResult, Snapshot};

#[derive(Clone, Copy)]
struct PcInfo {
    trace: TraceId,
    /// Index within the trace; `usize::MAX` marks a patched trace head
    /// (glue jump, zero weight).
    index: usize,
    weight: u32,
}

enum PendingJob {
    InstallTrace(PendingInstall),
    Opt { action: PreparedAction, trace: TraceId },
}

/// Dense-slot cap for the code-cache side of [`PcMap`] (the 4 MB code
/// cache holds at most 512 K instructions).
const PC_MAP_CC_MAX: usize = 1 << 20;

/// PC → trace-membership map, consulted once per committed instruction.
///
/// Was a `HashMap<u64, PcInfo>`; the commit path is hot enough that the
/// hash + probe showed up in the phase profile, so the two address ranges
/// commits actually come from — the original program and the code cache —
/// are dense slot arrays indexed by `(pc - base) / INST_BYTES`, with a
/// spill map for anything else (never hit in practice).
struct PcMap {
    orig_base: u64,
    orig: Vec<Option<PcInfo>>,
    cc_base: u64,
    cc: Vec<Option<PcInfo>>,
    spill: HashMap<u64, PcInfo>,
}

impl PcMap {
    fn new(orig_base: u64, orig_len: usize, cc_base: u64) -> PcMap {
        PcMap {
            orig_base,
            orig: vec![None; orig_len],
            cc_base,
            cc: Vec::new(),
            spill: HashMap::new(),
        }
    }

    #[inline]
    fn slot_index(base: u64, len: usize, pc: u64) -> Option<usize> {
        if pc < base {
            return None;
        }
        let idx = ((pc - base) / tdo_isa::INST_BYTES) as usize;
        (idx < len).then_some(idx)
    }

    #[inline]
    fn get(&self, pc: u64) -> Option<PcInfo> {
        if let Some(i) = Self::slot_index(self.orig_base, self.orig.len(), pc) {
            return self.orig[i];
        }
        if let Some(i) = Self::slot_index(self.cc_base, self.cc.len(), pc) {
            return self.cc[i];
        }
        if self.spill.is_empty() {
            return None;
        }
        self.spill.get(&pc).copied()
    }

    fn insert(&mut self, pc: u64, info: PcInfo) {
        if let Some(i) = Self::slot_index(self.orig_base, self.orig.len(), pc) {
            self.orig[i] = Some(info);
            return;
        }
        if pc >= self.cc_base {
            let idx = ((pc - self.cc_base) / tdo_isa::INST_BYTES) as usize;
            if idx < PC_MAP_CC_MAX {
                if idx >= self.cc.len() {
                    self.cc.resize(idx + 1, None);
                }
                self.cc[idx] = Some(info);
                return;
            }
        }
        self.spill.insert(pc, info);
    }

    fn remove(&mut self, pc: u64) {
        if let Some(i) = Self::slot_index(self.orig_base, self.orig.len(), pc) {
            self.orig[i] = None;
            return;
        }
        if let Some(i) = Self::slot_index(self.cc_base, self.cc.len(), pc) {
            self.cc[i] = None;
            return;
        }
        self.spill.remove(&pc);
    }
}

/// Where the policy controller is in its sample-then-commit cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PolicyState {
    /// Sweeping the candidate arms, one epoch each; `idx` is the candidate
    /// currently installed and being measured.
    Sampling {
        /// Index into [`policy_candidates`].
        idx: usize,
    },
    /// Running the chosen incumbent until its IPC degrades.
    Committed,
}

/// The runtime arm-selection controller: an epoch-gated sample-then-commit
/// hill climb over [`policy_candidates`], with hysteresis on replacement
/// and an IPC-degradation trigger for re-sampling (the phase-change
/// detector). Epochs are counted in committed original-equivalent
/// instructions, so decisions are independent of whether a probe is
/// attached — traced and untraced runs take identical switch sequences.
struct PolicyController {
    cfg: PolicyConfig,
    candidates: [ArmConfig; 4],
    state: PolicyState,
    /// Milli-IPC measured for each candidate in the current sweep.
    scores: [u64; 4],
    /// Candidate currently installed in the hierarchy.
    current: usize,
    /// Candidate holding the committed slot (sweep winners must beat it by
    /// the hysteresis margin to take over).
    incumbent: usize,
    /// Best committed-epoch milli-IPC seen since the last sweep.
    best_ipc: u64,
    /// `total_orig` threshold of the next epoch boundary.
    next_check: u64,
    /// Counter values at the epoch start, for window deltas.
    base_insts: u64,
    base_cycles: u64,
    base_misses: u64,
    /// Epochs closed so far — the ordinal stamped into ledger records.
    epochs: u64,
}

impl PolicyController {
    fn new(cfg: PolicyConfig) -> PolicyController {
        PolicyController {
            cfg,
            candidates: policy_candidates(),
            state: PolicyState::Sampling { idx: 0 },
            scores: [0; 4],
            current: 0,
            incumbent: 0,
            best_ipc: 0,
            next_check: cfg.epoch_insts.max(1),
            base_insts: 0,
            base_cycles: 0,
            base_misses: 0,
            epochs: 0,
        }
    }

    /// Closes an epoch with its measured milli-IPC; returns the candidate
    /// indices `(from, to)` and the deciding rule's milli-margin (0 for an
    /// unconditional sweep advance, `hysteresis_milli` for a sweep commit,
    /// `degrade_milli` for a phase-change re-sweep) when the installed arm
    /// must change.
    fn on_epoch(&mut self, ipc_milli: u64) -> Option<(usize, usize, u64)> {
        self.epochs += 1;
        let from = self.current;
        let mut margin = 0;
        match self.state {
            PolicyState::Sampling { idx } => {
                self.scores[idx] = ipc_milli;
                if idx + 1 < self.candidates.len() {
                    self.state = PolicyState::Sampling { idx: idx + 1 };
                    self.current = idx + 1;
                } else {
                    // Sweep complete: strictly-greater scan from below, so
                    // ties keep the earlier (lower-index) candidate.
                    let mut winner = 0;
                    for (i, &s) in self.scores.iter().enumerate() {
                        if s > self.scores[winner] {
                            winner = i;
                        }
                    }
                    if winner != self.incumbent
                        && self.scores[winner] * 1000
                            > self.scores[self.incumbent] * (1000 + self.cfg.hysteresis_milli)
                    {
                        self.incumbent = winner;
                    }
                    self.best_ipc = self.scores[self.incumbent];
                    self.state = PolicyState::Committed;
                    self.current = self.incumbent;
                    margin = self.cfg.hysteresis_milli;
                }
            }
            PolicyState::Committed => {
                self.best_ipc = self.best_ipc.max(ipc_milli);
                if ipc_milli * 1000 < self.best_ipc * (1000 - self.cfg.degrade_milli.min(1000)) {
                    // Performance fell off a cliff relative to this commit
                    // window's best epoch: assume a phase change and re-sweep.
                    self.scores = [0; 4];
                    self.state = PolicyState::Sampling { idx: 0 };
                    self.current = 0;
                    margin = self.cfg.degrade_milli;
                }
            }
        }
        (from != self.current).then_some((from, self.current, margin))
    }
}

/// Counter values at the last windowed sample, for window deltas.
#[derive(Clone, Copy, Default)]
struct SampleBase {
    insts: u64,
    cycles: u64,
    loads: u64,
    load_misses: u64,
    l2_misses: u64,
    pf_issued: u64,
    pf_hits: u64,
}

/// The assembled machine for one run.
pub struct Machine {
    cfg: SimConfig,
    core: Core,
    code: CodeImage,
    data: Memory,
    hier: Hierarchy,
    trident: Trident,
    dlt: Dlt,
    optimizer: PrefetchOptimizer,
    pc_map: PcMap,
    trace_pcs: HashMap<TraceId, Vec<u64>>,
    trace_len: HashMap<TraceId, usize>,
    trace_head: HashMap<TraceId, u64>,
    cur_trace: Option<(TraceId, usize)>,
    pending_job: Option<(u64, PendingJob)>,
    next_job_id: u64,
    counters: DriverCounters,
    total_orig: u64,
    next_mature_clear: Option<u64>,
    commit_buf: Vec<Commit>,
    name: String,
    probe: SharedProbe,
    probe_on: bool,
    next_sample: u64,
    sample_base: SampleBase,
    /// Runtime arm-selection controller (policy setups only; locked
    /// policies install their arm at build time and need no controller).
    policy: Option<PolicyController>,
    /// Arm-switch decision records; merged with the optimizer's repair
    /// records into [`SimResult::ledger`].
    ledger: tdo_core::DecisionLedger,
    /// Self-profiler; `None` (the default) is the zero-cost disabled
    /// path — every hook below is a single `Option` test.
    prof: Option<Box<MachineProfiler>>,
}

impl Machine {
    /// Builds a machine loaded with `workload`.
    #[must_use]
    pub fn new(workload: &Workload, cfg: SimConfig) -> Machine {
        let mut data = Memory::new();
        for seg in &workload.program.data {
            data.write_bytes(seg.base, &seg.bytes);
        }
        let code = CodeImage::new(&workload.program, cfg.trident.code_cache_base);
        // Policy runs configure `mem.arm = None` and install the starting
        // arm here through the same `set_arm` path the controller uses at
        // run time; `set_arm` counts no switch when no arm is live yet, so
        // a locked-policy run is state-identical to the static run of the
        // same arm.
        let mut hier = Hierarchy::new(cfg.mem);
        let policy = match &cfg.policy {
            None => None,
            Some(p) => match p.locked {
                Some(arm) => {
                    hier.set_arm(&arm);
                    None
                }
                None => {
                    let ctl = PolicyController::new(*p);
                    hier.set_arm(&ctl.candidates[ctl.current]);
                    Some(ctl)
                }
            },
        };
        let opt_cfg = OptimizerConfig {
            mode: cfg.sw_mode,
            line_bytes: cfg.mem.l1.line_bytes as i64,
            l1_latency: cfg.mem.l1.latency,
            mem_latency: cfg.mem.mem_latency,
            scratch_pool: tdo_workloads::abi::scratch_pool(),
            estimated_initial_distance: cfg.estimated_initial
                || !matches!(cfg.sw_mode, tdo_core::SwPrefetchMode::SelfRepair),
        };
        Machine {
            core: Core::new(cfg.cpu, workload.program.entry),
            code,
            data,
            hier,
            trident: Trident::new(cfg.trident),
            dlt: Dlt::new(cfg.dlt),
            optimizer: PrefetchOptimizer::new(opt_cfg),
            pc_map: PcMap::new(
                workload.program.code_base,
                workload.program.code.len(),
                cfg.trident.code_cache_base,
            ),
            trace_pcs: HashMap::new(),
            trace_len: HashMap::new(),
            trace_head: HashMap::new(),
            cur_trace: None,
            pending_job: None,
            next_job_id: 0,
            counters: DriverCounters::default(),
            total_orig: 0,
            next_mature_clear: cfg.mature_clear_interval,
            commit_buf: Vec::with_capacity(8),
            name: workload.program.name.clone(),
            probe: tdo_obs::null_probe(),
            probe_on: false,
            next_sample: cfg.sample_insts.max(1),
            sample_base: SampleBase::default(),
            policy,
            ledger: tdo_core::DecisionLedger::new(),
            prof: None,
            cfg,
        }
    }

    /// Turns on the self-profiler (see [`crate::profile`]). The profiler
    /// only reads the host clock, so the simulation result is unchanged.
    pub fn enable_profiler(&mut self) {
        self.prof = Some(Box::default());
    }

    /// Parity-test aid: switches the code image to decoding the stored
    /// word on every fetch instead of serving predecoded ops. The two
    /// modes are architecturally identical — the differential suite in
    /// `crates/cpu/tests/predecode_parity.rs` runs both and byte-compares
    /// the serialized results.
    pub fn set_per_fetch_decode(&mut self, on: bool) {
        self.code.set_per_fetch_decode(on);
    }

    /// Attributes the wall time since the profiler's last mark to
    /// `phase`. Disabled-path cost: one branch.
    fn prof_lap(&mut self, phase: usize) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.timer.lap(phase);
        }
    }

    /// Attaches an observability probe, shared with the Trident runtime and
    /// the prefetch optimizer: every layer's events land in one recorder, in
    /// deterministic simulation order, stamped with simulated cycles.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe_on = probe.borrow().enabled();
        self.trident.set_probe(probe.clone());
        self.optimizer.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Records one event when a probe is attached.
    fn emit(&self, now: u64, ev: Event) {
        if self.probe_on {
            self.probe.borrow_mut().record(now, ev);
        }
    }

    /// Runs the configured warmup + measurement window and returns the
    /// result.
    #[must_use]
    pub fn run(mut self) -> SimResult {
        self.run_inner()
    }

    /// Like [`Machine::run`], but hands the final data memory to `probe`
    /// before returning — used by tests asserting architectural equivalence
    /// across optimization arms.
    #[must_use]
    pub fn run_with_memory(mut self, probe: &mut dyn FnMut(&Memory)) -> SimResult {
        let r = self.run_inner();
        probe(&self.data);
        r
    }

    /// Like [`Machine::run`], but hands the whole finished machine to
    /// `inspect` before returning — tooling uses this to dump installed
    /// traces, DLT contents, or optimizer state after a run.
    #[must_use]
    pub fn run_with_inspect(mut self, inspect: &mut dyn FnMut(&Machine)) -> SimResult {
        let r = self.run_inner();
        inspect(&self);
        r
    }

    /// The Trident runtime (trace registry, watch table, profiler).
    #[must_use]
    pub fn trident(&self) -> &Trident {
        &self.trident
    }

    /// The delinquent load table.
    #[must_use]
    pub fn dlt(&self) -> &Dlt {
        &self.dlt
    }

    /// The prefetch optimizer (group repair states).
    #[must_use]
    pub fn optimizer(&self) -> &PrefetchOptimizer {
        &self.optimizer
    }

    /// Identifiers of all currently installed traces.
    #[must_use]
    pub fn installed_traces(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.trace_len.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn run_inner(&mut self) -> SimResult {
        let warmup_end = self.cfg.warmup_insts;
        let budget = self.cfg.warmup_insts.saturating_add(self.cfg.measure_insts);
        let mut warm_snapshot: Option<Snapshot> = None;

        while self.total_orig < budget
            && !self.core.halted()
            && self.core.now() < self.cfg.max_cycles
        {
            // Batch-step: when nothing in the whole machine can act before
            // some future cycle — the main context is stalled, the helper
            // is idle, no job awaits commit and no event awaits dispatch —
            // jump the clock there instead of stepping through empty
            // cycles. Every skipped cycle is one the baseline loop would
            // execute with zero state change (no commits, no monitors, no
            // sampling — it is instruction-gated — no dispatch, no finish),
            // so results are bit-identical; the mature-clear tick is the
            // one cycle-gated action, handled by capping the jump just
            // short of its deadline.
            if self.pending_job.is_none() && self.trident.events.is_empty() {
                if let Some(mut t) = self.core.idle_hint(&self.code) {
                    if let Some(at) = self.next_mature_clear {
                        t = t.min(at.saturating_sub(1));
                    }
                    t = t.min(self.cfg.max_cycles);
                    if t > self.core.now() {
                        self.core.skip_to(t);
                    }
                }
            }
            self.step();
            if warm_snapshot.is_none() && self.total_orig >= warmup_end {
                warm_snapshot = Some(self.snapshot());
            }
        }
        self.optimizer.finalize();
        // Close out the live arm's counters so the per-kind aggregates in
        // `MemStats` cover every arm the run used.
        self.hier.fold_arm_stats();
        // Merge the two decision streams into one trajectory. Each source
        // ring is chronological, so a stable sort on cycle is a merge.
        let mut ledger = self.optimizer.ledger.records();
        ledger.extend(self.ledger.records());
        ledger.sort_by_key(|r| r.cycle);
        let begin = warm_snapshot.unwrap_or_default();
        let end = self.snapshot();
        let (cycles, helper_active, helper_committed, window) =
            SimResult::window_from(&begin, &end);
        SimResult {
            name: self.name.clone(),
            cycles,
            orig_insts: window.orig_insts,
            helper_active_cycles: helper_active,
            helper_committed,
            window,
            cpu: self.core.stats,
            mem: self.hier.stats,
            trident: self.trident.stats,
            optimizer: self.optimizer.stats,
            ledger,
            halted: self.core.halted(),
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycles: self.core.now(),
            helper_active: self.core.stats.helper_active_cycles,
            helper_committed: self.core.stats.helper_committed,
            counters: self.counters,
        }
    }

    fn optimization_enabled(&self) -> bool {
        self.cfg.trident_enabled && self.total_orig >= self.cfg.warmup_insts
    }

    fn step(&mut self) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.timer.start();
        }

        // 1. One core cycle.
        let commits = self.core.cycle(&self.code, &mut self.data, &mut self.hier);
        let mut buf = std::mem::take(&mut self.commit_buf);
        buf.clear();
        buf.extend_from_slice(commits);
        self.prof_lap(PHASE_CORE);

        // Phases 2–5 lap the profiler clock only when they actually did
        // work: an idle phase's guard test costs nanoseconds, and reading
        // the clock for it both distorts the attribution and — at 6–7
        // reads per simulated cycle — used to be a large fraction of the
        // profiled run's wall time. The guards' cost rolls into the next
        // phase that does lap (or goes unattributed at step end).

        // 2. Feed the monitors.
        if !buf.is_empty() {
            for c in &buf {
                self.observe_commit(c);
            }
            self.prof_lap(PHASE_MONITORS);
        }
        self.commit_buf = buf;

        // 2b. Windowed performance sample for the timeline.
        if self.probe_on && self.total_orig >= self.next_sample {
            self.emit_sample();
            self.prof_lap(PHASE_SAMPLING);
        }

        // 2c. Policy-controller epoch boundary. Gated on committed
        // instructions (never on probe_on), so arm-switch sequences are
        // identical with and without tracing attached.
        if self.policy.as_ref().is_some_and(|c| self.total_orig >= c.next_check) {
            self.policy_epoch();
        }

        // 3. Dispatch one pending event to the helper if it is free.
        if self.optimization_enabled()
            && self.pending_job.is_none()
            && self.core.helper_idle()
            && !self.trident.events.is_empty()
        {
            self.dispatch_event();
            self.prof_lap(PHASE_EVENTS);
        }

        // 4. Commit a finished helper job.
        if let Some(id) = self.core.take_finished_job() {
            self.finish_job(id);
            self.prof_lap(PHASE_OPTIMIZER);
        }

        // 5. Phase-change extension: periodically re-open matured loads.
        if let (Some(at), Some(interval)) = (self.next_mature_clear, self.cfg.mature_clear_interval)
        {
            if self.core.now() >= at {
                self.dlt.clear_all_mature();
                self.optimizer.refresh_budgets();
                self.next_mature_clear = Some(at + interval);
                self.prof_lap(PHASE_MATURE);
            }
        }
    }

    /// Closes one policy epoch: computes the window's milli-IPC and
    /// milli-MPKI, feeds them to the controller, and applies any arm change
    /// it decides (emitting [`Event::ArmSwitch`] with the triggering
    /// window's metrics).
    fn policy_epoch(&mut self) {
        let now = self.core.now();
        let misses = self.hier.stats.l1_misses();
        let total = self.total_orig;
        let Some(ctl) = self.policy.as_mut() else { return };
        let dinsts = total - ctl.base_insts;
        let dcycles = (now - ctl.base_cycles).max(1);
        let ipc_milli = dinsts * 1000 / dcycles;
        let mpki_milli = (misses - ctl.base_misses) * 1_000_000 / dinsts.max(1);
        let decision = ctl.on_epoch(ipc_milli);
        ctl.base_insts = total;
        ctl.base_cycles = now;
        ctl.base_misses = misses;
        let step = ctl.cfg.epoch_insts.max(1);
        while ctl.next_check <= total {
            ctl.next_check += step;
        }
        let epoch = ctl.epochs;
        let decision =
            decision.map(|(f, t, margin)| (f, t, margin, ctl.candidates[f], ctl.candidates[t]));
        if let Some((from_idx, to_idx, margin_milli, from, to)) = decision {
            self.hier.set_arm(&to);
            self.ledger.push(tdo_core::LedgerRecord {
                cycle: now,
                kind: tdo_core::LedgerKind::ArmSwitch,
                group: 0,
                pc: 0,
                old: from_idx as u64,
                new: to_idx as u64,
                evidence_a: ipc_milli,
                evidence_b: mpki_milli,
                margin_milli,
                epoch,
            });
            self.emit(
                now,
                Event::ArmSwitch {
                    from: from.kind().map_or("none", tdo_mem::ArmKind::name),
                    to: to.kind().map_or("none", tdo_mem::ArmKind::name),
                    ipc_milli,
                    mpki_milli,
                },
            );
        }
    }

    /// Emits one windowed [`Event::Sample`] and advances the window. Rates
    /// are integer milli-units over the window just ended, so serialized
    /// samples are byte-deterministic.
    fn emit_sample(&mut self) {
        let now = self.core.now();
        let mem = &self.hier.stats;
        let cur = SampleBase {
            insts: self.total_orig,
            cycles: now,
            loads: self.counters.loads(),
            load_misses: self.counters.load_misses,
            l2_misses: mem.serviced[3] + mem.serviced[4],
            pf_issued: mem.sw_prefetch_issued,
            pf_hits: mem.hits_prefetched,
        };
        let base = self.sample_base;
        let ratio = |num: u64, den: u64| (num * 1000).checked_div(den).unwrap_or(0);
        let dcycles = cur.cycles - base.cycles;
        self.emit(
            now,
            Event::Sample {
                insts: cur.insts,
                dcycles,
                ipc_milli: ratio(cur.insts - base.insts, dcycles),
                l1_miss_milli: ratio(cur.load_misses - base.load_misses, cur.loads - base.loads),
                l2_miss_milli: ratio(cur.l2_misses - base.l2_misses, cur.loads - base.loads),
                pf_acc_milli: ratio(cur.pf_hits - base.pf_hits, cur.pf_issued - base.pf_issued),
            },
        );
        self.sample_base = cur;
        let step = self.cfg.sample_insts.max(1);
        while self.next_sample <= self.total_orig {
            self.next_sample += step;
        }
    }

    fn observe_commit(&mut self, c: &Commit) {
        let info = self.pc_map.get(c.pc);
        let in_trace = info.filter(|i| i.index != usize::MAX);
        let weight = match info {
            Some(i) => u64::from(i.weight),
            None => 1,
        };
        self.total_orig += weight;
        self.counters.orig_insts += weight;

        // Trace entry/exit tracking for the watch table.
        let now = c.cycle;
        match (self.cur_trace, in_trace) {
            (Some((old, last_idx)), Some(i)) if i.trace == old => {
                if i.index == 0 {
                    self.trident.watch.on_enter(old, now); // loop-back
                }
                self.cur_trace = Some((old, i.index));
                let _ = last_idx;
            }
            (prev, Some(i)) => {
                if let Some((old, last_idx)) = prev {
                    self.exit_trace(old, last_idx, now);
                }
                self.trident.watch.on_enter(i.trace, now);
                self.cur_trace = Some((i.trace, i.index));
            }
            (Some((old, last_idx)), None) => {
                self.exit_trace(old, last_idx, now);
                self.cur_trace = None;
            }
            (None, None) => {}
        }

        match c.kind {
            CommitKind::Load { addr, result } => {
                match result.class {
                    LoadClass::Hit => self.counters.loads_hit += 1,
                    LoadClass::HitPrefetched => self.counters.loads_hit_prefetched += 1,
                    LoadClass::PartialHit => self.counters.loads_partial += 1,
                    LoadClass::Miss => self.counters.loads_miss += 1,
                    LoadClass::MissDueToPrefetch => {
                        self.counters.loads_miss_due_to_prefetch += 1;
                    }
                }
                if result.l1_miss {
                    self.counters.load_misses += 1;
                }
                if let Some(i) = in_trace {
                    if result.l1_miss {
                        self.counters.load_misses_in_traces += 1;
                        if let (Some(head), Some(t)) =
                            (self.trace_head.get(&i.trace), self.trident.trace(i.trace))
                        {
                            let orig = t.insts[i.index].orig_pc;
                            if self.optimizer.is_covered(*head, orig) {
                                self.counters.load_misses_covered += 1;
                            }
                        }
                    }
                    // DLT: hardware updates for hot-trace loads.
                    if self.cfg.sw_mode != tdo_core::SwPrefetchMode::Off
                        && self.optimization_enabled()
                        && self.dlt.observe(c.pc, addr, result.l1_miss, result.latency)
                    {
                        let suppressed =
                            self.trident.watch.get(i.trace).is_none_or(|e| e.being_optimized);
                        if !suppressed {
                            self.trident.push_event(
                                c.cycle,
                                HotEvent::DelinquentLoad { load_pc: c.pc, trace: i.trace },
                            );
                            self.counters.dlt_events_queued += 1;
                        }
                    }
                }
            }
            CommitKind::Branch { taken, target, .. }
                if info.is_none() && self.optimization_enabled() =>
            {
                self.trident.observe_branch(c.cycle, c.pc, taken, target, true);
            }
            CommitKind::Jump { target } if info.is_none() && self.optimization_enabled() => {
                self.trident.observe_branch(c.cycle, c.pc, true, target, false);
            }
            _ => {}
        }
    }

    fn exit_trace(&mut self, trace: TraceId, last_idx: usize, now: u64) {
        let len = self.trace_len.get(&trace).copied().unwrap_or(0);
        let early = last_idx + 1 != len;
        let backout = self.trident.watch.on_exit(trace, now, early);
        if backout && !self.job_references(trace) {
            if let Ok(patches) = self.trident.backout(now, trace) {
                for p in patches {
                    let _ = self.code.write_word(p.addr, p.word);
                }
                self.retire_trace_map(trace, true);
                self.counters.trace_backouts += 1;
            }
        }
    }

    fn job_references(&self, trace: TraceId) -> bool {
        match &self.pending_job {
            Some((_, PendingJob::Opt { trace: t, .. })) => *t == trace,
            _ => false,
        }
    }

    fn dispatch_event(&mut self) {
        let Some(ev) = self.trident.pop_event() else {
            return;
        };
        let now = self.core.now();
        if self.probe_on {
            let (kind, pc) = match ev {
                HotEvent::HotTrace { head, .. } => (QueueEventKind::HotTrace, head),
                HotEvent::DelinquentLoad { load_pc, .. } => {
                    (QueueEventKind::DelinquentLoad, load_pc)
                }
            };
            let pending = self.trident.events.len() as u32;
            self.emit(now, Event::EventDrained { kind, pc, pending });
        }
        match ev {
            HotEvent::HotTrace { head, bitmap, nbits } => {
                if self.trident.linked_at(head).is_some() {
                    return;
                }
                if std::env::var_os("TDO_DEBUG").is_some() {
                    eprintln!("[{now}] hot trace head={head:#x} bitmap={bitmap:#b} nbits={nbits}");
                }
                self.counters.hot_trace_events += 1;
                let code = &self.code;
                let fetch = |pc: u64| code.fetch(pc).expect("trace formation read a corrupt word");
                let Ok(pending) = self.trident.prepare_install(now, &fetch, head, bitmap, nbits)
                else {
                    return;
                };
                let cost = self.cfg.job_cost.form_base
                    + self.cfg.job_cost.form_per_inst * pending.trace.insts.len() as u64;
                let id = self.next_job_id;
                self.next_job_id += 1;
                self.core.start_helper(HelperJob { id, instructions: cost });
                self.emit(
                    now,
                    Event::HelperStart { job: id, kind: HelperJobKind::FormTrace, cost },
                );
                if let Some(p) = self.prof.as_deref_mut() {
                    p.job_begin(HelperJobKind::FormTrace, now);
                }
                self.pending_job = Some((id, PendingJob::InstallTrace(pending)));
            }
            HotEvent::DelinquentLoad { load_pc: _, trace } => {
                if self.cfg.sw_mode == tdo_core::SwPrefetchMode::Off {
                    return;
                }
                let Some(entry) = self.trident.watch.get_mut(trace) else {
                    return;
                };
                if entry.being_optimized {
                    return;
                }
                entry.being_optimized = true;
                let len = self.trace_len.get(&trace).copied().unwrap_or(16) as u64;
                let code = &self.code;
                let fetch = |pc: u64| code.fetch(pc).expect("optimizer read a corrupt word");
                let action =
                    self.optimizer.handle_event(now, ev, &mut self.trident, &mut self.dlt, &fetch);
                let (cost, kind) = match &action {
                    PreparedAction::Install(_) => (
                        self.cfg.job_cost.insert_base + self.cfg.job_cost.insert_per_inst * len,
                        HelperJobKind::InsertPrefetches,
                    ),
                    PreparedAction::Repair { .. } => {
                        (self.cfg.job_cost.repair, HelperJobKind::RepairDistance)
                    }
                    PreparedAction::Nothing => {
                        (self.cfg.job_cost.analyze_only, HelperJobKind::AnalyzeOnly)
                    }
                };
                let id = self.next_job_id;
                self.next_job_id += 1;
                self.core.start_helper(HelperJob { id, instructions: cost });
                self.emit(now, Event::HelperStart { job: id, kind, cost });
                if let Some(p) = self.prof.as_deref_mut() {
                    p.job_begin(kind, now);
                }
                self.pending_job = Some((id, PendingJob::Opt { action, trace }));
            }
        }
    }

    fn finish_job(&mut self, id: u64) {
        let Some((job_id, job)) = self.pending_job.take() else {
            return;
        };
        debug_assert_eq!(job_id, id, "one helper job in flight at a time");
        let now = self.core.now();
        self.emit(now, Event::HelperFinish { job: id });
        if let Some(p) = self.prof.as_deref_mut() {
            p.job_end(now);
        }
        match job {
            PendingJob::InstallTrace(pending) => {
                if self.cfg.no_link {
                    // §5.1 overhead mode: the work was done, nothing links.
                    self.trident.profiler.mark_traced(pending.trace.head);
                    return;
                }
                let forwards = match self.trident.commit_install(now, &pending) {
                    Ok(f) => f,
                    Err(_) => {
                        self.trident.profiler.mark_traced(pending.trace.head);
                        return;
                    }
                };
                for p in pending.patches.iter().chain(forwards.iter()) {
                    let _ = self.code.write_word(p.addr, p.word);
                }
                self.add_trace_map(pending.trace.id);
            }
            PendingJob::Opt { action, trace } => {
                let replaces = match &action {
                    PreparedAction::Install(p) => Some((p.replaces, p.trace.id)),
                    _ => None,
                };
                match self.optimizer.commit(now, action, &mut self.trident, &mut self.dlt) {
                    Ok(patches) => {
                        for p in &patches {
                            let _ = self.code.write_word(p.addr, p.word);
                        }
                        if let Some((old, new_id)) = replaces {
                            if let Some(old_id) = old {
                                self.retire_trace_map(old_id, false);
                                if self.cur_trace.is_some_and(|(t, _)| t == old_id) {
                                    self.cur_trace = None;
                                }
                            }
                            self.add_trace_map(new_id);
                        } else if let Some(e) = self.trident.watch.get_mut(trace) {
                            e.being_optimized = false;
                        }
                    }
                    Err(_) => {
                        if let Some(e) = self.trident.watch.get_mut(trace) {
                            e.being_optimized = false;
                        }
                    }
                }
            }
        }
    }

    fn add_trace_map(&mut self, id: TraceId) {
        let Some(trace) = self.trident.trace(id) else {
            return;
        };
        let mut pcs = Vec::with_capacity(trace.insts.len() + 1);
        for (i, ti) in trace.insts.iter().enumerate() {
            let pc = trace.cc_pc(i);
            self.pc_map.insert(pc, PcInfo { trace: id, index: i, weight: ti.weight });
            pcs.push(pc);
        }
        // The patched head is glue: zero weight.
        self.pc_map.insert(trace.head, PcInfo { trace: id, index: usize::MAX, weight: 0 });
        pcs.push(trace.head);
        self.trace_len.insert(id, trace.insts.len());
        self.trace_head.insert(id, trace.head);
        self.trace_pcs.insert(id, pcs);
    }

    /// Retires a replaced or backed-out trace. The dead body's pc-map
    /// entries are *kept*: a thread may still be draining out of it (the
    /// loop-back forwards it at the next iteration boundary), and those
    /// instructions must keep their original-equivalent weights. Code-cache
    /// addresses are never reallocated, so stale entries are harmless.
    /// Only on a back-out is the head entry removed — the original
    /// instruction (weight 1) lives there again.
    fn retire_trace_map(&mut self, id: TraceId, remove_head: bool) {
        if remove_head {
            if let Some(&head) = self.trace_head.get(&id) {
                if self.pc_map.get(head).is_some_and(|i| i.trace == id) {
                    self.pc_map.remove(head);
                }
            }
        }
        self.trace_pcs.remove(&id);
        self.trace_len.remove(&id);
        self.trace_head.remove(&id);
    }
}

/// Runs `workload` under `cfg`.
#[must_use]
pub fn run(workload: &Workload, cfg: &SimConfig) -> SimResult {
    Machine::new(workload, cfg.clone()).run()
}

/// Runs `workload` under `cfg` with the self-profiler enabled, returning
/// the result plus the phase-attribution profile.
///
/// The profiler only reads the host clock, so the [`SimResult`] is
/// byte-identical to an unprofiled run; only the profile's `*_wall_ns`
/// fields are nondeterministic.
#[must_use]
pub fn run_profiled(workload: &Workload, cfg: &SimConfig) -> (SimResult, MachineProfile) {
    let mut machine = Machine::new(workload, cfg.clone());
    machine.enable_profiler();
    let t0 = std::time::Instant::now();
    let result = machine.run_inner();
    let run_wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let cycles = machine.core.now();
    let p = machine.prof.take().expect("profiler enabled above");
    let profile = MachineProfile {
        phase_wall_ns: p.timer.wall_ns,
        run_wall_ns,
        cycles,
        helper_cycles: p.helper_cycles,
        helper_jobs: p.helper_jobs,
    };
    (result, profile)
}

/// Runs `workload` under `cfg` with a recording probe attached, returning
/// the result plus the full cycle-stamped event log.
///
/// The log is a function of the (workload, config) pair alone — engine
/// worker counts and wall-clock time never influence it — so serialized
/// traces are byte-identical across runs.
#[must_use]
pub fn run_traced(workload: &Workload, cfg: &SimConfig) -> (SimResult, Recorder) {
    let recorder = Recorder::shared();
    let mut machine = Machine::new(workload, cfg.clone());
    machine.set_probe(recorder.clone());
    let result = machine.run();
    let recorder =
        std::rc::Rc::try_unwrap(recorder).expect("machine dropped its probe").into_inner();
    (result, recorder)
}
