//! The persistent record schema for [`SimResult`] — how the experiment
//! engine's results serialize into the content-addressed store
//! (`tdo-store`).
//!
//! The store itself is generic (`u64` key → versioned `Vec<u64>` payload);
//! this module owns the `SimResult` encoding: a length-prefixed workload
//! name followed by every counter field in a fixed order. The encoding is
//! integer-only, so a decoded result is bit-identical to the simulated one
//! and warm-store report output is byte-identical to cold output.
//!
//! **Versioning.** [`SCHEMA_VERSION`] must be bumped whenever a field is
//! added, removed or reordered anywhere in the [`SimResult`] tree. Stale
//! records are simply misses (re-simulated and overwritten); `tdo store gc`
//! reclaims them.

use tdo_core::OptimizerStats;
use tdo_cpu::CpuStats;
use tdo_mem::MemStats;
use tdo_trident::TridentStats;

use crate::engine::Cell;
use crate::result::{DriverCounters, SimResult};

/// Payload schema version for stored [`SimResult`] records.
/// v2: per-arm prefetch counters + arm switch count in [`MemStats`].
/// v3: decision-audit ledger section (length-prefixed records) after the
/// halt flag.
pub const SCHEMA_VERSION: u32 = 3;

/// Fixed counter words following the variable-length name prefix (up to
/// and including the halt flag; the ledger section follows).
const FIXED_WORDS: usize = 68;

/// The store key of a cell: the stable 64-bit FNV-1a hash of its
/// [`Cell::fingerprint`]. Two cells with equal fingerprints simulate
/// identically, so the hash is a sound content address.
#[must_use]
pub fn cell_key(cell: &Cell) -> u64 {
    tdo_store::fnv1a64(cell.fingerprint().as_bytes())
}

/// Serializes a result into the integer record payload.
#[must_use]
pub fn encode_result(r: &SimResult) -> Vec<u64> {
    let name = r.name.as_bytes();
    let name_words = name.len().div_ceil(8);
    let mut out = Vec::with_capacity(1 + name_words + FIXED_WORDS);
    out.push(name.len() as u64);
    for chunk in name.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        out.push(u64::from_le_bytes(word));
    }
    out.extend_from_slice(&[r.cycles, r.orig_insts, r.helper_active_cycles, r.helper_committed]);
    let w = &r.window;
    out.extend_from_slice(&[
        w.orig_insts,
        w.loads_hit,
        w.loads_hit_prefetched,
        w.loads_partial,
        w.loads_miss,
        w.loads_miss_due_to_prefetch,
        w.load_misses,
        w.load_misses_in_traces,
        w.load_misses_covered,
        w.dlt_events_queued,
        w.hot_trace_events,
        w.trace_backouts,
    ]);
    let c = &r.cpu;
    out.extend_from_slice(&[
        c.cycles,
        c.main_committed,
        c.helper_committed,
        c.helper_active_cycles,
        c.helper_jobs,
        c.main_loads,
        c.main_stores,
        c.main_prefetches,
    ]);
    let m = &r.mem;
    out.extend_from_slice(&[
        m.hits,
        m.hits_prefetched,
        m.partial_hits,
        m.misses,
        m.misses_due_to_prefetch,
    ]);
    out.extend_from_slice(&m.serviced);
    out.extend_from_slice(&[
        m.total_load_latency,
        m.total_miss_latency,
        m.stores,
        m.sw_prefetch_issued,
        m.sw_prefetch_redundant,
        m.sw_prefetch_dropped,
        m.writebacks,
    ]);
    out.extend_from_slice(&m.arm_issued);
    out.extend_from_slice(&m.arm_useful);
    out.push(m.arm_switches);
    let t = &r.trident;
    out.extend_from_slice(&[
        t.traces_installed,
        t.reoptimizations,
        t.backouts,
        t.cache_full,
        t.events_queued,
        t.events_dropped_saturated,
        t.events_dropped_duplicate,
    ]);
    let o = &r.optimizer;
    out.extend_from_slice(&[
        o.events,
        o.insertions,
        o.prefetches_inserted,
        o.repairs,
        o.distance_up,
        o.distance_down,
        o.matured,
        o.groups,
        o.converge_cycles_total,
        o.converge_cycles_max,
    ]);
    out.push(u64::from(r.halted));
    out.push(r.ledger.len() as u64);
    for rec in &r.ledger {
        out.extend_from_slice(&rec.encode());
    }
    out
}

/// Deserializes a record payload back into a result.
///
/// Returns `None` on any structural mismatch (wrong length, invalid name
/// bytes, non-boolean halt flag) — the caller treats that as a store miss
/// and re-simulates.
#[must_use]
pub fn decode_result(words: &[u64]) -> Option<SimResult> {
    let name_len = usize::try_from(*words.first()?).ok()?;
    if name_len > 4096 {
        return None;
    }
    let name_words = name_len.div_ceil(8);
    let ledger_at = 1 + name_words + FIXED_WORDS;
    if words.len() < ledger_at + 1 {
        return None;
    }
    let ledger_len = usize::try_from(words[ledger_at]).ok()?;
    if ledger_len > 2 * tdo_core::LEDGER_CAPACITY
        || words.len() != ledger_at + 1 + ledger_len * tdo_core::LEDGER_RECORD_WORDS
    {
        return None;
    }
    let mut ledger = Vec::with_capacity(ledger_len);
    for chunk in words[ledger_at + 1..].chunks_exact(tdo_core::LEDGER_RECORD_WORDS) {
        ledger.push(tdo_core::LedgerRecord::decode(chunk)?);
    }
    let mut name_bytes = Vec::with_capacity(name_words * 8);
    for w in &words[1..1 + name_words] {
        name_bytes.extend_from_slice(&w.to_le_bytes());
    }
    name_bytes.truncate(name_len);
    let name = String::from_utf8(name_bytes).ok()?;

    let mut it = words[1 + name_words..].iter().copied();
    let mut next = || it.next().expect("length checked above");
    let (cycles, orig_insts, helper_active_cycles, helper_committed) =
        (next(), next(), next(), next());
    let window = DriverCounters {
        orig_insts: next(),
        loads_hit: next(),
        loads_hit_prefetched: next(),
        loads_partial: next(),
        loads_miss: next(),
        loads_miss_due_to_prefetch: next(),
        load_misses: next(),
        load_misses_in_traces: next(),
        load_misses_covered: next(),
        dlt_events_queued: next(),
        hot_trace_events: next(),
        trace_backouts: next(),
    };
    let cpu = CpuStats {
        cycles: next(),
        main_committed: next(),
        helper_committed: next(),
        helper_active_cycles: next(),
        helper_jobs: next(),
        main_loads: next(),
        main_stores: next(),
        main_prefetches: next(),
    };
    let mem = MemStats {
        hits: next(),
        hits_prefetched: next(),
        partial_hits: next(),
        misses: next(),
        misses_due_to_prefetch: next(),
        serviced: [next(), next(), next(), next(), next()],
        total_load_latency: next(),
        total_miss_latency: next(),
        stores: next(),
        sw_prefetch_issued: next(),
        sw_prefetch_redundant: next(),
        sw_prefetch_dropped: next(),
        writebacks: next(),
        arm_issued: [next(), next(), next(), next()],
        arm_useful: [next(), next(), next(), next()],
        arm_switches: next(),
    };
    let trident = TridentStats {
        traces_installed: next(),
        reoptimizations: next(),
        backouts: next(),
        cache_full: next(),
        events_queued: next(),
        events_dropped_saturated: next(),
        events_dropped_duplicate: next(),
    };
    let optimizer = OptimizerStats {
        events: next(),
        insertions: next(),
        prefetches_inserted: next(),
        repairs: next(),
        distance_up: next(),
        distance_down: next(),
        matured: next(),
        groups: next(),
        converge_cycles_total: next(),
        converge_cycles_max: next(),
    };
    let halted = match next() {
        0 => false,
        1 => true,
        _ => return None,
    };
    Some(SimResult {
        name,
        cycles,
        orig_insts,
        helper_active_cycles,
        helper_committed,
        window,
        cpu,
        mem,
        trident,
        optimizer,
        ledger,
        halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetchSetup, SimConfig};
    use tdo_workloads::Scale;

    fn sample() -> SimResult {
        let mut r = SimResult {
            name: "mcf".into(),
            cycles: 123_456,
            orig_insts: 7_890,
            helper_active_cycles: 42,
            helper_committed: 7,
            window: DriverCounters::default(),
            cpu: CpuStats::default(),
            mem: MemStats::default(),
            trident: TridentStats::default(),
            optimizer: OptimizerStats::default(),
            ledger: vec![
                tdo_core::LedgerRecord {
                    cycle: 500,
                    kind: tdo_core::LedgerKind::Repair,
                    group: 0x400,
                    pc: 0x408,
                    old: 2,
                    new: 3,
                    evidence_a: 18_250,
                    evidence_b: 19_900,
                    margin_milli: 20,
                    epoch: 9,
                },
                tdo_core::LedgerRecord {
                    cycle: 900,
                    kind: tdo_core::LedgerKind::ArmSwitch,
                    group: 0,
                    pc: 0,
                    old: 3,
                    new: 0,
                    evidence_a: 750,
                    evidence_b: 12_000,
                    margin_milli: 20,
                    epoch: 4,
                },
            ],
            halted: true,
        };
        r.window.loads_hit = 99;
        r.window.trace_backouts = 3;
        r.cpu.main_committed = 1_000_000;
        r.mem.serviced = [1, 2, 3, 4, 5];
        r.mem.writebacks = 17;
        r.mem.arm_issued = [10, 20, 30, 40];
        r.mem.arm_useful = [9, 19, 29, 39];
        r.mem.arm_switches = 6;
        r.trident.events_dropped_duplicate = 8;
        r.optimizer.converge_cycles_max = u64::MAX;
        r
    }

    #[test]
    fn round_trip_is_exact() {
        let r = sample();
        let decoded = decode_result(&encode_result(&r)).expect("decodes");
        assert_eq!(format!("{r:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn structural_damage_is_a_miss_not_a_panic() {
        let words = encode_result(&sample());
        assert!(decode_result(&words[..words.len() - 1]).is_none(), "short payload");
        let mut long = words.clone();
        long.push(0);
        assert!(decode_result(&long).is_none(), "long payload");
        let name_words = "mcf".len().div_ceil(8);
        let mut bad_halt = words.clone();
        bad_halt[name_words + FIXED_WORDS] = 2; // the halt flag word
        assert!(decode_result(&bad_halt).is_none(), "non-boolean halt flag");
        let mut bad_kind = words.clone();
        let first_record = 1 + name_words + FIXED_WORDS + 1;
        bad_kind[first_record + 1] = 7; // a record's kind code
        assert!(decode_result(&bad_kind).is_none(), "unknown ledger kind");
        let mut bad_len = words.clone();
        bad_len[first_record - 1] = u64::MAX; // the ledger length word
        assert!(decode_result(&bad_len).is_none(), "absurd ledger length");
        let mut bad_name = words;
        bad_name[0] = u64::MAX;
        assert!(decode_result(&bad_name).is_none(), "absurd name length");
        assert!(decode_result(&[]).is_none(), "empty payload");
    }

    #[test]
    fn key_stability_golden() {
        // The store key of a pinned cell. If this changes, every existing
        // store on disk silently stops matching: bump SCHEMA_VERSION and
        // re-pin instead of papering over it.
        let cell = Cell::new("mcf", Scale::Test, SimConfig::test(PrefetchSetup::SwSelfRepair));
        assert_eq!(cell_key(&cell), 8_819_226_722_879_979_877);
    }
}
