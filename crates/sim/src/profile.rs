//! The machine self-profiler: attributes host wall time to the driver's
//! phases and simulated cycles to helper-context job kinds.
//!
//! The profiler is the performance counterpart to the event probe
//! (`tdo_obs::Probe`): disabled it costs one `Option` test per phase
//! (the default — [`crate::machine::Machine`] is built with no
//! profiler), enabled it adds a handful of `Instant::now()` calls per
//! simulated cycle. Because it only *reads* the clock, an enabled
//! profiler can never perturb the simulation: the architectural result
//! is byte-identical with the profiler off, on, or absent — the parity
//! test in `tests/timeline.rs` pins this down.
//!
//! Wall-time numbers are host measurements and therefore
//! nondeterministic; everything else (simulated cycles, job counts) is
//! part of the deterministic simulation. Consumers that need
//! reproducible output (`tdo perf`) must segregate the wall fields.

use tdo_obs::{HelperJobKind, PhaseTimer};

/// Number of driver phases a step is split into.
pub const NPHASES: usize = 6;

/// Phase names, indexed by the constants below.
pub const PHASE_NAMES: [&str; NPHASES] = [
    "core_fetch_execute_mem",
    "trident_monitors",
    "sampling",
    "trident_events",
    "optimizer_commit",
    "mature_clear",
];

/// The core's fetch/execute/mem cycle (including commit buffering).
pub const PHASE_CORE: usize = 0;
/// Feeding committed instructions to the branch profiler, DLT and
/// watch table.
pub const PHASE_MONITORS: usize = 1;
/// Windowed timeline sampling.
pub const PHASE_SAMPLING: usize = 2;
/// Trident event-queue dispatch (helper-job start, optimizer analysis).
pub const PHASE_EVENTS: usize = 3;
/// Committing finished helper jobs (trace install, prefetch insertion,
/// in-place distance repair).
pub const PHASE_OPTIMIZER: usize = 4;
/// Periodic mature-load clearing (phase-change extension).
pub const PHASE_MATURE: usize = 5;

/// Number of helper-context job kinds tracked.
pub const NKINDS: usize = 4;

/// Job-kind names, in [`kind_index`] order.
pub const KIND_NAMES: [&str; NKINDS] =
    ["form_trace", "insert_prefetches", "repair_distance", "analyze_only"];

/// The fixed index of a helper-job kind.
#[must_use]
pub fn kind_index(kind: HelperJobKind) -> usize {
    match kind {
        HelperJobKind::FormTrace => 0,
        HelperJobKind::InsertPrefetches => 1,
        HelperJobKind::RepairDistance => 2,
        HelperJobKind::AnalyzeOnly => 3,
    }
}

/// Live profiler state owned by a running machine.
#[derive(Debug, Default, Clone)]
pub struct MachineProfiler {
    /// Per-phase wall-clock attribution.
    pub timer: PhaseTimer<NPHASES>,
    /// The in-flight helper job's kind and start cycle.
    job_start: Option<(HelperJobKind, u64)>,
    /// Simulated cycles the helper context spent per job kind.
    pub helper_cycles: [u64; NKINDS],
    /// Helper jobs finished per kind.
    pub helper_jobs: [u64; NKINDS],
}

impl MachineProfiler {
    /// Marks a helper job of `kind` starting at simulated cycle `now`.
    pub fn job_begin(&mut self, kind: HelperJobKind, now: u64) {
        self.job_start = Some((kind, now));
    }

    /// Attributes the simulated span of the in-flight job ending at
    /// `now` to its kind.
    pub fn job_end(&mut self, now: u64) {
        if let Some((kind, t0)) = self.job_start.take() {
            let i = kind_index(kind);
            self.helper_cycles[i] += now.saturating_sub(t0);
            self.helper_jobs[i] += 1;
        }
    }
}

/// The finished profile returned by a profiled run.
#[derive(Debug, Clone, Default)]
pub struct MachineProfile {
    /// Host nanoseconds attributed to each driver phase
    /// (see [`PHASE_NAMES`]).
    pub phase_wall_ns: [u64; NPHASES],
    /// Host nanoseconds for the whole run (superset of the phases:
    /// includes setup and result assembly).
    pub run_wall_ns: u64,
    /// Total simulated cycles of the run.
    pub cycles: u64,
    /// Simulated helper-context cycles per job kind
    /// (see [`KIND_NAMES`]).
    pub helper_cycles: [u64; NKINDS],
    /// Helper jobs finished per kind.
    pub helper_jobs: [u64; NKINDS],
}

impl MachineProfile {
    /// `(name, wall_ns)` pairs for every phase.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        PHASE_NAMES.iter().copied().zip(self.phase_wall_ns.iter().copied())
    }

    /// `(name, simulated_cycles, jobs)` triples for every helper kind.
    pub fn helper_kinds(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        KIND_NAMES
            .iter()
            .copied()
            .zip(self.helper_cycles.iter().copied())
            .zip(self.helper_jobs.iter().copied())
            .map(|((n, c), j)| (n, c, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_attribution_by_kind() {
        let mut p = MachineProfiler::default();
        p.job_begin(HelperJobKind::RepairDistance, 100);
        p.job_end(350);
        p.job_begin(HelperJobKind::FormTrace, 400);
        p.job_end(1000);
        p.job_end(2000); // no job in flight: ignored
        assert_eq!(p.helper_cycles[kind_index(HelperJobKind::RepairDistance)], 250);
        assert_eq!(p.helper_cycles[kind_index(HelperJobKind::FormTrace)], 600);
        assert_eq!(p.helper_jobs, [1, 0, 1, 0]);
    }

    #[test]
    fn names_and_indices_agree() {
        assert_eq!(PHASE_NAMES.len(), NPHASES);
        assert_eq!(KIND_NAMES.len(), NKINDS);
        for (i, kind) in [
            HelperJobKind::FormTrace,
            HelperJobKind::InsertPrefetches,
            HelperJobKind::RepairDistance,
            HelperJobKind::AnalyzeOnly,
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(kind_index(kind), i);
            assert_eq!(KIND_NAMES[i], kind.name());
        }
    }
}
