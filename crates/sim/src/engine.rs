//! The parallel, memoizing experiment engine.
//!
//! Every figure and ablation of the reproduction is a set of *cells* — a
//! (workload, configuration, scale) triple simulated once. Historically each
//! harness binary re-simulated its own cells serially, re-running arms that
//! other figures had already paid for (the no-prefetch and hw-8×8 baselines
//! appear in Figures 2, 5, 8 and 9 alike). The engine replaces that with:
//!
//! * a declarative [`ExperimentSpec`] enumerating cells up front;
//! * a [`Runner`] that executes unique cells across `std::thread::scope`
//!   workers and memoizes each [`SimResult`] under a content fingerprint, so
//!   a cell is simulated exactly once per process no matter how many figures
//!   ask for it;
//! * deterministic results: workload generation is seeded *per cell* (every
//!   generator owns a fixed-seed [`tdo_rand::Rng`]; there is no global
//!   generator state), so a cell's result is byte-identical whether it runs
//!   on one worker thread or sixteen, first or memoized.
//!
//! ```
//! use tdo_sim::{Cell, ExperimentSpec, PrefetchSetup, Runner, SimConfig};
//! use tdo_workloads::Scale;
//!
//! let mut spec = ExperimentSpec::new();
//! for arm in [PrefetchSetup::NoPrefetch, PrefetchSetup::Hw8x8] {
//!     spec.push(Cell::new("mcf", Scale::Test, SimConfig::test(arm)));
//! }
//! let runner = Runner::new(2);
//! let results = runner.run_spec(&spec);
//! assert_eq!(results.len(), 2);
//! ```

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use tdo_fault::Site;
use tdo_mem::ArmKind;
use tdo_metrics::{Counter, Histogram, Registry};
use tdo_store::Store;
use tdo_workloads::{build, Scale};

use crate::config::SimConfig;
use crate::machine::run;
use crate::persist;
use crate::result::SimResult;

/// One experiment cell: a named workload simulated under one configuration.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name (must be in [`tdo_workloads::names`]).
    pub workload: String,
    /// Workload generation scale.
    pub scale: Scale,
    /// Full simulation configuration (the experimental arm).
    pub cfg: SimConfig,
}

impl Cell {
    /// Creates a cell.
    #[must_use]
    pub fn new(workload: impl Into<String>, scale: Scale, cfg: SimConfig) -> Cell {
        Cell { workload: workload.into(), scale, cfg }
    }

    /// The memoization fingerprint: the full rendered content of the cell.
    ///
    /// Two cells with equal fingerprints run the same workload bytes under
    /// the same configuration and therefore produce the same [`SimResult`].
    /// (The debug rendering covers every `SimConfig` field, so there are no
    /// false cache hits; a formatting-identical configuration is a
    /// field-identical one.)
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!("{}|{:?}|{:?}", self.workload, self.scale, self.cfg)
    }

    /// Builds the workload and runs the simulation for this cell.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    #[must_use]
    pub fn simulate(&self) -> SimResult {
        let w = build(&self.workload, self.scale)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload));
        run(&w, &self.cfg)
    }
}

/// A declarative batch of cells, in presentation order (duplicates allowed —
/// the runner deduplicates by fingerprint).
#[derive(Clone, Debug, Default)]
pub struct ExperimentSpec {
    /// The cells to simulate.
    pub cells: Vec<Cell>,
}

impl ExperimentSpec {
    /// An empty spec.
    #[must_use]
    pub fn new() -> ExperimentSpec {
        ExperimentSpec::default()
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// Appends every cell of `other`.
    pub fn extend(&mut self, other: ExperimentSpec) {
        self.cells.extend(other.cells);
    }

    /// Number of cells (including duplicates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the spec is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Executes cells in parallel and memoizes their results for the lifetime of
/// the runner — and, when a persistent store is attached, across processes:
/// lookups read through the in-memory cache to the store, and fresh
/// simulations write through to it, so a warm store makes repeat sweeps
/// perform zero simulations.
pub struct Runner {
    jobs: usize,
    cache: Mutex<HashMap<String, Arc<SimResult>>>,
    store: Option<Arc<Store>>,
    sims: Arc<Counter>,
    store_hits: Arc<Counter>,
    store_misses: Arc<Counter>,
    /// Wall time of fresh simulations, one observation per cell.
    cell_wall_us: Arc<Histogram>,
    /// Trident event-queue totals aggregated once per unique cell (fresh
    /// or store-recalled), surfacing `TridentStats` drop counts.
    events_queued: Arc<Counter>,
    events_dropped_saturated: Arc<Counter>,
    events_dropped_duplicate: Arc<Counter>,
    /// Per-arm prefetch totals aggregated once per unique cell, indexed by
    /// [`ArmKind::index`].
    arm_issued: [Arc<Counter>; ArmKind::COUNT],
    arm_useful: [Arc<Counter>; ArmKind::COUNT],
    /// Policy-controller arm switches across every unique cell.
    arm_switches: Arc<Counter>,
    failed: Mutex<Vec<String>>,
}

impl Runner {
    /// Creates a runner with `jobs` worker threads and no persistent store;
    /// `0` means one per available hardware thread.
    #[must_use]
    pub fn new(jobs: usize) -> Runner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        };
        Runner {
            jobs,
            cache: Mutex::new(HashMap::new()),
            store: None,
            sims: Arc::new(Counter::new()),
            store_hits: Arc::new(Counter::new()),
            store_misses: Arc::new(Counter::new()),
            cell_wall_us: Arc::new(Histogram::new()),
            events_queued: Arc::new(Counter::new()),
            events_dropped_saturated: Arc::new(Counter::new()),
            events_dropped_duplicate: Arc::new(Counter::new()),
            arm_issued: std::array::from_fn(|_| Arc::new(Counter::new())),
            arm_useful: std::array::from_fn(|_| Arc::new(Counter::new())),
            arm_switches: Arc::new(Counter::new()),
            failed: Mutex::new(Vec::new()),
        }
    }

    /// Creates a runner backed by an explicit persistent store.
    #[must_use]
    pub fn with_store(jobs: usize, store: Arc<Store>) -> Runner {
        let mut runner = Runner::new(jobs);
        runner.store = Some(store);
        runner
    }

    /// Creates a runner over the default store location: `dir_override`
    /// (`--store-dir`), else the `TDO_STORE` environment variable, else
    /// `.tdo-store/`. An unopenable store degrades to a storeless runner
    /// with a warning — persistence is an accelerator, never a blocker.
    #[must_use]
    pub fn with_default_store(jobs: usize, dir_override: Option<&str>) -> Runner {
        let dir = Store::resolve_dir(dir_override);
        match Store::open(&dir) {
            Ok(store) => Runner::with_store(jobs, Arc::new(store)),
            Err(e) => {
                tdo_obs::logline::log(
                    tdo_obs::Level::Warn,
                    "engine",
                    "cannot open result store; running without one",
                    &[("dir", &dir.display().to_string()), ("err", &e.to_string())],
                );
                Runner::new(jobs)
            }
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Simulations actually executed by this runner (excludes memoized and
    /// store-served cells).
    #[must_use]
    pub fn sims_run(&self) -> u64 {
        self.sims.get()
    }

    /// Cells served from the persistent store.
    #[must_use]
    pub fn store_hits(&self) -> u64 {
        self.store_hits.get()
    }

    /// Cells the persistent store could not serve (absent or stale).
    #[must_use]
    pub fn store_misses(&self) -> u64 {
        self.store_misses.get()
    }

    /// Trident events queued across every unique cell this runner has
    /// produced (fresh or store-recalled).
    #[must_use]
    pub fn events_queued(&self) -> u64 {
        self.events_queued.get()
    }

    /// Trident event-queue drops across every unique cell, as
    /// `(dropped_saturated, dropped_duplicate)`.
    #[must_use]
    pub fn events_dropped(&self) -> (u64, u64) {
        (self.events_dropped_saturated.get(), self.events_dropped_duplicate.get())
    }

    /// Per-arm `(issued, useful)` prefetch totals across every unique
    /// cell, indexed by [`ArmKind::index`].
    #[must_use]
    pub fn arm_totals(&self) -> [(u64, u64); ArmKind::COUNT] {
        std::array::from_fn(|i| (self.arm_issued[i].get(), self.arm_useful[i].get()))
    }

    /// Policy-controller arm switches across every unique cell.
    #[must_use]
    pub fn arm_switches(&self) -> u64 {
        self.arm_switches.get()
    }

    /// Snapshot of the fresh-simulation wall-time histogram.
    #[must_use]
    pub fn cell_wall_us(&self) -> tdo_metrics::HistogramSnapshot {
        self.cell_wall_us.snapshot()
    }

    /// Registers the runner's counters and histograms (and, when a store
    /// is attached, the store's) with `reg`. Call at most once per
    /// registry.
    pub fn register_metrics(&self, reg: &Registry) {
        reg.register_counter(
            "tdo_sim_sims_total",
            &[],
            "Simulations executed by this process.",
            Arc::clone(&self.sims),
        );
        reg.register_counter(
            "tdo_sim_store_hits_total",
            &[],
            "Cells served from the persistent store.",
            Arc::clone(&self.store_hits),
        );
        reg.register_counter(
            "tdo_sim_store_misses_total",
            &[],
            "Cells the persistent store could not serve.",
            Arc::clone(&self.store_misses),
        );
        reg.register_histogram(
            "tdo_sim_cell_wall_us",
            &[],
            "Wall time of fresh cell simulations.",
            Arc::clone(&self.cell_wall_us),
        );
        reg.register_counter(
            "tdo_sim_events_queued_total",
            &[],
            "Trident events queued across unique cells.",
            Arc::clone(&self.events_queued),
        );
        reg.register_counter(
            "tdo_sim_events_dropped_saturated_total",
            &[],
            "Trident events dropped at a saturated queue, across unique cells.",
            Arc::clone(&self.events_dropped_saturated),
        );
        reg.register_counter(
            "tdo_sim_events_dropped_duplicate_total",
            &[],
            "Trident events coalesced as duplicates, across unique cells.",
            Arc::clone(&self.events_dropped_duplicate),
        );
        for kind in ArmKind::ALL {
            reg.register_counter(
                "tdo_prefetch_issued_total",
                &[("arm", kind.name())],
                "Hardware prefetches issued, by prefetcher arm, across unique cells.",
                Arc::clone(&self.arm_issued[kind.index()]),
            );
            reg.register_counter(
                "tdo_prefetch_useful_total",
                &[("arm", kind.name())],
                "Hardware prefetches that serviced a demand access, by arm, across unique cells.",
                Arc::clone(&self.arm_useful[kind.index()]),
            );
        }
        reg.register_counter(
            "tdo_arm_switches_total",
            &[],
            "Policy-controller arm switches across unique cells.",
            Arc::clone(&self.arm_switches),
        );
        if let Some(store) = &self.store {
            store.register_metrics(reg);
        }
    }

    /// Folds one unique cell's Trident queue totals and per-arm prefetch
    /// totals into the registry counters. Called exactly once per distinct
    /// fingerprint.
    fn account_result(&self, r: &SimResult) {
        self.events_queued.add(r.trident.events_queued);
        self.events_dropped_saturated.add(r.trident.events_dropped_saturated);
        self.events_dropped_duplicate.add(r.trident.events_dropped_duplicate);
        for kind in ArmKind::ALL {
            self.arm_issued[kind.index()].add(r.mem.arm_issued[kind.index()]);
            self.arm_useful[kind.index()].add(r.mem.arm_useful[kind.index()]);
        }
        self.arm_switches.add(r.mem.arm_switches);
    }

    /// Fingerprints of cells whose simulation panicked during
    /// [`Runner::run_spec`].
    #[must_use]
    pub fn failed_cells(&self) -> Vec<String> {
        self.lock_failed().clone()
    }

    /// One-line cache/store accounting, for CI assertions and `--verbose`
    /// style footers: `store: hits=H misses=M sims=S`. `None` when no store
    /// is attached.
    #[must_use]
    pub fn store_summary(&self) -> Option<String> {
        self.store.as_ref()?;
        Some(format!(
            "store: hits={} misses={} sims={}",
            self.store_hits(),
            self.store_misses(),
            self.sims_run()
        ))
    }

    /// Number of distinct cells memoized in this process so far.
    #[must_use]
    pub fn cells_cached(&self) -> usize {
        self.lock_cache().len()
    }

    /// Locks the memo cache, recovering from poisoning: a panicking worker
    /// must not cascade into unrelated cells (they re-simulate; the map is
    /// only ever observed with complete entries).
    fn lock_cache(&self) -> MutexGuard<'_, HashMap<String, Arc<SimResult>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_failed(&self) -> MutexGuard<'_, Vec<String>> {
        self.failed.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Store read-through: on a hit, decodes and promotes the result into
    /// the memo cache.
    fn recall_store(&self, key: &str) -> Option<Arc<SimResult>> {
        let store = self.store.as_ref()?;
        if tdo_fault::fire_keyed(Site::EngineStoreDegrade, fingerprint_hash(key)).is_some() {
            // Injected read-path degrade: behave exactly like a miss so the
            // cell re-simulates (persistence is an accelerator, never a
            // correctness dependency).
            self.store_misses.inc();
            return None;
        }
        let hit = store
            .get(tdo_store::fnv1a64(key.as_bytes()), persist::SCHEMA_VERSION)
            .and_then(|payload| persist::decode_result(&payload));
        match hit {
            Some(result) => {
                self.store_hits.inc();
                let r = Arc::new(result);
                let mut cache = self.lock_cache();
                match cache.entry(key.to_string()) {
                    std::collections::hash_map::Entry::Occupied(e) => Some(Arc::clone(e.get())),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        // First time this fingerprint enters the cache:
                        // fold its queue totals in exactly once.
                        self.account_result(&r);
                        Some(Arc::clone(v.insert(r)))
                    }
                }
            }
            None => {
                self.store_misses.inc();
                None
            }
        }
    }

    /// Store write-through: persists a freshly simulated result. I/O errors
    /// only cost persistence, never the run.
    fn persist(&self, key: &str, result: &SimResult) {
        let Some(store) = self.store.as_ref() else { return };
        if tdo_fault::fire_keyed(Site::EngineStoreDegrade, fingerprint_hash(key)).is_some() {
            // Injected write-path degrade: the result stays memo-only.
            tdo_obs::logline::log(
                tdo_obs::Level::Warn,
                "engine",
                "cannot persist cell to result store",
                &[("err", "injected store degrade"), ("cell", key)],
            );
            return;
        }
        let payload = persist::encode_result(result);
        if let Err(e) =
            store.put(tdo_store::fnv1a64(key.as_bytes()), persist::SCHEMA_VERSION, &payload)
        {
            tdo_obs::logline::log(
                tdo_obs::Level::Warn,
                "engine",
                "cannot persist cell to result store",
                &[("err", &e.to_string()), ("cell", key)],
            );
        }
    }

    /// Runs (or recalls) a single cell: memo cache, then store, then a
    /// fresh simulation (written through to the store).
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    #[must_use]
    pub fn run_cell(&self, cell: &Cell) -> Arc<SimResult> {
        let key = cell.fingerprint();
        let _span = tdo_obs::SpanScope::enter(tdo_obs::FlightKind::RunCell, fingerprint_hash(&key));
        if let Some(r) = self.lock_cache().get(&key) {
            return Arc::clone(r);
        }
        if let Some(r) = self.recall_store(&key) {
            return r;
        }
        let r = Arc::new(self.simulate_timed(cell));
        self.persist(&key, &r);
        let mut cache = self.lock_cache();
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.account_result(&r);
                Arc::clone(v.insert(r))
            }
        }
    }

    /// Runs one fresh simulation, counting it and timing its wall clock.
    fn simulate_timed(&self, cell: &Cell) -> SimResult {
        if tdo_fault::fire_keyed(Site::EngineCellPanic, fingerprint_hash(&cell.fingerprint()))
            .is_some()
        {
            panic!("injected cell panic: `{}`", cell.workload);
        }
        self.sims.inc();
        let t0 = Instant::now();
        let result = cell.simulate();
        self.cell_wall_us.observe(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        result
    }

    /// Runs a whole spec: unique un-memoized cells execute across up to
    /// `jobs` scoped worker threads; the returned vector matches
    /// `spec.cells` element for element.
    ///
    /// A cell whose simulation panics does not cascade: the panic is caught
    /// on the worker, the cell is recorded (see [`Runner::failed_cells`]),
    /// and every other cell still completes (and persists to the store).
    ///
    /// # Panics
    ///
    /// Panics — after all other cells have completed — if any cell failed,
    /// naming the offenders.
    #[must_use]
    pub fn run_spec(&self, spec: &ExperimentSpec) -> Vec<Arc<SimResult>> {
        // Unique cells not already memoized, in first-appearance order so a
        // serial runner (jobs=1) visits them deterministically.
        let mut pending: Vec<&Cell> = Vec::new();
        {
            let cache = self.lock_cache();
            let mut seen = HashSet::new();
            for cell in &spec.cells {
                let key = cell.fingerprint();
                if !cache.contains_key(&key) && seen.insert(key) {
                    pending.push(cell);
                }
            }
        }
        if !pending.is_empty() {
            let next = AtomicUsize::new(0);
            let workers = self.jobs.min(pending.len());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = pending.get(i) else { break };
                        let key = cell.fingerprint();
                        let _span = tdo_obs::SpanScope::enter(
                            tdo_obs::FlightKind::RunCell,
                            fingerprint_hash(&key),
                        );
                        if let Some(token) =
                            tdo_fault::fire_keyed(Site::EngineHelperJitter, fingerprint_hash(&key))
                        {
                            // Injected helper-job delay: perturbs scheduling
                            // only; results must stay byte-identical.
                            std::thread::sleep(std::time::Duration::from_micros(token % 1_500));
                        }
                        if self.recall_store(&key).is_some() {
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| self.simulate_timed(cell))) {
                            Ok(result) => {
                                self.persist(&key, &result);
                                self.account_result(&result);
                                self.lock_cache().insert(key, Arc::new(result));
                            }
                            Err(_) => self.lock_failed().push(key),
                        }
                    });
                }
            });
        }
        let failed = self.lock_failed();
        let cache = self.lock_cache();
        let results: Vec<Arc<SimResult>> = spec
            .cells
            .iter()
            .map(|c| {
                let key = c.fingerprint();
                cache.get(&key).cloned().unwrap_or_else(|| {
                    panic!(
                        "{} cell(s) failed to simulate (first: `{}` on workload `{}`)",
                        failed.len(),
                        failed.first().map_or("?", String::as_str),
                        c.workload
                    )
                })
            })
            .collect();
        results
    }
}

/// Stable 64-bit key for fault-injection decisions: injected faults must hit
/// the same cells regardless of worker count or scheduling order.
fn fingerprint_hash(key: &str) -> u64 {
    tdo_store::fnv1a64(key.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchSetup;

    fn quick_cell(setup: PrefetchSetup) -> Cell {
        let mut cfg = SimConfig::test(setup);
        cfg.warmup_insts = 2_000;
        cfg.measure_insts = 20_000;
        Cell::new("swim", Scale::Test, cfg)
    }

    #[test]
    fn fingerprints_separate_configs_and_workloads() {
        let a = quick_cell(PrefetchSetup::NoPrefetch);
        let b = quick_cell(PrefetchSetup::Hw8x8);
        let mut c = quick_cell(PrefetchSetup::NoPrefetch);
        c.workload = "art".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), quick_cell(PrefetchSetup::NoPrefetch).fingerprint());
    }

    #[test]
    fn queue_counters_deterministic_across_worker_counts() {
        // The registry counters fold in each unique cell exactly once, so
        // `--jobs 1` and `--jobs 4` must agree bit for bit — and running
        // the same spec again must add nothing (memo hits don't re-count).
        let mut spec = ExperimentSpec::new();
        for setup in [PrefetchSetup::SwSelfRepair, PrefetchSetup::SwBasic] {
            spec.push(quick_cell(setup));
        }
        let mut totals = Vec::new();
        for jobs in [1usize, 4] {
            let runner = Runner::new(jobs);
            let _ = runner.run_spec(&spec);
            let first = (runner.events_queued(), runner.events_dropped());
            let _ = runner.run_spec(&spec);
            assert_eq!(
                (runner.events_queued(), runner.events_dropped()),
                first,
                "memoized re-run must not re-count (jobs={jobs})"
            );
            assert_eq!(runner.cell_wall_us().count, 2, "one wall sample per fresh sim");
            totals.push(first);
        }
        assert_eq!(totals[0], totals[1], "queue totals independent of worker count");
    }

    #[test]
    fn duplicate_cells_simulate_once_and_share_the_result() {
        let runner = Runner::new(2);
        let mut spec = ExperimentSpec::new();
        spec.push(quick_cell(PrefetchSetup::NoPrefetch));
        spec.push(quick_cell(PrefetchSetup::NoPrefetch));
        let rs = runner.run_spec(&spec);
        assert_eq!(rs.len(), 2);
        assert!(Arc::ptr_eq(&rs[0], &rs[1]), "memoized result is shared");
        assert_eq!(runner.cells_cached(), 1);
    }
}
