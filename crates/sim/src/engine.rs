//! The parallel, memoizing experiment engine.
//!
//! Every figure and ablation of the reproduction is a set of *cells* — a
//! (workload, configuration, scale) triple simulated once. Historically each
//! harness binary re-simulated its own cells serially, re-running arms that
//! other figures had already paid for (the no-prefetch and hw-8×8 baselines
//! appear in Figures 2, 5, 8 and 9 alike). The engine replaces that with:
//!
//! * a declarative [`ExperimentSpec`] enumerating cells up front;
//! * a [`Runner`] that executes unique cells across `std::thread::scope`
//!   workers and memoizes each [`SimResult`] under a content fingerprint, so
//!   a cell is simulated exactly once per process no matter how many figures
//!   ask for it;
//! * deterministic results: workload generation is seeded *per cell* (every
//!   generator owns a fixed-seed [`tdo_rand::Rng`]; there is no global
//!   generator state), so a cell's result is byte-identical whether it runs
//!   on one worker thread or sixteen, first or memoized.
//!
//! ```
//! use tdo_sim::{Cell, ExperimentSpec, PrefetchSetup, Runner, SimConfig};
//! use tdo_workloads::Scale;
//!
//! let mut spec = ExperimentSpec::new();
//! for arm in [PrefetchSetup::NoPrefetch, PrefetchSetup::Hw8x8] {
//!     spec.push(Cell::new("mcf", Scale::Test, SimConfig::test(arm)));
//! }
//! let runner = Runner::new(2);
//! let results = runner.run_spec(&spec);
//! assert_eq!(results.len(), 2);
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tdo_workloads::{build, Scale};

use crate::config::SimConfig;
use crate::machine::run;
use crate::result::SimResult;

/// One experiment cell: a named workload simulated under one configuration.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name (must be in [`tdo_workloads::names`]).
    pub workload: String,
    /// Workload generation scale.
    pub scale: Scale,
    /// Full simulation configuration (the experimental arm).
    pub cfg: SimConfig,
}

impl Cell {
    /// Creates a cell.
    #[must_use]
    pub fn new(workload: impl Into<String>, scale: Scale, cfg: SimConfig) -> Cell {
        Cell { workload: workload.into(), scale, cfg }
    }

    /// The memoization fingerprint: the full rendered content of the cell.
    ///
    /// Two cells with equal fingerprints run the same workload bytes under
    /// the same configuration and therefore produce the same [`SimResult`].
    /// (The debug rendering covers every `SimConfig` field, so there are no
    /// false cache hits; a formatting-identical configuration is a
    /// field-identical one.)
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!("{}|{:?}|{:?}", self.workload, self.scale, self.cfg)
    }

    /// Builds the workload and runs the simulation for this cell.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    #[must_use]
    pub fn simulate(&self) -> SimResult {
        let w = build(&self.workload, self.scale)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload));
        run(&w, &self.cfg)
    }
}

/// A declarative batch of cells, in presentation order (duplicates allowed —
/// the runner deduplicates by fingerprint).
#[derive(Clone, Debug, Default)]
pub struct ExperimentSpec {
    /// The cells to simulate.
    pub cells: Vec<Cell>,
}

impl ExperimentSpec {
    /// An empty spec.
    #[must_use]
    pub fn new() -> ExperimentSpec {
        ExperimentSpec::default()
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// Appends every cell of `other`.
    pub fn extend(&mut self, other: ExperimentSpec) {
        self.cells.extend(other.cells);
    }

    /// Number of cells (including duplicates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the spec is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Executes cells in parallel and memoizes their results for the lifetime of
/// the runner.
pub struct Runner {
    jobs: usize,
    cache: Mutex<HashMap<String, Arc<SimResult>>>,
}

impl Runner {
    /// Creates a runner with `jobs` worker threads; `0` means one per
    /// available hardware thread.
    #[must_use]
    pub fn new(jobs: usize) -> Runner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        };
        Runner { jobs, cache: Mutex::new(HashMap::new()) }
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of distinct cells simulated (or memoized) so far.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn cells_cached(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Runs (or recalls) a single cell.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    #[must_use]
    pub fn run_cell(&self, cell: &Cell) -> Arc<SimResult> {
        let key = cell.fingerprint();
        if let Some(r) = self.cache.lock().unwrap().get(&key) {
            return Arc::clone(r);
        }
        let r = Arc::new(cell.simulate());
        self.cache.lock().unwrap().entry(key).or_insert_with(|| Arc::clone(&r)).clone()
    }

    /// Runs a whole spec: unique un-memoized cells execute across up to
    /// `jobs` scoped worker threads; the returned vector matches
    /// `spec.cells` element for element.
    ///
    /// # Panics
    ///
    /// Panics if any cell names an unknown workload (propagated from the
    /// worker that simulated it).
    #[must_use]
    pub fn run_spec(&self, spec: &ExperimentSpec) -> Vec<Arc<SimResult>> {
        // Unique cells not already memoized, in first-appearance order so a
        // serial runner (jobs=1) visits them deterministically.
        let mut pending: Vec<&Cell> = Vec::new();
        {
            let cache = self.cache.lock().unwrap();
            let mut seen = HashSet::new();
            for cell in &spec.cells {
                let key = cell.fingerprint();
                if !cache.contains_key(&key) && seen.insert(key) {
                    pending.push(cell);
                }
            }
        }
        if !pending.is_empty() {
            let next = AtomicUsize::new(0);
            let workers = self.jobs.min(pending.len());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = pending.get(i) else { break };
                        let r = Arc::new(cell.simulate());
                        self.cache.lock().unwrap().insert(cell.fingerprint(), r);
                    });
                }
            });
        }
        let cache = self.cache.lock().unwrap();
        spec.cells.iter().map(|c| Arc::clone(&cache[&c.fingerprint()])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchSetup;

    fn quick_cell(setup: PrefetchSetup) -> Cell {
        let mut cfg = SimConfig::test(setup);
        cfg.warmup_insts = 2_000;
        cfg.measure_insts = 20_000;
        Cell::new("swim", Scale::Test, cfg)
    }

    #[test]
    fn fingerprints_separate_configs_and_workloads() {
        let a = quick_cell(PrefetchSetup::NoPrefetch);
        let b = quick_cell(PrefetchSetup::Hw8x8);
        let mut c = quick_cell(PrefetchSetup::NoPrefetch);
        c.workload = "art".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), quick_cell(PrefetchSetup::NoPrefetch).fingerprint());
    }

    #[test]
    fn duplicate_cells_simulate_once_and_share_the_result() {
        let runner = Runner::new(2);
        let mut spec = ExperimentSpec::new();
        spec.push(quick_cell(PrefetchSetup::NoPrefetch));
        spec.push(quick_cell(PrefetchSetup::NoPrefetch));
        let rs = runner.run_spec(&spec);
        assert_eq!(rs.len(), 2);
        assert!(Arc::ptr_eq(&rs[0], &rs[1]), "memoized result is shared");
        assert_eq!(runner.cells_cached(), 1);
    }
}
