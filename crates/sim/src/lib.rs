//! # tdo-sim — the experiment driver
//!
//! Assembles the whole system — the SMT core (`tdo-cpu`), memory hierarchy
//! and hardware stream buffers (`tdo-mem`), the Trident dynamic optimization
//! framework (`tdo-trident`), the self-repairing prefetcher (`tdo-core`) and
//! the benchmark programs (`tdo-workloads`) — and runs the paper's
//! experiments end to end.
//!
//! ```no_run
//! use tdo_sim::{run, PrefetchSetup, SimConfig};
//! use tdo_workloads::{build, Scale};
//!
//! let workload = build("mcf", Scale::Test).unwrap();
//! let baseline = run(&workload, &SimConfig::test(PrefetchSetup::Hw8x8));
//! let repaired = run(&workload, &SimConfig::test(PrefetchSetup::SwSelfRepair));
//! println!("speedup: {:.2}×", repaired.speedup_over(&baseline));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod engine;
pub mod machine;
pub mod persist;
pub mod profile;
pub mod report;
pub mod result;
pub mod timeline;

pub use config::{policy_candidates, JobCostModel, PolicyConfig, PrefetchSetup, SimConfig};
pub use engine::{Cell, ExperimentSpec, Runner};
pub use machine::{run, run_profiled, run_traced, Machine};
pub use persist::{cell_key, decode_result, encode_result, SCHEMA_VERSION};
pub use profile::{MachineProfile, MachineProfiler};
pub use report::{Format, Report};
pub use result::{DriverCounters, SimResult};
pub use timeline::Timeline;
