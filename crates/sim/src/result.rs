//! Simulation results and the per-figure aggregates derived from them.

use tdo_core::OptimizerStats;
use tdo_cpu::CpuStats;
use tdo_mem::MemStats;
use tdo_trident::TridentStats;

/// Counters the driver keeps itself (main-thread, measurement-window only).
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverCounters {
    /// Original-equivalent instructions committed.
    pub orig_insts: u64,
    /// Main-thread demand loads, split by Figure 6 class.
    pub loads_hit: u64,
    /// First touches of prefetched lines.
    pub loads_hit_prefetched: u64,
    /// Loads that caught their prefetch in flight.
    pub loads_partial: u64,
    /// Plain misses.
    pub loads_miss: u64,
    /// Misses attributed to prefetch displacement.
    pub loads_miss_due_to_prefetch: u64,
    /// L1 misses (loads) total.
    pub load_misses: u64,
    /// L1 misses occurring while executing inside a hot trace.
    pub load_misses_in_traces: u64,
    /// L1 misses at loads currently covered by an inserted prefetch group.
    pub load_misses_covered: u64,
    /// Delinquent-load events queued.
    pub dlt_events_queued: u64,
    /// Hot-trace events processed.
    pub hot_trace_events: u64,
    /// Traces backed out by the watch table.
    pub trace_backouts: u64,
}

impl DriverCounters {
    /// Total classified loads.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.loads_hit
            + self.loads_hit_prefetched
            + self.loads_partial
            + self.loads_miss
            + self.loads_miss_due_to_prefetch
    }

    fn sub(&self, other: &DriverCounters) -> DriverCounters {
        DriverCounters {
            orig_insts: self.orig_insts - other.orig_insts,
            loads_hit: self.loads_hit - other.loads_hit,
            loads_hit_prefetched: self.loads_hit_prefetched - other.loads_hit_prefetched,
            loads_partial: self.loads_partial - other.loads_partial,
            loads_miss: self.loads_miss - other.loads_miss,
            loads_miss_due_to_prefetch: self.loads_miss_due_to_prefetch
                - other.loads_miss_due_to_prefetch,
            load_misses: self.load_misses - other.load_misses,
            load_misses_in_traces: self.load_misses_in_traces - other.load_misses_in_traces,
            load_misses_covered: self.load_misses_covered - other.load_misses_covered,
            dlt_events_queued: self.dlt_events_queued - other.dlt_events_queued,
            hot_trace_events: self.hot_trace_events - other.hot_trace_events,
            trace_backouts: self.trace_backouts - other.trace_backouts,
        }
    }
}

/// A measurement-window snapshot used to subtract warmup.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Snapshot {
    pub cycles: u64,
    pub helper_active: u64,
    pub helper_committed: u64,
    pub counters: DriverCounters,
}

/// The outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Workload name.
    pub name: String,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Original-equivalent instructions in the measurement window.
    pub orig_insts: u64,
    /// Cycles the helper context was active in the window (Figure 3).
    pub helper_active_cycles: u64,
    /// Helper instructions committed in the window.
    pub helper_committed: u64,
    /// Driver counters for the window.
    pub window: DriverCounters,
    /// Whole-run core stats (includes warmup).
    pub cpu: CpuStats,
    /// Whole-run memory stats (includes warmup).
    pub mem: MemStats,
    /// Whole-run Trident stats.
    pub trident: TridentStats,
    /// Whole-run optimizer stats.
    pub optimizer: OptimizerStats,
    /// Decision-audit ledger: every distance repair and arm switch the run
    /// performed, chronological (bounded by [`tdo_core::LEDGER_CAPACITY`]
    /// per source ring).
    pub ledger: Vec<tdo_core::LedgerRecord>,
    /// Whether the program halted before the instruction budget.
    pub halted: bool,
}

impl SimResult {
    /// Original-equivalent IPC over the measurement window — the paper's
    /// performance metric ("IPC results correspond to only the number of
    /// instructions the original code would have executed", §4.1).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.orig_insts as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same workload.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc()
        }
    }

    /// Fraction of window cycles the helper thread was active (Figure 3).
    #[must_use]
    pub fn helper_active_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.helper_active_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of load misses that occurred inside hot traces (Figure 4).
    #[must_use]
    pub fn miss_coverage_by_traces(&self) -> f64 {
        if self.window.load_misses == 0 {
            0.0
        } else {
            self.window.load_misses_in_traces as f64 / self.window.load_misses as f64
        }
    }

    /// Fraction of load misses covered by inserted prefetches (Figure 4).
    #[must_use]
    pub fn miss_coverage_by_prefetcher(&self) -> f64 {
        if self.window.load_misses == 0 {
            0.0
        } else {
            self.window.load_misses_covered as f64 / self.window.load_misses as f64
        }
    }

    /// The Figure 6 load breakdown as fractions
    /// `[hit, hit-prefetched, partial, miss, miss-due-to-prefetch]`.
    #[must_use]
    pub fn load_breakdown(&self) -> [f64; 5] {
        let total = self.window.loads().max(1) as f64;
        [
            self.window.loads_hit as f64 / total,
            self.window.loads_hit_prefetched as f64 / total,
            self.window.loads_partial as f64 / total,
            self.window.loads_miss as f64 / total,
            self.window.loads_miss_due_to_prefetch as f64 / total,
        ]
    }

    /// Average in-place distance repairs per inserted prefetch group — the
    /// self-repairing prefetcher's tuning effort.
    #[must_use]
    pub fn repairs_per_group(&self) -> f64 {
        if self.optimizer.groups == 0 {
            0.0
        } else {
            self.optimizer.repairs as f64 / self.optimizer.groups as f64
        }
    }

    /// Average cycles from a group's prefetch insertion to its last distance
    /// change (0 when the initial distance was never changed).
    #[must_use]
    pub fn avg_cycles_to_converge(&self) -> f64 {
        if self.optimizer.groups == 0 {
            0.0
        } else {
            self.optimizer.converge_cycles_total as f64 / self.optimizer.groups as f64
        }
    }

    pub(crate) fn window_from(
        snapshot: &Snapshot,
        end: &Snapshot,
    ) -> (u64, u64, u64, DriverCounters) {
        (
            end.cycles - snapshot.cycles,
            end.helper_active - snapshot.helper_active,
            end.helper_committed - snapshot.helper_committed,
            end.counters.sub(&snapshot.counters),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(cycles: u64, insts: u64) -> SimResult {
        SimResult {
            name: "t".into(),
            cycles,
            orig_insts: insts,
            helper_active_cycles: 0,
            helper_committed: 0,
            window: DriverCounters::default(),
            cpu: CpuStats::default(),
            mem: MemStats::default(),
            trident: TridentStats::default(),
            optimizer: OptimizerStats::default(),
            ledger: Vec::new(),
            halted: false,
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = result_with(1000, 500);
        let fast = result_with(500, 500);
        assert_eq!(base.ipc(), 0.5);
        assert_eq!(fast.speedup_over(&base), 2.0);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let mut r = result_with(10, 10);
        r.window.loads_hit = 6;
        r.window.loads_hit_prefetched = 2;
        r.window.loads_partial = 1;
        r.window.loads_miss = 1;
        let s: f64 = r.load_breakdown().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
