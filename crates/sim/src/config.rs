//! Simulation configurations for every experiment in the paper.

use tdo_core::{DltConfig, SwPrefetchMode};
use tdo_cpu::CpuConfig;
use tdo_mem::{ArmConfig, MemConfig};
use tdo_trident::TridentConfig;

/// Which prefetching machinery is active — the paper's experimental arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchSetup {
    /// No prefetching at all (Figure 2/9 denominator).
    NoPrefetch,
    /// Hardware stream buffers, 4 buffers × 4 entries (Figure 2).
    Hw4x4,
    /// Hardware stream buffers, 8×8 — the paper's baseline.
    Hw8x8,
    /// Baseline + dynamic software prefetching at a fixed estimated
    /// distance (prior work, "basic" in Figure 5).
    SwBasic,
    /// Baseline + whole-object prefetching, fixed estimated distance.
    SwWholeObject,
    /// Baseline + the paper's self-repairing prefetcher.
    SwSelfRepair,
    /// Software self-repairing prefetching with *no* hardware prefetcher
    /// (Figure 9 comparison).
    SwOnlySelfRepair,
    /// Hardware fixed-degree next-line arm (no software prefetching).
    HwNextLine,
    /// Hardware adaptive-degree next-line arm (MPKI hill-climb).
    HwAdaptiveNextLine,
    /// Hardware PC-stride delta arm.
    HwDelta,
    /// Runtime policy controller: starts with no arm and hill-climbs over
    /// [`policy_candidates`] at epoch boundaries.
    Policy,
}

impl PrefetchSetup {
    /// All arms, in presentation order.
    pub const ALL: [PrefetchSetup; 11] = [
        PrefetchSetup::NoPrefetch,
        PrefetchSetup::Hw4x4,
        PrefetchSetup::Hw8x8,
        PrefetchSetup::SwBasic,
        PrefetchSetup::SwWholeObject,
        PrefetchSetup::SwSelfRepair,
        PrefetchSetup::SwOnlySelfRepair,
        PrefetchSetup::HwNextLine,
        PrefetchSetup::HwAdaptiveNextLine,
        PrefetchSetup::HwDelta,
        PrefetchSetup::Policy,
    ];

    /// The software mode this arm runs.
    #[must_use]
    pub fn sw_mode(self) -> SwPrefetchMode {
        match self {
            PrefetchSetup::NoPrefetch
            | PrefetchSetup::Hw4x4
            | PrefetchSetup::Hw8x8
            | PrefetchSetup::HwNextLine
            | PrefetchSetup::HwAdaptiveNextLine
            | PrefetchSetup::HwDelta
            | PrefetchSetup::Policy => SwPrefetchMode::Off,
            PrefetchSetup::SwBasic => SwPrefetchMode::Basic,
            PrefetchSetup::SwWholeObject => SwPrefetchMode::WholeObject,
            PrefetchSetup::SwSelfRepair | PrefetchSetup::SwOnlySelfRepair => {
                SwPrefetchMode::SelfRepair
            }
        }
    }

    /// The short name used at every user-facing surface (`tdo run --arm`,
    /// `tdo compare` rows, server `/run` bodies).
    #[must_use]
    pub fn cli_name(self) -> &'static str {
        match self {
            PrefetchSetup::NoPrefetch => "none",
            PrefetchSetup::Hw4x4 => "hw4x4",
            PrefetchSetup::Hw8x8 => "hw8x8",
            PrefetchSetup::SwBasic => "basic",
            PrefetchSetup::SwWholeObject => "whole",
            PrefetchSetup::SwSelfRepair => "sr",
            PrefetchSetup::SwOnlySelfRepair => "swonly",
            PrefetchSetup::HwNextLine => "nl",
            PrefetchSetup::HwAdaptiveNextLine => "adanl",
            PrefetchSetup::HwDelta => "delta",
            PrefetchSetup::Policy => "policy",
        }
    }

    /// Parses a short arm name (the inverse of [`PrefetchSetup::cli_name`]).
    #[must_use]
    pub fn from_cli_name(name: &str) -> Option<PrefetchSetup> {
        PrefetchSetup::ALL.into_iter().find(|s| s.cli_name() == name)
    }

    /// The memory configuration this arm runs (full-scale hierarchy).
    ///
    /// The policy setup deliberately starts with *no* hardware arm
    /// ([`tdo_mem::ArmConfig::None`]): the [`Machine`](crate::Machine)
    /// installs the controller's first candidate — or the locked arm — via
    /// `Hierarchy::set_arm`, so a locked controller run is state-identical
    /// to the corresponding static run.
    #[must_use]
    pub fn mem(self) -> MemConfig {
        match self {
            PrefetchSetup::NoPrefetch | PrefetchSetup::SwOnlySelfRepair => MemConfig::no_prefetch(),
            PrefetchSetup::Hw4x4 => MemConfig::hw_four_by_four(),
            PrefetchSetup::HwNextLine => MemConfig::hw_next_line(),
            PrefetchSetup::HwAdaptiveNextLine => MemConfig::hw_adaptive_next_line(),
            PrefetchSetup::HwDelta => MemConfig::hw_delta(),
            PrefetchSetup::Policy => {
                MemConfig { arm: ArmConfig::None, ..MemConfig::paper_baseline() }
            }
            _ => MemConfig::paper_baseline(),
        }
    }
}

/// The arms the policy controller hill-climbs over, in sweep order. The
/// order is part of the simulation contract (results are a function of it),
/// so it is fixed: the paper's stream-buffer baseline first, then the
/// next-line family, then the delta arm.
#[must_use]
pub fn policy_candidates() -> [ArmConfig; 4] {
    [
        ArmConfig::Stream(tdo_mem::StreamBufferConfig::eight_by_eight()),
        ArmConfig::NextLine(tdo_mem::NextLineConfig::default()),
        ArmConfig::AdaptiveNextLine(tdo_mem::AdaptiveNextLineConfig::default()),
        ArmConfig::Delta(tdo_mem::DeltaConfig::default()),
    ]
}

/// Configuration of the runtime arm-selection policy controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Original-equivalent instructions per decision epoch.
    pub epoch_insts: u64,
    /// A sweep winner must beat the incumbent's sampled IPC by this many
    /// milli-units (parts per thousand) to replace it.
    pub hysteresis_milli: u64,
    /// Committed-arm IPC dropping this many milli-units below the best
    /// committed-epoch IPC triggers a fresh sweep (the phase-change
    /// detector).
    pub degrade_milli: u64,
    /// Pin the controller to one arm: install it at cycle 0 and never
    /// sample or switch. Differential tests use this to show the controller
    /// plumbing adds zero perturbation.
    pub locked: Option<ArmConfig>,
}

impl PolicyConfig {
    /// Full-scale epochs: 50 K original-equivalent instructions, 2%
    /// hysteresis, 10% degradation trigger.
    #[must_use]
    pub fn paper() -> PolicyConfig {
        PolicyConfig { epoch_insts: 50_000, hysteresis_milli: 20, degrade_milli: 100, locked: None }
    }

    /// Test-scale epochs (5 K instructions) with the paper's thresholds.
    #[must_use]
    pub fn test() -> PolicyConfig {
        PolicyConfig { epoch_insts: 5_000, ..PolicyConfig::paper() }
    }
}

/// A full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Core model.
    pub cpu: CpuConfig,
    /// Memory system.
    pub mem: MemConfig,
    /// Trident framework (profiler, watch table, code cache).
    pub trident: TridentConfig,
    /// Delinquent load table.
    pub dlt: DltConfig,
    /// Software prefetching mode.
    pub sw_mode: SwPrefetchMode,
    /// Start self-repair from the estimated distance (eq. 2) instead of 1 —
    /// the paper's §3.5.1 alternate strategy (non-repairing modes always
    /// estimate regardless of this flag).
    pub estimated_initial: bool,
    /// Whether Trident runs at all (trace formation + monitoring). With
    /// this off the run is a pure hardware baseline.
    pub trident_enabled: bool,
    /// §5.1 overhead experiment: the optimizer runs but never links its
    /// traces, measuring pure helper-thread interference.
    pub no_link: bool,
    /// Original-equivalent instructions of warmup (optimization disabled,
    /// per §4.2).
    pub warmup_insts: u64,
    /// Original-equivalent instructions measured after warmup.
    pub measure_insts: u64,
    /// Hard cycle cap (safety stop for degenerate configurations).
    pub max_cycles: u64,
    /// §3.5.2 phase-change extension: clear all DLT mature flags (and
    /// refresh repair budgets) every this many cycles, letting matured
    /// loads be re-tuned after behaviour changes. `None` = paper default
    /// (maturity persists until DLT eviction).
    pub mature_clear_interval: Option<u64>,
    /// Helper-job cost model: instructions charged per optimization.
    pub job_cost: JobCostModel,
    /// Observability: emit one windowed performance sample every this many
    /// committed original-equivalent instructions (only when a probe is
    /// attached; disabled runs never sample).
    pub sample_insts: u64,
    /// Runtime arm-selection policy controller; `None` runs whatever
    /// static arm `mem.arm` names.
    pub policy: Option<PolicyConfig>,
}

/// Simulated helper-thread instruction counts for each optimizer activity.
///
/// The analyses themselves run natively; these charges model the runtime
/// optimizer code (written in C and compiled `-O5` in the paper) executing
/// on the helper context.
#[derive(Clone, Copy, Debug)]
pub struct JobCostModel {
    /// Forming, optimizing and installing a trace: base cost.
    pub form_base: u64,
    /// Additional cost per trace instruction formed.
    pub form_per_inst: u64,
    /// Prefetch insertion (re-optimization): base cost.
    pub insert_base: u64,
    /// Additional cost per trace instruction scanned.
    pub insert_per_inst: u64,
    /// One in-place distance repair.
    pub repair: u64,
    /// An event that ends in no action (analysis only).
    pub analyze_only: u64,
}

impl Default for JobCostModel {
    fn default() -> Self {
        JobCostModel {
            form_base: 600,
            form_per_inst: 25,
            insert_base: 500,
            insert_per_inst: 20,
            repair: 200,
            analyze_only: 120,
        }
    }
}

impl SimConfig {
    /// The paper's full-scale configuration for one experimental arm.
    #[must_use]
    pub fn paper(setup: PrefetchSetup) -> SimConfig {
        let sw = setup.sw_mode();
        SimConfig {
            cpu: CpuConfig::paper_baseline(),
            mem: setup.mem(),
            trident: TridentConfig::paper_baseline(),
            dlt: DltConfig::paper_baseline(),
            sw_mode: sw,
            estimated_initial: false,
            trident_enabled: sw != SwPrefetchMode::Off,
            no_link: false,
            warmup_insts: 200_000,
            measure_insts: 2_000_000,
            max_cycles: u64::MAX,
            mature_clear_interval: None,
            job_cost: JobCostModel::default(),
            sample_insts: 50_000,
            policy: (setup == PrefetchSetup::Policy).then(PolicyConfig::paper),
        }
    }

    /// A fast configuration for unit/integration tests: the tiny cache
    /// hierarchy and small windows, paired with `Scale::Test` workloads.
    #[must_use]
    pub fn test(setup: PrefetchSetup) -> SimConfig {
        let sw = setup.sw_mode();
        let mut mem = MemConfig::tiny_for_tests();
        mem.arm = setup.mem().arm;
        let mut trident = TridentConfig::paper_baseline();
        trident.code_cache_base = 0x4000_0000;
        SimConfig {
            cpu: CpuConfig::paper_baseline(),
            mem,
            trident,
            dlt: DltConfig {
                window: 64,
                miss_threshold: 3,
                partial_min_accesses: 16,
                ..DltConfig::paper_baseline()
            },
            sw_mode: sw,
            estimated_initial: false,
            trident_enabled: sw != SwPrefetchMode::Off,
            no_link: false,
            warmup_insts: 20_000,
            measure_insts: 300_000,
            max_cycles: 200_000_000,
            mature_clear_interval: None,
            job_cost: JobCostModel::default(),
            sample_insts: 10_000,
            policy: (setup == PrefetchSetup::Policy).then(PolicyConfig::test),
        }
    }

    /// Enables hot-trace formation without software prefetching (used by
    /// coverage and overhead experiments).
    #[must_use]
    pub fn with_tracing_only(mut self) -> SimConfig {
        self.trident_enabled = true;
        self.sw_mode = SwPrefetchMode::Off;
        self
    }
}
