//! The single reporting layer shared by every harness binary and the CLI.
//!
//! A [`Report`] is a keyed table: a left-hand key column ("workload",
//! "window", …), value columns with fixed widths, body rows, footer rows
//! (geomean/mean lines set off by a rule), plus free-form title and note
//! lines. One report renders in any [`Format`]:
//!
//! * [`Format::Table`] — the aligned human-readable tables the harness
//!   binaries have always printed (titles, rules and notes included);
//! * [`Format::Csv`] — one header line and one comma-separated line per row,
//!   for plotting or regression tracking;
//! * [`Format::Json`] — one JSON object per row (JSON lines), keyed by the
//!   column headers.

use std::fmt::Write as _;
use std::str::FromStr;

/// Output format for a rendered [`Report`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Aligned human-readable table with titles, rules and notes.
    Table,
    /// Comma-separated values: a header line, then one line per row.
    Csv,
    /// JSON lines: one object per row, keyed by column headers.
    Json,
}

impl FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "table" => Ok(Format::Table),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format `{other}` (expected table, csv or json)")),
        }
    }
}

struct Row {
    key: String,
    cells: Vec<String>,
    footer: bool,
}

/// A keyed table of pre-formatted cells, renderable in any [`Format`].
pub struct Report {
    slug: String,
    titles: Vec<String>,
    key_header: String,
    key_width: usize,
    cols: Vec<(String, usize)>,
    rows: Vec<Row>,
    notes: Vec<String>,
    rule_width: Option<usize>,
}

impl Report {
    /// Creates an empty report; `slug` names the table in JSON output.
    ///
    /// The key column defaults to a 10-wide "workload" column.
    #[must_use]
    pub fn new(slug: impl Into<String>) -> Report {
        Report {
            slug: slug.into(),
            titles: Vec::new(),
            key_header: "workload".into(),
            key_width: 10,
            cols: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
            rule_width: None,
        }
    }

    /// Adds a title line (printed before the table in table mode).
    #[must_use]
    pub fn title(mut self, line: impl Into<String>) -> Report {
        self.titles.push(line.into());
        self
    }

    /// Overrides the key column header and width.
    #[must_use]
    pub fn key(mut self, header: impl Into<String>, width: usize) -> Report {
        self.key_header = header.into();
        self.key_width = width;
        self
    }

    /// Adds a right-aligned value column of the given width.
    #[must_use]
    pub fn col(mut self, header: impl Into<String>, width: usize) -> Report {
        self.cols.push((header.into(), width));
        self
    }

    /// Overrides the horizontal-rule length (defaults to the table width);
    /// `0` suppresses rules entirely.
    #[must_use]
    pub fn rule(mut self, width: usize) -> Report {
        self.rule_width = Some(width);
        self
    }

    /// Appends a body row. Cells render right-aligned in their column; a row
    /// may carry fewer cells than there are columns (the rest stay blank).
    pub fn row<S: Into<String>>(
        &mut self,
        key: impl Into<String>,
        cells: impl IntoIterator<Item = S>,
    ) {
        self.rows.push(Row {
            key: key.into(),
            cells: cells.into_iter().map(Into::into).collect(),
            footer: false,
        });
    }

    /// Appends a footer row (set off from the body by a rule in table mode).
    pub fn footer<S: Into<String>>(
        &mut self,
        key: impl Into<String>,
        cells: impl IntoIterator<Item = S>,
    ) {
        self.rows.push(Row {
            key: key.into(),
            cells: cells.into_iter().map(Into::into).collect(),
            footer: true,
        });
    }

    /// Appends a note line (printed after the table in table mode, set off by
    /// a blank line).
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders the report in the requested format; the string ends with a
    /// newline when the report is non-empty.
    #[must_use]
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Table => self.render_table(),
            Format::Csv => self.render_csv(),
            Format::Json => self.render_json(),
        }
    }

    fn rule_len(&self) -> usize {
        self.rule_width
            .unwrap_or_else(|| self.key_width + self.cols.iter().map(|(_, w)| w + 1).sum::<usize>())
    }

    fn render_table(&self) -> String {
        let mut out = String::new();
        for t in &self.titles {
            let _ = writeln!(out, "{t}");
        }
        let _ = write!(out, "{:<w$}", self.key_header, w = self.key_width);
        for (h, w) in &self.cols {
            let _ = write!(out, " {h:>w$}", w = w);
        }
        out.push('\n');
        let rule_len = self.rule_len();
        if rule_len > 0 {
            let _ = writeln!(out, "{}", "-".repeat(rule_len));
        }
        let mut in_footer = false;
        for row in &self.rows {
            if row.footer && !in_footer {
                if rule_len > 0 {
                    let _ = writeln!(out, "{}", "-".repeat(rule_len));
                }
                in_footer = true;
            }
            let _ = write!(out, "{:<w$}", row.key, w = self.key_width);
            for (cell, (_, w)) in row.cells.iter().zip(&self.cols) {
                let _ = write!(out, " {cell:>w$}", w = w);
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "{n}");
            }
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.key_header);
        for (h, _) in &self.cols {
            let _ = write!(out, ",{h}");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{}", row.key);
            for i in 0..self.cols.len() {
                let _ = write!(out, ",{}", row.cells.get(i).map_or("", |c| c.trim()));
            }
            out.push('\n');
        }
        out
    }

    fn render_json(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let _ = write!(
                out,
                "{{\"table\":{},\"{}\":{}",
                json_str(&self.slug),
                self.key_header,
                json_str(&row.key)
            );
            if row.footer {
                let _ = write!(out, ",\"footer\":true");
            }
            for (cell, (h, _)) in row.cells.iter().zip(&self.cols) {
                let _ = write!(out, ",{}:{}", json_str(h), json_str(cell.trim()));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Minimal JSON string quoting (the report's content is plain ASCII).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t").title("A table").col("a", 5).col("b", 6);
        r.row("x", ["1.0", "+2.0%"]);
        r.footer("geomean", ["", "+2.0%"]);
        r.note("note line.");
        r
    }

    #[test]
    fn table_layout_is_aligned() {
        let s = sample().render(Format::Table);
        let want = "A table\n\
                    workload       a      b\n\
                    -----------------------\n\
                    x            1.0  +2.0%\n\
                    -----------------------\n\
                    geomean           +2.0%\n\
                    \n\
                    note line.\n";
        assert_eq!(s, want);
    }

    #[test]
    fn csv_strips_alignment() {
        let s = sample().render(Format::Csv);
        assert_eq!(s, "workload,a,b\nx,1.0,+2.0%\ngeomean,,+2.0%\n");
    }

    #[test]
    fn json_lines_parse_shape() {
        let s = sample().render(Format::Json);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"table\":\"t\",\"workload\":\"x\",\"a\":\"1.0\",\"b\":\"+2.0%\"}");
        assert!(lines[1].contains("\"footer\":true"));
    }

    #[test]
    fn format_parses() {
        assert_eq!("csv".parse::<Format>(), Ok(Format::Csv));
        assert!("yaml".parse::<Format>().is_err());
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }
}
