//! Timeline reports derived from a recorded event log: the per-group
//! repair-convergence table and the windowed performance series shown by
//! `tdo timeline`.
//!
//! Everything here is computed from the cycle-stamped events alone (see
//! [`crate::machine::run_traced`]), so the rendered text inherits the log's
//! byte-determinism.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tdo_obs::Event;

/// Convergence facts for one prefetch group, accumulated over the run.
#[derive(Clone, Debug)]
pub struct GroupRow {
    /// Group key: the representative load's original PC.
    pub group: u64,
    /// Group kind name (`stride`/`pointer`).
    pub kind: &'static str,
    /// Trace ids that carried the group over its lifetime.
    pub traces: Vec<u32>,
    /// Initial prefetch distance.
    pub initial_distance: u8,
    /// Distance after the last repair decision.
    pub final_distance: u8,
    /// Times the group's prefetches were (re-)inserted.
    pub inserts: u64,
    /// Repair decisions run for the group (including holds).
    pub repairs: u64,
    /// Repair decisions that actually changed the distance.
    pub distance_changes: u64,
    /// Cycle of the first insertion.
    pub inserted_at: u64,
    /// Cycle of the last distance change (`inserted_at` when none).
    pub last_change_at: u64,
    /// Back-outs of traces that carried this group.
    pub backouts: u64,
}

impl GroupRow {
    /// Cycles from insertion to the last distance change.
    #[must_use]
    pub fn cycles_to_converge(&self) -> u64 {
        self.last_change_at.saturating_sub(self.inserted_at)
    }
}

/// One windowed performance sample (integer milli-units).
#[derive(Clone, Copy, Debug)]
pub struct SampleRow {
    /// Original-equivalent instructions committed at sample time.
    pub insts: u64,
    /// Simulated cycle of the sample.
    pub cycle: u64,
    /// Cycles elapsed in the window.
    pub dcycles: u64,
    /// Window IPC ×1000.
    pub ipc_milli: u64,
    /// Window L1 load-miss rate ×1000.
    pub l1_miss_milli: u64,
    /// Window beyond-L2 service rate ×1000.
    pub l2_miss_milli: u64,
    /// Window prefetch accuracy ×1000.
    pub pf_acc_milli: u64,
}

/// One policy-controller arm switch, with the window metrics that
/// triggered it.
#[derive(Clone, Copy, Debug)]
pub struct ArmSwitchRow {
    /// Simulated cycle of the switch.
    pub cycle: u64,
    /// Arm being replaced (`none` when the controller had no arm yet).
    pub from: &'static str,
    /// Arm being installed.
    pub to: &'static str,
    /// IPC ×1000 of the epoch window that triggered the decision.
    pub ipc_milli: u64,
    /// L1 misses per kilo-instruction ×1000 of the same window.
    pub mpki_milli: u64,
}

/// A digest of one run's event log.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Per-group convergence rows, ordered by group PC.
    pub groups: Vec<GroupRow>,
    /// Windowed samples in emission order.
    pub samples: Vec<SampleRow>,
    /// Policy-controller arm switches in emission order.
    pub arm_switches: Vec<ArmSwitchRow>,
    /// Traces installed over the run.
    pub traces_installed: u64,
    /// Traces backed out over the run.
    pub backouts: u64,
    /// Loads matured over the run.
    pub matured: u64,
    /// Cycle of the last recorded event (closes the final occupancy span).
    pub last_cycle: u64,
}

impl Timeline {
    /// Digests a recorded `(cycle, event)` log.
    #[must_use]
    pub fn from_events(events: &[(u64, Event)]) -> Timeline {
        let mut groups: BTreeMap<u64, GroupRow> = BTreeMap::new();
        let mut trace_backouts: BTreeMap<u32, u64> = BTreeMap::new();
        let mut out = Timeline::default();
        for &(cycle, ev) in events {
            out.last_cycle = out.last_cycle.max(cycle);
            match ev {
                Event::TraceInstalled { .. } => out.traces_installed += 1,
                Event::TraceBackedOut { trace, .. } => {
                    out.backouts += 1;
                    *trace_backouts.entry(trace).or_insert(0) += 1;
                }
                Event::LoadMatured { .. } => out.matured += 1,
                Event::PrefetchInserted { trace, group, kind, distance, .. } => {
                    let row = groups.entry(group).or_insert_with(|| GroupRow {
                        group,
                        kind: kind.name(),
                        traces: Vec::new(),
                        initial_distance: distance,
                        final_distance: distance,
                        inserts: 0,
                        repairs: 0,
                        distance_changes: 0,
                        inserted_at: cycle,
                        last_change_at: cycle,
                        backouts: 0,
                    });
                    row.inserts += 1;
                    if !row.traces.contains(&trace) {
                        row.traces.push(trace);
                    }
                }
                Event::DistanceRepaired { trace, group, old, new, .. } => {
                    let row = groups.entry(group).or_insert_with(|| GroupRow {
                        group,
                        kind: "stride",
                        traces: Vec::new(),
                        initial_distance: old,
                        final_distance: old,
                        inserts: 0,
                        repairs: 0,
                        distance_changes: 0,
                        inserted_at: cycle,
                        last_change_at: cycle,
                        backouts: 0,
                    });
                    row.repairs += 1;
                    row.final_distance = new;
                    if !row.traces.contains(&trace) {
                        row.traces.push(trace);
                    }
                    if new != old {
                        row.distance_changes += 1;
                        row.last_change_at = cycle;
                    }
                }
                Event::Sample {
                    insts,
                    dcycles,
                    ipc_milli,
                    l1_miss_milli,
                    l2_miss_milli,
                    pf_acc_milli,
                } => out.samples.push(SampleRow {
                    insts,
                    cycle,
                    dcycles,
                    ipc_milli,
                    l1_miss_milli,
                    l2_miss_milli,
                    pf_acc_milli,
                }),
                Event::ArmSwitch { from, to, ipc_milli, mpki_milli } => {
                    out.arm_switches.push(ArmSwitchRow { cycle, from, to, ipc_milli, mpki_milli });
                }
                _ => {}
            }
        }
        let mut rows: Vec<GroupRow> = groups.into_values().collect();
        for row in &mut rows {
            row.backouts =
                row.traces.iter().map(|t| trace_backouts.get(t).copied().unwrap_or(0)).sum();
        }
        out.groups = rows;
        out
    }

    /// Whether any group's distance actually moved — the self-repairing
    /// behaviour the timeline exists to show.
    #[must_use]
    pub fn any_distance_change(&self) -> bool {
        self.groups.iter().any(|g| g.distance_changes > 0)
    }

    /// Renders the repair-convergence table.
    #[must_use]
    pub fn render_convergence(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<12} {:<7} {:>5} {:>7} {:>7} {:>8} {:>9} {:>12} {:>8}",
            "group",
            "kind",
            "trace",
            "inserts",
            "repairs",
            "d0->d",
            "changes",
            "conv_cycles",
            "backouts"
        );
        for g in &self.groups {
            let trace = g.traces.last().map_or_else(|| "-".into(), |t| t.to_string());
            let _ = writeln!(
                s,
                "{:<#12x} {:<7} {:>5} {:>7} {:>7} {:>8} {:>9} {:>12} {:>8}",
                g.group,
                g.kind,
                trace,
                g.inserts,
                g.repairs,
                format!("{}->{}", g.initial_distance, g.final_distance),
                g.distance_changes,
                g.cycles_to_converge(),
                g.backouts,
            );
        }
        if self.groups.is_empty() {
            s.push_str("(no prefetch groups were inserted)\n");
        }
        let _ = writeln!(
            s,
            "traces installed: {}   backouts: {}   loads matured: {}",
            self.traces_installed, self.backouts, self.matured
        );
        s
    }

    /// Renders the windowed performance series. Milli-unit rates print as
    /// integer-derived fixed-point decimals so the text stays deterministic.
    #[must_use]
    pub fn render_samples(&self) -> String {
        fn milli(v: u64) -> String {
            format!("{}.{:03}", v / 1000, v % 1000)
        }
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>12} {:>12} {:>9} {:>7} {:>8} {:>8} {:>7}",
            "insts", "cycle", "dcycles", "ipc", "l1_miss", "l2_miss", "pf_acc"
        );
        for r in &self.samples {
            let _ = writeln!(
                s,
                "{:>12} {:>12} {:>9} {:>7} {:>8} {:>8} {:>7}",
                r.insts,
                r.cycle,
                r.dcycles,
                milli(r.ipc_milli),
                milli(r.l1_miss_milli),
                milli(r.l2_miss_milli),
                milli(r.pf_acc_milli),
            );
        }
        if self.samples.is_empty() {
            s.push_str("(no samples; run was shorter than one sample window)\n");
        }
        s
    }

    /// Cycles each prefetcher arm was installed, in order of first
    /// appearance. The run is split into spans at each switch; the first
    /// span (from cycle 0) belongs to the first switch's `from` arm and
    /// the last span is closed at [`Timeline::last_cycle`]. Empty when the
    /// run recorded no switches.
    #[must_use]
    pub fn arm_occupancy(&self) -> Vec<(&'static str, u64)> {
        let mut spans: Vec<(&'static str, u64)> = Vec::new();
        let mut add = |arm: &'static str, cycles: u64| {
            if let Some(e) = spans.iter_mut().find(|(a, _)| *a == arm) {
                e.1 += cycles;
            } else {
                spans.push((arm, cycles));
            }
        };
        let mut span_start = 0u64;
        for sw in &self.arm_switches {
            add(sw.from, sw.cycle.saturating_sub(span_start));
            span_start = sw.cycle;
        }
        if let Some(last) = self.arm_switches.last() {
            add(last.to, self.last_cycle.saturating_sub(span_start));
        }
        spans
    }

    /// Renders the arm-switch log and the per-arm occupancy table.
    /// Callers should skip this section entirely when
    /// [`Timeline::arm_switches`] is empty (static-arm runs).
    #[must_use]
    pub fn render_arms(&self) -> String {
        fn milli(v: u64) -> String {
            format!("{}.{:03}", v / 1000, v % 1000)
        }
        let mut s = String::new();
        let _ = writeln!(s, "{:>12} {:<18} {:>7} {:>8}", "cycle", "switch", "ipc", "mpki");
        for sw in &self.arm_switches {
            let _ = writeln!(
                s,
                "{:>12} {:<18} {:>7} {:>8}",
                sw.cycle,
                format!("{} -> {}", sw.from, sw.to),
                milli(sw.ipc_milli),
                milli(sw.mpki_milli),
            );
        }
        let total: u64 = self.arm_occupancy().iter().map(|(_, c)| c).sum();
        let _ = writeln!(s, "arm occupancy over {total} recorded cycles:");
        for (arm, cycles) in self.arm_occupancy() {
            let pct_milli = (cycles * 100_000).checked_div(total).unwrap_or(0);
            let _ = writeln!(s, "  {:<10} {:>12} cycles  {:>7}%", arm, cycles, milli(pct_milli));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_obs::PrefetchGroupKind;

    #[test]
    fn digest_tracks_convergence_and_backouts() {
        let events = vec![
            (
                100,
                Event::PrefetchInserted {
                    trace: 1,
                    group: 0x2000,
                    kind: PrefetchGroupKind::Stride,
                    distance: 1,
                    prefetches: 2,
                },
            ),
            (
                500,
                Event::DistanceRepaired {
                    trace: 1,
                    group: 0x2000,
                    pc: 0x2000,
                    old: 1,
                    new: 2,
                    avg_latency_x100: 900,
                },
            ),
            (
                900,
                Event::DistanceRepaired {
                    trace: 1,
                    group: 0x2000,
                    pc: 0x2000,
                    old: 2,
                    new: 2,
                    avg_latency_x100: 880,
                },
            ),
            (1200, Event::TraceBackedOut { trace: 1, head: 0x1000 }),
        ];
        let t = Timeline::from_events(&events);
        assert_eq!(t.groups.len(), 1);
        let g = &t.groups[0];
        assert_eq!(g.inserts, 1);
        assert_eq!(g.repairs, 2);
        assert_eq!(g.distance_changes, 1);
        assert_eq!(g.final_distance, 2);
        assert_eq!(g.cycles_to_converge(), 400);
        assert_eq!(g.backouts, 1);
        assert!(t.any_distance_change());
        let table = t.render_convergence();
        assert!(table.contains("1->2"));
        assert!(table.contains("backouts: 1"));
    }

    #[test]
    fn arm_switches_digest_into_occupancy_spans() {
        let events = vec![
            (
                1000,
                Event::ArmSwitch {
                    from: "stream",
                    to: "nextline",
                    ipc_milli: 500,
                    mpki_milli: 42_000,
                },
            ),
            (
                4000,
                Event::ArmSwitch {
                    from: "nextline",
                    to: "stream",
                    ipc_milli: 1200,
                    mpki_milli: 3_000,
                },
            ),
            (5000, Event::LoadMatured { pc: 0x1000 }),
        ];
        let t = Timeline::from_events(&events);
        assert_eq!(t.arm_switches.len(), 2);
        assert_eq!(t.last_cycle, 5000);
        // Spans: stream [0,1000) + [4000,5000], nextline [1000,4000).
        assert_eq!(t.arm_occupancy(), vec![("stream", 2000), ("nextline", 3000)]);
        let table = t.render_arms();
        assert!(table.contains("stream -> nextline"), "{table}");
        assert!(table.contains("42.000"), "{table}");
        assert!(table.contains("arm occupancy over 5000 recorded cycles"), "{table}");
        assert!(table.contains("60.000%"), "{table}");
    }

    #[test]
    fn runs_without_switches_render_no_arm_section() {
        let t = Timeline::from_events(&[]);
        assert!(t.arm_switches.is_empty());
        assert!(t.arm_occupancy().is_empty());
    }

    #[test]
    fn sample_rendering_is_fixed_point() {
        let events = vec![(
            1000,
            Event::Sample {
                insts: 10_000,
                dcycles: 9000,
                ipc_milli: 1111,
                l1_miss_milli: 50,
                l2_miss_milli: 7,
                pf_acc_milli: 0,
            },
        )];
        let t = Timeline::from_events(&events);
        let s = t.render_samples();
        assert!(s.contains("1.111"));
        assert!(s.contains("0.050"));
        assert!(s.contains("0.007"));
    }
}
