//! End-to-end smoke tests: the whole stack runs every workload and the
//! prefetching arms behave sanely relative to each other.

use tdo_sim::{run, PrefetchSetup, SimConfig};
use tdo_workloads::{build, Scale};

#[test]
fn art_full_stack_self_repair_beats_baseline() {
    let w = build("art", Scale::Test).unwrap();
    let base = run(&w, &SimConfig::test(PrefetchSetup::Hw8x8));
    let sr = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
    assert!(base.orig_insts > 0 && base.cycles > 0);
    // The optimizer must actually have run: traces installed, prefetches in.
    assert!(sr.trident.traces_installed >= 1, "traces: {:?}", sr.trident);
    assert!(sr.optimizer.insertions >= 1, "optimizer: {:?}", sr.optimizer);
    assert!(sr.optimizer.repairs >= 1, "repairs expected: {:?}", sr.optimizer);
    let speedup = sr.speedup_over(&base);
    assert!(
        speedup > 1.02,
        "self-repair should beat the hw baseline on art: {speedup:.3} (base ipc {:.3}, sr ipc {:.3})",
        base.ipc(),
        sr.ipc()
    );
}

#[test]
fn mcf_pointer_chase_benefits_from_dlt_strides() {
    let w = build("mcf", Scale::Test).unwrap();
    let base = run(&w, &SimConfig::test(PrefetchSetup::Hw8x8));
    let sr = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
    assert!(sr.optimizer.insertions >= 1, "{:?}", sr.optimizer);
    let speedup = sr.speedup_over(&base);
    assert!(speedup > 1.02, "mcf speedup {speedup:.3}");
}

#[test]
fn helper_thread_overhead_is_small_in_no_link_mode() {
    let w = build("swim", Scale::Test).unwrap();
    let mut base_cfg = SimConfig::test(PrefetchSetup::Hw8x8);
    base_cfg.trident_enabled = false;
    let base = run(&w, &base_cfg);

    let mut nolink = SimConfig::test(PrefetchSetup::SwSelfRepair);
    nolink.no_link = true;
    let r = run(&w, &nolink);
    // Traces were formed (work happened) but never linked.
    assert!(r.trident.traces_installed == 0, "{:?}", r.trident);
    assert!(r.helper_active_cycles > 0, "helper must have run");
    let overhead = 1.0 - r.ipc() / base.ipc();
    assert!(
        overhead < 0.05,
        "no-link optimizer overhead must be small, got {:.1}% (base {:.3}, nolink {:.3})",
        overhead * 100.0,
        base.ipc(),
        r.ipc()
    );
}

#[test]
fn all_workloads_run_under_the_full_stack() {
    for name in tdo_workloads::names() {
        let w = build(name, Scale::Test).unwrap();
        let mut cfg = SimConfig::test(PrefetchSetup::SwSelfRepair);
        cfg.warmup_insts = 10_000;
        cfg.measure_insts = 60_000;
        let r = run(&w, &cfg);
        assert!(r.orig_insts >= 50_000 || r.halted, "{name}: {} insts", r.orig_insts);
        assert!(r.ipc() > 0.01, "{name}: ipc {:.4}", r.ipc());
        // Load classes always account for every load.
        assert_eq!(
            r.window.loads(),
            r.window.loads_hit
                + r.window.loads_hit_prefetched
                + r.window.loads_partial
                + r.window.loads_miss
                + r.window.loads_miss_due_to_prefetch
        );
    }
}

#[test]
fn architectural_results_are_identical_across_arms() {
    // The optimizer rewrites running code; whatever it does, the program
    // must compute the same thing. Run a finite workload to completion under
    // every arm and compare the final memory image.
    let mut checksums = Vec::new();
    for setup in [
        PrefetchSetup::NoPrefetch,
        PrefetchSetup::Hw8x8,
        PrefetchSetup::SwBasic,
        PrefetchSetup::SwWholeObject,
        PrefetchSetup::SwSelfRepair,
    ] {
        let w = build("wupwise", Scale::Test).unwrap();
        let mut cfg = SimConfig::test(setup);
        cfg.warmup_insts = 5_000;
        cfg.measure_insts = u64::MAX - 5_000; // run to halt
        cfg.max_cycles = 400_000_000;
        let mut machine_mem_checksum = None;
        // Machine::run consumes the machine; use the public API plus a
        // memory probe: rerun via Machine to keep the memory.
        let machine = tdo_sim::Machine::new(&w, cfg);
        let r = machine.run_with_memory(&mut |mem| {
            machine_mem_checksum = Some(mem.checksum());
        });
        assert!(r.halted, "{setup:?} must run to completion");
        checksums.push((setup, machine_mem_checksum.unwrap()));
    }
    let first = checksums[0].1;
    for (setup, c) in &checksums {
        assert_eq!(*c, first, "{setup:?} diverged architecturally");
    }
}
