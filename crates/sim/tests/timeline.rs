//! Determinism and fidelity tests for the cycle-stamped event trace and the
//! `tdo timeline` digest built on it.
//!
//! The golden file regenerates with `TDO_BLESS=1 cargo test -p tdo-sim
//! --test timeline`.

use tdo_obs::{validate_chrome_trace, validate_jsonl};
use tdo_sim::{run, run_profiled, run_traced, PrefetchSetup, SimConfig, Timeline};
use tdo_workloads::{build, Scale};

fn small_cfg() -> SimConfig {
    let mut cfg = SimConfig::test(PrefetchSetup::SwSelfRepair);
    cfg.warmup_insts = 10_000;
    cfg.measure_insts = 60_000;
    cfg
}

#[test]
fn traced_run_is_byte_deterministic() {
    let w = build("art", Scale::Test).unwrap();
    let cfg = small_cfg();
    let (r1, rec1) = run_traced(&w, &cfg);
    let (r2, rec2) = run_traced(&w, &cfg);
    assert!(!rec1.events().is_empty(), "a self-repair run must record events");
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(rec1.to_jsonl(), rec2.to_jsonl(), "same cell twice must serialize identically");
    assert_eq!(rec1.to_chrome_trace(), rec2.to_chrome_trace());
}

#[test]
fn traced_run_is_identical_across_threads() {
    // The timeline records simulated cycles only; running the same cell on
    // worker threads (as `--jobs N` would) must not change a byte.
    let serial = {
        let w = build("art", Scale::Test).unwrap();
        run_traced(&w, &small_cfg()).1.to_jsonl()
    };
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(|| {
                let w = build("art", Scale::Test).unwrap();
                run_traced(&w, &small_cfg()).1.to_jsonl()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), serial, "thread context leaked into the trace");
    }
}

#[test]
fn recording_does_not_perturb_the_simulation() {
    // The probe and the self-profiler are observation only. A plain run
    // (profiler compiled in but off — the zero-cost disabled path), a
    // traced run, and a profiled run of the same cell must produce
    // identical `SimResult`s in every field.
    let w = build("swim", Scale::Test).unwrap();
    let cfg = small_cfg();
    let plain = run(&w, &cfg);
    let (traced, _) = run_traced(&w, &cfg);
    let (profiled, profile) = run_profiled(&w, &cfg);
    assert_eq!(format!("{plain:?}"), format!("{traced:?}"), "tracing perturbed the simulation");
    assert_eq!(format!("{plain:?}"), format!("{profiled:?}"), "profiling perturbed the simulation");
    // The profile itself is live: deterministic fields reflect the run...
    assert!(profile.cycles >= plain.cycles, "profile covers warmup + window");
    let jobs: u64 = profile.helper_jobs.iter().sum();
    assert!(jobs > 0, "a self-repair run finishes helper jobs");
    // ...and the wall clock actually advanced somewhere.
    assert!(profile.run_wall_ns > 0);
    assert!(profile.phase_wall_ns.iter().sum::<u64>() > 0);
    assert!(profile.phase_wall_ns.iter().sum::<u64>() <= profile.run_wall_ns);
}

#[test]
fn serialized_traces_validate() {
    let w = build("mcf", Scale::Test).unwrap();
    let (_, rec) = run_traced(&w, &small_cfg());
    validate_jsonl(&rec.to_jsonl()).expect("JSONL must satisfy the schema");
    validate_chrome_trace(&rec.to_chrome_trace()).expect("Chrome trace must be well-formed");
}

#[test]
fn pointer_workload_repairs_its_distance() {
    // The acceptance bar for the whole observability layer: on a
    // pointer-chasing workload the digest must show the prefetch distance
    // actually moving.
    let w = build("mcf", Scale::Test).unwrap();
    let (_, rec) = run_traced(&w, &small_cfg());
    let t = Timeline::from_events(rec.events());
    assert!(!t.groups.is_empty(), "mcf must insert at least one prefetch group");
    assert!(
        t.any_distance_change(),
        "self-repair must move a distance:\n{}",
        t.render_convergence()
    );
}

#[test]
fn golden_timeline_for_tiny_stride_workload() {
    let w = build("art", Scale::Test).unwrap();
    let (_, rec) = run_traced(&w, &small_cfg());
    let t = Timeline::from_events(rec.events());
    let rendered = format!("{}\n{}", t.render_convergence(), t.render_samples());
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/timeline_art.txt");
    if std::env::var_os("TDO_BLESS").is_some() {
        std::fs::write(golden, &rendered).unwrap();
        return;
    }
    let expected =
        std::fs::read_to_string(golden).expect("golden file missing; regenerate with TDO_BLESS=1");
    assert_eq!(
        rendered, expected,
        "timeline drifted from the golden file; if intended, regenerate with TDO_BLESS=1"
    );
}
