//! Engine ↔ store integration: a warm store makes a fresh `Runner` perform
//! zero simulations, and a panicking cell neither cascades nor poisons the
//! caches.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tdo_sim::{Cell, ExperimentSpec, PrefetchSetup, Runner, SimConfig};
use tdo_store::Store;
use tdo_workloads::Scale;

/// A unique scratch directory per test, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdo-sim-store-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TestDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn quick_cell(workload: &str, setup: PrefetchSetup) -> Cell {
    let mut cfg = SimConfig::test(setup);
    cfg.warmup_insts = 2_000;
    cfg.measure_insts = 20_000;
    Cell::new(workload, Scale::Test, cfg)
}

fn quick_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new();
    for workload in ["mcf", "swim"] {
        for setup in [PrefetchSetup::NoPrefetch, PrefetchSetup::SwSelfRepair] {
            spec.push(quick_cell(workload, setup));
        }
    }
    spec
}

/// The headline acceptance property: the second `Runner` over the same
/// store directory simulates nothing and reproduces the cold results
/// exactly.
#[test]
fn second_runner_over_a_warm_store_performs_zero_simulations() {
    let dir = TestDir::new("warm");
    let spec = quick_spec();

    let cold = Runner::with_store(2, Arc::new(Store::open(dir.path()).unwrap()));
    let cold_results = cold.run_spec(&spec);
    assert_eq!(cold.sims_run(), 4, "four unique cells simulate cold");
    assert_eq!(cold.store_hits(), 0);
    assert_eq!(cold.store_misses(), 4);
    assert_eq!(cold.store_summary().as_deref(), Some("store: hits=0 misses=4 sims=4"));

    // A brand-new runner (fresh memo cache, fresh process in spirit) over
    // the same directory.
    let warm = Runner::with_store(2, Arc::new(Store::open(dir.path()).unwrap()));
    let warm_results = warm.run_spec(&spec);
    assert_eq!(warm.sims_run(), 0, "warm store serves every cell");
    assert_eq!(warm.store_hits(), 4);
    assert_eq!(warm.store_misses(), 0);
    assert_eq!(warm.store_summary().as_deref(), Some("store: hits=4 misses=0 sims=0"));

    assert_eq!(cold_results.len(), warm_results.len());
    for (c, w) in cold_results.iter().zip(&warm_results) {
        assert_eq!(format!("{c:?}"), format!("{w:?}"), "store round-trip is lossless");
    }
}

/// `run_cell` singly: miss then write-through, then a fresh runner hits.
#[test]
fn run_cell_reads_through_and_writes_through() {
    let dir = TestDir::new("cell");
    let cell = quick_cell("art", PrefetchSetup::Hw8x8);

    let first = Runner::with_store(1, Arc::new(Store::open(dir.path()).unwrap()));
    let a = first.run_cell(&cell);
    assert_eq!((first.sims_run(), first.store_hits(), first.store_misses()), (1, 0, 1));
    // Second ask in the same process is a memo hit, not a store hit.
    let b = first.run_cell(&cell);
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!((first.sims_run(), first.store_hits(), first.store_misses()), (1, 0, 1));

    let second = Runner::with_store(1, Arc::new(Store::open(dir.path()).unwrap()));
    let c = second.run_cell(&cell);
    assert_eq!((second.sims_run(), second.store_hits(), second.store_misses()), (0, 1, 0));
    assert_eq!(format!("{a:?}"), format!("{c:?}"));
}

/// A storeless runner reports no summary and counts only simulations.
#[test]
fn storeless_runner_has_no_summary() {
    let runner = Runner::new(1);
    let _ = runner.run_cell(&quick_cell("mcf", PrefetchSetup::NoPrefetch));
    assert_eq!(runner.store_summary(), None);
    assert_eq!((runner.sims_run(), runner.store_hits(), runner.store_misses()), (1, 0, 0));
}

/// Satellite robustness fix: one panicking cell must not cascade into the
/// others, wedge the runner's mutexes, or block later use of the runner.
#[test]
fn a_panicking_cell_does_not_cascade_or_poison_the_runner() {
    let dir = TestDir::new("panic");
    let runner = Runner::with_store(2, Arc::new(Store::open(dir.path()).unwrap()));

    let good = quick_cell("mcf", PrefetchSetup::NoPrefetch);
    let bad = quick_cell("no-such-workload", PrefetchSetup::NoPrefetch);
    let mut spec = ExperimentSpec::new();
    spec.push(good.clone());
    spec.push(bad.clone());

    // The panic is reported (after all other cells completed) ...
    let outcome = catch_unwind(AssertUnwindSafe(|| runner.run_spec(&spec)));
    assert!(outcome.is_err(), "a failed cell is reported, not swallowed");

    // ... the failure is attributed to the right cell ...
    assert_eq!(runner.failed_cells(), vec![bad.fingerprint()]);

    // ... the good cell completed, simulated exactly once and persisted ...
    assert_eq!(runner.cells_cached(), 1);
    assert_eq!(runner.sims_run(), 2, "both cells were attempted");

    // ... and the runner remains fully usable (no poisoned mutexes).
    let r = runner.run_cell(&good);
    assert!(r.cycles > 0);
    assert_eq!(runner.sims_run(), 2, "good cell is served from the memo cache");

    // The good result survived to disk despite its sibling's panic.
    let fresh = Runner::with_store(1, Arc::new(Store::open(dir.path()).unwrap()));
    let _ = fresh.run_cell(&good);
    assert_eq!((fresh.sims_run(), fresh.store_hits()), (0, 1));
}
