//! Decision-audit ledger suites: the ledger is a deterministic, faithful
//! narration of the run's adaptation decisions — identical across worker
//! counts, identical between a locked policy and its static arm, and in
//! one-to-one correspondence with the counters it explains.

use tdo_core::{ledger_digest, LedgerKind, LEDGER_CAPACITY};
use tdo_sim::{
    policy_candidates, run, Cell, ExperimentSpec, PolicyConfig, PrefetchSetup, Runner, SimConfig,
};
use tdo_workloads::{build, Scale};

/// The same spec run serially and with four workers must produce
/// per-cell ledgers with identical digests — scheduling cannot leak into
/// the decision history.
#[test]
fn ledger_digests_are_identical_serial_vs_parallel() {
    let mut spec = ExperimentSpec::new();
    for (workload, setup) in [
        ("phaseshift", PrefetchSetup::Policy),
        ("mcf", PrefetchSetup::SwSelfRepair),
        ("swim", PrefetchSetup::SwSelfRepair),
        ("parser", PrefetchSetup::SwSelfRepair),
    ] {
        spec.push(Cell::new(workload, Scale::Test, SimConfig::test(setup)));
    }
    let serial: Vec<u64> =
        Runner::new(1).run_spec(&spec).iter().map(|r| ledger_digest(&r.ledger)).collect();
    let parallel: Vec<u64> =
        Runner::new(4).run_spec(&spec).iter().map(|r| ledger_digest(&r.ledger)).collect();
    assert_eq!(serial, parallel, "worker count changed a decision ledger");
    assert!(
        serial.iter().any(|&d| d != ledger_digest(&[])),
        "at least one cell must have made decisions"
    );
}

/// A policy controller locked to an arm takes no decisions of its own, so
/// its ledger must equal the static arm's: repair records only, bit for
/// bit.
#[test]
fn locked_policy_ledger_equals_static_arm_ledger() {
    let w = build("mcf", Scale::Test).unwrap();
    let arm = policy_candidates()[0];
    let fixed = run(&w, &SimConfig::test(PrefetchSetup::Hw8x8));

    let mut cfg = SimConfig::test(PrefetchSetup::Policy);
    cfg.policy = Some(PolicyConfig { locked: Some(arm), ..PolicyConfig::test() });
    let locked = run(&w, &cfg);

    assert_eq!(fixed.ledger, locked.ledger, "locked controller invented decisions");
    assert!(
        locked.ledger.iter().all(|r| r.kind != LedgerKind::ArmSwitch),
        "a locked controller never switches arms"
    );
}

/// On the phase-shifting workload the ledger narrates exactly the switches
/// the counters report, chronologically, with the triggering window's
/// milli-IPC evidence attached.
#[test]
fn ledger_matches_arm_switch_counters_with_evidence() {
    let w = build("phaseshift", Scale::Test).unwrap();
    let r = run(&w, &SimConfig::test(PrefetchSetup::Policy));
    let switches: Vec<_> =
        r.ledger.iter().filter(|rec| rec.kind == LedgerKind::ArmSwitch).collect();
    assert_eq!(switches.len() as u64, r.mem.arm_switches, "one record per switch");
    assert!(!switches.is_empty(), "phaseshift must switch arms");
    let arms = policy_candidates().len() as u64;
    for pair in r.ledger.windows(2) {
        assert!(pair[0].cycle <= pair[1].cycle, "ledger must be chronological");
    }
    for s in &switches {
        assert!(s.old < arms && s.new < arms, "candidate indices in range");
        assert_ne!(s.old, s.new, "a switch changes the arm");
        assert!(s.epoch > 0, "switches happen at epoch boundaries");
        assert!(s.evidence_a > 0, "the closing window's milli-IPC is the evidence");
    }
    for pair in switches.windows(2) {
        assert!(pair[0].epoch < pair[1].epoch, "switch epochs are strictly increasing");
        assert_eq!(pair[0].new, pair[1].old, "switch chain must be contiguous");
    }
}

/// Repair records correspond one-to-one with the optimizer's repair
/// counter (modulo ring eviction) and carry a sane latency trajectory.
#[test]
fn repair_records_match_the_repair_counter() {
    let w = build("mcf", Scale::Test).unwrap();
    let r = run(&w, &SimConfig::test(PrefetchSetup::SwSelfRepair));
    let repairs: Vec<_> = r.ledger.iter().filter(|rec| rec.kind == LedgerKind::Repair).collect();
    assert_eq!(
        repairs.len() as u64,
        r.optimizer.repairs.min(LEDGER_CAPACITY as u64),
        "one retained record per repair up to the ring capacity"
    );
    assert!(!repairs.is_empty(), "mcf self-repair must repair distances");
    for rec in &repairs {
        assert!(rec.group != 0 && rec.pc != 0, "repairs name their group and load");
        assert!(rec.evidence_a > 0, "avg latency x100 evidence");
        assert_eq!(rec.margin_milli, tdo_core::REPAIR_TOLERANCE_MILLI);
    }
    assert!(
        repairs.iter().any(|rec| rec.old != rec.new),
        "at least one repair must move a distance"
    );
}
