//! Determinism and memoization guarantees of the experiment engine: a cell's
//! result is identical run-to-run, across worker counts, and whether it is
//! simulated fresh or recalled from the memo cache.

use std::sync::Arc;

use tdo_sim::{Cell, ExperimentSpec, PrefetchSetup, Runner, SimConfig, SimResult};
use tdo_workloads::Scale;

/// A short but non-trivial cell (exercises the optimizer path).
fn cell(workload: &str, setup: PrefetchSetup) -> Cell {
    let mut cfg = SimConfig::test(setup);
    cfg.warmup_insts = 5_000;
    cfg.measure_insts = 45_000;
    Cell::new(workload, Scale::Test, cfg)
}

/// Full-state comparison via the debug rendering (covers every counter).
fn render(r: &SimResult) -> String {
    format!("{r:?}")
}

#[test]
fn same_cell_twice_is_identical() {
    let c = cell("mcf", PrefetchSetup::SwSelfRepair);
    assert_eq!(render(&c.simulate()), render(&c.simulate()));
}

#[test]
fn serial_and_parallel_runs_are_identical() {
    let mut spec = ExperimentSpec::new();
    for workload in ["mcf", "art", "equake"] {
        for setup in [PrefetchSetup::NoPrefetch, PrefetchSetup::Hw8x8, PrefetchSetup::SwSelfRepair]
        {
            spec.push(cell(workload, setup));
        }
    }
    let serial: Vec<String> = Runner::new(1).run_spec(&spec).iter().map(|r| render(r)).collect();
    let parallel: Vec<String> = Runner::new(4).run_spec(&spec).iter().map(|r| render(r)).collect();
    assert_eq!(serial, parallel);
}

#[test]
fn memoized_result_equals_fresh_result() {
    let c = cell("vis", PrefetchSetup::SwSelfRepair);
    let runner = Runner::new(2);
    let first = runner.run_cell(&c);
    let memoized = runner.run_cell(&c);
    assert!(Arc::ptr_eq(&first, &memoized), "second lookup is a cache hit");
    assert_eq!(render(&first), render(&c.simulate()), "cache returns what a fresh run computes");
}

#[test]
fn spec_results_match_cell_order_across_shared_arms() {
    // fig2/fig5/fig9-style sharing: the same baseline cell appears in
    // several places; every occurrence gets the same result object.
    let base = cell("gap", PrefetchSetup::Hw8x8);
    let other = cell("gap", PrefetchSetup::SwSelfRepair);
    let mut spec = ExperimentSpec::new();
    spec.push(base.clone());
    spec.push(other.clone());
    spec.push(base.clone());
    let runner = Runner::new(3);
    let rs = runner.run_spec(&spec);
    assert_eq!(rs.len(), 3);
    assert!(Arc::ptr_eq(&rs[0], &rs[2]));
    assert_eq!(runner.cells_cached(), 2, "two unique cells simulated");
    assert_ne!(render(&rs[0]), render(&rs[1]));
}
