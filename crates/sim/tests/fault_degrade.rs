//! Regression: a persistent-store write failure mid-run must degrade the
//! runner to memo-only operation — the spec completes, `failed_cells`
//! stays empty, no mutex is poisoned, and every result is byte-identical
//! to a clean run's. Persistence is an accelerator, never a correctness
//! dependency.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tdo_fault::{arm, FaultPlan, Site};
use tdo_sim::{Cell, ExperimentSpec, PrefetchSetup, Runner, SimConfig, SimResult};
use tdo_store::Store;
use tdo_workloads::Scale;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let dir = std::env::temp_dir().join(format!("tdo-degrade-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new();
    for setup in [PrefetchSetup::NoPrefetch, PrefetchSetup::SwSelfRepair] {
        let mut cfg = SimConfig::test(setup);
        cfg.warmup_insts = 2_000;
        cfg.measure_insts = 4_000;
        spec.push(Cell::new("mcf", Scale::Test, cfg));
    }
    spec
}

fn digests(results: &[Arc<SimResult>]) -> Vec<String> {
    results.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn store_write_failures_degrade_the_run_to_memo_only() {
    let spec = spec();
    // Clean storeless baseline (all-off plan: holds the plane gate so a
    // concurrent armed test cannot contaminate this phase).
    let baseline = {
        let _quiet = arm(FaultPlan::new(0));
        digests(&Runner::new(1).run_spec(&spec))
    };

    let dir = TempDir::new();
    let store = Arc::new(Store::open(dir.path()).expect("open scratch store"));
    let runner = Runner::with_store(1, Arc::clone(&store));
    {
        let guard = arm(FaultPlan::new(4)
            .with_prob(Site::StoreShortWrite, 1000)
            .with_prob(Site::StoreFsyncFail, 1000));
        let results = digests(&runner.run_spec(&spec));
        assert_eq!(results, baseline, "write failures must not change a single result byte");
        assert!(
            runner.failed_cells().is_empty(),
            "a persistence failure is not a cell failure: {:?}",
            runner.failed_cells()
        );
        let fires: u64 = guard.summary().iter().map(|r| r.fires).sum();
        assert!(fires > 0, "every put must have been failed by the plane");
    }

    // Disarmed: the runner's memo still serves (no re-simulation drift), no
    // mutex was poisoned, and nothing leaked into the store.
    let _quiet = arm(FaultPlan::new(0));
    assert_eq!(digests(&runner.run_spec(&spec)), baseline);
    assert!(runner.failed_cells().is_empty());
    assert_eq!(store.stats().live_records, 0, "every persist was failed, so the store is empty");

    // A fresh runner over the same (healthy again) store re-simulates,
    // persists, and reproduces the baseline.
    let fresh = Runner::with_store(1, Arc::clone(&store));
    assert_eq!(digests(&fresh.run_spec(&spec)), baseline);
    assert_eq!(store.stats().live_records, 2, "write-through works again once disarmed");
}
