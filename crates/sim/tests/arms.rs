//! The prefetcher-arsenal suites: differential equivalence of the
//! locked policy controller against static arms, policy-run determinism,
//! and the controller's headline win on the phase-shifting workload.

use tdo_mem::ArmKind;
use tdo_sim::{
    encode_result, policy_candidates, run, run_traced, PolicyConfig, PrefetchSetup, SimConfig,
    SimResult,
};
use tdo_workloads::{build, Scale};

fn short(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup_insts = 10_000;
    cfg.measure_insts = 120_000;
    cfg
}

fn digest(r: &SimResult) -> Vec<u64> {
    encode_result(r)
}

/// A policy controller locked to one arm must be *bit-identical* to the
/// static run of that arm — same cycles, same counters, same serialized
/// record — for every arm in the candidate set. This is the proof that the
/// controller plumbing (the `set_arm` install path, the epoch hooks)
/// perturbs nothing by itself.
#[test]
fn locked_policy_is_cycle_identical_to_static_arms() {
    let static_setup = [
        PrefetchSetup::Hw8x8,
        PrefetchSetup::HwNextLine,
        PrefetchSetup::HwAdaptiveNextLine,
        PrefetchSetup::HwDelta,
    ];
    let w = build("mcf", Scale::Test).unwrap();
    for (arm, setup) in policy_candidates().into_iter().zip(static_setup) {
        let fixed = run(&w, &short(SimConfig::test(setup)));

        let mut cfg = short(SimConfig::test(PrefetchSetup::Policy));
        cfg.policy = Some(PolicyConfig { locked: Some(arm), ..PolicyConfig::test() });
        let locked = run(&w, &cfg);

        assert_eq!(
            digest(&fixed),
            digest(&locked),
            "locked {arm:?} diverged from static {setup:?}"
        );
        assert_eq!(locked.mem.arm_switches, 0, "a locked controller never switches");
    }
}

/// The live controller is deterministic, switches arms on the
/// phase-shifting workload, and reports every switch both in the stats and
/// as `arm_switch` probe events.
#[test]
fn policy_run_is_deterministic_and_switches_on_phaseshift() {
    let w = build("phaseshift", Scale::Test).unwrap();
    let cfg = SimConfig::test(PrefetchSetup::Policy);
    let (r1, rec1) = run_traced(&w, &cfg);
    let (r2, rec2) = run_traced(&w, &cfg);
    assert_eq!(digest(&r1), digest(&r2), "policy run must be deterministic");
    assert_eq!(rec1.to_jsonl(), rec2.to_jsonl());

    assert!(r1.mem.arm_switches > 0, "phase shifts must provoke arm switches");
    let switch_lines =
        rec1.to_jsonl().lines().filter(|l| l.contains("\"event\":\"arm_switch\"")).count() as u64;
    assert_eq!(switch_lines, r1.mem.arm_switches, "every switch emits one probe event");
}

/// Probing must not perturb the policy: the switch decisions are gated on
/// committed instructions, so traced and untraced runs take the same path.
#[test]
fn tracing_does_not_perturb_policy_decisions() {
    let w = build("phaseshift", Scale::Test).unwrap();
    let cfg = SimConfig::test(PrefetchSetup::Policy);
    let plain = run(&w, &cfg);
    let (traced, rec) = run_traced(&w, &cfg);
    assert_eq!(digest(&plain), digest(&traced), "probe attached changed the simulation");
    let switches =
        rec.to_jsonl().lines().filter(|l| l.contains("\"event\":\"arm_switch\"")).count() as u64;
    assert_eq!(switches, plain.mem.arm_switches, "every switch must be observable");
}

/// The headline claim: on the phase-shifting workload the policy
/// controller beats every static arm, because no single arm covers both
/// phases.
#[test]
fn policy_beats_every_static_arm_on_phaseshift() {
    let w = build("phaseshift", Scale::Test).unwrap();
    let policy = run(&w, &SimConfig::test(PrefetchSetup::Policy));
    for setup in [
        PrefetchSetup::NoPrefetch,
        PrefetchSetup::Hw8x8,
        PrefetchSetup::HwNextLine,
        PrefetchSetup::HwAdaptiveNextLine,
        PrefetchSetup::HwDelta,
    ] {
        let fixed = run(&w, &SimConfig::test(setup));
        assert!(
            policy.cycles < fixed.cycles,
            "policy ({} cycles) must beat static {setup:?} ({} cycles)",
            policy.cycles,
            fixed.cycles
        );
    }
}

/// Per-arm counters: a static stream run folds its live counters into the
/// stream slot of the per-kind aggregates, and only that slot.
#[test]
fn static_runs_fold_their_arm_counters() {
    let w = build("swim", Scale::Test).unwrap();
    let r = run(&w, &short(SimConfig::test(PrefetchSetup::Hw8x8)));
    let k = ArmKind::Stream.index();
    assert!(r.mem.arm_issued[k] > 0, "stream arm issued prefetches");
    assert!(r.mem.arm_useful[k] > 0, "stream arm had useful prefetches");
    for other in ArmKind::ALL {
        if other != ArmKind::Stream {
            assert_eq!(r.mem.arm_issued[other.index()], 0, "{other:?} never ran");
        }
    }
    assert_eq!(r.mem.arm_switches, 0);
}
