//! The code cache: a bump allocator over the memory region where optimized
//! traces are installed (paper §3.2 "Linking Trace").

use tdo_isa::INST_BYTES;

/// Allocator for trace storage in the code-cache region.
#[derive(Clone, Debug)]
pub struct CodeCache {
    base: u64,
    next: u64,
    end: u64,
    /// Traces installed (stat).
    pub installed: u64,
    /// Instruction slots wasted by unlinked (dead) traces (stat).
    pub dead_slots: u64,
}

impl CodeCache {
    /// Creates a cache spanning `capacity_bytes` starting at `base`.
    #[must_use]
    pub fn new(base: u64, capacity_bytes: u64) -> CodeCache {
        CodeCache { base, next: base, end: base + capacity_bytes, installed: 0, dead_slots: 0 }
    }

    /// Base address of the region.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Reserves space for `n_insts` instructions; returns the start address,
    /// or `None` when the cache is full.
    pub fn alloc(&mut self, n_insts: usize) -> Option<u64> {
        let bytes = n_insts as u64 * INST_BYTES;
        if self.next + bytes > self.end {
            return None;
        }
        let addr = self.next;
        self.next += bytes;
        self.installed += 1;
        Some(addr)
    }

    /// Records that a previously installed trace of `n_insts` instructions
    /// was unlinked (its slots become garbage; a real system would reclaim).
    pub fn retire(&mut self, n_insts: usize) {
        self.dead_slots += n_insts as u64;
    }

    /// Bytes still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_contiguous_and_bounded() {
        let mut c = CodeCache::new(0x10_0000, 64);
        assert_eq!(c.alloc(4), Some(0x10_0000));
        assert_eq!(c.alloc(4), Some(0x10_0020));
        assert_eq!(c.alloc(1), None, "only 64 bytes");
        assert_eq!(c.installed, 2);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn retire_tracks_dead_slots() {
        let mut c = CodeCache::new(0, 1024);
        c.alloc(10);
        c.retire(10);
        assert_eq!(c.dead_slots, 10);
    }
}
