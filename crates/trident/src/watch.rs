//! The hardware watch table (paper §3.2, Table 2): one entry per installed
//! hot trace, tracking the trace's *minimal execution time* (used to bound
//! the prefetch distance), an optimization-in-progress flag (suppressing
//! re-entrant optimization events), and execution/early-exit counts used to
//! back out of under-performing traces.

use crate::events::TraceId;

/// Configuration of the watch table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchConfig {
    /// Maximum number of simultaneously watched traces (Table 2: 256).
    pub entries: usize,
    /// Executions after which a trace becomes eligible for back-out review.
    pub backout_min_executions: u64,
    /// Early-exit fraction above which a trace is backed out.
    pub backout_exit_rate: f64,
}

impl WatchConfig {
    /// The paper's Table 2 configuration with a conservative back-out rule.
    #[must_use]
    pub fn paper_baseline() -> WatchConfig {
        WatchConfig { entries: 256, backout_min_executions: 64, backout_exit_rate: 0.95 }
    }
}

/// One watched trace.
#[derive(Clone, Copy, Debug)]
pub struct WatchEntry {
    /// Trace identity.
    pub trace: TraceId,
    /// Code-cache start address.
    pub cc_start: u64,
    /// Code-cache end address (exclusive).
    pub cc_end: u64,
    /// Trace length in instructions.
    pub len: u32,
    /// Minimal observed execution time in cycles (one entry-to-exit pass).
    pub min_exec_time: u64,
    /// Set while the helper thread is re-optimizing this trace, to suppress
    /// further optimization events for it (paper §3.2).
    pub being_optimized: bool,
    /// Completed passes (entry to loop-back or natural end).
    pub executions: u64,
    /// Passes that left via a side exit.
    pub early_exits: u64,
    /// Cycle at which the current pass entered the trace, if inside.
    entered_at: Option<u64>,
}

/// The watch table.
pub struct WatchTable {
    cfg: WatchConfig,
    entries: Vec<WatchEntry>,
    /// Traces backed out because of excessive early exits (stat).
    pub backouts: u64,
}

impl WatchTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(cfg: WatchConfig) -> WatchTable {
        WatchTable { cfg, entries: Vec::new(), backouts: 0 }
    }

    /// Begins watching an installed trace. Returns `false` when the table is
    /// full (the trace runs unwatched — and therefore unoptimized).
    pub fn insert(&mut self, trace: TraceId, cc_start: u64, len: u32) -> bool {
        if self.entries.len() >= self.cfg.entries {
            return false;
        }
        self.entries.push(WatchEntry {
            trace,
            cc_start,
            cc_end: cc_start + u64::from(len) * 8,
            len,
            min_exec_time: u64::MAX,
            being_optimized: false,
            executions: 0,
            early_exits: 0,
            entered_at: None,
        });
        true
    }

    /// Stops watching `trace` (unlink / replacement by a re-optimized trace).
    pub fn remove(&mut self, trace: TraceId) {
        self.entries.retain(|e| e.trace != trace);
    }

    /// The entry watching `trace`.
    #[must_use]
    pub fn get(&self, trace: TraceId) -> Option<&WatchEntry> {
        self.entries.iter().find(|e| e.trace == trace)
    }

    /// Mutable access to the entry watching `trace`.
    pub fn get_mut(&mut self, trace: TraceId) -> Option<&mut WatchEntry> {
        self.entries.iter_mut().find(|e| e.trace == trace)
    }

    /// The trace containing code-cache address `pc`, if watched.
    #[must_use]
    pub fn trace_at(&self, pc: u64) -> Option<TraceId> {
        self.entries.iter().find(|e| (e.cc_start..e.cc_end).contains(&pc)).map(|e| e.trace)
    }

    /// Number of watched traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no traces are watched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all watched entries.
    pub fn iter(&self) -> impl Iterator<Item = &WatchEntry> {
        self.entries.iter()
    }

    /// Records that execution entered `trace` at `cycle` (its cc start was
    /// fetched). Re-entry while inside (the loop-back path) closes the
    /// previous pass first.
    pub fn on_enter(&mut self, trace: TraceId, cycle: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.trace == trace) {
            if let Some(t0) = e.entered_at.take() {
                // Loop-back: one full pass completed.
                e.executions += 1;
                let dt = cycle.saturating_sub(t0).max(1);
                e.min_exec_time = e.min_exec_time.min(dt);
            }
            e.entered_at = Some(cycle);
        }
    }

    /// Records that execution left `trace` at `cycle`; `early` marks a side
    /// exit before the natural end. Returns `true` when the trace should be
    /// backed out.
    pub fn on_exit(&mut self, trace: TraceId, cycle: u64, early: bool) -> bool {
        let cfg = self.cfg;
        let Some(e) = self.entries.iter_mut().find(|e| e.trace == trace) else {
            return false;
        };
        if let Some(t0) = e.entered_at.take() {
            e.executions += 1;
            if early {
                e.early_exits += 1;
            } else {
                let dt = cycle.saturating_sub(t0).max(1);
                e.min_exec_time = e.min_exec_time.min(dt);
            }
        }
        let should_backout = e.executions >= cfg.backout_min_executions
            && (e.early_exits as f64) / (e.executions as f64) > cfg.backout_exit_rate;
        if should_backout {
            self.backouts += 1;
        }
        should_backout
    }

    /// The minimal execution time for `trace`, if one has been observed.
    #[must_use]
    pub fn min_exec_time(&self, trace: TraceId) -> Option<u64> {
        self.get(trace).and_then(|e| (e.min_exec_time != u64::MAX).then_some(e.min_exec_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> WatchTable {
        WatchTable::new(WatchConfig {
            entries: 4,
            backout_min_executions: 10,
            backout_exit_rate: 0.5,
        })
    }

    #[test]
    fn min_exec_time_tracks_fastest_loop_pass() {
        let mut w = table();
        w.insert(TraceId(1), 0x10_0000, 8);
        w.on_enter(TraceId(1), 100);
        w.on_enter(TraceId(1), 160); // loop-back after 60 cycles
        w.on_enter(TraceId(1), 180); // 20 cycles — new minimum
        w.on_enter(TraceId(1), 400); // 220 cycles — ignored
        assert_eq!(w.min_exec_time(TraceId(1)), Some(20));
        assert_eq!(w.get(TraceId(1)).unwrap().executions, 3);
    }

    #[test]
    fn early_exits_trigger_backout() {
        let mut w = table();
        w.insert(TraceId(2), 0x10_0000, 8);
        let mut backout = false;
        for i in 0..12 {
            w.on_enter(TraceId(2), i * 100);
            backout = w.on_exit(TraceId(2), i * 100 + 10, true);
        }
        assert!(backout, "all-early-exit trace must be backed out");
        assert_eq!(w.backouts, 3, "flagged on each qualifying exit (executions 10..=12)");
    }

    #[test]
    fn healthy_traces_are_not_backed_out() {
        let mut w = table();
        w.insert(TraceId(3), 0x10_0000, 8);
        for i in 0..100 {
            w.on_enter(TraceId(3), i * 100);
            assert!(!w.on_exit(TraceId(3), i * 100 + 10, i % 10 == 0));
        }
    }

    #[test]
    fn trace_at_maps_pc_ranges() {
        let mut w = table();
        w.insert(TraceId(4), 0x10_0000, 4);
        w.insert(TraceId(5), 0x10_0020, 4);
        assert_eq!(w.trace_at(0x10_0000), Some(TraceId(4)));
        assert_eq!(w.trace_at(0x10_0018), Some(TraceId(4)));
        assert_eq!(w.trace_at(0x10_0020), Some(TraceId(5)));
        assert_eq!(w.trace_at(0x10_0040), None);
        w.remove(TraceId(4));
        assert_eq!(w.trace_at(0x10_0000), None);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut w = table();
        for i in 0..4 {
            assert!(w.insert(TraceId(i), u64::from(i) * 0x100, 4));
        }
        assert!(!w.insert(TraceId(99), 0x9900, 4));
    }

    #[test]
    fn optimization_flag_round_trips() {
        let mut w = table();
        w.insert(TraceId(6), 0x10_0000, 4);
        assert!(!w.get(TraceId(6)).unwrap().being_optimized);
        w.get_mut(TraceId(6)).unwrap().being_optimized = true;
        assert!(w.get(TraceId(6)).unwrap().being_optimized);
    }
}
