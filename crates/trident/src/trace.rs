//! Hot-trace representation, formation, and installation.
//!
//! A hot trace streamlines the basic blocks along a hot path into a single
//! straight-line sequence (paper §3.2 "Trace Formation"). On-path
//! conditional branches become *exit branches* that leave the trace back to
//! original code when the off-path direction is taken; the final instruction
//! either loops back to the trace start or jumps back into original code.

use tdo_isa::{encode, AsmError, Cond, Inst, Reg, Word, INST_BYTES};

use crate::events::TraceId;

/// Source of decodable instructions (implemented for the simulator's code
/// image via a newtype in the driver crate).
pub trait CodeSource {
    /// The instruction at `pc`, if mapped.
    fn fetch_inst(&self, pc: u64) -> Option<Inst>;
}

impl<F: Fn(u64) -> Option<Inst>> CodeSource for F {
    fn fetch_inst(&self, pc: u64) -> Option<Inst> {
        self(pc)
    }
}

/// One operation in a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceOp {
    /// An ordinary (non-control) instruction.
    Real(Inst),
    /// A conditional exit: leave the trace to original-code address `to`
    /// when `cond(ra)` holds.
    CondExit {
        /// Exit condition.
        cond: Cond,
        /// Register tested.
        ra: Reg,
        /// Original-code address to resume at.
        to: u64,
    },
    /// Unconditional return to original code at `to` (trace end).
    JumpBack {
        /// Original-code address to resume at.
        to: u64,
    },
    /// Unconditional branch back to the first instruction of this trace
    /// (loop trace end).
    LoopBack,
}

/// One trace instruction plus its bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceInst {
    /// The operation.
    pub op: TraceOp,
    /// Original-code PC this operation derives from (the insertion point for
    /// synthetic instructions).
    pub orig_pc: u64,
    /// How many original-program instructions this slot accounts for when
    /// computing original-equivalent IPC (folded unconditional branches add
    /// to their successor's weight; synthetic prefetch code weighs 0).
    pub weight: u32,
    /// True for optimizer-inserted instructions (prefetches and their
    /// address-generation loads).
    pub synthetic: bool,
}

/// A formed (and possibly optimized) hot trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Identity.
    pub id: TraceId,
    /// Original-code address of the trace head.
    pub head: u64,
    /// Body.
    pub insts: Vec<TraceInst>,
    /// Whether the trace ends by looping back to its own start.
    pub is_loop: bool,
    /// Code-cache address where the trace is installed (0 until installed).
    pub cc_addr: u64,
}

/// Why trace formation stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormationEnd {
    /// The path returned to the head: a loop trace.
    Loop,
    /// Branch-direction bits were exhausted; trace jumps back to original
    /// code.
    BitsExhausted,
    /// An indirect jump or halt ended the trace.
    Opaque,
    /// The maximum trace length was reached.
    LengthLimit,
}

/// Errors during trace formation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormError {
    /// The head address has no decodable instruction.
    UnmappedHead {
        /// The offending address.
        head: u64,
    },
}

impl std::fmt::Display for FormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormError::UnmappedHead { head } => write!(f, "no code at trace head {head:#x}"),
        }
    }
}

impl std::error::Error for FormError {}

/// Maximum trace body length in instructions. Generous enough for the
/// paper's observation that `applu` has inner loops of over 1000
/// instructions.
pub const MAX_TRACE_LEN: usize = 2048;

/// Forms a trace starting at `head`, steering each conditional branch by the
/// next bit of `bitmap` (bit set = taken), for at most `nbits` conditional
/// branches.
///
/// # Errors
///
/// Returns [`FormError::UnmappedHead`] when `head` is not mapped code.
pub fn form_trace(
    code: &impl CodeSource,
    id: TraceId,
    head: u64,
    bitmap: u16,
    nbits: u8,
) -> Result<(Trace, FormationEnd), FormError> {
    if code.fetch_inst(head).is_none() {
        return Err(FormError::UnmappedHead { head });
    }
    let mut insts: Vec<TraceInst> = Vec::new();
    let mut pc = head;
    let mut bit = 0u8;
    let mut pending_weight = 0u32;
    let mut end = FormationEnd::LengthLimit;
    let mut is_loop = false;

    while insts.len() < MAX_TRACE_LEN {
        if pc == head && !insts.is_empty() {
            end = FormationEnd::Loop;
            is_loop = true;
            break;
        }
        let Some(inst) = code.fetch_inst(pc) else {
            end = FormationEnd::Opaque;
            break;
        };
        match inst {
            Inst::Br { .. } => {
                // Folded: execution continues at the target; the branch's
                // weight rides on the next emitted instruction.
                pending_weight += 1;
                pc = inst.branch_target(pc).expect("br target");
                continue;
            }
            Inst::Bcond { cond, ra, .. } => {
                let target = inst.branch_target(pc).expect("bcond target");
                if bit >= nbits {
                    end = FormationEnd::BitsExhausted;
                    break;
                }
                let taken = (bitmap >> bit) & 1 == 1;
                bit += 1;
                let (exit_cond, exit_to, next_pc) = if taken {
                    (invert(cond), pc + INST_BYTES, target)
                } else {
                    (cond, target, pc + INST_BYTES)
                };
                insts.push(TraceInst {
                    op: TraceOp::CondExit { cond: exit_cond, ra, to: exit_to },
                    orig_pc: pc,
                    weight: 1 + pending_weight,
                    synthetic: false,
                });
                pending_weight = 0;
                pc = next_pc;
            }
            Inst::Jmp { .. } | Inst::Halt => {
                insts.push(TraceInst {
                    op: TraceOp::Real(inst),
                    orig_pc: pc,
                    weight: 1 + pending_weight,
                    synthetic: false,
                });
                pending_weight = 0;
                end = FormationEnd::Opaque;
                break;
            }
            other => {
                insts.push(TraceInst {
                    op: TraceOp::Real(other),
                    orig_pc: pc,
                    weight: 1 + pending_weight,
                    synthetic: false,
                });
                pending_weight = 0;
                pc += INST_BYTES;
            }
        }
    }

    // Terminator.
    match end {
        FormationEnd::Loop => insts.push(TraceInst {
            op: TraceOp::LoopBack,
            orig_pc: pc,
            weight: pending_weight,
            synthetic: false,
        }),
        FormationEnd::BitsExhausted | FormationEnd::LengthLimit => insts.push(TraceInst {
            op: TraceOp::JumpBack { to: pc },
            orig_pc: pc,
            weight: pending_weight,
            synthetic: false,
        }),
        FormationEnd::Opaque => {} // jmp/halt already emitted
    }

    Ok((Trace { id, head, insts, is_loop, cc_addr: 0 }, end))
}

fn invert(c: Cond) -> Cond {
    match c {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Ge => Cond::Lt,
        Cond::Le => Cond::Gt,
        Cond::Gt => Cond::Le,
    }
}

impl Trace {
    /// Number of instructions in the installed trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace has no instructions (never true for formed traces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Code-cache address of the instruction at `index`.
    #[must_use]
    pub fn cc_pc(&self, index: usize) -> u64 {
        self.cc_addr + index as u64 * INST_BYTES
    }

    /// One past the last installed instruction.
    #[must_use]
    pub fn cc_end(&self) -> u64 {
        self.cc_pc(self.insts.len())
    }

    /// Whether `pc` lies inside the installed trace.
    #[must_use]
    pub fn contains_cc(&self, pc: u64) -> bool {
        self.cc_addr != 0 && (self.cc_addr..self.cc_end()).contains(&pc)
    }

    /// Index of the installed instruction at code-cache address `pc`.
    #[must_use]
    pub fn index_of_cc(&self, pc: u64) -> Option<usize> {
        self.contains_cc(pc).then(|| ((pc - self.cc_addr) / INST_BYTES) as usize)
    }

    /// Encodes the trace for installation at `cc_addr`, resolving exits to
    /// absolute original-code targets and the loop-back to the trace start.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::Encode`] when a resolved displacement overflows.
    pub fn encode_at(&self, cc_addr: u64) -> Result<Vec<Word>, AsmError> {
        let mut words = Vec::with_capacity(self.insts.len());
        for (i, ti) in self.insts.iter().enumerate() {
            let pc = cc_addr + i as u64 * INST_BYTES;
            let inst = match ti.op {
                TraceOp::Real(inst) => inst,
                TraceOp::CondExit { cond, ra, to } => Inst::Bcond {
                    cond,
                    ra,
                    disp: Inst::disp_between(pc, to).expect("aligned code addresses"),
                },
                TraceOp::JumpBack { to } => {
                    Inst::Br { disp: Inst::disp_between(pc, to).expect("aligned code addresses") }
                }
                TraceOp::LoopBack => Inst::Br {
                    disp: Inst::disp_between(pc, cc_addr).expect("aligned code addresses"),
                },
            };
            words.push(encode(&inst)?);
        }
        Ok(words)
    }

    /// Sum of the weights — the original-instruction count one full pass of
    /// the trace represents.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.insts.iter().map(|i| u64::from(i.weight)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tdo_isa::{AluOp, Asm};

    fn code_from(asm: &Asm) -> impl CodeSource {
        let words = asm.assemble().unwrap();
        let base = asm.base();
        let map: HashMap<u64, Inst> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (base + i as u64 * 8, tdo_isa::decode(*w).unwrap()))
            .collect();
        move |pc: u64| map.get(&pc).copied()
    }

    /// A simple counted loop:
    ///   head: add r2,r1,r2 ; sub r1,1,r1 ; bne r1, head ; halt
    fn simple_loop() -> Asm {
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x1000);
        a.label("head");
        a.op(AluOp::Add, r2, r1, r2);
        a.op_imm(AluOp::Sub, r1, 1, r1);
        a.bcond_to(Cond::Ne, r1, "head");
        a.halt();
        a
    }

    #[test]
    fn loop_trace_forms_with_inverted_exit() {
        let a = simple_loop();
        let code = code_from(&a);
        // The loop-closing bne is taken: bitmap bit 0 = 1.
        let (t, end) = form_trace(&code, TraceId(0), 0x1000, 0b1, 1).unwrap();
        assert_eq!(end, FormationEnd::Loop);
        assert!(t.is_loop);
        assert_eq!(t.insts.len(), 4, "add, sub, exit, loopback");
        match t.insts[2].op {
            TraceOp::CondExit { cond, to, .. } => {
                assert_eq!(cond, Cond::Eq, "inverted from Ne");
                assert_eq!(to, 0x1018, "exit to the halt (fall-through)");
            }
            other => panic!("expected exit, got {other:?}"),
        }
        assert_eq!(t.insts[3].op, TraceOp::LoopBack);
        assert_eq!(t.total_weight(), 3, "three original instructions per iteration");
    }

    #[test]
    fn not_taken_branch_keeps_original_exit() {
        // head: cmp; beq skips a block (not taken on hot path).
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x2000);
        a.label("head");
        a.op_imm(AluOp::And, r1, 1, r2);
        a.bcond_to(Cond::Ne, r2, "odd"); // hot path: not taken
        a.op_imm(AluOp::Add, r1, 1, r1);
        a.label("odd");
        a.op_imm(AluOp::Sub, r1, 1, r1);
        a.bcond_to(Cond::Ne, r1, "head");
        a.halt();
        let code = code_from(&a);
        let (t, end) = form_trace(&code, TraceId(1), 0x2000, 0b10, 2).unwrap();
        assert_eq!(end, FormationEnd::Loop);
        match t.insts[1].op {
            TraceOp::CondExit { cond, to, .. } => {
                assert_eq!(cond, Cond::Ne, "original condition kept");
                assert_eq!(to, a.label_addr("odd").unwrap());
            }
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn unconditional_branches_fold_with_weight() {
        // head: add; br over; (dead: sub); over: sub r1; bne head
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x3000);
        a.label("head");
        a.op(AluOp::Add, r2, r1, r2);
        a.br_to("over");
        a.op_imm(AluOp::Sub, r2, 99, r2); // off path
        a.label("over");
        a.op_imm(AluOp::Sub, r1, 1, r1);
        a.bcond_to(Cond::Ne, r1, "head");
        let code = code_from(&a);
        let (t, _) = form_trace(&code, TraceId(2), 0x3000, 0b1, 1).unwrap();
        // add, sub(weight 2: br folded), exit, loopback
        assert_eq!(t.insts.len(), 4);
        assert_eq!(t.insts[1].weight, 2, "folded br weight rides on successor");
        assert_eq!(t.total_weight(), 4);
    }

    #[test]
    fn bits_exhaustion_jumps_back_to_original_code() {
        let a = simple_loop();
        let code = code_from(&a);
        let (t, end) = form_trace(&code, TraceId(3), 0x1000, 0, 0).unwrap();
        assert_eq!(end, FormationEnd::BitsExhausted);
        assert!(!t.is_loop);
        match t.insts.last().unwrap().op {
            TraceOp::JumpBack { to } => assert_eq!(to, 0x1010, "resume at the bne"),
            other => panic!("expected jumpback, got {other:?}"),
        }
    }

    #[test]
    fn encode_at_resolves_exits_to_original_code() {
        let a = simple_loop();
        let code = code_from(&a);
        let (mut t, _) = form_trace(&code, TraceId(4), 0x1000, 0b1, 1).unwrap();
        let cc = 0x10_0000;
        t.cc_addr = cc;
        let words = t.encode_at(cc).unwrap();
        assert_eq!(words.len(), 4);
        // Instruction 2 is the exit; its target must be the original halt.
        let exit = tdo_isa::decode(words[2]).unwrap();
        assert_eq!(exit.branch_target(cc + 16), Some(0x1018));
        // Final loopback returns to cc base.
        let lb = tdo_isa::decode(words[3]).unwrap();
        assert_eq!(lb.branch_target(cc + 24), Some(cc));
    }

    #[test]
    fn unmapped_head_is_an_error() {
        let code = |_pc: u64| None::<Inst>;
        assert!(matches!(
            form_trace(&code, TraceId(5), 0x9999, 0, 0),
            Err(FormError::UnmappedHead { .. })
        ));
    }

    #[test]
    fn cc_index_round_trips() {
        let a = simple_loop();
        let code = code_from(&a);
        let (mut t, _) = form_trace(&code, TraceId(6), 0x1000, 0b1, 1).unwrap();
        t.cc_addr = 0x20_0000;
        assert_eq!(t.index_of_cc(0x20_0000), Some(0));
        assert_eq!(t.index_of_cc(0x20_0018), Some(3));
        assert_eq!(t.index_of_cc(0x20_0020), None);
        assert!(t.contains_cc(t.cc_pc(2)));
    }
}
