//! Classical optimizations applied to freshly formed hot traces
//! (paper §3.2: "redundant branch/load removal, constant propagation,
//! instruction re-association, and strength reduction", plus the store/load
//! → `MOVE` conversion for legacy int↔float moves).
//!
//! Every pass is *slot-preserving*: an optimized instruction replaces the
//! original in place and keeps its weight, so the original-equivalent
//! instruction accounting is untouched and trace layout never changes.

use tdo_isa::{AluOp, Inst, LoadKind, Reg, NUM_REGS};

use crate::trace::{TraceInst, TraceOp};

/// Applies all baseline optimizations in a sensible order.
pub fn optimize(insts: &mut [TraceInst]) {
    copy_propagation(insts);
    constant_propagation(insts);
    strength_reduction(insts);
    reassociation(insts);
    store_load_forwarding(insts);
    redundant_load_elimination(insts);
    dead_code_elimination(insts);
}

fn written_reg(op: &TraceOp) -> Option<Reg> {
    match op {
        TraceOp::Real(inst) => inst.def(),
        _ => None,
    }
}

/// Rewrites the source registers of `inst` through `f` (destinations are
/// never changed).
fn map_uses(inst: Inst, f: impl Fn(Reg) -> Reg) -> Inst {
    match inst {
        Inst::Op { op, ra, rb, rc } => Inst::Op { op, ra: f(ra), rb: f(rb), rc },
        Inst::OpImm { op, ra, imm, rc } => Inst::OpImm { op, ra: f(ra), imm, rc },
        Inst::Lda { ra, rb, imm } => Inst::Lda { ra, rb: f(rb), imm },
        Inst::Move { ra, rc } => Inst::Move { ra: f(ra), rc },
        Inst::Load { ra, rb, off, kind } => Inst::Load { ra, rb: f(rb), off, kind },
        Inst::Store { ra, rb, off } => Inst::Store { ra: f(ra), rb: f(rb), off },
        Inst::Prefetch { base, off, stride, dist } => {
            Inst::Prefetch { base: f(base), off, stride, dist }
        }
        Inst::FOp { op, ra, rb, rc } => Inst::FOp { op, ra: f(ra), rb: f(rb), rc },
        other => other,
    }
}

/// Instruction re-association: a chain of constant additions
/// (`r2 = r1 + 4; r3 = r2 + 8`) is re-rooted so each instruction reads the
/// chain's origin (`r3 = r1 + 12`), shortening dependence chains — the
/// "instruction re-association" the paper lists among Trident's base
/// optimizations (§3.2). Loads and stores are left untouched so the
/// prefetcher's base-register grouping is unaffected.
pub fn reassociation(insts: &mut [TraceInst]) {
    // Immediates must stay encodable (38-bit signed).
    const FITS: std::ops::Range<i64> = -(1 << 37)..(1 << 37);
    // facts[r] = Some((root, off)): regs[r] == regs[root] + off, valid while
    // neither r nor root has been redefined.
    let mut facts: [Option<(Reg, i64)>; NUM_REGS] = [None; NUM_REGS];
    for ti in insts.iter_mut() {
        // Rewrite pure address arithmetic through known facts.
        if let TraceOp::Real(inst) = ti.op {
            let rewritten = match inst {
                Inst::Lda { ra, rb, imm } if ra != rb => facts[rb.index()]
                    .and_then(|(root, off)| imm.checked_add(off).map(|t| (ra, root, t))),
                Inst::OpImm { op: AluOp::Add, ra, imm, rc } if rc != ra => facts[ra.index()]
                    .and_then(|(root, off)| imm.checked_add(off).map(|t| (rc, root, t))),
                Inst::OpImm { op: AluOp::Sub, ra, imm, rc } if rc != ra => facts[ra.index()]
                    .and_then(|(root, off)| off.checked_sub(imm).map(|t| (rc, root, t))),
                _ => None,
            };
            if let Some((dest, root, total)) = rewritten {
                if FITS.contains(&total) && root != dest {
                    ti.op = TraceOp::Real(Inst::Lda { ra: dest, rb: root, imm: total });
                }
            }
        }
        // Derive a new fact from the (possibly rewritten) instruction.
        let new_fact = match ti.op {
            TraceOp::Real(Inst::Lda { ra, rb, imm }) if ra != rb && !ra.is_zero() => {
                Some((ra, rb, imm))
            }
            TraceOp::Real(Inst::OpImm { op: AluOp::Add, ra, imm, rc })
                if rc != ra && !rc.is_zero() =>
            {
                Some((rc, ra, imm))
            }
            TraceOp::Real(Inst::OpImm { op: AluOp::Sub, ra, imm, rc })
                if rc != ra && !rc.is_zero() =>
            {
                Some((rc, ra, -imm))
            }
            TraceOp::Real(Inst::Move { ra, rc }) if rc != ra && !rc.is_zero() => Some((rc, ra, 0)),
            _ => None,
        };
        // A write invalidates facts about the destination and facts rooted
        // at it.
        if let Some(d) = written_reg(&ti.op) {
            facts[d.index()] = None;
            for f in facts.iter_mut() {
                if f.is_some_and(|(root, _)| root == d) {
                    *f = None;
                }
            }
        }
        if let Some((dest, root, off)) = new_fact {
            // Transitively root the fact if the source has one.
            facts[dest.index()] = match facts[root.index()] {
                Some((rr, roff)) => off.checked_add(roff).map(|t| (rr, t)),
                None => Some((root, off)),
            }
            .or(Some((root, off)));
        }
    }
}

/// Dead-code elimination, slot-preserving: a pure instruction whose result
/// is overwritten before any use — with no intervening trace exit (original
/// code may read any register) and no loop-back (the next iteration may
/// read it) — becomes a `nop`. Loads count as pure here: every load in this
/// ISA is non-faulting in effect, and the paper's trace optimizer removes
/// redundant loads outright.
pub fn dead_code_elimination(insts: &mut [TraceInst]) {
    let n = insts.len();
    for i in 0..n {
        let TraceOp::Real(inst) = insts[i].op else { continue };
        if matches!(inst, Inst::Store { .. } | Inst::Prefetch { .. } | Inst::Nop) {
            continue;
        }
        let Some(d) = inst.def() else { continue };
        // Scan forward to the next event concerning d.
        let mut dead = false;
        for next in insts.iter().take(n).skip(i + 1) {
            match next.op {
                TraceOp::CondExit { .. } | TraceOp::JumpBack { .. } | TraceOp::LoopBack => break,
                TraceOp::Real(ninst) => {
                    if matches!(
                        ninst,
                        Inst::Br { .. } | Inst::Bcond { .. } | Inst::Jmp { .. } | Inst::Halt
                    ) {
                        break;
                    }
                    if ninst.uses().into_iter().flatten().any(|u| u == d) {
                        break;
                    }
                    if ninst.def() == Some(d) {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            insts[i].op = TraceOp::Real(Inst::Nop);
        }
    }
}

/// Copy propagation: after `mov rc, ra`, uses of `rc` read `ra` directly
/// until either register is redefined.
pub fn copy_propagation(insts: &mut [TraceInst]) {
    let mut alias: [Option<Reg>; NUM_REGS] = [None; NUM_REGS];
    for ti in insts.iter_mut() {
        // Rewrite uses through the alias map first.
        if let TraceOp::Real(inst) = ti.op {
            let rewritten = map_uses(inst, |r| alias[r.index()].unwrap_or(r));
            ti.op = TraceOp::Real(rewritten);
        }
        // Then update the alias map with this instruction's effect.
        let new_alias = match ti.op {
            TraceOp::Real(Inst::Move { ra, rc }) if !rc.is_zero() && ra != rc => Some((rc, ra)),
            _ => None,
        };
        if let Some(d) = written_reg(&ti.op) {
            // A write invalidates aliases *of* d and aliases *to* d.
            alias[d.index()] = None;
            for a in alias.iter_mut() {
                if *a == Some(d) {
                    *a = None;
                }
            }
        }
        if let Some((rc, ra)) = new_alias {
            alias[rc.index()] = Some(ra);
        }
    }
}

/// Constant propagation and folding: integer computations whose inputs are
/// all known become `lda rc, const(r31)`.
pub fn constant_propagation(insts: &mut [TraceInst]) {
    const FITS: std::ops::Range<i64> = -(1 << 37)..(1 << 37);
    let mut known: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
    known[Reg::ZERO.index()] = Some(0);
    for ti in insts.iter_mut() {
        let mut folded: Option<(Reg, u64)> = None;
        if let TraceOp::Real(inst) = ti.op {
            match inst {
                Inst::Lda { ra, rb, imm } => {
                    if let Some(b) = known[rb.index()] {
                        folded = Some((ra, b.wrapping_add(imm as u64)));
                    }
                }
                Inst::Move { ra, rc } => {
                    if let Some(v) = known[ra.index()] {
                        folded = Some((rc, v));
                    }
                }
                Inst::Op { op, ra, rb, rc } => {
                    if let (Some(a), Some(b)) = (known[ra.index()], known[rb.index()]) {
                        folded = Some((rc, op.apply(a, b)));
                    }
                }
                Inst::OpImm { op, ra, imm, rc } => {
                    if let Some(a) = known[ra.index()] {
                        folded = Some((rc, op.apply(a, imm as u64)));
                    }
                }
                _ => {}
            }
        }
        if let Some((dest, value)) = folded {
            if !dest.is_zero() && FITS.contains(&(value as i64)) {
                ti.op = TraceOp::Real(Inst::Lda { ra: dest, rb: Reg::ZERO, imm: value as i64 });
            }
        }
        // Update knowledge.
        if let Some(d) = written_reg(&ti.op) {
            known[d.index()] = match (&ti.op, folded) {
                (_, Some((dest, value))) if dest == d => Some(value),
                _ => None,
            };
        }
    }
}

/// Strength reduction: multiplications by powers of two become shifts;
/// additions of zero and multiplications by one become moves.
pub fn strength_reduction(insts: &mut [TraceInst]) {
    for ti in insts.iter_mut() {
        let TraceOp::Real(Inst::OpImm { op, ra, imm, rc }) = ti.op else {
            continue;
        };
        let new = match (op, imm) {
            (AluOp::Mul, 1) => Some(Inst::Move { ra, rc }),
            (AluOp::Mul, m) if m > 1 && (m as u64).is_power_of_two() => Some(Inst::OpImm {
                op: AluOp::Sll,
                ra,
                imm: (m as u64).trailing_zeros() as i64,
                rc,
            }),
            (AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor, 0) => Some(Inst::Move { ra, rc }),
            _ => None,
        };
        if let Some(inst) = new {
            ti.op = TraceOp::Real(inst);
        }
    }
}

/// Store-to-load forwarding: a load from an address just stored to (same
/// base register and offset, base unmodified, no intervening store) becomes
/// a register move. This also implements Trident's legacy-code
/// store/load-pair → `MOVE` conversion (paper §3.2).
pub fn store_load_forwarding(insts: &mut [TraceInst]) {
    // Most recent store: (base, off, value_reg).
    let mut avail: Option<(Reg, i64, Reg)> = None;
    for ti in insts.iter_mut() {
        match ti.op {
            TraceOp::Real(Inst::Store { ra, rb, off }) => {
                avail = Some((rb, off, ra));
            }
            TraceOp::Real(Inst::Load { ra, rb, off, kind: LoadKind::Int | LoadKind::Float }) => {
                if let Some((sb, soff, sv)) = avail {
                    if sb == rb && soff == off && !ra.is_zero() {
                        ti.op = TraceOp::Real(Inst::Move { ra: sv, rc: ra });
                    }
                }
            }
            _ => {}
        }
        if let Some(d) = written_reg(&ti.op) {
            if let Some((sb, _, sv)) = avail {
                if d == sb || d == sv {
                    avail = None;
                }
            }
        }
    }
}

/// Redundant load elimination: a second load of the same (base, offset) with
/// no intervening store and unmodified base/value registers becomes a move
/// from the first load's destination.
pub fn redundant_load_elimination(insts: &mut [TraceInst]) {
    // Available loads: (base, off, kind discriminant) -> register with value.
    let mut avail: Vec<(Reg, i64, LoadKind, Reg)> = Vec::new();
    for ti in insts.iter_mut() {
        let mut add: Option<(Reg, i64, LoadKind, Reg)> = None;
        match ti.op {
            TraceOp::Real(Inst::Load { ra, rb, off, kind }) => {
                if let Some(&(_, _, _, v)) =
                    avail.iter().find(|(b, o, k, _)| *b == rb && *o == off && *k == kind)
                {
                    if !ra.is_zero() && v != ra {
                        ti.op = TraceOp::Real(Inst::Move { ra: v, rc: ra });
                    }
                } else if !ra.is_zero() && ra != rb {
                    add = Some((rb, off, kind, ra));
                }
            }
            // Conservative aliasing: any store kills all available loads.
            TraceOp::Real(Inst::Store { .. }) => avail.clear(),
            _ => {}
        }
        if let Some(d) = written_reg(&ti.op) {
            avail.retain(|(b, _, _, v)| *b != d && *v != d);
        }
        if let Some(e) = add {
            avail.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp::Real;

    fn ti(op: TraceOp) -> TraceInst {
        TraceInst { op, orig_pc: 0, weight: 1, synthetic: false }
    }

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn copy_propagation_rewrites_uses() {
        let mut t = vec![
            ti(Real(Inst::Move { ra: r(1), rc: r(2) })),
            ti(Real(Inst::Op { op: AluOp::Add, ra: r(2), rb: r(2), rc: r(3) })),
        ];
        copy_propagation(&mut t);
        assert_eq!(t[1].op, Real(Inst::Op { op: AluOp::Add, ra: r(1), rb: r(1), rc: r(3) }));
    }

    #[test]
    fn copy_propagation_stops_at_redefinition() {
        let mut t = vec![
            ti(Real(Inst::Move { ra: r(1), rc: r(2) })),
            ti(Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 })), // r1 changes
            ti(Real(Inst::Op { op: AluOp::Add, ra: r(2), rb: r(2), rc: r(3) })),
        ];
        copy_propagation(&mut t);
        assert_eq!(
            t[2].op,
            Real(Inst::Op { op: AluOp::Add, ra: r(2), rb: r(2), rc: r(3) }),
            "alias must die when its source is overwritten"
        );
    }

    #[test]
    fn constants_fold_through_arithmetic() {
        let mut t = vec![
            ti(Real(Inst::Lda { ra: r(1), rb: Reg::ZERO, imm: 10 })),
            ti(Real(Inst::OpImm { op: AluOp::Mul, ra: r(1), imm: 5, rc: r(2) })),
            ti(Real(Inst::Op { op: AluOp::Add, ra: r(1), rb: r(2), rc: r(3) })),
        ];
        constant_propagation(&mut t);
        assert_eq!(t[1].op, Real(Inst::Lda { ra: r(2), rb: Reg::ZERO, imm: 50 }));
        assert_eq!(t[2].op, Real(Inst::Lda { ra: r(3), rb: Reg::ZERO, imm: 60 }));
    }

    #[test]
    fn loads_kill_constant_knowledge() {
        let mut t = vec![
            ti(Real(Inst::Lda { ra: r(1), rb: Reg::ZERO, imm: 10 })),
            ti(Real(Inst::Load { ra: r(1), rb: r(9), off: 0, kind: LoadKind::Int })),
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 1, rc: r(2) })),
        ];
        constant_propagation(&mut t);
        assert_eq!(
            t[2].op,
            Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 1, rc: r(2) }),
            "r1 is unknown after the load"
        );
    }

    #[test]
    fn strength_reduction_examples() {
        let mut t = vec![
            ti(Real(Inst::OpImm { op: AluOp::Mul, ra: r(1), imm: 8, rc: r(2) })),
            ti(Real(Inst::OpImm { op: AluOp::Mul, ra: r(1), imm: 1, rc: r(3) })),
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 0, rc: r(4) })),
            ti(Real(Inst::OpImm { op: AluOp::Mul, ra: r(1), imm: 7, rc: r(5) })),
        ];
        strength_reduction(&mut t);
        assert_eq!(t[0].op, Real(Inst::OpImm { op: AluOp::Sll, ra: r(1), imm: 3, rc: r(2) }));
        assert_eq!(t[1].op, Real(Inst::Move { ra: r(1), rc: r(3) }));
        assert_eq!(t[2].op, Real(Inst::Move { ra: r(1), rc: r(4) }));
        assert_eq!(
            t[3].op,
            Real(Inst::OpImm { op: AluOp::Mul, ra: r(1), imm: 7, rc: r(5) }),
            "non-power-of-two multiplier untouched"
        );
    }

    #[test]
    fn store_load_pair_becomes_move() {
        let mut t = vec![
            ti(Real(Inst::Store { ra: r(1), rb: r(9), off: 16 })),
            ti(Real(Inst::Load { ra: r(2), rb: r(9), off: 16, kind: LoadKind::Int })),
        ];
        store_load_forwarding(&mut t);
        assert_eq!(t[1].op, Real(Inst::Move { ra: r(1), rc: r(2) }));
    }

    #[test]
    fn intervening_base_change_blocks_forwarding() {
        let mut t = vec![
            ti(Real(Inst::Store { ra: r(1), rb: r(9), off: 16 })),
            ti(Real(Inst::Lda { ra: r(9), rb: r(9), imm: 8 })),
            ti(Real(Inst::Load { ra: r(2), rb: r(9), off: 16, kind: LoadKind::Int })),
        ];
        store_load_forwarding(&mut t);
        assert!(matches!(t[2].op, Real(Inst::Load { .. })));
    }

    #[test]
    fn redundant_load_becomes_move() {
        let mut t = vec![
            ti(Real(Inst::Load { ra: r(1), rb: r(9), off: 0, kind: LoadKind::Int })),
            ti(Real(Inst::Op { op: AluOp::Add, ra: r(1), rb: r(1), rc: r(2) })),
            ti(Real(Inst::Load { ra: r(3), rb: r(9), off: 0, kind: LoadKind::Int })),
        ];
        redundant_load_elimination(&mut t);
        assert_eq!(t[2].op, Real(Inst::Move { ra: r(1), rc: r(3) }));
    }

    #[test]
    fn stores_kill_available_loads() {
        let mut t = vec![
            ti(Real(Inst::Load { ra: r(1), rb: r(9), off: 0, kind: LoadKind::Int })),
            ti(Real(Inst::Store { ra: r(5), rb: r(10), off: 8 })),
            ti(Real(Inst::Load { ra: r(3), rb: r(9), off: 0, kind: LoadKind::Int })),
        ];
        redundant_load_elimination(&mut t);
        assert!(matches!(t[2].op, Real(Inst::Load { .. })), "store may alias");
    }

    #[test]
    fn reassociation_reroots_addition_chains() {
        let mut t = vec![
            ti(Real(Inst::Lda { ra: r(2), rb: r(1), imm: 4 })),
            ti(Real(Inst::Lda { ra: r(3), rb: r(2), imm: 8 })),
            ti(Real(Inst::Lda { ra: r(4), rb: r(3), imm: 16 })),
        ];
        reassociation(&mut t);
        assert_eq!(t[1].op, Real(Inst::Lda { ra: r(3), rb: r(1), imm: 12 }));
        assert_eq!(t[2].op, Real(Inst::Lda { ra: r(4), rb: r(1), imm: 28 }));
    }

    #[test]
    fn reassociation_respects_root_redefinition() {
        let mut t = vec![
            ti(Real(Inst::Lda { ra: r(2), rb: r(1), imm: 4 })),
            ti(Real(Inst::Lda { ra: r(1), rb: r(9), imm: 0 })), // r1 changes
            ti(Real(Inst::Lda { ra: r(3), rb: r(2), imm: 8 })),
        ];
        reassociation(&mut t);
        assert_eq!(
            t[2].op,
            Real(Inst::Lda { ra: r(3), rb: r(2), imm: 8 }),
            "fact rooted at a redefined register must die"
        );
    }

    #[test]
    fn reassociation_handles_subtraction() {
        let mut t = vec![
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 100, rc: r(2) })),
            ti(Real(Inst::OpImm { op: AluOp::Sub, ra: r(2), imm: 30, rc: r(3) })),
        ];
        reassociation(&mut t);
        assert_eq!(t[1].op, Real(Inst::Lda { ra: r(3), rb: r(1), imm: 70 }));
    }

    #[test]
    fn reassociation_leaves_self_increments_alone() {
        let mut t = vec![
            ti(Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 })),
            ti(Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 })),
        ];
        let before = t.clone();
        reassociation(&mut t);
        assert_eq!(t[0].op, before[0].op);
        assert_eq!(t[1].op, before[1].op);
    }

    #[test]
    fn dce_nops_overwritten_results() {
        let mut t = vec![
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 1, rc: r(2) })),
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 2, rc: r(2) })), // kills slot 0
            ti(Real(Inst::Op { op: AluOp::Add, ra: r(2), rb: r(2), rc: r(3) })),
        ];
        dead_code_elimination(&mut t);
        assert_eq!(t[0].op, Real(Inst::Nop));
        assert!(matches!(t[1].op, Real(Inst::OpImm { .. })), "live def kept");
    }

    #[test]
    fn dce_stops_at_exits_and_loopbacks() {
        let mut t = vec![
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 1, rc: r(2) })),
            ti(TraceOp::CondExit { cond: tdo_isa::Cond::Eq, ra: r(9), to: 0x2000 }),
            ti(Real(Inst::OpImm { op: AluOp::Add, ra: r(1), imm: 2, rc: r(2) })),
            ti(TraceOp::LoopBack),
        ];
        dead_code_elimination(&mut t);
        assert!(
            matches!(t[0].op, Real(Inst::OpImm { .. })),
            "r2 may be read by original code at the exit"
        );
        assert!(
            matches!(t[2].op, Real(Inst::OpImm { .. })),
            "r2 may be read next iteration through the loop-back"
        );
    }

    #[test]
    fn dce_never_touches_stores_or_prefetches() {
        let mut t = vec![
            ti(Real(Inst::Store { ra: r(1), rb: r(9), off: 0 })),
            ti(Real(Inst::Prefetch { base: r(9), off: 0, stride: 8, dist: 1 })),
            ti(Real(Inst::Store { ra: r(2), rb: r(9), off: 0 })),
        ];
        let before: Vec<_> = t.iter().map(|x| x.op).collect();
        dead_code_elimination(&mut t);
        for (a, b) in t.iter().zip(before) {
            assert_eq!(a.op, b);
        }
    }
}
