//! # tdo-trident — the event-driven dynamic optimization framework
//!
//! A reproduction of *Trident* (Zhang, Calder, Tullsen — PACT 2005), the
//! substrate on which the CGO 2006 self-repairing prefetcher is built.
//! Trident couples small monitoring hardware structures with a helper thread
//! that runs the optimizer concurrently with the program:
//!
//! * [`profiler`] — the branch profiler (256-entry, 4-way, 4-bit counters,
//!   three 16-bit bitmap capture units) that detects stable hot paths and
//!   raises *hot trace* events;
//! * [`trace`] — hot-trace formation: streamlining the basic blocks along
//!   the captured path, with conditional exits back to original code;
//! * [`opt`] — the classical trace optimizations the paper lists (constant
//!   propagation, copy propagation, redundant-load removal, strength
//!   reduction, store/load→`MOVE` conversion);
//! * [`cache`] — the code-cache allocator;
//! * [`watch`] — the watch table tracking each trace's *minimal execution
//!   time* (which bounds prefetch distances), the optimization-in-progress
//!   flag, and back-out of under-performing traces;
//! * [`events`] — the hot-event queue;
//! * [`runtime`] — the [`Trident`] orchestrator producing code patches for
//!   trace linking, replacement, and back-out.
//!
//! The framework deliberately knows nothing about prefetching: the
//! delinquent-load machinery lives in `tdo-core`, which drives Trident
//! through [`Trident::prepare_reinstall`] (insert prefetches by replacing a
//! trace) and in-place repair patches.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod events;
pub mod opt;
pub mod profiler;
pub mod runtime;
pub mod trace;
pub mod watch;

pub use cache::CodeCache;
pub use events::{EventQueue, HotEvent, TraceId};
pub use profiler::{BranchProfiler, ProfilerConfig};
pub use runtime::{InstallError, Patch, PendingInstall, Trident, TridentConfig, TridentStats};
pub use trace::{
    form_trace, CodeSource, FormError, FormationEnd, Trace, TraceInst, TraceOp, MAX_TRACE_LEN,
};
pub use watch::{WatchConfig, WatchEntry, WatchTable};
