//! Hardware-generated optimization events.
//!
//! Trident is *event-driven*: small monitoring structures watch the running
//! program and raise events; each event, when a hardware context is free,
//! spawns the helper thread to run one optimization (paper §3.1–3.2).

use std::collections::VecDeque;

/// Identifier of an installed hot trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceId(pub u32);

/// An optimization event raised by the monitoring hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotEvent {
    /// The branch profiler saw a stable hot path: form and install a trace.
    HotTrace {
        /// Original-code address of the trace head (a hot branch target).
        head: u64,
        /// Directions of the conditional branches along the hot path
        /// (bit *i* = direction of the *i*-th conditional branch).
        bitmap: u16,
        /// Number of valid bits in `bitmap`.
        nbits: u8,
    },
    /// The delinquent load table flagged a load inside a hot trace:
    /// insert or repair software prefetching (paper §3.3).
    DelinquentLoad {
        /// Code-cache address of the delinquent load.
        load_pc: u64,
        /// Trace containing the load.
        trace: TraceId,
    },
}

/// FIFO queue of pending events.
///
/// Events wait here when the helper context is busy; Trident drains the
/// queue as contexts free up.
#[derive(Default, Debug)]
pub struct EventQueue {
    q: VecDeque<HotEvent>,
    /// Events dropped because the queue was saturated (stat).
    pub dropped: u64,
    cap: usize,
}

impl EventQueue {
    /// Creates a queue bounded at `cap` pending events.
    #[must_use]
    pub fn new(cap: usize) -> EventQueue {
        EventQueue { q: VecDeque::new(), dropped: 0, cap }
    }

    /// Enqueues an event, dropping it (with a count) when saturated or
    /// already pending.
    pub fn push(&mut self, ev: HotEvent) {
        if self.q.len() >= self.cap || self.q.contains(&ev) {
            self.dropped += 1;
            return;
        }
        self.q.push_back(ev);
    }

    /// Dequeues the oldest event.
    pub fn pop(&mut self) -> Option<HotEvent> {
        self.q.pop_front()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_bounding() {
        let mut q = EventQueue::new(2);
        let e1 = HotEvent::HotTrace { head: 1, bitmap: 0, nbits: 0 };
        let e2 = HotEvent::HotTrace { head: 2, bitmap: 0, nbits: 0 };
        let e3 = HotEvent::HotTrace { head: 3, bitmap: 0, nbits: 0 };
        q.push(e1);
        q.push(e2);
        q.push(e3);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.pop(), Some(e1));
        assert_eq!(q.pop(), Some(e2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn duplicate_pending_events_are_coalesced() {
        let mut q = EventQueue::new(8);
        let e = HotEvent::DelinquentLoad { load_pc: 0x100, trace: TraceId(1) };
        q.push(e);
        q.push(e);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dropped, 1);
    }
}
