//! Hardware-generated optimization events.
//!
//! Trident is *event-driven*: small monitoring structures watch the running
//! program and raise events; each event, when a hardware context is free,
//! spawns the helper thread to run one optimization (paper §3.1–3.2).

use std::collections::VecDeque;

/// Identifier of an installed hot trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceId(pub u32);

/// An optimization event raised by the monitoring hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotEvent {
    /// The branch profiler saw a stable hot path: form and install a trace.
    HotTrace {
        /// Original-code address of the trace head (a hot branch target).
        head: u64,
        /// Directions of the conditional branches along the hot path
        /// (bit *i* = direction of the *i*-th conditional branch).
        bitmap: u16,
        /// Number of valid bits in `bitmap`.
        nbits: u8,
    },
    /// The delinquent load table flagged a load inside a hot trace:
    /// insert or repair software prefetching (paper §3.3).
    DelinquentLoad {
        /// Code-cache address of the delinquent load.
        load_pc: u64,
        /// Trace containing the load.
        trace: TraceId,
    },
}

/// What [`EventQueue::push`] did with an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The event is now pending.
    Queued,
    /// Refused: the queue was at capacity.
    DroppedSaturated,
    /// Refused: an identical event was already pending (coalesced).
    DroppedDuplicate,
}

/// FIFO queue of pending events.
///
/// Events wait here when the helper context is busy; Trident drains the
/// queue as contexts free up.
#[derive(Default, Debug)]
pub struct EventQueue {
    q: VecDeque<HotEvent>,
    /// Events dropped because the queue was at capacity (stat).
    pub dropped_saturated: u64,
    /// Events dropped because an identical event was already pending (stat).
    pub dropped_duplicate: u64,
    cap: usize,
}

impl EventQueue {
    /// Creates a queue bounded at `cap` pending events.
    #[must_use]
    pub fn new(cap: usize) -> EventQueue {
        EventQueue { q: VecDeque::new(), dropped_saturated: 0, dropped_duplicate: 0, cap }
    }

    /// Enqueues an event, dropping it (with a per-reason count) when already
    /// pending or saturated. Coalescing wins when both apply: a duplicate is
    /// a duplicate regardless of queue pressure.
    pub fn push(&mut self, ev: HotEvent) -> PushOutcome {
        if self.q.contains(&ev) {
            self.dropped_duplicate += 1;
            return PushOutcome::DroppedDuplicate;
        }
        if self.q.len() >= self.cap {
            self.dropped_saturated += 1;
            return PushOutcome::DroppedSaturated;
        }
        self.q.push_back(ev);
        PushOutcome::Queued
    }

    /// Total events dropped for any reason.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_saturated + self.dropped_duplicate
    }

    /// Dequeues the oldest event.
    pub fn pop(&mut self) -> Option<HotEvent> {
        self.q.pop_front()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_bounding() {
        let mut q = EventQueue::new(2);
        let e1 = HotEvent::HotTrace { head: 1, bitmap: 0, nbits: 0 };
        let e2 = HotEvent::HotTrace { head: 2, bitmap: 0, nbits: 0 };
        let e3 = HotEvent::HotTrace { head: 3, bitmap: 0, nbits: 0 };
        assert_eq!(q.push(e1), PushOutcome::Queued);
        assert_eq!(q.push(e2), PushOutcome::Queued);
        assert_eq!(q.push(e3), PushOutcome::DroppedSaturated);
        assert_eq!(q.dropped_saturated, 1);
        assert_eq!(q.dropped_duplicate, 0);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop(), Some(e1));
        assert_eq!(q.pop(), Some(e2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn duplicate_pending_events_are_coalesced() {
        let mut q = EventQueue::new(8);
        let e = HotEvent::DelinquentLoad { load_pc: 0x100, trace: TraceId(1) };
        assert_eq!(q.push(e), PushOutcome::Queued);
        assert_eq!(q.push(e), PushOutcome::DroppedDuplicate);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dropped_duplicate, 1);
        assert_eq!(q.dropped_saturated, 0);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn duplicate_of_a_pending_event_wins_over_saturation() {
        let mut q = EventQueue::new(1);
        let e = HotEvent::HotTrace { head: 1, bitmap: 0, nbits: 0 };
        q.push(e);
        assert_eq!(q.push(e), PushOutcome::DroppedDuplicate, "full queue, but same event");
        assert_eq!(q.dropped_duplicate, 1);
        assert_eq!(q.dropped_saturated, 0);
    }
}
