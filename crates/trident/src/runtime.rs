//! The Trident runtime: the software half of the event-driven optimization
//! framework. It owns the monitoring structures (branch profiler, watch
//! table), the code-cache allocator, the registry of installed traces, and
//! the pending-event queue, and it produces *patch lists* — encoded words at
//! code addresses — that the simulation driver applies to the running binary
//! at helper-thread completion, mirroring how the real system links traces
//! by patching the original code (paper §3.2).

use std::collections::HashMap;

use tdo_isa::{encode, Inst, Word};
use tdo_obs::{DropReason, Event, QueueEventKind, SharedProbe};

use crate::cache::CodeCache;
use crate::events::{EventQueue, HotEvent, PushOutcome, TraceId};
use crate::opt;
use crate::profiler::{BranchProfiler, ProfilerConfig};
use crate::trace::{form_trace, CodeSource, FormError, Trace, TraceInst};
use crate::watch::{WatchConfig, WatchTable};

/// Framework configuration.
#[derive(Clone, Copy, Debug)]
pub struct TridentConfig {
    /// Branch profiler configuration.
    pub profiler: ProfilerConfig,
    /// Watch table configuration.
    pub watch: WatchConfig,
    /// Base address of the code-cache region.
    pub code_cache_base: u64,
    /// Capacity of the code-cache region in bytes.
    pub code_cache_bytes: u64,
    /// Bound on pending optimization events.
    pub event_queue_cap: usize,
    /// Whether to run the classical optimizations on formed traces.
    pub classical_opts: bool,
}

impl TridentConfig {
    /// The paper's configuration with a 4 MB code cache.
    #[must_use]
    pub fn paper_baseline() -> TridentConfig {
        TridentConfig {
            profiler: ProfilerConfig::paper_baseline(),
            watch: WatchConfig::paper_baseline(),
            code_cache_base: 0x4000_0000,
            code_cache_bytes: 4 << 20,
            event_queue_cap: 64,
            classical_opts: true,
        }
    }
}

/// One code patch: write `word` at `addr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Patch {
    /// Code address to rewrite.
    pub addr: u64,
    /// New encoded instruction.
    pub word: Word,
}

/// A fully prepared trace installation, produced at event time and committed
/// when the helper thread finishes.
#[derive(Clone, Debug)]
pub struct PendingInstall {
    /// The trace, with its code-cache address assigned.
    pub trace: Trace,
    /// Body words plus the link patch rewriting the head into a jump.
    pub patches: Vec<Patch>,
    /// A previously installed trace this one replaces (re-optimization).
    pub replaces: Option<TraceId>,
}

/// Counters for the framework.
#[derive(Clone, Copy, Debug, Default)]
pub struct TridentStats {
    /// Traces formed and installed.
    pub traces_installed: u64,
    /// Traces replaced by re-optimized versions.
    pub reoptimizations: u64,
    /// Traces backed out for under-performance.
    pub backouts: u64,
    /// Installations abandoned because the code cache was full.
    pub cache_full: u64,
    /// Hot events accepted by the pending queue.
    pub events_queued: u64,
    /// Hot events dropped because the queue was at capacity.
    pub events_dropped_saturated: u64,
    /// Hot events dropped because an identical event was already pending.
    pub events_dropped_duplicate: u64,
}

/// Errors preparing a trace installation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstallError {
    /// Trace formation failed.
    Form(FormError),
    /// The code cache has no room.
    CacheFull,
    /// The watch table has no room.
    WatchFull,
    /// The referenced trace is not registered.
    UnknownTrace(TraceId),
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::Form(e) => write!(f, "trace formation failed: {e}"),
            InstallError::CacheFull => write!(f, "code cache full"),
            InstallError::WatchFull => write!(f, "watch table full"),
            InstallError::UnknownTrace(t) => write!(f, "unknown trace {t:?}"),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<FormError> for InstallError {
    fn from(e: FormError) -> Self {
        InstallError::Form(e)
    }
}

/// Rewrites a dead trace's loop-back branches into jumps to `target`, so a
/// thread still executing the old body escapes at its next iteration
/// boundary.
fn forward_loopbacks(old: &Trace, target: u64) -> Vec<Patch> {
    let mut out = Vec::new();
    for (i, ti) in old.insts.iter().enumerate() {
        if matches!(ti.op, crate::trace::TraceOp::LoopBack) {
            let pc = old.cc_pc(i);
            let disp = Inst::disp_between(pc, target).expect("aligned code");
            out.push(Patch { addr: pc, word: encode(&Inst::Br { disp }).expect("fits") });
        }
    }
    out
}

/// The Trident runtime.
pub struct Trident {
    /// The branch profiler (hardware).
    pub profiler: BranchProfiler,
    /// The watch table (hardware).
    pub watch: WatchTable,
    /// The code-cache allocator.
    pub code_cache: CodeCache,
    /// Pending optimization events.
    pub events: EventQueue,
    /// Counters.
    pub stats: TridentStats,
    cfg: TridentConfig,
    traces: HashMap<TraceId, Trace>,
    /// Original-code head → currently linked trace.
    head_of: HashMap<u64, TraceId>,
    /// Original instruction at each patched head, for unlinking.
    original_head: HashMap<u64, Inst>,
    next_id: u32,
    probe: SharedProbe,
    probe_on: bool,
}

impl Trident {
    /// Builds the runtime.
    #[must_use]
    pub fn new(cfg: TridentConfig) -> Trident {
        Trident {
            profiler: BranchProfiler::new(cfg.profiler),
            watch: WatchTable::new(cfg.watch),
            code_cache: CodeCache::new(cfg.code_cache_base, cfg.code_cache_bytes),
            events: EventQueue::new(cfg.event_queue_cap),
            stats: TridentStats::default(),
            cfg,
            traces: HashMap::new(),
            head_of: HashMap::new(),
            original_head: HashMap::new(),
            next_id: 0,
            probe: tdo_obs::null_probe(),
            probe_on: false,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TridentConfig {
        &self.cfg
    }

    /// Attaches an observability probe; trace and queue events are recorded
    /// through it from now on.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe_on = probe.borrow().enabled();
        self.probe = probe;
    }

    /// Records one event when a probe is attached (cheap boolean test
    /// otherwise — disabled runs construct no [`Event`] values).
    fn emit(&self, now: u64, ev: Event) {
        if self.probe_on {
            self.probe.borrow_mut().record(now, ev);
        }
    }

    /// Pushes `ev`, keeping the queue counters mirrored into
    /// [`TridentStats`] and the probe informed.
    fn enqueue(&mut self, now: u64, ev: HotEvent) {
        let (kind, pc) = match ev {
            HotEvent::HotTrace { head, .. } => (QueueEventKind::HotTrace, head),
            HotEvent::DelinquentLoad { load_pc, .. } => (QueueEventKind::DelinquentLoad, load_pc),
        };
        match self.events.push(ev) {
            PushOutcome::Queued => {
                self.stats.events_queued += 1;
                if self.probe_on {
                    let pending = self.events.len() as u32;
                    self.emit(now, Event::EventQueued { kind, pc, pending });
                }
            }
            PushOutcome::DroppedSaturated => {
                self.stats.events_dropped_saturated += 1;
                if self.probe_on {
                    self.emit(now, Event::EventDropped { kind, pc, reason: DropReason::Saturated });
                }
            }
            PushOutcome::DroppedDuplicate => {
                self.stats.events_dropped_duplicate += 1;
                if self.probe_on {
                    self.emit(now, Event::EventDropped { kind, pc, reason: DropReason::Duplicate });
                }
            }
        }
    }

    /// Feeds an original-code branch to the profiler at cycle `now`; a
    /// resulting hot-trace event is queued.
    pub fn observe_branch(
        &mut self,
        now: u64,
        pc: u64,
        taken: bool,
        target: u64,
        conditional: bool,
    ) {
        if let Some(ev) = self.profiler.observe_branch(pc, taken, target, conditional) {
            self.enqueue(now, ev);
        }
    }

    /// Queues an externally generated event (e.g. a delinquent-load event
    /// from the DLT) raised at cycle `now`.
    pub fn push_event(&mut self, now: u64, ev: HotEvent) {
        self.enqueue(now, ev);
    }

    /// Pops the oldest pending event.
    pub fn pop_event(&mut self) -> Option<HotEvent> {
        self.events.pop()
    }

    /// A registered trace.
    #[must_use]
    pub fn trace(&self, id: TraceId) -> Option<&Trace> {
        self.traces.get(&id)
    }

    /// The trace currently linked at original-code `head`.
    #[must_use]
    pub fn linked_at(&self, head: u64) -> Option<TraceId> {
        self.head_of.get(&head).copied()
    }

    fn fresh_id(&mut self) -> TraceId {
        let id = TraceId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Forms, optimizes, and lays out a new trace for a hot-trace event.
    ///
    /// Nothing is registered yet: the returned [`PendingInstall`] is
    /// committed via [`Trident::commit_install`] when the helper thread
    /// finishes, and its patches are applied to the code image then.
    ///
    /// # Errors
    ///
    /// [`InstallError::Form`] when the head is unmapped, or
    /// [`InstallError::CacheFull`]/[`InstallError::WatchFull`] when hardware
    /// resources are exhausted.
    pub fn prepare_install(
        &mut self,
        now: u64,
        code: &impl CodeSource,
        head: u64,
        bitmap: u16,
        nbits: u8,
    ) -> Result<PendingInstall, InstallError> {
        let id = self.fresh_id();
        let (mut trace, _end) = form_trace(code, id, head, bitmap, nbits)?;
        if self.cfg.classical_opts {
            opt::optimize(&mut trace.insts);
        }
        self.emit(now, Event::TraceFormed { trace: id.0, head, insts: trace.insts.len() as u32 });
        self.layout(trace, None, code)
    }

    /// Lays out a re-optimized body for an existing trace (e.g. with
    /// prefetches inserted). The new trace takes over the old head link.
    ///
    /// # Errors
    ///
    /// [`InstallError::UnknownTrace`] when `old` is not registered, or a
    /// capacity error.
    pub fn prepare_reinstall(
        &mut self,
        now: u64,
        code: &impl CodeSource,
        old: TraceId,
        new_insts: Vec<TraceInst>,
    ) -> Result<PendingInstall, InstallError> {
        let (head, is_loop) = {
            let old_trace = self.traces.get(&old).ok_or(InstallError::UnknownTrace(old))?;
            (old_trace.head, old_trace.is_loop)
        };
        let id = self.fresh_id();
        self.emit(now, Event::TraceFormed { trace: id.0, head, insts: new_insts.len() as u32 });
        let trace = Trace { id, head, insts: new_insts, is_loop, cc_addr: 0 };
        self.layout(trace, Some(old), code)
    }

    fn layout(
        &mut self,
        mut trace: Trace,
        replaces: Option<TraceId>,
        code: &impl CodeSource,
    ) -> Result<PendingInstall, InstallError> {
        let Some(cc_addr) = self.code_cache.alloc(trace.insts.len()) else {
            self.stats.cache_full += 1;
            return Err(InstallError::CacheFull);
        };
        trace.cc_addr = cc_addr;
        let words = trace.encode_at(cc_addr).expect("trace displacements fit");
        let mut patches: Vec<Patch> = words
            .iter()
            .enumerate()
            .map(|(i, w)| Patch { addr: trace.cc_pc(i), word: *w })
            .collect();
        // The link: rewrite the head into a jump to the trace.
        let disp = Inst::disp_between(trace.head, cc_addr).expect("aligned");
        patches.push(Patch { addr: trace.head, word: encode(&Inst::Br { disp }).expect("fits") });
        // Remember the original head instruction for unlinking (only the
        // first time this head is patched).
        self.original_head
            .entry(trace.head)
            .or_insert_with(|| code.fetch_inst(trace.head).expect("formed trace head is mapped"));
        Ok(PendingInstall { trace, patches, replaces })
    }

    /// Registers a prepared installation; the caller applies
    /// `pending.patches` **plus the returned forwarding patches** to the
    /// code image at the same instant.
    ///
    /// When the installation replaces an older trace, execution may still be
    /// looping inside the old body — its loop-back branch is rewritten to
    /// jump into the new trace, so the running thread migrates at the next
    /// iteration boundary ("a thread's execution will then automatically
    /// start using the new hot trace", §3.2).
    ///
    /// # Errors
    ///
    /// [`InstallError::WatchFull`] when the watch table cannot accept the
    /// trace (the installation must then be abandoned and no patches
    /// applied).
    pub fn commit_install(
        &mut self,
        now: u64,
        pending: &PendingInstall,
    ) -> Result<Vec<Patch>, InstallError> {
        let trace = &pending.trace;
        let mut forwards = Vec::new();
        if let Some(old) = pending.replaces {
            if let Some(old_trace) = self.traces.remove(&old) {
                self.watch.remove(old);
                self.code_cache.retire(old_trace.insts.len());
                self.head_of.remove(&old_trace.head);
                forwards = forward_loopbacks(&old_trace, trace.cc_addr);
            }
            self.stats.reoptimizations += 1;
        }
        if !self.watch.insert(trace.id, trace.cc_addr, trace.insts.len() as u32) {
            return Err(InstallError::WatchFull);
        }
        self.head_of.insert(trace.head, trace.id);
        self.profiler.mark_traced(trace.head);
        self.traces.insert(trace.id, trace.clone());
        self.stats.traces_installed += 1;
        self.emit(
            now,
            Event::TraceInstalled {
                trace: trace.id.0,
                head: trace.head,
                cc_addr: trace.cc_addr,
                replaces: pending.replaces.map(|t| t.0),
            },
        );
        Ok(forwards)
    }

    /// Unlinks an under-performing trace: returns the patches restoring the
    /// original head instruction and forwarding the dead body's loop-back to
    /// the original head (execution may still be inside it). The head may be
    /// re-profiled later.
    ///
    /// # Errors
    ///
    /// [`InstallError::UnknownTrace`] when `id` is not registered.
    pub fn backout(&mut self, now: u64, id: TraceId) -> Result<Vec<Patch>, InstallError> {
        let trace = self.traces.remove(&id).ok_or(InstallError::UnknownTrace(id))?;
        self.watch.remove(id);
        self.head_of.remove(&trace.head);
        self.code_cache.retire(trace.insts.len());
        self.profiler.clear_traced(trace.head);
        self.stats.backouts += 1;
        self.emit(now, Event::TraceBackedOut { trace: id.0, head: trace.head });
        let orig = self.original_head[&trace.head];
        let mut patches =
            vec![Patch { addr: trace.head, word: encode(&orig).expect("round trip") }];
        patches.extend(forward_loopbacks(&trace, trace.head));
        Ok(patches)
    }

    /// Updates the registered body of `id` at `index` (keeps the registry in
    /// sync with an in-place repair patch applied by the prefetch optimizer).
    ///
    /// # Errors
    ///
    /// [`InstallError::UnknownTrace`] when `id` is not registered.
    pub fn update_trace_inst(
        &mut self,
        id: TraceId,
        index: usize,
        ti: TraceInst,
    ) -> Result<(), InstallError> {
        let t = self.traces.get_mut(&id).ok_or(InstallError::UnknownTrace(id))?;
        t.insts[index] = ti;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use tdo_isa::{AluOp, Asm, Cond, Reg};

    fn loop_code() -> (Asm, impl CodeSource) {
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut a = Asm::new(0x1000);
        a.label("head");
        a.op(AluOp::Add, r2, r1, r2);
        a.op_imm(AluOp::Sub, r1, 1, r1);
        a.bcond_to(Cond::Ne, r1, "head");
        a.halt();
        let words = a.assemble().unwrap();
        let map: Map<u64, Inst> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (0x1000 + i as u64 * 8, tdo_isa::decode(*w).unwrap()))
            .collect();
        (a, move |pc: u64| map.get(&pc).copied())
    }

    fn runtime() -> Trident {
        let mut cfg = TridentConfig::paper_baseline();
        cfg.code_cache_base = 0x10_0000;
        Trident::new(cfg)
    }

    #[test]
    fn install_links_head_and_watches_trace() {
        let (_, code) = loop_code();
        let mut t = runtime();
        let pending = t.prepare_install(0, &code, 0x1000, 0b1, 1).unwrap();
        assert_eq!(pending.trace.cc_addr, 0x10_0000);
        // Link patch is last and rewrites the head.
        let link = *pending.patches.last().unwrap();
        assert_eq!(link.addr, 0x1000);
        let link_inst = tdo_isa::decode(link.word).unwrap();
        assert_eq!(link_inst.branch_target(0x1000), Some(0x10_0000));

        t.commit_install(0, &pending).unwrap();
        let id = pending.trace.id;
        assert_eq!(t.linked_at(0x1000), Some(id));
        assert_eq!(t.watch.trace_at(0x10_0000), Some(id));
        assert_eq!(t.stats.traces_installed, 1);
    }

    #[test]
    fn reinstall_replaces_old_trace() {
        let (_, code) = loop_code();
        let mut t = runtime();
        let p1 = t.prepare_install(0, &code, 0x1000, 0b1, 1).unwrap();
        t.commit_install(0, &p1).unwrap();
        let old = p1.trace.id;
        let body = t.trace(old).unwrap().insts.clone();
        let p2 = t.prepare_reinstall(0, &code, old, body).unwrap();
        assert_eq!(p2.replaces, Some(old));
        t.commit_install(0, &p2).unwrap();
        assert!(t.trace(old).is_none());
        assert_eq!(t.linked_at(0x1000), Some(p2.trace.id));
        assert_eq!(t.watch.trace_at(p2.trace.cc_addr), Some(p2.trace.id));
        assert_eq!(t.stats.reoptimizations, 1);
    }

    #[test]
    fn backout_restores_original_head() {
        let (_, code) = loop_code();
        let mut t = runtime();
        let p = t.prepare_install(0, &code, 0x1000, 0b1, 1).unwrap();
        t.commit_install(0, &p).unwrap();
        let patches = t.backout(0, p.trace.id).unwrap();
        assert_eq!(patches[0].addr, 0x1000);
        let inst = tdo_isa::decode(patches[0].word).unwrap();
        assert!(matches!(inst, Inst::Op { op: AluOp::Add, .. }), "original add restored");
        // The dead body's loop-back is forwarded to the restored head.
        let fwd = patches.iter().find(|p| p.addr >= 0x10_0000).expect("loop-back forward");
        let fwd_inst = tdo_isa::decode(fwd.word).unwrap();
        assert_eq!(fwd_inst.branch_target(fwd.addr), Some(0x1000));
        assert_eq!(t.linked_at(0x1000), None);
        assert_eq!(t.stats.backouts, 1);
    }

    #[test]
    fn cache_exhaustion_is_reported() {
        let (_, code) = loop_code();
        let mut cfg = TridentConfig::paper_baseline();
        cfg.code_cache_base = 0x10_0000;
        cfg.code_cache_bytes = 8; // room for one instruction
        let mut t = Trident::new(cfg);
        assert!(matches!(
            t.prepare_install(0, &code, 0x1000, 0b1, 1),
            Err(InstallError::CacheFull)
        ));
        assert_eq!(t.stats.cache_full, 1);
    }

    #[test]
    fn unknown_trace_operations_error() {
        let mut t = runtime();
        assert!(matches!(t.backout(0, TraceId(42)), Err(InstallError::UnknownTrace(_))));
        let ti = crate::trace::TraceInst {
            op: crate::trace::TraceOp::LoopBack,
            orig_pc: 0,
            weight: 0,
            synthetic: false,
        };
        assert!(matches!(
            t.update_trace_inst(TraceId(42), 0, ti),
            Err(InstallError::UnknownTrace(_))
        ));
    }
}
