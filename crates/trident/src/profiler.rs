//! The hardware branch profiler (paper Table 2): a 256-entry 4-way
//! associative table of 4-bit saturating counters that identifies hot branch
//! targets (loop heads), plus three standalone 16-bit bitmap capture units
//! that record the branch-direction path from a hot head.
//!
//! A hot trace is emitted as *starting PC + branch direction bitmap* once two
//! consecutive captures of the path from the head agree (the path is stable).

use crate::events::HotEvent;
use std::collections::HashSet;

/// Configuration of the branch profiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfilerConfig {
    /// Total entries in the hot-target counter table.
    pub entries: usize,
    /// Associativity of the counter table.
    pub assoc: usize,
    /// Counter saturation threshold that arms a bitmap capture.
    pub hot_threshold: u8,
    /// Number of concurrent capture units ("three standalone 16-bit
    /// bitmaps" in Table 2).
    pub capture_units: usize,
    /// Maximum conditional branches captured per trace.
    pub max_bits: u8,
}

impl ProfilerConfig {
    /// The paper's Table 2 configuration.
    #[must_use]
    pub fn paper_baseline() -> ProfilerConfig {
        ProfilerConfig { entries: 256, assoc: 4, hot_threshold: 15, capture_units: 3, max_bits: 16 }
    }
}

#[derive(Clone, Copy, Default)]
struct CounterEntry {
    valid: bool,
    tag: u64,
    counter: u8,
    stamp: u64,
}

#[derive(Clone, Copy)]
struct Capture {
    head: u64,
    bitmap: u16,
    nbits: u8,
    /// A previous complete capture to compare against, if any.
    prev: Option<(u16, u8)>,
    recording: bool,
}

/// The branch profiler.
pub struct BranchProfiler {
    cfg: ProfilerConfig,
    table: Vec<CounterEntry>,
    sets: usize,
    captures: Vec<Capture>,
    /// Heads already promoted to traces — suppressed until cleared.
    traced: HashSet<u64>,
    clock: u64,
    /// Hot-trace events emitted (stat).
    pub traces_emitted: u64,
}

impl BranchProfiler {
    /// Builds a profiler.
    #[must_use]
    pub fn new(cfg: ProfilerConfig) -> BranchProfiler {
        let sets = cfg.entries / cfg.assoc;
        assert!(sets.is_power_of_two(), "profiler sets must be a power of two");
        BranchProfiler {
            table: vec![CounterEntry::default(); cfg.entries],
            sets,
            captures: Vec::with_capacity(cfg.capture_units),
            traced: HashSet::new(),
            clock: 0,
            traces_emitted: 0,
            cfg,
        }
    }

    /// Allows `head` to be profiled into a trace again (used after a trace
    /// back-out).
    pub fn clear_traced(&mut self, head: u64) {
        self.traced.remove(&head);
    }

    /// Marks `head` as already covered by an installed trace.
    pub fn mark_traced(&mut self, head: u64) {
        self.traced.insert(head);
    }

    /// Feeds one executed branch; returns a hot-trace event when a stable hot
    /// path is confirmed.
    ///
    /// `conditional` distinguishes direction-recording branches from
    /// unconditional transfers; `taken`/`target` describe the outcome.
    pub fn observe_branch(
        &mut self,
        pc: u64,
        taken: bool,
        target: u64,
        conditional: bool,
    ) -> Option<HotEvent> {
        self.clock += 1;
        let mut emitted = None;

        // 1. Advance active captures with this branch's direction.
        let max_bits = self.cfg.max_bits;
        let mut finished: Option<usize> = None;
        for (i, cap) in self.captures.iter_mut().enumerate() {
            if !cap.recording {
                continue;
            }
            // Record the direction first: the loop-closing backward branch
            // is part of the path (its direction steers trace formation).
            if conditional && cap.nbits < max_bits {
                if taken {
                    cap.bitmap |= 1 << cap.nbits;
                }
                cap.nbits += 1;
            }
            // Returning to the head closes the capture (a loop path), as
            // does exhausting the bitmap.
            if (taken && target == cap.head) || cap.nbits >= max_bits {
                finished = Some(i);
            }
        }
        if let Some(i) = finished {
            emitted = self.finish_capture(i);
        }

        // 2. Hot-head counting: backward taken branches indicate loop heads.
        if taken && target < pc && !self.traced.contains(&target) && self.bump_counter(target) {
            self.arm_capture(target);
        }

        // 3. Arrival at an armed (non-recording) capture head starts
        //    recording the path.
        if taken {
            for cap in &mut self.captures {
                if !cap.recording && cap.head == target {
                    cap.recording = true;
                    cap.bitmap = 0;
                    cap.nbits = 0;
                }
            }
        }

        emitted
    }

    fn bump_counter(&mut self, head: u64) -> bool {
        let set = ((head >> 3) as usize) & (self.sets - 1);
        let base = set * self.cfg.assoc;
        let ways = &mut self.table[base..base + self.cfg.assoc];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == head) {
            e.stamp = self.clock;
            if e.counter < self.cfg.hot_threshold {
                e.counter += 1;
            }
            return e.counter >= self.cfg.hot_threshold;
        }
        // Allocate (LRU within the set).
        let victim =
            ways.iter_mut().min_by_key(|e| if e.valid { e.stamp } else { 0 }).expect("assoc > 0");
        *victim = CounterEntry { valid: true, tag: head, counter: 1, stamp: self.clock };
        false
    }

    fn arm_capture(&mut self, head: u64) {
        if self.captures.iter().any(|c| c.head == head) {
            return;
        }
        let cap = Capture { head, bitmap: 0, nbits: 0, prev: None, recording: false };
        if self.captures.len() < self.cfg.capture_units {
            self.captures.push(cap);
        } else {
            // Replace a non-recording unit if possible; otherwise drop.
            if let Some(slot) = self.captures.iter_mut().find(|c| !c.recording) {
                *slot = cap;
            }
        }
    }

    fn finish_capture(&mut self, i: usize) -> Option<HotEvent> {
        let cap = &mut self.captures[i];
        let current = (cap.bitmap, cap.nbits);
        let stable = cap.prev == Some(current);
        if stable {
            let head = cap.head;
            self.captures.swap_remove(i);
            self.traced.insert(head);
            self.traces_emitted += 1;
            Some(HotEvent::HotTrace { head, bitmap: current.0, nbits: current.1 })
        } else {
            cap.prev = Some(current);
            cap.recording = false; // wait to re-arm at the head again
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the profiler with a simple loop: a backward conditional branch
    /// at `pc` jumping to `head` `iters` times, with `inner` conditional
    /// branches (not-taken) inside the body.
    fn drive_loop(
        p: &mut BranchProfiler,
        head: u64,
        pc: u64,
        iters: usize,
        inner: usize,
    ) -> Vec<HotEvent> {
        let mut evs = Vec::new();
        for _ in 0..iters {
            for j in 0..inner {
                if let Some(e) = p.observe_branch(head + 8 + j as u64 * 8, false, 0, true) {
                    evs.push(e);
                }
            }
            if let Some(e) = p.observe_branch(pc, true, head, true) {
                evs.push(e);
            }
        }
        evs
    }

    #[test]
    fn stable_loop_becomes_a_hot_trace() {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let evs = drive_loop(&mut p, 0x1000, 0x1100, 40, 2);
        assert_eq!(evs.len(), 1, "one stable trace emitted");
        match evs[0] {
            HotEvent::HotTrace { head, bitmap, nbits } => {
                assert_eq!(head, 0x1000);
                assert_eq!(nbits, 3, "two inner branches + the loop-closing branch");
                assert_eq!(bitmap, 0b100, "inner not-taken, backward taken");
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Head suppressed afterwards.
        let evs2 = drive_loop(&mut p, 0x1000, 0x1100, 40, 2);
        assert!(evs2.is_empty());
    }

    #[test]
    fn cold_loops_do_not_trigger() {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let evs = drive_loop(&mut p, 0x2000, 0x2100, 5, 1);
        assert!(evs.is_empty());
    }

    #[test]
    fn unstable_paths_are_not_emitted_until_stable() {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        // Alternate the inner branch direction every iteration: captures
        // never agree... but the 1-bit pattern repeats with period 2, so two
        // consecutive captures always differ.
        let head = 0x3000;
        let pc = 0x3040;
        let mut emitted = 0;
        for i in 0..60 {
            if p.observe_branch(head + 8, i % 2 == 0, head + 0x100, true).is_some() {
                emitted += 1;
            }
            if p.observe_branch(pc, true, head, true).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 0);
    }

    #[test]
    fn capture_truncates_at_sixteen_branches() {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        // Large body: 20 inner conditional branches.
        let evs = drive_loop(&mut p, 0x4000, 0x4400, 40, 20);
        assert_eq!(evs.len(), 1);
        match evs[0] {
            HotEvent::HotTrace { nbits, .. } => assert_eq!(nbits, 16),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cleared_heads_can_be_reprofiled() {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let evs = drive_loop(&mut p, 0x5000, 0x5100, 40, 0);
        assert_eq!(evs.len(), 1);
        p.clear_traced(0x5000);
        let evs2 = drive_loop(&mut p, 0x5000, 0x5100, 40, 0);
        assert_eq!(evs2.len(), 1);
    }
}
