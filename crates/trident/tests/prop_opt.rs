//! Randomized test: the classical trace optimizations preserve architectural
//! semantics — registers, memory, and the exit taken — on random traces.
//! (Seeded `tdo_rand` sweeps; `--features exhaustive` widens them.)

use std::collections::BTreeMap;

use tdo_isa::{AluOp, Cond, Inst, LoadKind, Reg};
use tdo_rand::{cases, Rng};
use tdo_trident::opt;
use tdo_trident::trace::{TraceInst, TraceOp};

fn r(rng: &mut Rng) -> Reg {
    Reg::int(rng.gen_range(0..10) as u8)
}

fn arb_op(rng: &mut Rng) -> TraceOp {
    // Weighted mix mirroring real trace bodies: mostly ALU, some memory,
    // an occasional conditional exit (weights 6/6/3/3/3/2/1).
    match rng.gen_range(0..24) {
        0..=5 => TraceOp::Real(Inst::Op {
            op: *rng.choose(&AluOp::ALL),
            ra: r(rng),
            rb: r(rng),
            rc: r(rng),
        }),
        6..=11 => TraceOp::Real(Inst::OpImm {
            op: *rng.choose(&AluOp::ALL),
            ra: r(rng),
            imm: rng.gen_range_i64(-64..64),
            rc: r(rng),
        }),
        12..=14 => {
            TraceOp::Real(Inst::Lda { ra: r(rng), rb: r(rng), imm: rng.gen_range_i64(-32..32) })
        }
        15..=17 => TraceOp::Real(Inst::Move { ra: r(rng), rc: r(rng) }),
        18..=20 => TraceOp::Real(Inst::Load {
            ra: r(rng),
            rb: Reg::int(9),
            off: rng.gen_range_i64(0..8) * 8,
            kind: LoadKind::Int,
        }),
        21 | 22 => TraceOp::Real(Inst::Store {
            ra: r(rng),
            rb: Reg::int(9),
            off: rng.gen_range_i64(0..8) * 8,
        }),
        _ => TraceOp::CondExit { cond: *rng.choose(&Cond::ALL), ra: r(rng), to: 0x9000 },
    }
}

fn arb_trace(rng: &mut Rng) -> Vec<TraceInst> {
    let n = rng.gen_range(1..60);
    let mut v: Vec<TraceInst> = (0..n)
        .map(|_| TraceInst { op: arb_op(rng), orig_pc: 0x1000, weight: 1, synthetic: false })
        .collect();
    v.push(TraceInst { op: TraceOp::LoopBack, orig_pc: 0x1000, weight: 0, synthetic: false });
    v
}

// Mirror of the interpreter in tdo-trident's internal tests (kept separate so
// the optimization passes are validated by an independent implementation).
fn run(insts: &[TraceInst], regs: &mut [u64; 64], mem: &mut BTreeMap<u64, u64>) -> Option<usize> {
    for (i, ti) in insts.iter().enumerate() {
        match ti.op {
            TraceOp::Real(inst) => match inst {
                Inst::Op { op, ra, rb, rc } => {
                    let v = op.apply(regs[ra.index()], regs[rb.index()]);
                    if !rc.is_zero() {
                        regs[rc.index()] = v;
                    }
                }
                Inst::OpImm { op, ra, imm, rc } => {
                    let v = op.apply(regs[ra.index()], imm as u64);
                    if !rc.is_zero() {
                        regs[rc.index()] = v;
                    }
                }
                Inst::Lda { ra, rb, imm } if !ra.is_zero() => {
                    regs[ra.index()] = regs[rb.index()].wrapping_add(imm as u64);
                }
                Inst::Move { ra, rc } if !rc.is_zero() => {
                    regs[rc.index()] = regs[ra.index()];
                }
                Inst::Load { ra, rb, off, .. } => {
                    let a = regs[rb.index()].wrapping_add(off as u64);
                    if !ra.is_zero() {
                        regs[ra.index()] = mem.get(&a).copied().unwrap_or(0);
                    }
                }
                Inst::Store { ra, rb, off } => {
                    let a = regs[rb.index()].wrapping_add(off as u64);
                    mem.insert(a, regs[ra.index()]);
                }
                _ => {}
            },
            TraceOp::CondExit { cond, ra, .. } => {
                if cond.eval(regs[ra.index()]) {
                    return Some(i);
                }
            }
            TraceOp::LoopBack | TraceOp::JumpBack { .. } => return None,
        }
    }
    None
}

#[test]
fn optimize_preserves_semantics() {
    let mut rng = Rng::new(0x0b7_0001);
    for case in 0..cases(256) {
        let trace = arb_trace(&mut rng);
        let mut optimized = trace.clone();
        opt::optimize(&mut optimized);
        assert_eq!(optimized.len(), trace.len(), "case {case}: passes are slot-preserving");

        // Random initial state: registers r0..r9 plus memory at the base.
        let mut regs_a = [0u64; 64];
        for reg in regs_a.iter_mut().take(10) {
            *reg = rng.next_u64();
        }
        regs_a[9] = 0x10_000; // data base used by generated loads/stores
        let mut regs_b = regs_a;
        let mem_seed = rng.next_u64();
        let mut mem_a: BTreeMap<u64, u64> =
            (0..8).map(|i| (0x10_000 + i * 8, mem_seed.wrapping_mul(i + 1))).collect();
        let mut mem_b = mem_a.clone();

        let exit_a = run(&trace, &mut regs_a, &mut mem_a);
        let exit_b = run(&optimized, &mut regs_b, &mut mem_b);

        assert_eq!(exit_a, exit_b, "case {case}: same exit behaviour");
        assert_eq!(regs_a, regs_b, "case {case}: same registers");
        assert_eq!(mem_a, mem_b, "case {case}: same memory");
    }
}

#[test]
fn optimize_preserves_weights() {
    let mut rng = Rng::new(0x0b7_0002);
    for case in 0..cases(256) {
        let trace = arb_trace(&mut rng);
        let before: u64 = trace.iter().map(|t| u64::from(t.weight)).sum();
        let mut optimized = trace;
        opt::optimize(&mut optimized);
        let after: u64 = optimized.iter().map(|t| u64::from(t.weight)).sum();
        assert_eq!(before, after, "case {case}");
    }
}
