//! Property test: the classical trace optimizations preserve architectural
//! semantics — registers, memory, and the exit taken — on random traces.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tdo_isa::{AluOp, Cond, Inst, LoadKind, Reg};
use tdo_trident::opt;
use tdo_trident::trace::{TraceInst, TraceOp};

fn r() -> impl Strategy<Value = Reg> {
    (0u8..10).prop_map(Reg::int)
}

fn arb_op() -> impl Strategy<Value = TraceOp> {
    let alu = prop::sample::select(AluOp::ALL.to_vec());
    let cond = prop::sample::select(Cond::ALL.to_vec());
    prop_oneof![
        6 => (alu.clone(), r(), r(), r()).prop_map(|(op, ra, rb, rc)| TraceOp::Real(Inst::Op { op, ra, rb, rc })),
        6 => (alu, r(), -64i64..64, r()).prop_map(|(op, ra, imm, rc)| TraceOp::Real(Inst::OpImm { op, ra, imm, rc })),
        3 => (r(), r(), -32i64..32).prop_map(|(ra, rb, imm)| TraceOp::Real(Inst::Lda { ra, rb, imm })),
        3 => (r(), r()).prop_map(|(ra, rc)| TraceOp::Real(Inst::Move { ra, rc })),
        3 => (r(), 0i64..8).prop_map(|(ra, off)| TraceOp::Real(Inst::Load { ra, rb: Reg::int(9), off: off * 8, kind: LoadKind::Int })),
        2 => (r(), 0i64..8).prop_map(|(ra, off)| TraceOp::Real(Inst::Store { ra, rb: Reg::int(9), off: off * 8 })),
        1 => (cond, r()).prop_map(|(cond, ra)| TraceOp::CondExit { cond, ra, to: 0x9000 }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<TraceInst>> {
    prop::collection::vec(arb_op(), 1..60).prop_map(|ops| {
        let mut v: Vec<TraceInst> = ops
            .into_iter()
            .map(|op| TraceInst { op, orig_pc: 0x1000, weight: 1, synthetic: false })
            .collect();
        v.push(TraceInst { op: TraceOp::LoopBack, orig_pc: 0x1000, weight: 0, synthetic: false });
        v
    })
}

// Mirror of the interpreter in tdo-trident's internal tests (kept separate so
// the optimization passes are validated by an independent implementation).
fn run(insts: &[TraceInst], regs: &mut [u64; 64], mem: &mut BTreeMap<u64, u64>) -> Option<usize> {
    for (i, ti) in insts.iter().enumerate() {
        match ti.op {
            TraceOp::Real(inst) => match inst {
                Inst::Op { op, ra, rb, rc } => {
                    let v = op.apply(regs[ra.index()], regs[rb.index()]);
                    if !rc.is_zero() {
                        regs[rc.index()] = v;
                    }
                }
                Inst::OpImm { op, ra, imm, rc } => {
                    let v = op.apply(regs[ra.index()], imm as u64);
                    if !rc.is_zero() {
                        regs[rc.index()] = v;
                    }
                }
                Inst::Lda { ra, rb, imm }
                    if !ra.is_zero() => {
                        regs[ra.index()] = regs[rb.index()].wrapping_add(imm as u64);
                    }
                Inst::Move { ra, rc }
                    if !rc.is_zero() => {
                        regs[rc.index()] = regs[ra.index()];
                    }
                Inst::Load { ra, rb, off, .. } => {
                    let a = regs[rb.index()].wrapping_add(off as u64);
                    if !ra.is_zero() {
                        regs[ra.index()] = mem.get(&a).copied().unwrap_or(0);
                    }
                }
                Inst::Store { ra, rb, off } => {
                    let a = regs[rb.index()].wrapping_add(off as u64);
                    mem.insert(a, regs[ra.index()]);
                }
                _ => {}
            },
            TraceOp::CondExit { cond, ra, .. } => {
                if cond.eval(regs[ra.index()]) {
                    return Some(i);
                }
            }
            TraceOp::LoopBack | TraceOp::JumpBack { .. } => return None,
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn optimize_preserves_semantics(
        trace in arb_trace(),
        seeds in prop::collection::vec(any::<u64>(), 10),
        mem_seed in any::<u64>(),
    ) {
        let mut optimized = trace.clone();
        opt::optimize(&mut optimized);
        prop_assert_eq!(optimized.len(), trace.len(), "passes are slot-preserving");

        // Random initial state: registers r0..r9 plus memory at the base.
        let mut regs_a = [0u64; 64];
        for (i, s) in seeds.iter().enumerate() {
            regs_a[i] = *s;
        }
        regs_a[9] = 0x10_000; // data base used by generated loads/stores
        let mut regs_b = regs_a;
        let mut mem_a: BTreeMap<u64, u64> = (0..8)
            .map(|i| (0x10_000 + i * 8, mem_seed.wrapping_mul(i + 1)))
            .collect();
        let mut mem_b = mem_a.clone();

        let exit_a = run(&trace, &mut regs_a, &mut mem_a);
        let exit_b = run(&optimized, &mut regs_b, &mut mem_b);

        prop_assert_eq!(exit_a, exit_b, "same exit behaviour");
        prop_assert_eq!(regs_a, regs_b, "same registers");
        prop_assert_eq!(mem_a, mem_b, "same memory");
    }

    #[test]
    fn optimize_preserves_weights(trace in arb_trace()) {
        let before: u64 = trace.iter().map(|t| u64::from(t.weight)).sum();
        let mut optimized = trace;
        opt::optimize(&mut optimized);
        let after: u64 = optimized.iter().map(|t| u64::from(t.weight)).sum();
        prop_assert_eq!(before, after);
    }
}
