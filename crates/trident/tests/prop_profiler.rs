//! Randomized tests for the branch profiler: hot-trace events are only ever
//! emitted for genuinely repeating paths, and every emitted bitmap replays
//! the captured branch directions exactly. (Seeded `tdo_rand` sweeps;
//! `--features exhaustive` widens them.)

use tdo_rand::{cases, Rng};
use tdo_trident::{BranchProfiler, HotEvent, ProfilerConfig};

/// A synthetic loop: head, `dirs.len()` conditional branches per iteration
/// with fixed directions, then a backward branch to the head.
fn drive(p: &mut BranchProfiler, head: u64, dirs: &[bool], iters: usize) -> Vec<HotEvent> {
    let mut out = Vec::new();
    let back_pc = head + 0x100;
    for _ in 0..iters {
        for (j, d) in dirs.iter().enumerate() {
            let pc = head + 8 + j as u64 * 8;
            let target = pc + 0x40;
            if let Some(e) = p.observe_branch(pc, *d, target, true) {
                out.push(e);
            }
        }
        if let Some(e) = p.observe_branch(back_pc, true, head, true) {
            out.push(e);
        }
    }
    out
}

#[test]
fn stable_loops_emit_exactly_their_bitmap() {
    let mut rng = Rng::new(0x9f0_0001);
    for case in 0..cases(256) {
        let dirs: Vec<bool> = (0..rng.gen_range(0..12)).map(|_| rng.gen_bool(0.5)).collect();
        let head = rng.gen_range(1..1 << 20) * 8 + (1 << 24);
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let evs = drive(&mut p, head, &dirs, 64);
        assert_eq!(evs.len(), 1, "case {case}: stable loop emits exactly once");
        match evs[0] {
            HotEvent::HotTrace { head: h, bitmap, nbits } => {
                assert_eq!(h, head, "case {case}");
                // Inner branch directions + the (taken) loop-closing branch.
                assert_eq!(usize::from(nbits), dirs.len() + 1, "case {case}");
                for (j, d) in dirs.iter().enumerate() {
                    assert_eq!((bitmap >> j) & 1 == 1, *d, "case {case}: bit {j}");
                }
                assert_eq!((bitmap >> dirs.len()) & 1, 1, "case {case}: backward branch taken");
            }
            other => panic!("case {case}: unexpected event {other:?}"),
        }
    }
}

#[test]
fn alternating_paths_never_stabilize() {
    let mut rng = Rng::new(0x9f0_0002);
    for case in 0..cases(128) {
        let head = rng.gen_range(1..1 << 20) * 8 + (1 << 24);
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let mut emitted = 0;
        for i in 0..200u64 {
            // One inner branch whose direction flips every iteration.
            if p.observe_branch(head + 8, i % 2 == 0, head + 0x40, true).is_some() {
                emitted += 1;
            }
            if p.observe_branch(head + 0x100, true, head, true).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(
            emitted, 0,
            "case {case}: period-2 paths cannot produce equal consecutive captures"
        );
    }
}

#[test]
fn cold_code_never_emits() {
    let mut rng = Rng::new(0x9f0_0003);
    for case in 0..cases(256) {
        // Random branches that never revisit the same target 15+ times in a
        // stable way: with fully random (pc, target) pairs repetition is
        // vanishingly unlikely, so no event may fire.
        let mut seen = std::collections::HashMap::new();
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        for _ in 0..rng.gen_range(0..256) {
            let pc = rng.gen_range(1..1 << 20) * 8 + (1 << 28);
            let taken = rng.gen_bool(0.5);
            let tgt = rng.gen_range(1..1 << 20) * 8;
            *seen.entry(tgt).or_insert(0u32) += u32::from(taken && tgt < pc);
            if let Some(e) = p.observe_branch(pc, taken, tgt, true) {
                // Only acceptable if some target genuinely saturated.
                assert!(
                    seen.values().any(|&c| c >= 15),
                    "case {case}: event without a hot target: {e:?}"
                );
            }
        }
    }
}
