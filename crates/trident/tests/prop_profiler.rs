//! Property tests for the branch profiler: hot-trace events are only ever
//! emitted for genuinely repeating paths, and every emitted bitmap replays
//! the captured branch directions exactly.

use proptest::prelude::*;
use tdo_trident::{BranchProfiler, HotEvent, ProfilerConfig};

/// A synthetic loop: head, `dirs.len()` conditional branches per iteration
/// with fixed directions, then a backward branch to the head.
fn drive(p: &mut BranchProfiler, head: u64, dirs: &[bool], iters: usize) -> Vec<HotEvent> {
    let mut out = Vec::new();
    let back_pc = head + 0x100;
    for _ in 0..iters {
        for (j, d) in dirs.iter().enumerate() {
            let pc = head + 8 + j as u64 * 8;
            let target = pc + 0x40;
            if let Some(e) = p.observe_branch(pc, *d, target, true) {
                out.push(e);
            }
        }
        if let Some(e) = p.observe_branch(back_pc, true, head, true) {
            out.push(e);
        }
    }
    out
}

proptest! {
    #[test]
    fn stable_loops_emit_exactly_their_bitmap(
        dirs in prop::collection::vec(any::<bool>(), 0..12),
        head in (1u64..1 << 20).prop_map(|h| h * 8 + (1 << 24)),
    ) {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let evs = drive(&mut p, head, &dirs, 64);
        prop_assert_eq!(evs.len(), 1, "stable loop emits exactly once");
        match evs[0] {
            HotEvent::HotTrace { head: h, bitmap, nbits } => {
                prop_assert_eq!(h, head);
                // Inner branch directions + the (taken) loop-closing branch.
                prop_assert_eq!(usize::from(nbits), dirs.len() + 1);
                for (j, d) in dirs.iter().enumerate() {
                    prop_assert_eq!((bitmap >> j) & 1 == 1, *d, "bit {}", j);
                }
                prop_assert_eq!((bitmap >> dirs.len()) & 1, 1, "backward branch taken");
            }
            other => prop_assert!(false, "unexpected event {other:?}"),
        }
    }

    #[test]
    fn alternating_paths_never_stabilize(
        head in (1u64..1 << 20).prop_map(|h| h * 8 + (1 << 24)),
    ) {
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        let mut emitted = 0;
        for i in 0..200u64 {
            // One inner branch whose direction flips every iteration.
            if p.observe_branch(head + 8, i % 2 == 0, head + 0x40, true).is_some() {
                emitted += 1;
            }
            if p.observe_branch(head + 0x100, true, head, true).is_some() {
                emitted += 1;
            }
        }
        prop_assert_eq!(emitted, 0, "period-2 paths cannot produce equal consecutive captures");
    }

    #[test]
    fn cold_code_never_emits(
        branches in prop::collection::vec(
            ((1u64..1 << 20), any::<bool>(), (1u64..1 << 20)),
            0..256,
        ),
    ) {
        // Random branches that never revisit the same target 15+ times in a
        // stable way: with fully random (pc, target) pairs repetition is
        // vanishingly unlikely, so no event may fire.
        let mut seen = std::collections::HashMap::new();
        let mut p = BranchProfiler::new(ProfilerConfig::paper_baseline());
        for (pc, taken, tgt) in branches {
            let pc = pc * 8 + (1 << 28);
            let tgt = tgt * 8;
            *seen.entry(tgt).or_insert(0u32) += u32::from(taken && tgt < pc);
            if let Some(e) = p.observe_branch(pc, taken, tgt, true) {
                // Only acceptable if some target genuinely saturated.
                prop_assert!(
                    seen.values().any(|&c| c >= 15),
                    "event without a hot target: {e:?}"
                );
            }
        }
    }
}
