//! # tdo-rand — a tiny deterministic PRNG
//!
//! An in-repo replacement for the external `rand` crate so the workspace
//! builds and tests with no registry access at all. The generator is
//! xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 exactly as the
//! reference implementation recommends; both algorithms are public domain.
//!
//! Everything is deterministic given the seed, which is what the workload
//! generators and the experiment engine rely on: two [`Rng`]s created with
//! the same seed produce the same stream on every platform, every run, and
//! on every thread — there is no global state anywhere in this crate.
//!
//! ```
//! use tdo_rand::Rng;
//!
//! let mut a = Rng::new(7);
//! let mut b = Rng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::Range;

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[range.start, range.end)`, unbiased via rejection.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span =
            range.end.checked_sub(range.start).filter(|s| *s > 0).expect("gen_range: empty range");
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    /// A uniform signed value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range_i64(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range_i64: empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.gen_range(0..span) as i64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.gen_index(i + 1));
        }
    }

    /// A uniformly chosen element.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_index(xs.len())]
    }
}

/// Number of cases a randomized test should run: `dflt` normally, 8× that
/// when any crate in the build enables the `exhaustive` feature.
#[must_use]
pub fn cases(dflt: u32) -> u32 {
    if cfg!(feature = "exhaustive") {
        dflt * 8
    } else {
        dflt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn reference_vector() {
        // xoshiro256++ seeded from SplitMix64(0) — pins the algorithm so an
        // accidental change to the generator shows up as a test failure, not
        // as silently different workloads.
        let mut r = Rng::new(0);
        let first = r.next_u64();
        let mut again = Rng::new(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, r.next_u64(), "stream advances");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10..17);
            assert!((10..17).contains(&v));
            let s = r.gen_range_i64(-5..6);
            assert!((-5..6).contains(&s));
            let i = r.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0..7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all of 0..7 hit: {seen:?}");
    }

    #[test]
    fn bool_probability_is_roughly_right() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::new(13);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(17);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, (0..100).collect::<Vec<u32>>(), "100 elements almost surely move");
    }

    #[test]
    fn choose_picks_members() {
        let mut r = Rng::new(19);
        let xs = [4u8, 8, 15, 16, 23, 42];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
