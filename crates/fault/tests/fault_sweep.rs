//! Seeded probabilistic fault sweeps over the store: the same seed must
//! reproduce the exact same acknowledgement pattern, and read-path
//! corruption must quarantine — never serve garbage.
//!
//! Phases that must not see faults arm an all-off plan; the plane's gate
//! serializes them against sibling tests' armed phases.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tdo_fault::{arm, FaultPlan, Site};
use tdo_rand::Rng;
use tdo_store::Store;

const SCHEMA: u32 = 3;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdo-sweep-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn payload(key: u64) -> Vec<u64> {
    let mut rng = Rng::new(0xBEEF ^ key);
    (0..(2 + key % 7)).map(|_| rng.next_u64()).collect()
}

/// One seeded write sweep: 40 puts under probabilistic faults on every
/// write-path site. Returns (acked keys, per-write-site fires).
fn write_sweep(seed: u64, dir: &Path) -> (Vec<u64>, u64) {
    let store = Store::open(dir).expect("open scratch store");
    let guard = arm(FaultPlan::new(seed)
        .with_prob(Site::StoreShortWrite, 150)
        .with_prob(Site::StoreFsyncFail, 120)
        .with_prob(Site::StoreRenameFail, 120)
        .with_prob(Site::StoreTornRename, 120));
    let acked: Vec<u64> =
        (1..=40u64).filter(|&key| store.put(key, SCHEMA, &payload(key)).is_ok()).collect();
    let fires = guard.summary().iter().map(|r| r.fires).sum();
    (acked, fires)
}

#[test]
fn the_same_seed_reproduces_the_same_sweep() {
    let (dir_a, dir_b, dir_c) = (TempDir::new("a"), TempDir::new("b"), TempDir::new("c"));
    let (acked_a, fires_a) = write_sweep(21, dir_a.path());
    let (acked_b, fires_b) = write_sweep(21, dir_b.path());
    let (acked_c, fires_c) = write_sweep(22, dir_c.path());
    assert_eq!(acked_a, acked_b, "same seed, same acknowledgement pattern");
    assert_eq!(fires_a, fires_b);
    assert!(fires_a > 0, "the sweep must actually inject faults");
    assert!(acked_a.len() < 40, "some puts must fail under the sweep");
    assert!(
        acked_a != acked_c || fires_a != fires_c,
        "a different seed must draw a different schedule"
    );
    // Recovery invariant holds for the faulted stores too.
    let _quiet = arm(FaultPlan::new(0));
    for (dir, acked) in [(&dir_a, &acked_a), (&dir_c, &acked_c)] {
        let reopened = Store::open(dir.path()).expect("reopen");
        for &key in acked.iter() {
            assert_eq!(reopened.get(key, SCHEMA).as_deref(), Some(&payload(key)[..]));
        }
        assert!(reopened.verify().expect("verify").is_clean());
    }
}

#[test]
fn read_corruption_quarantines_and_never_serves_garbage() {
    let dir = TempDir::new("corrupt");
    let keys = 24u64;
    let (served, quarantined) = {
        let store = Store::open(dir.path()).expect("open scratch store");
        {
            let _quiet = arm(FaultPlan::new(0));
            for key in 1..=keys {
                store.put(key, SCHEMA, &payload(key)).expect("clean put");
            }
        }
        let _g = arm(FaultPlan::new(0xC0DE).with_prob(Site::StoreReadCorrupt, 400));
        let mut served = Vec::new();
        let mut quarantined = 0u64;
        for key in 1..=keys {
            match store.get(key, SCHEMA) {
                Some(p) if p == payload(key) => served.push(key),
                Some(_) => panic!("key {key}: a corrupted read served garbage"),
                None => quarantined += 1,
            }
        }
        assert!(quarantined > 0, "p=0.4 over 24 reads must corrupt at least one");
        assert_eq!(store.stats().quarantined, quarantined, "quarantine accounting");
        (served, quarantined)
    };
    // Good-prefix recovery: the served records survive the restart intact.
    let _quiet = arm(FaultPlan::new(0));
    let reopened = Store::open(dir.path()).expect("reopen after corruption");
    for &key in &served {
        assert_eq!(
            reopened.get(key, SCHEMA).as_deref(),
            Some(&payload(key)[..]),
            "surviving key {key} regressed across restart"
        );
    }
    assert!(reopened.verify().expect("verify").is_clean());
    assert!(served.len() as u64 + quarantined == keys);
}
