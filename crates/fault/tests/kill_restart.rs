//! Kill-and-restart chaos at the store layer: fault exactly the `nth`
//! operation of every write-path injection site, keep writing, kill the
//! store (drop) and restart it (reopen) — no acknowledged record may be
//! lost and the log must rescan clean at every injection point.
//!
//! Phases that must *not* see faults arm an all-off plan: the plane's gate
//! mutex then serializes them against the armed phases of sibling tests.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tdo_fault::{arm, FaultPlan, Site};
use tdo_rand::Rng;
use tdo_store::Store;

const SCHEMA: u32 = 3;

const WRITE_SITES: [Site; 4] =
    [Site::StoreShortWrite, Site::StoreFsyncFail, Site::StoreRenameFail, Site::StoreTornRename];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdo-fault-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn payload(key: u64) -> Vec<u64> {
    let mut rng = Rng::new(0xF00D ^ key);
    (0..(3 + key % 9)).map(|_| rng.next_u64()).collect()
}

#[test]
fn every_write_site_and_injection_point_recovers_all_acked_records() {
    for site in WRITE_SITES {
        for nth in 1..=4u64 {
            let dir = TempDir::new("kill");
            let acked;
            let fires;
            {
                // Arm *after* open: opening commits the log header itself.
                let store = Store::open(dir.path()).expect("open scratch store");
                let guard = arm(FaultPlan::new(0xAB00 ^ nth).with_at(site, nth));
                acked = (1..=9u64)
                    .filter(|&key| store.put(key, SCHEMA, &payload(key)).is_ok())
                    .collect::<Vec<_>>();
                fires = guard.summary().iter().find(|r| r.site == site).map_or(0, |r| r.fires);
            }
            // The store was dropped mid-life ("killed"); recovery follows.
            let _quiet = arm(FaultPlan::new(0));
            assert_eq!(fires, 1, "site {} must fire at point {nth}", site.name());
            assert!(acked.len() < 9, "site {} point {nth}: some put must fail", site.name());
            let reopened = Store::open(dir.path()).expect("reopen after kill");
            for &key in &acked {
                assert_eq!(
                    reopened.get(key, SCHEMA).as_deref(),
                    Some(&payload(key)[..]),
                    "site {} point {nth}: acked key {key} lost across restart",
                    site.name()
                );
            }
            let verify = reopened.verify().expect("verify reopened log");
            assert!(
                verify.is_clean(),
                "site {} point {nth}: log not clean after recovery: {verify:?}",
                site.name()
            );
        }
    }
}

#[test]
fn a_torn_append_never_costs_later_records() {
    let dir = TempDir::new("torn");
    {
        let store = Store::open(dir.path()).expect("open scratch store");
        let _g = arm(FaultPlan::new(0x70).with_at(Site::StoreShortWrite, 2));
        assert!(store.put(1, SCHEMA, &payload(1)).is_ok());
        assert!(store.put(2, SCHEMA, &payload(2)).is_err(), "injected short write");
        // The failed append left torn bytes at the log tail; the next put
        // must land after the last *acknowledged* record, not after the
        // garbage.
        assert!(store.put(3, SCHEMA, &payload(3)).is_ok());
        assert_eq!(store.get(1, SCHEMA).as_deref(), Some(&payload(1)[..]));
        assert_eq!(store.get(3, SCHEMA).as_deref(), Some(&payload(3)[..]));
    }
    let _quiet = arm(FaultPlan::new(0));
    let reopened = Store::open(dir.path()).expect("reopen");
    assert_eq!(reopened.get(1, SCHEMA).as_deref(), Some(&payload(1)[..]));
    assert_eq!(reopened.get(3, SCHEMA).as_deref(), Some(&payload(3)[..]));
    assert!(reopened.get(2, SCHEMA).is_none(), "the failed put was never acknowledged");
    assert!(reopened.verify().expect("verify").is_clean());
}
