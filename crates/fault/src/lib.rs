//! # tdo-fault — seeded, deterministic fault injection
//!
//! A process-global fault-injection plane for chaos testing the store,
//! server and experiment-engine layers. Production code declares *named
//! injection sites* ([`Site`]) at its failure-prone operations and asks the
//! plane whether to fail via [`fire`] / [`fire_keyed`]; tests and the
//! `tdo chaos` harness *arm* the plane with a [`FaultPlan`] built from a
//! `tdo_rand` seed.
//!
//! **Zero overhead when disarmed.** Like the `tdo-obs` probe, the disarmed
//! fast path is a single relaxed atomic load returning `None` — no locks,
//! no allocation, no branching on plan state. Production binaries never arm
//! the plane, so shipping the sites costs nothing.
//!
//! **Deterministic when armed.** Every injection decision is a pure
//! function of `(seed, site, n)` where `n` is either the site's hit index
//! (serial scenarios) or a caller-supplied stable key ([`fire_keyed`] —
//! e.g. a cell-fingerprint hash, immune to thread interleaving). Re-running
//! with the same seed reproduces the exact same faults; that is what makes
//! `tdo chaos --seed S` byte-deterministic across runs and `--jobs` values.
//!
//! Arming is serialized on a global gate mutex so concurrent tests in one
//! process cannot observe each other's plans; the [`ArmGuard`] disarms on
//! drop. When a `tdo_metrics::Registry` is supplied ([`arm_with_registry`]),
//! fired injections are counted under `tdo_fault_injected_total{site}` —
//! the family is absent from registries of processes that never arm.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use tdo_metrics::{Counter, Registry};
use tdo_rand::Rng;

/// Number of declared injection sites (length of [`Site::ALL`]).
pub const NSITES: usize = 14;

/// A named fault-injection site compiled into a production code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum Site {
    StoreShortWrite,
    StoreFsyncFail,
    StoreRenameFail,
    StoreTornRename,
    StoreReadCorrupt,
    ServerAcceptFail,
    ServerReadFail,
    ServerWriteFail,
    ServerSlowClient,
    ServerWorkerPanic,
    ServerQueueSaturate,
    EngineCellPanic,
    EngineStoreDegrade,
    EngineHelperJitter,
}

impl Site {
    /// Every declared site, in stable (summary/report) order.
    pub const ALL: [Site; NSITES] = [
        Site::StoreShortWrite,
        Site::StoreFsyncFail,
        Site::StoreRenameFail,
        Site::StoreTornRename,
        Site::StoreReadCorrupt,
        Site::ServerAcceptFail,
        Site::ServerReadFail,
        Site::ServerWriteFail,
        Site::ServerSlowClient,
        Site::ServerWorkerPanic,
        Site::ServerQueueSaturate,
        Site::EngineCellPanic,
        Site::EngineStoreDegrade,
        Site::EngineHelperJitter,
    ];

    /// Stable snake_case name, used as the `site` metric label and in the
    /// chaos coverage summary.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::StoreShortWrite => "store_short_write",
            Site::StoreFsyncFail => "store_fsync_fail",
            Site::StoreRenameFail => "store_rename_fail",
            Site::StoreTornRename => "store_torn_rename",
            Site::StoreReadCorrupt => "store_read_corrupt",
            Site::ServerAcceptFail => "server_accept_fail",
            Site::ServerReadFail => "server_read_fail",
            Site::ServerWriteFail => "server_write_fail",
            Site::ServerSlowClient => "server_slow_client",
            Site::ServerWorkerPanic => "server_worker_panic",
            Site::ServerQueueSaturate => "server_queue_saturate",
            Site::EngineCellPanic => "engine_cell_panic",
            Site::EngineStoreDegrade => "engine_store_degrade",
            Site::EngineHelperJitter => "engine_helper_jitter",
        }
    }

    fn idx(self) -> usize {
        Site::ALL.iter().position(|s| *s == self).expect("site is in ALL")
    }
}

/// Per-site injection mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Mode {
    /// Never fire (the default for every site).
    #[default]
    Off,
    /// Fire pseudo-randomly with probability `per_mille`/1000 per hit
    /// (or per distinct key with [`fire_keyed`]).
    Prob {
        /// Firing probability in thousandths (0..=1000).
        per_mille: u16,
    },
    /// Fire exactly on the `nth` hit of the site (1-based), once.
    At {
        /// 1-based hit index to fire on.
        nth: u64,
    },
}

/// A seeded, per-site fault schedule. Build one with [`FaultPlan::new`] and
/// the `with_*` combinators, then [`arm`] it.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    modes: [Mode; NSITES],
}

impl FaultPlan {
    /// A plan with every site off, decided by `seed` once modes are set.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, modes: [Mode::Off; NSITES] }
    }

    /// The seed the plan (and all its decisions) derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured mode for `site`.
    #[must_use]
    pub fn mode(&self, site: Site) -> Mode {
        self.modes[site.idx()]
    }

    /// Fires `site` with probability `per_mille`/1000 per hit.
    #[must_use]
    pub fn with_prob(mut self, site: Site, per_mille: u16) -> FaultPlan {
        self.modes[site.idx()] = Mode::Prob { per_mille: per_mille.min(1000) };
        self
    }

    /// Fires `site` exactly on its `nth` (1-based) hit.
    #[must_use]
    pub fn with_at(mut self, site: Site, nth: u64) -> FaultPlan {
        self.modes[site.idx()] = Mode::At { nth };
        self
    }

    /// Fires every site in `sites` with probability `per_mille`/1000.
    #[must_use]
    pub fn with_prob_all(mut self, sites: &[Site], per_mille: u16) -> FaultPlan {
        for &site in sites {
            self = self.with_prob(site, per_mille);
        }
        self
    }
}

/// Coverage of one site while the plane was armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteSummary {
    /// The site.
    pub site: Site,
    /// Times production code reached the site while armed.
    pub hits: u64,
    /// Times the plane decided to inject a fault there.
    pub fires: u64,
}

struct Plane {
    /// Per-site decision salts, expanded from the plan seed via `tdo_rand`.
    salts: [u64; NSITES],
    modes: [Mode; NSITES],
    hits: [u64; NSITES],
    fires: [u64; NSITES],
    counters: Option<Vec<Arc<Counter>>>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

fn plane() -> &'static Mutex<Option<Plane>> {
    static PLANE: OnceLock<Mutex<Option<Plane>>> = OnceLock::new();
    PLANE.get_or_init(|| Mutex::new(None))
}

fn lock_plane() -> MutexGuard<'static, Option<Plane>> {
    plane().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keeps the fault plane armed; disarms (and forgets the plan) on drop.
///
/// Holding the guard also holds a process-global gate mutex, so at most one
/// armed section runs at a time — concurrent tests cannot contaminate each
/// other's fault schedules.
pub struct ArmGuard {
    _gate: MutexGuard<'static, ()>,
}

impl ArmGuard {
    /// Per-site hit/fire coverage accumulated since arming.
    #[must_use]
    pub fn summary(&self) -> Vec<SiteSummary> {
        summary()
    }
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_plane() = None;
    }
}

/// Arms the plane with `plan`. Blocks until any other armed section ends.
#[must_use]
pub fn arm(plan: FaultPlan) -> ArmGuard {
    arm_inner(plan, None)
}

/// Arms the plane and counts fired injections in `reg` under
/// `tdo_fault_injected_total{site}`. The family is only ever registered
/// here, so a registry that never arms renders no `tdo_fault_*` lines.
#[must_use]
pub fn arm_with_registry(plan: FaultPlan, reg: &Registry) -> ArmGuard {
    let counters = Site::ALL
        .iter()
        .map(|site| {
            reg.counter(
                "tdo_fault_injected_total",
                &[("site", site.name())],
                "Faults injected by the tdo-fault plane (armed runs only).",
            )
        })
        .collect();
    arm_inner(plan, Some(counters))
}

fn arm_inner(plan: FaultPlan, counters: Option<Vec<Arc<Counter>>>) -> ArmGuard {
    let gate = gate().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = Rng::new(plan.seed);
    let salts = std::array::from_fn(|_| rng.next_u64());
    *lock_plane() =
        Some(Plane { salts, modes: plan.modes, hits: [0; NSITES], fires: [0; NSITES], counters });
    ARMED.store(true, Ordering::SeqCst);
    ArmGuard { _gate: gate }
}

/// Whether the plane is currently armed.
#[must_use]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Asks the plane whether to inject a fault at `site`, deciding by the
/// site's hit index. Returns `None` (always, at one atomic load's cost)
/// when disarmed; when firing, returns a deterministic 64-bit entropy token
/// the caller may use to derive fault details (flip position, jitter, ...).
///
/// Hit-index decisions are only reproducible when the site is reached in a
/// deterministic order — use [`fire_keyed`] from concurrent code.
#[must_use]
pub fn fire(site: Site) -> Option<u64> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    decide(site, None)
}

/// Like [`fire`], but `Prob` decisions derive from the caller's stable
/// `key` instead of the hit index, so they are independent of thread
/// interleaving and worker count. `At { nth }` still counts hits.
#[must_use]
pub fn fire_keyed(site: Site, key: u64) -> Option<u64> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    decide(site, Some(key))
}

fn decide(site: Site, key: Option<u64>) -> Option<u64> {
    let mut guard = lock_plane();
    let plane = guard.as_mut()?;
    let i = site.idx();
    plane.hits[i] += 1;
    let fired = match plane.modes[i] {
        Mode::Off => None,
        Mode::Prob { per_mille } => {
            let h = mix(plane.salts[i] ^ key.unwrap_or(plane.hits[i]));
            (h % 1000 < u64::from(per_mille)).then(|| mix(h))
        }
        Mode::At { nth } => (plane.hits[i] == nth).then(|| mix(plane.salts[i] ^ nth)),
    };
    if let Some(token) = fired {
        plane.fires[i] += 1;
        if let Some(counters) = &plane.counters {
            counters[i].inc();
        }
        // Attribute the injection to whatever request is executing: the
        // fired site lands as a point event in the caller's current span,
        // so a chaos failure maps back to the exact trace that hit it.
        tdo_obs::span::point(tdo_obs::FlightKind::Fault, i as u64);
        return Some(token);
    }
    None
}

/// Per-site hit/fire coverage of the currently armed plan (empty when
/// disarmed).
#[must_use]
pub fn summary() -> Vec<SiteSummary> {
    let guard = lock_plane();
    let Some(plane) = guard.as_ref() else {
        return Vec::new();
    };
    Site::ALL
        .iter()
        .map(|&site| {
            let i = site.idx();
            SiteSummary { site, hits: plane.hits[i], fires: plane.fires[i] }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plane_never_fires_and_counts_nothing() {
        assert!(!is_armed());
        for site in Site::ALL {
            assert_eq!(fire(site), None);
            assert_eq!(fire_keyed(site, 42), None);
        }
        assert!(summary().is_empty());
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_hit_index() {
        let run = |seed: u64| {
            let _g = arm(FaultPlan::new(seed).with_prob(Site::StoreShortWrite, 300));
            (0..64).map(|_| fire(Site::StoreShortWrite).is_some()).collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|f| *f), "p=0.3 over 64 hits fires at least once");
        assert!(!a.iter().all(|f| *f), "p=0.3 over 64 hits spares at least one");
    }

    #[test]
    fn keyed_decisions_ignore_hit_order() {
        let keys = [11u64, 22, 33, 44, 55, 66, 77, 88];
        let run = |order: &[u64]| {
            let _g = arm(FaultPlan::new(9).with_prob(Site::EngineStoreDegrade, 500));
            order
                .iter()
                .map(|&k| (k, fire_keyed(Site::EngineStoreDegrade, k).is_some()))
                .collect::<std::collections::HashMap<_, _>>()
        };
        let fwd = run(&keys);
        let mut rev = keys;
        rev.reverse();
        assert_eq!(fwd, run(&rev), "per-key decisions are independent of order");
    }

    #[test]
    fn at_mode_fires_exactly_once_on_the_nth_hit() {
        let _g = arm(FaultPlan::new(3).with_at(Site::StoreFsyncFail, 4));
        let fired: Vec<bool> = (0..8).map(|_| fire(Site::StoreFsyncFail).is_some()).collect();
        assert_eq!(fired, vec![false, false, false, true, false, false, false, false]);
        let s = _g.summary();
        let row = s.iter().find(|r| r.site == Site::StoreFsyncFail).unwrap();
        assert_eq!((row.hits, row.fires), (8, 1));
    }

    #[test]
    fn guard_drop_disarms_and_clears_state() {
        {
            let _g = arm(FaultPlan::new(1).with_prob(Site::ServerReadFail, 1000));
            assert!(is_armed());
            assert!(fire(Site::ServerReadFail).is_some());
        }
        assert!(!is_armed());
        assert_eq!(fire(Site::ServerReadFail), None);
        assert!(summary().is_empty());
    }

    #[test]
    fn registry_counters_track_fires_and_label_sites() {
        let reg = Registry::new();
        {
            let _g =
                arm_with_registry(FaultPlan::new(5).with_prob(Site::StoreReadCorrupt, 1000), &reg);
            for _ in 0..3 {
                assert!(fire(Site::StoreReadCorrupt).is_some());
            }
            assert_eq!(fire(Site::StoreShortWrite), None, "off sites stay off");
        }
        let prom = reg.render_prom();
        assert!(
            prom.contains("tdo_fault_injected_total{site=\"store_read_corrupt\"} 3"),
            "fired site is counted: {prom}"
        );
        assert!(
            prom.contains("tdo_fault_injected_total{site=\"store_short_write\"} 0"),
            "armed-but-silent site renders zero: {prom}"
        );
    }

    #[test]
    fn every_site_has_a_unique_stable_name() {
        let mut names: Vec<&str> = Site::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NSITES);
    }
}
