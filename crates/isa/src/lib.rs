//! # tdo-isa — the instruction-set substrate
//!
//! A small Alpha-flavoured RISC instruction set with a fixed-width 64-bit
//! binary encoding, a two-pass assembler, and a disassembler.
//!
//! This crate exists because the CGO 2006 system this repository reproduces
//! ("A Self-Repairing Prefetcher in an Event-Driven Dynamic Optimization
//! Framework") rewrites *machine code* at runtime: the Trident optimizer
//! streamlines basic blocks into hot traces, splices software `prefetch`
//! instructions into them, and later **repairs** a prefetch by patching the
//! distance bit-field of the encoded instruction in place. A concrete binary
//! encoding with a dedicated, patchable distance field
//! ([`encode::patch_prefetch_distance`]) is therefore part of the substrate,
//! not an implementation detail.
//!
//! ## Quick tour
//!
//! ```
//! use tdo_isa::{Asm, Reg, AluOp, Cond, encode};
//!
//! // Assemble a loop that sums an array.
//! let (ptr, acc, n, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
//! let mut a = Asm::new(0x1_0000);
//! a.li(ptr, 0x10_0000);
//! a.li(n, 128);
//! a.label("loop");
//! a.ldq(v, ptr, 0);
//! a.op(AluOp::Add, acc, v, acc);
//! a.lda(ptr, ptr, 8);
//! a.op_imm(AluOp::Sub, n, 1, n);
//! a.bcond_to(Cond::Ne, n, "loop");
//! a.halt();
//! let code = a.assemble().unwrap();
//!
//! // Every word round-trips through the decoder.
//! for w in &code {
//!     encode::decode(*w).unwrap();
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod asm;
pub mod encode;
pub mod inst;
pub mod parse;
pub mod program;
pub mod reg;

pub use asm::{Asm, AsmError};
pub use encode::{
    decode, encode, is_prefetch_word, patch_prefetch_distance, prefetch_distance, DecodeError,
    EncodeError, Word, MAX_PREFETCH_DISTANCE,
};
pub use inst::{AluOp, Cond, FpuOp, Inst, LoadKind, Uses, INST_BYTES};
pub use parse::{parse_inst, ParseError};
pub use program::{DataSegment, Program};
pub use reg::{Reg, NUM_REGS};
