//! Architectural register model.
//!
//! The ISA exposes a single flat space of 64 registers: `r0`–`r31` are the
//! integer registers and `f0`–`f31` (indices 32–63) are the floating-point
//! registers. Register `r31` always reads as zero, mirroring the Alpha
//! convention the original CGO 2006 evaluation platform used.

use std::fmt;

/// Number of architectural registers (32 integer + 32 floating point).
pub const NUM_REGS: usize = 64;

/// An architectural register.
///
/// Construct via [`Reg::int`], [`Reg::fp`], or the [`Reg::R0`]-style
/// constants. The inner index is guaranteed to be `< 64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The always-zero integer register (`r31`).
    pub const ZERO: Reg = Reg(31);
    /// Integer register 0 (conventionally the function result).
    pub const R0: Reg = Reg(0);
    /// Stack pointer by convention (`r30`).
    pub const SP: Reg = Reg(30);

    /// Returns integer register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub const fn int(i: u8) -> Reg {
        assert!(i < 32, "integer register index out of range");
        Reg(i)
    }

    /// Returns floating-point register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub const fn fp(i: u8) -> Reg {
        assert!(i < 32, "floating-point register index out of range");
        Reg(32 + i)
    }

    /// Builds a register from a raw flat index in `0..64`.
    #[must_use]
    pub fn from_index(i: u8) -> Option<Reg> {
        (i < NUM_REGS as u8).then_some(Reg(i))
    }

    /// The flat index of this register in `0..64`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the 32 integer registers.
    #[must_use]
    pub const fn is_int(self) -> bool {
        self.0 < 32
    }

    /// Whether this is one of the 32 floating-point registers.
    #[must_use]
    pub const fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_ranges_are_disjoint() {
        assert!(Reg::int(0).is_int());
        assert!(!Reg::int(0).is_fp());
        assert!(Reg::fp(0).is_fp());
        assert_eq!(Reg::fp(0).index(), 32);
        assert_eq!(Reg::int(31), Reg::ZERO);
    }

    #[test]
    fn zero_register_is_r31() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::int(30).is_zero());
        assert!(!Reg::fp(31).is_zero());
    }

    #[test]
    fn from_index_bounds() {
        assert_eq!(Reg::from_index(0), Some(Reg::R0));
        assert_eq!(Reg::from_index(63), Some(Reg::fp(31)));
        assert_eq!(Reg::from_index(64), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(5).to_string(), "r5");
        assert_eq!(Reg::fp(7).to_string(), "f7");
        assert_eq!(Reg::ZERO.to_string(), "r31");
    }

    #[test]
    #[should_panic(expected = "integer register index out of range")]
    fn int_out_of_range_panics() {
        let _ = Reg::int(32);
    }
}
