//! Program images: code, initial data, and entry point.

use crate::encode::Word;
use crate::inst::INST_BYTES;

/// A contiguous initial-data segment.
#[derive(Clone, Debug)]
pub struct DataSegment {
    /// Base byte address of the segment.
    pub base: u64,
    /// Raw bytes to load at `base`.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Builds a segment of little-endian 64-bit words.
    #[must_use]
    pub fn from_words(base: u64, words: &[u64]) -> DataSegment {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        DataSegment { base, bytes }
    }

    /// Builds a segment of little-endian `f64` values.
    #[must_use]
    pub fn from_f64s(base: u64, values: &[f64]) -> DataSegment {
        let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        DataSegment::from_words(base, &words)
    }
}

/// A complete executable image produced by a workload builder.
#[derive(Clone, Debug)]
pub struct Program {
    /// Human-readable name (benchmark name for the paper workloads).
    pub name: String,
    /// Address of the first instruction executed.
    pub entry: u64,
    /// Byte address of `code[0]`.
    pub code_base: u64,
    /// Encoded instruction words, contiguous from `code_base`.
    pub code: Vec<Word>,
    /// Initial data segments.
    pub data: Vec<DataSegment>,
}

impl Program {
    /// Byte address one past the last instruction.
    #[must_use]
    pub fn code_end(&self) -> u64 {
        self.code_base + self.code.len() as u64 * INST_BYTES
    }

    /// Whether `pc` lies within this program's static code.
    #[must_use]
    pub fn contains_pc(&self, pc: u64) -> bool {
        (self.code_base..self.code_end()).contains(&pc)
    }

    /// The encoded word at instruction address `pc`, if in range and aligned.
    #[must_use]
    pub fn word_at(&self, pc: u64) -> Option<Word> {
        if !self.contains_pc(pc) || !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - self.code_base) / INST_BYTES) as usize;
        self.code.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_at_respects_bounds_and_alignment() {
        let p = Program {
            name: "t".into(),
            entry: 0x1000,
            code_base: 0x1000,
            code: vec![1, 2, 3],
            data: vec![],
        };
        assert_eq!(p.word_at(0x1000), Some(1));
        assert_eq!(p.word_at(0x1010), Some(3));
        assert_eq!(p.word_at(0x1018), None);
        assert_eq!(p.word_at(0x1004), None, "unaligned");
        assert_eq!(p.word_at(0xff8), None);
        assert_eq!(p.code_end(), 0x1018);
    }

    #[test]
    fn data_segment_word_layout_is_little_endian() {
        let s = DataSegment::from_words(0, &[0x0102_0304_0506_0708]);
        assert_eq!(s.bytes[0], 0x08);
        assert_eq!(s.bytes[7], 0x01);
        let f = DataSegment::from_f64s(0, &[1.0]);
        assert_eq!(f.bytes.len(), 8);
        assert_eq!(f64::from_bits(u64::from_le_bytes(f.bytes[..8].try_into().unwrap())), 1.0);
    }
}
