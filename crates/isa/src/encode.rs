//! Fixed-width 64-bit binary encoding of instructions.
//!
//! Every instruction occupies one little-endian 64-bit word:
//!
//! ```text
//!  63      56 55   50 49   44 43   38 37                                0
//! +----------+-------+-------+-------+----------------------------------+
//! |  opcode  |  ra   |  rb   |  rc   |  imm (38-bit signed)             |
//! +----------+-------+-------+-------+----------------------------------+
//! ```
//!
//! The [`Inst::Prefetch`] format reuses the `rb`/`rc`/`imm` space for three
//! dedicated fields so that the *distance* can be patched without touching
//! anything else — the key enabler of the paper's self-repairing mechanism:
//!
//! ```text
//!  63      56 55   50 49      42 41               16 15                0
//! +----------+-------+----------+-------------------+-------------------+
//! |  OPCODE  | base  | distance |  stride (i26)     |  offset (i16)     |
//! +----------+-------+----------+-------------------+-------------------+
//! ```
//!
//! [`patch_prefetch_distance`] rewrites only bits 42..50 of an encoded
//! prefetch, mirroring how the runtime optimizer "updates the prefetch
//! instruction bits with the new distance" (paper §3.5.1).

use std::fmt;

use crate::inst::{AluOp, Cond, FpuOp, Inst, LoadKind};
use crate::reg::Reg;

/// An encoded instruction word.
pub type Word = u64;

const OPC_SHIFT: u32 = 56;
const RA_SHIFT: u32 = 50;
const RB_SHIFT: u32 = 44;
const RC_SHIFT: u32 = 38;
const REG_MASK: u64 = 0x3f;
const IMM_BITS: u32 = 38;
const IMM_MASK: u64 = (1 << IMM_BITS) - 1;

const PF_OFF_BITS: u32 = 16;
const PF_STRIDE_SHIFT: u32 = 16;
const PF_STRIDE_BITS: u32 = 26;
const PF_DIST_SHIFT: u32 = 42;
const PF_DIST_BITS: u32 = 8;
const PF_DIST_MASK: u64 = ((1 << PF_DIST_BITS) - 1) << PF_DIST_SHIFT;

/// Maximum encodable prefetch distance.
pub const MAX_PREFETCH_DISTANCE: u8 = u8::MAX;

const OPC_NOP: u8 = 0x00;
const OPC_ALU_BASE: u8 = 0x01; // ..=0x0c, register form, AluOp::ALL order
const OPC_ALUI_BASE: u8 = 0x11; // ..=0x1c, immediate form
const OPC_LDA: u8 = 0x20;
const OPC_MOVE: u8 = 0x21;
const OPC_LDQ: u8 = 0x28;
const OPC_LDNF: u8 = 0x29;
const OPC_LDF: u8 = 0x2a;
const OPC_STQ: u8 = 0x2b;
const OPC_PREFETCH: u8 = 0x2f;
const OPC_FOP_BASE: u8 = 0x30; // ..=0x33, FpuOp::ALL order
const OPC_BR: u8 = 0x40;
const OPC_JMP: u8 = 0x41;
const OPC_BCOND_BASE: u8 = 0x42; // ..=0x47, Cond::ALL order
const OPC_HALT: u8 = 0x50;

/// Error produced when an instruction's fields do not fit their bit-fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// A generic immediate/displacement exceeded the signed 38-bit field.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
    },
    /// A prefetch offset exceeded the signed 16-bit field.
    PrefetchOffOutOfRange {
        /// The offending value.
        value: i32,
    },
    /// A prefetch stride exceeded the signed 26-bit field.
    PrefetchStrideOutOfRange {
        /// The offending value.
        value: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { value } => {
                write!(f, "immediate {value} does not fit in 38 signed bits")
            }
            EncodeError::PrefetchOffOutOfRange { value } => {
                write!(f, "prefetch offset {value} does not fit in 16 signed bits")
            }
            EncodeError::PrefetchStrideOutOfRange { value } => {
                write!(f, "prefetch stride {value} does not fit in 26 signed bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when decoding an unknown or malformed word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: Word,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#018x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn pack_imm(v: i64) -> Result<u64, EncodeError> {
    if fits_signed(v, IMM_BITS) {
        Ok((v as u64) & IMM_MASK)
    } else {
        Err(EncodeError::ImmOutOfRange { value: v })
    }
}

fn unpack_imm(w: Word) -> i64 {
    let raw = w & IMM_MASK;
    // Sign-extend from 38 bits.
    ((raw << (64 - IMM_BITS)) as i64) >> (64 - IMM_BITS)
}

fn reg_at(w: Word, shift: u32) -> Reg {
    // Encoders only emit valid 6-bit indices, so this cannot fail.
    Reg::from_index(((w >> shift) & REG_MASK) as u8).expect("6-bit register field")
}

fn base(opc: u8) -> Word {
    (opc as u64) << OPC_SHIFT
}

fn with_reg(w: Word, r: Reg, shift: u32) -> Word {
    w | ((r.index() as u64) << shift)
}

/// Encodes one instruction into a word.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an immediate, offset, or stride does not
/// fit its bit-field.
pub fn encode(inst: &Inst) -> Result<Word, EncodeError> {
    Ok(match *inst {
        Inst::Nop => base(OPC_NOP),
        Inst::Op { op, ra, rb, rc } => {
            let idx = AluOp::ALL.iter().position(|o| *o == op).expect("listed op") as u8;
            let w = base(OPC_ALU_BASE + idx);
            with_reg(with_reg(with_reg(w, ra, RA_SHIFT), rb, RB_SHIFT), rc, RC_SHIFT)
        }
        Inst::OpImm { op, ra, imm, rc } => {
            let idx = AluOp::ALL.iter().position(|o| *o == op).expect("listed op") as u8;
            let w = base(OPC_ALUI_BASE + idx) | pack_imm(imm)?;
            with_reg(with_reg(w, ra, RA_SHIFT), rc, RC_SHIFT)
        }
        Inst::Lda { ra, rb, imm } => {
            let w = base(OPC_LDA) | pack_imm(imm)?;
            with_reg(with_reg(w, ra, RA_SHIFT), rb, RB_SHIFT)
        }
        Inst::Move { ra, rc } => with_reg(with_reg(base(OPC_MOVE), ra, RA_SHIFT), rc, RC_SHIFT),
        Inst::Load { ra, rb, off, kind } => {
            let opc = match kind {
                LoadKind::Int => OPC_LDQ,
                LoadKind::NonFaulting => OPC_LDNF,
                LoadKind::Float => OPC_LDF,
            };
            let w = base(opc) | pack_imm(off)?;
            with_reg(with_reg(w, ra, RA_SHIFT), rb, RB_SHIFT)
        }
        Inst::Store { ra, rb, off } => {
            let w = base(OPC_STQ) | pack_imm(off)?;
            with_reg(with_reg(w, ra, RA_SHIFT), rb, RB_SHIFT)
        }
        Inst::Prefetch { base: b, off, stride, dist } => {
            if !fits_signed(off as i64, PF_OFF_BITS) {
                return Err(EncodeError::PrefetchOffOutOfRange { value: off });
            }
            if !fits_signed(stride as i64, PF_STRIDE_BITS) {
                return Err(EncodeError::PrefetchStrideOutOfRange { value: stride });
            }
            let mut w = base(OPC_PREFETCH);
            w = with_reg(w, b, RA_SHIFT);
            w |= (off as u16 as u64) & ((1 << PF_OFF_BITS) - 1);
            w |= ((stride as u64) & ((1 << PF_STRIDE_BITS) - 1)) << PF_STRIDE_SHIFT;
            w |= (dist as u64) << PF_DIST_SHIFT;
            w
        }
        Inst::FOp { op, ra, rb, rc } => {
            let idx = FpuOp::ALL.iter().position(|o| *o == op).expect("listed op") as u8;
            let w = base(OPC_FOP_BASE + idx);
            with_reg(with_reg(with_reg(w, ra, RA_SHIFT), rb, RB_SHIFT), rc, RC_SHIFT)
        }
        Inst::Br { disp } => base(OPC_BR) | pack_imm(disp)?,
        Inst::Bcond { cond, ra, disp } => {
            let idx = Cond::ALL.iter().position(|c| *c == cond).expect("listed cond") as u8;
            let w = base(OPC_BCOND_BASE + idx) | pack_imm(disp)?;
            with_reg(w, ra, RA_SHIFT)
        }
        Inst::Jmp { rb } => with_reg(base(OPC_JMP), rb, RB_SHIFT),
        Inst::Halt => base(OPC_HALT),
    })
}

/// Decodes one instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes.
pub fn decode(w: Word) -> Result<Inst, DecodeError> {
    let opc = (w >> OPC_SHIFT) as u8;
    let ra = reg_at(w, RA_SHIFT);
    let rb = reg_at(w, RB_SHIFT);
    let rc = reg_at(w, RC_SHIFT);
    Ok(match opc {
        OPC_NOP => Inst::Nop,
        o if (OPC_ALU_BASE..OPC_ALU_BASE + 12).contains(&o) => {
            Inst::Op { op: AluOp::ALL[(o - OPC_ALU_BASE) as usize], ra, rb, rc }
        }
        o if (OPC_ALUI_BASE..OPC_ALUI_BASE + 12).contains(&o) => {
            Inst::OpImm { op: AluOp::ALL[(o - OPC_ALUI_BASE) as usize], ra, imm: unpack_imm(w), rc }
        }
        OPC_LDA => Inst::Lda { ra, rb, imm: unpack_imm(w) },
        OPC_MOVE => Inst::Move { ra, rc },
        OPC_LDQ => Inst::Load { ra, rb, off: unpack_imm(w), kind: LoadKind::Int },
        OPC_LDNF => Inst::Load { ra, rb, off: unpack_imm(w), kind: LoadKind::NonFaulting },
        OPC_LDF => Inst::Load { ra, rb, off: unpack_imm(w), kind: LoadKind::Float },
        OPC_STQ => Inst::Store { ra, rb, off: unpack_imm(w) },
        OPC_PREFETCH => {
            let off = (w & 0xffff) as u16 as i16 as i32;
            let raw_stride = (w >> PF_STRIDE_SHIFT) & ((1 << PF_STRIDE_BITS) - 1);
            let stride =
                (((raw_stride << (64 - PF_STRIDE_BITS)) as i64) >> (64 - PF_STRIDE_BITS)) as i32;
            let dist = ((w >> PF_DIST_SHIFT) & ((1 << PF_DIST_BITS) - 1)) as u8;
            Inst::Prefetch { base: ra, off, stride, dist }
        }
        o if (OPC_FOP_BASE..OPC_FOP_BASE + 4).contains(&o) => {
            Inst::FOp { op: FpuOp::ALL[(o - OPC_FOP_BASE) as usize], ra, rb, rc }
        }
        OPC_BR => Inst::Br { disp: unpack_imm(w) },
        o if (OPC_BCOND_BASE..OPC_BCOND_BASE + 6).contains(&o) => {
            Inst::Bcond { cond: Cond::ALL[(o - OPC_BCOND_BASE) as usize], ra, disp: unpack_imm(w) }
        }
        OPC_JMP => Inst::Jmp { rb },
        OPC_HALT => Inst::Halt,
        _ => return Err(DecodeError { word: w }),
    })
}

/// Whether an encoded word is a prefetch instruction.
#[must_use]
pub fn is_prefetch_word(w: Word) -> bool {
    (w >> OPC_SHIFT) as u8 == OPC_PREFETCH
}

/// Reads the distance field of an encoded prefetch word.
///
/// Returns `None` if the word is not a prefetch.
#[must_use]
pub fn prefetch_distance(w: Word) -> Option<u8> {
    is_prefetch_word(w).then_some(((w & PF_DIST_MASK) >> PF_DIST_SHIFT) as u8)
}

/// Rewrites only the distance bit-field of an encoded prefetch word,
/// leaving base, offset and stride untouched.
///
/// This is the in-place "repair" operation of paper §3.5.1: the optimizer
/// "just update\[s\] the prefetch instruction bits with the new distance".
///
/// Returns `None` if the word is not a prefetch.
#[must_use]
pub fn patch_prefetch_distance(w: Word, dist: u8) -> Option<Word> {
    is_prefetch_word(w).then_some((w & !PF_DIST_MASK) | ((dist as u64) << PF_DIST_SHIFT))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(i: Inst) -> Inst {
        decode(encode(&i).expect("encode")).expect("decode")
    }

    #[test]
    fn round_trip_representative_instructions() {
        let r = Reg::int;
        let cases = [
            Inst::Nop,
            Inst::Halt,
            Inst::Op { op: AluOp::Add, ra: r(1), rb: r(2), rc: r(3) },
            Inst::OpImm { op: AluOp::Mul, ra: r(4), imm: -12345, rc: r(5) },
            Inst::Lda { ra: r(6), rb: r(7), imm: 65536 },
            Inst::Move { ra: Reg::fp(1), rc: Reg::fp(2) },
            Inst::Load { ra: r(8), rb: r(9), off: -8, kind: LoadKind::Int },
            Inst::Load { ra: r(8), rb: r(9), off: 0, kind: LoadKind::NonFaulting },
            Inst::Load { ra: Reg::fp(3), rb: r(9), off: 16, kind: LoadKind::Float },
            Inst::Store { ra: r(10), rb: r(11), off: 24 },
            Inst::Prefetch { base: r(12), off: -32, stride: 4096, dist: 17 },
            Inst::FOp { op: FpuOp::Div, ra: Reg::fp(4), rb: Reg::fp(5), rc: Reg::fp(6) },
            Inst::Br { disp: -100 },
            Inst::Bcond { cond: Cond::Ne, ra: r(13), disp: 42 },
            Inst::Jmp { rb: r(14) },
        ];
        for c in cases {
            assert_eq!(rt(c), c, "round trip failed for {c}");
        }
    }

    #[test]
    fn imm_overflow_is_reported() {
        let i = Inst::Br { disp: 1 << 40 };
        assert_eq!(encode(&i), Err(EncodeError::ImmOutOfRange { value: 1 << 40 }));
        let p = Inst::Prefetch { base: Reg::R0, off: 40000, stride: 0, dist: 0 };
        assert!(matches!(encode(&p), Err(EncodeError::PrefetchOffOutOfRange { .. })));
        let p = Inst::Prefetch { base: Reg::R0, off: 0, stride: 1 << 26, dist: 0 };
        assert!(matches!(encode(&p), Err(EncodeError::PrefetchStrideOutOfRange { .. })));
    }

    #[test]
    fn imm_boundaries_encode() {
        let max = (1i64 << 37) - 1;
        let min = -(1i64 << 37);
        assert_eq!(rt(Inst::Br { disp: max }), Inst::Br { disp: max });
        assert_eq!(rt(Inst::Br { disp: min }), Inst::Br { disp: min });
    }

    #[test]
    fn unknown_opcode_fails_to_decode() {
        assert!(decode(0xff << OPC_SHIFT).is_err());
        assert!(decode((0x0e_u64) << OPC_SHIFT).is_err());
    }

    #[test]
    fn distance_patch_touches_only_distance() {
        let p = Inst::Prefetch { base: Reg::int(9), off: -16, stride: -128, dist: 1 };
        let w = encode(&p).unwrap();
        assert_eq!(prefetch_distance(w), Some(1));
        let w2 = patch_prefetch_distance(w, 33).unwrap();
        assert_eq!(prefetch_distance(w2), Some(33));
        match decode(w2).unwrap() {
            Inst::Prefetch { base, off, stride, dist } => {
                assert_eq!(base, Reg::int(9));
                assert_eq!(off, -16);
                assert_eq!(stride, -128);
                assert_eq!(dist, 33);
            }
            other => panic!("expected prefetch, got {other}"),
        }
    }

    #[test]
    fn patch_rejects_non_prefetch() {
        let w = encode(&Inst::Nop).unwrap();
        assert_eq!(patch_prefetch_distance(w, 5), None);
        assert_eq!(prefetch_distance(w), None);
    }
}
