//! Parsing of the textual instruction syntax produced by [`Inst`]'s
//! `Display` implementation — the inverse of disassembly, so dumps can be
//! edited and reassembled.
//!
//! ```
//! use tdo_isa::{parse_inst, Inst, Reg};
//!
//! let i = parse_inst("ldq r2, 8(r1)").unwrap();
//! assert_eq!(i, Inst::Load {
//!     ra: Reg::int(2),
//!     rb: Reg::int(1),
//!     off: 8,
//!     kind: tdo_isa::LoadKind::Int,
//! });
//! assert_eq!(parse_inst(&i.to_string()), Ok(i));
//! ```

use std::fmt;

use crate::inst::{AluOp, Cond, FpuOp, Inst, LoadKind};
use crate::reg::Reg;

/// Errors from [`parse_inst`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(m: impl Into<String>) -> ParseError {
    ParseError { message: m.into() }
}

fn parse_reg(s: &str) -> Result<Reg, ParseError> {
    let s = s.trim();
    let (kind, rest) = s.split_at(1.min(s.len()));
    let idx: u8 = rest.parse().map_err(|_| err(format!("bad register `{s}`")))?;
    match kind {
        "r" if idx < 32 => Ok(Reg::int(idx)),
        "f" if idx < 32 => Ok(Reg::fp(idx)),
        _ => Err(err(format!("bad register `{s}`"))),
    }
}

fn parse_i64(s: &str) -> Result<i64, ParseError> {
    s.trim().parse().map_err(|_| err(format!("bad immediate `{s}`")))
}

/// Splits `off(base)` into its parts.
fn parse_mem(s: &str) -> Result<(i64, Reg), ParseError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| err(format!("expected off(base), got `{s}`")))?;
    let close = s.rfind(')').ok_or_else(|| err(format!("unclosed `(` in `{s}`")))?;
    Ok((parse_i64(&s[..open])?, parse_reg(&s[open + 1..close])?))
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "cmplt" => AluOp::CmpLt,
        "cmpeq" => AluOp::CmpEq,
        "cmple" => AluOp::CmpLe,
        "cmpult" => AluOp::CmpUlt,
        _ => return None,
    })
}

fn fpu_by_name(name: &str) -> Option<FpuOp> {
    Some(match name {
        "fadd" => FpuOp::Add,
        "fsub" => FpuOp::Sub,
        "fmul" => FpuOp::Mul,
        "fdiv" => FpuOp::Div,
        _ => return None,
    })
}

fn cond_by_name(name: &str) -> Option<Cond> {
    Some(match name {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "ble" => Cond::Le,
        "bgt" => Cond::Gt,
        _ => return None,
    })
}

/// Parses one instruction in the `Display` syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed token.
pub fn parse_inst(text: &str) -> Result<Inst, ParseError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let args: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let want = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!("{mnemonic}: expected {n} operands, got {}", args.len())))
        }
    };

    match mnemonic {
        "nop" => {
            want(0)?;
            Ok(Inst::Nop)
        }
        "halt" => {
            want(0)?;
            Ok(Inst::Halt)
        }
        "mov" => {
            want(2)?;
            Ok(Inst::Move { rc: parse_reg(args[0])?, ra: parse_reg(args[1])? })
        }
        "lda" => {
            want(2)?;
            let (imm, rb) = parse_mem(args[1])?;
            Ok(Inst::Lda { ra: parse_reg(args[0])?, rb, imm })
        }
        "ldq" | "ldnf" | "ldf" => {
            want(2)?;
            let (off, rb) = parse_mem(args[1])?;
            let kind = match mnemonic {
                "ldq" => LoadKind::Int,
                "ldnf" => LoadKind::NonFaulting,
                _ => LoadKind::Float,
            };
            Ok(Inst::Load { ra: parse_reg(args[0])?, rb, off, kind })
        }
        "stq" => {
            want(2)?;
            let (off, rb) = parse_mem(args[1])?;
            Ok(Inst::Store { ra: parse_reg(args[0])?, rb, off })
        }
        "prefetch" => {
            // prefetch OFF+STRIDE*DIST(base)
            want(1)?;
            let (expr, base) = {
                let s = args[0];
                let open = s.find('(').ok_or_else(|| err("prefetch needs (base)"))?;
                let close = s.rfind(')').ok_or_else(|| err("unclosed ("))?;
                (&s[..open], parse_reg(&s[open + 1..close])?)
            };
            let plus = expr.find('+').ok_or_else(|| err("prefetch needs off+stride*dist"))?;
            let star = expr.rfind('*').ok_or_else(|| err("prefetch needs stride*dist"))?;
            let off: i32 = expr[..plus].trim().parse().map_err(|_| err("bad prefetch offset"))?;
            let stride: i32 =
                expr[plus + 1..star].trim().parse().map_err(|_| err("bad prefetch stride"))?;
            let dist: u8 =
                expr[star + 1..].trim().parse().map_err(|_| err("bad prefetch distance"))?;
            Ok(Inst::Prefetch { base, off, stride, dist })
        }
        "br" => {
            want(1)?;
            Ok(Inst::Br { disp: parse_i64(args[0])? })
        }
        "jmp" => {
            want(1)?;
            let s = args[0];
            let open = s.find('(').ok_or_else(|| err("jmp needs (reg)"))?;
            let close = s.rfind(')').ok_or_else(|| err("unclosed ("))?;
            Ok(Inst::Jmp { rb: parse_reg(&s[open + 1..close])? })
        }
        m => {
            if let Some(cond) = cond_by_name(m) {
                want(2)?;
                return Ok(Inst::Bcond {
                    cond,
                    ra: parse_reg(args[0])?,
                    disp: parse_i64(args[1])?,
                });
            }
            if let Some(op) = fpu_by_name(m) {
                want(3)?;
                return Ok(Inst::FOp {
                    op,
                    rc: parse_reg(args[0])?,
                    ra: parse_reg(args[1])?,
                    rb: parse_reg(args[2])?,
                });
            }
            if let Some(op) = m.strip_suffix('i').and_then(alu_by_name) {
                want(3)?;
                return Ok(Inst::OpImm {
                    op,
                    rc: parse_reg(args[0])?,
                    ra: parse_reg(args[1])?,
                    imm: parse_i64(args[2])?,
                });
            }
            if let Some(op) = alu_by_name(m) {
                want(3)?;
                return Ok(Inst::Op {
                    op,
                    rc: parse_reg(args[0])?,
                    ra: parse_reg(args[1])?,
                    rb: parse_reg(args[2])?,
                });
            }
            Err(err(format!("unknown mnemonic `{m}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_representative_forms() {
        assert_eq!(parse_inst("nop"), Ok(Inst::Nop));
        assert_eq!(parse_inst("halt"), Ok(Inst::Halt));
        assert_eq!(
            parse_inst("add r3, r1, r2"),
            Ok(Inst::Op { op: AluOp::Add, ra: Reg::int(1), rb: Reg::int(2), rc: Reg::int(3) })
        );
        assert_eq!(
            parse_inst("subi r3, r1, -5"),
            Ok(Inst::OpImm { op: AluOp::Sub, ra: Reg::int(1), imm: -5, rc: Reg::int(3) })
        );
        assert_eq!(
            parse_inst("prefetch -8+64*17(r9)"),
            Ok(Inst::Prefetch { base: Reg::int(9), off: -8, stride: 64, dist: 17 })
        );
        assert_eq!(
            parse_inst("fmul f3, f1, f2"),
            Ok(Inst::FOp { op: FpuOp::Mul, ra: Reg::fp(1), rb: Reg::fp(2), rc: Reg::fp(3) })
        );
        assert_eq!(
            parse_inst("bne r4, -12"),
            Ok(Inst::Bcond { cond: Cond::Ne, ra: Reg::int(4), disp: -12 })
        );
        assert_eq!(parse_inst("jmp (r7)"), Ok(Inst::Jmp { rb: Reg::int(7) }));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_inst("").is_err());
        assert!(parse_inst("frobnicate r1").is_err());
        assert!(parse_inst("add r1, r2").is_err(), "arity");
        assert!(parse_inst("ldq r1, r2").is_err(), "missing (base)");
        assert!(parse_inst("add r99, r1, r2").is_err(), "register range");
        assert!(parse_inst("prefetch 8(r1)").is_err(), "missing stride*dist");
    }
}
