//! Instruction definitions, operand accessors and def/use analysis.

use std::fmt;

use crate::reg::Reg;

/// Width of one encoded instruction in bytes. The program counter advances by
/// this amount after every non-branching instruction.
pub const INST_BYTES: u64 = 8;

/// Integer ALU operations (register/register and register/immediate forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// `rc = ra + rb`
    Add,
    /// `rc = ra - rb`
    Sub,
    /// `rc = ra * rb` (low 64 bits)
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right (shift amount masked to 6 bits).
    Srl,
    /// Signed compare less-than, producing 0 or 1.
    CmpLt,
    /// Compare equal, producing 0 or 1.
    CmpEq,
    /// Signed compare less-or-equal, producing 0 or 1.
    CmpLe,
    /// Unsigned compare less-than, producing 0 or 1.
    CmpUlt,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::CmpLt,
        AluOp::CmpEq,
        AluOp::CmpLe,
        AluOp::CmpUlt,
    ];

    /// Applies the operation to two 64-bit operands.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::CmpLt => u64::from((a as i64) < (b as i64)),
            AluOp::CmpEq => u64::from(a == b),
            AluOp::CmpLe => u64::from((a as i64) <= (b as i64)),
            AluOp::CmpUlt => u64::from(a < b),
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLe => "cmple",
            AluOp::CmpUlt => "cmpult",
        }
    }
}

/// Floating-point operations. Operands are `f64` values held in FP registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpuOp {
    /// `rc = ra + rb`
    Add,
    /// `rc = ra - rb`
    Sub,
    /// `rc = ra * rb`
    Mul,
    /// `rc = ra / rb`
    Div,
}

impl FpuOp {
    /// All FP operations, in encoding order.
    pub const ALL: [FpuOp; 4] = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div];

    /// Applies the operation to two operands interpreted as `f64` bit patterns.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match self {
            FpuOp::Add => x + y,
            FpuOp::Sub => x - y,
            FpuOp::Mul => x * y,
            FpuOp::Div => x / y,
        };
        r.to_bits()
    }

    fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "fadd",
            FpuOp::Sub => "fsub",
            FpuOp::Mul => "fmul",
            FpuOp::Div => "fdiv",
        }
    }
}

/// Conditional-branch conditions, evaluated against a single register value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Branch if the register equals zero.
    Eq,
    /// Branch if the register is non-zero.
    Ne,
    /// Branch if the register is negative (signed).
    Lt,
    /// Branch if the register is non-negative (signed).
    Ge,
    /// Branch if the register is `<= 0` (signed).
    Le,
    /// Branch if the register is `> 0` (signed).
    Gt,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt];

    /// Evaluates the condition against a register value.
    #[must_use]
    pub fn eval(self, v: u64) -> bool {
        let s = v as i64;
        match self {
            Cond::Eq => s == 0,
            Cond::Ne => s != 0,
            Cond::Lt => s < 0,
            Cond::Ge => s >= 0,
            Cond::Le => s <= 0,
            Cond::Gt => s > 0,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
        }
    }
}

/// Flavours of load instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoadKind {
    /// Ordinary 8-byte integer load.
    Int,
    /// Non-faulting 8-byte load: an unmapped or wild address yields zero
    /// instead of a fault. Inserted by the prefetch optimizer to dereference
    /// speculative pointer values (paper §3.4.3).
    NonFaulting,
    /// 8-byte floating-point load (destination must be an FP register).
    Float,
}

/// One decoded instruction.
///
/// Instructions are encoded into a fixed-width 64-bit word
/// (see [`mod@crate::encode`]); the [`Inst::Prefetch`] encoding reserves a
/// dedicated *distance* bit-field so the dynamic optimizer can re-tune a
/// prefetch by patching those bits in place, exactly as the paper's
/// self-repairing mechanism does.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Integer ALU, register form: `rc = ra <op> rb`.
    Op {
        /// Operation.
        op: AluOp,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
        /// Destination.
        rc: Reg,
    },
    /// Integer ALU, immediate form: `rc = ra <op> imm`.
    OpImm {
        /// Operation.
        op: AluOp,
        /// Source register.
        ra: Reg,
        /// Sign-extended immediate (must fit in 32 bits when encoded).
        imm: i64,
        /// Destination.
        rc: Reg,
    },
    /// Load address: `ra = rb + imm`. This is the canonical induction-variable
    /// update the stride classifier looks for (paper §3.4.1).
    Lda {
        /// Destination.
        ra: Reg,
        /// Base register.
        rb: Reg,
        /// Sign-extended displacement.
        imm: i64,
    },
    /// Register move: `rc = ra`. Also the instruction Trident substitutes for
    /// store/load conversion pairs in legacy code (paper §3.2).
    Move {
        /// Source.
        ra: Reg,
        /// Destination.
        rc: Reg,
    },
    /// Memory load: `ra = mem[rb + off]`.
    Load {
        /// Destination register.
        ra: Reg,
        /// Base address register.
        rb: Reg,
        /// Byte offset.
        off: i64,
        /// Load flavour.
        kind: LoadKind,
    },
    /// Memory store: `mem[rb + off] = ra`.
    Store {
        /// Source register.
        ra: Reg,
        /// Base address register.
        rb: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Software prefetch of `mem[base + off + stride * dist]`.
    ///
    /// `dist` is the *prefetch distance* in loop iterations; it lives in its
    /// own bit-field of the encoded word so it can be repaired in place.
    Prefetch {
        /// Base address register.
        base: Reg,
        /// Byte offset of the target load from the base register.
        off: i32,
        /// Byte stride per iteration.
        stride: i32,
        /// Prefetch distance in iterations.
        dist: u8,
    },
    /// Floating point ALU: `rc = ra <op> rb`.
    FOp {
        /// Operation.
        op: FpuOp,
        /// First source (FP register).
        ra: Reg,
        /// Second source (FP register).
        rb: Reg,
        /// Destination (FP register).
        rc: Reg,
    },
    /// Unconditional PC-relative branch. `disp` is in instruction slots:
    /// the target is `pc + 8 + disp * 8`.
    Br {
        /// Signed displacement in instruction slots.
        disp: i64,
    },
    /// Conditional PC-relative branch on `ra`.
    Bcond {
        /// Condition.
        cond: Cond,
        /// Register tested.
        ra: Reg,
        /// Signed displacement in instruction slots.
        disp: i64,
    },
    /// Indirect jump to the address held in `rb`.
    Jmp {
        /// Register holding the target address.
        rb: Reg,
    },
    /// Stop the executing context.
    Halt,
}

/// Up to two register uses of one instruction.
pub type Uses = [Option<Reg>; 2];

impl Inst {
    /// The register written by this instruction, if any.
    ///
    /// The hard-wired zero register is never reported as a definition.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        let d = match *self {
            Inst::Op { rc, .. }
            | Inst::OpImm { rc, .. }
            | Inst::Move { rc, .. }
            | Inst::FOp { rc, .. } => rc,
            Inst::Lda { ra, .. } | Inst::Load { ra, .. } => ra,
            _ => return None,
        };
        (!d.is_zero()).then_some(d)
    }

    /// The registers read by this instruction (zero register included, since
    /// it still participates in address formation).
    #[must_use]
    pub fn uses(&self) -> Uses {
        match *self {
            Inst::Op { ra, rb, .. } | Inst::FOp { ra, rb, .. } => [Some(ra), Some(rb)],
            Inst::OpImm { ra, .. } | Inst::Move { ra, .. } => [Some(ra), None],
            Inst::Lda { rb, .. } | Inst::Jmp { rb } => [Some(rb), None],
            Inst::Load { rb, .. } => [Some(rb), None],
            Inst::Store { ra, rb, .. } => [Some(ra), Some(rb)],
            Inst::Prefetch { base, .. } => [Some(base), None],
            Inst::Bcond { ra, .. } => [Some(ra), None],
            Inst::Nop | Inst::Br { .. } | Inst::Halt => [None, None],
        }
    }

    /// Whether this instruction reads data memory.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this instruction writes data memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this is any control transfer (branch, jump, or halt).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::Bcond { .. } | Inst::Jmp { .. } | Inst::Halt)
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Bcond { .. })
    }

    /// The taken-path target of a PC-relative branch at address `pc`.
    ///
    /// Returns `None` for non-branching or indirect instructions.
    #[must_use]
    pub fn branch_target(&self, pc: u64) -> Option<u64> {
        let disp = match *self {
            Inst::Br { disp } | Inst::Bcond { disp, .. } => disp,
            _ => return None,
        };
        Some(pc.wrapping_add(INST_BYTES).wrapping_add((disp as u64).wrapping_mul(INST_BYTES)))
    }

    /// Builds a PC-relative displacement (in instruction slots) from a branch
    /// at `pc` to `target`.
    ///
    /// Returns `None` when `target - pc - 8` is not a multiple of the
    /// instruction width.
    #[must_use]
    pub fn disp_between(pc: u64, target: u64) -> Option<i64> {
        let delta = (target as i64).wrapping_sub(pc as i64).wrapping_sub(INST_BYTES as i64);
        (delta % INST_BYTES as i64 == 0).then(|| delta / INST_BYTES as i64)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Op { op, ra, rb, rc } => write!(f, "{} {rc}, {ra}, {rb}", op.mnemonic()),
            Inst::OpImm { op, ra, imm, rc } => {
                write!(f, "{}i {rc}, {ra}, {imm}", op.mnemonic())
            }
            Inst::Lda { ra, rb, imm } => write!(f, "lda {ra}, {imm}({rb})"),
            Inst::Move { ra, rc } => write!(f, "mov {rc}, {ra}"),
            Inst::Load { ra, rb, off, kind } => {
                let m = match kind {
                    LoadKind::Int => "ldq",
                    LoadKind::NonFaulting => "ldnf",
                    LoadKind::Float => "ldf",
                };
                write!(f, "{m} {ra}, {off}({rb})")
            }
            Inst::Store { ra, rb, off } => write!(f, "stq {ra}, {off}({rb})"),
            Inst::Prefetch { base, off, stride, dist } => {
                write!(f, "prefetch {off}+{stride}*{dist}({base})")
            }
            Inst::FOp { op, ra, rb, rc } => write!(f, "{} {rc}, {ra}, {rb}", op.mnemonic()),
            Inst::Br { disp } => write!(f, "br {disp}"),
            Inst::Bcond { cond, ra, disp } => write!(f, "{} {ra}, {disp}", cond.mnemonic()),
            Inst::Jmp { rb } => write!(f, "jmp ({rb})"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX);
        assert_eq!(AluOp::Mul.apply(6, 7), 42);
        assert_eq!(AluOp::Sll.apply(1, 10), 1024);
        assert_eq!(AluOp::Srl.apply(1024, 4), 64);
        assert_eq!(AluOp::CmpLt.apply(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::CmpUlt.apply(u64::MAX, 0), 0, "max !< 0 unsigned");
        assert_eq!(AluOp::CmpEq.apply(5, 5), 1);
        assert_eq!(AluOp::CmpLe.apply(5, 5), 1);
    }

    #[test]
    fn fpu_semantics() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(f64::from_bits(FpuOp::Add.apply(a, b)), 3.5);
        assert_eq!(f64::from_bits(FpuOp::Mul.apply(a, b)), 3.0);
        assert_eq!(f64::from_bits(FpuOp::Div.apply(a, b)), 0.75);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(0));
        assert!(!Cond::Eq.eval(1));
        assert!(Cond::Lt.eval((-3i64) as u64));
        assert!(Cond::Ge.eval(0));
        assert!(Cond::Le.eval(0));
        assert!(Cond::Gt.eval(9));
        assert!(!Cond::Gt.eval(0));
    }

    #[test]
    fn def_never_reports_zero_register() {
        let i = Inst::Lda { ra: Reg::ZERO, rb: Reg::int(1), imm: 8 };
        assert_eq!(i.def(), None);
        let i = Inst::Lda { ra: Reg::int(2), rb: Reg::int(1), imm: 8 };
        assert_eq!(i.def(), Some(Reg::int(2)));
    }

    #[test]
    fn uses_of_store_and_prefetch() {
        let s = Inst::Store { ra: Reg::int(1), rb: Reg::int(2), off: 0 };
        assert_eq!(s.uses(), [Some(Reg::int(1)), Some(Reg::int(2))]);
        let p = Inst::Prefetch { base: Reg::int(3), off: 8, stride: 64, dist: 2 };
        assert_eq!(p.uses(), [Some(Reg::int(3)), None]);
        assert_eq!(p.def(), None);
    }

    #[test]
    fn branch_target_round_trips_with_disp_between() {
        let pc = 0x1000;
        for target in [0x1008u64, 0x0FF0, 0x2000, 0x1000] {
            let disp = Inst::disp_between(pc, target).unwrap();
            let b = Inst::Br { disp };
            assert_eq!(b.branch_target(pc), Some(target));
        }
        assert_eq!(Inst::disp_between(pc, 0x1009), None);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Halt.is_control());
        assert!(Inst::Br { disp: 0 }.is_control());
        assert!(Inst::Bcond { cond: Cond::Eq, ra: Reg::R0, disp: 1 }.is_cond_branch());
        assert!(!Inst::Nop.is_control());
    }
}
