//! A small two-pass assembler with symbolic labels.
//!
//! The workload generators build their programs through [`Asm`]; branches may
//! reference labels defined before or after the branch. [`Asm::assemble`]
//! resolves labels and produces the encoded code image.

use std::collections::HashMap;
use std::fmt;

use crate::encode::{encode, EncodeError, Word};
use crate::inst::{AluOp, Cond, Inst, LoadKind, INST_BYTES};
use crate::reg::Reg;

/// Errors produced while assembling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The redefined label.
        label: String,
    },
    /// An instruction field overflowed during encoding.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

enum Item {
    Fixed(Inst),
    BrTo(String),
    BcondTo(Cond, Reg, String),
}

/// A two-pass assembler.
///
/// # Examples
///
/// ```
/// use tdo_isa::{Asm, Reg, AluOp};
///
/// let mut a = Asm::new(0x1000);
/// let (r1, r2) = (Reg::int(1), Reg::int(2));
/// a.lda(r1, Reg::ZERO, 10);          // r1 = 10
/// a.label("loop");
/// a.op_imm(AluOp::Add, r2, 1, r2);   // r2 += 1
/// a.op_imm(AluOp::Sub, r1, 1, r1);   // r1 -= 1
/// a.bcond_to(tdo_isa::Cond::Ne, r1, "loop");
/// a.halt();
/// let code = a.assemble().unwrap();
/// assert_eq!(code.len(), 5);
/// ```
pub struct Asm {
    base: u64,
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl Asm {
    /// Creates an assembler whose first instruction lives at `base`.
    #[must_use]
    pub fn new(base: u64) -> Asm {
        Asm { base, items: Vec::new(), labels: HashMap::new() }
    }

    /// The address the next pushed instruction will occupy.
    #[must_use]
    pub fn here(&self) -> u64 {
        self.base + self.items.len() as u64 * INST_BYTES
    }

    /// The base address of the program being assembled.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Defines `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (programming error in a
    /// workload builder).
    pub fn label(&mut self, label: impl Into<String>) {
        let label = label.into();
        let prev = self.labels.insert(label.clone(), self.items.len());
        assert!(prev.is_none(), "duplicate label `{label}`");
    }

    /// Emits an arbitrary instruction.
    pub fn push(&mut self, inst: Inst) {
        self.items.push(Item::Fixed(inst));
    }

    /// Emits `rc = ra <op> rb`.
    pub fn op(&mut self, op: AluOp, ra: Reg, rb: Reg, rc: Reg) {
        self.push(Inst::Op { op, ra, rb, rc });
    }

    /// Emits `rc = ra <op> imm`.
    pub fn op_imm(&mut self, op: AluOp, ra: Reg, imm: i64, rc: Reg) {
        self.push(Inst::OpImm { op, ra, imm, rc });
    }

    /// Emits `ra = rb + imm`.
    pub fn lda(&mut self, ra: Reg, rb: Reg, imm: i64) {
        self.push(Inst::Lda { ra, rb, imm });
    }

    /// Emits a 64-bit constant into `ra` (one or two instructions).
    pub fn li(&mut self, ra: Reg, value: i64) {
        if (-(1 << 37)..(1 << 37)).contains(&value) {
            self.lda(ra, Reg::ZERO, value);
        } else {
            // lda + shift + or for wide values.
            let hi = value >> 32;
            let lo = value & 0xffff_ffff;
            self.lda(ra, Reg::ZERO, hi);
            self.op_imm(AluOp::Sll, ra, 32, ra);
            self.op_imm(AluOp::Or, ra, lo, ra);
        }
    }

    /// Emits `mov rc, ra`.
    pub fn mov(&mut self, ra: Reg, rc: Reg) {
        self.push(Inst::Move { ra, rc });
    }

    /// Emits an integer load `ra = mem[rb + off]`.
    pub fn ldq(&mut self, ra: Reg, rb: Reg, off: i64) {
        self.push(Inst::Load { ra, rb, off, kind: LoadKind::Int });
    }

    /// Emits a floating-point load.
    pub fn ldf(&mut self, ra: Reg, rb: Reg, off: i64) {
        self.push(Inst::Load { ra, rb, off, kind: LoadKind::Float });
    }

    /// Emits a store `mem[rb + off] = ra`.
    pub fn stq(&mut self, ra: Reg, rb: Reg, off: i64) {
        self.push(Inst::Store { ra, rb, off });
    }

    /// Emits a software prefetch.
    pub fn prefetch(&mut self, base: Reg, off: i32, stride: i32, dist: u8) {
        self.push(Inst::Prefetch { base, off, stride, dist });
    }

    /// Emits an unconditional branch to `label`.
    pub fn br_to(&mut self, label: impl Into<String>) {
        self.items.push(Item::BrTo(label.into()));
    }

    /// Emits a conditional branch on `ra` to `label`.
    pub fn bcond_to(&mut self, cond: Cond, ra: Reg, label: impl Into<String>) {
        self.items.push(Item::BcondTo(cond, ra, label.into()));
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    /// Resolves the address of a defined label.
    #[must_use]
    pub fn label_addr(&self, label: &str) -> Option<u64> {
        self.labels.get(label).map(|&i| self.base + i as u64 * INST_BYTES)
    }

    /// Resolves labels and encodes all instructions.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] for dangling references or
    /// [`AsmError::Encode`] for field overflows.
    pub fn assemble(&self) -> Result<Vec<Word>, AsmError> {
        let mut words = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let pc = self.base + i as u64 * INST_BYTES;
            let inst = match item {
                Item::Fixed(inst) => *inst,
                Item::BrTo(label) => {
                    let target = self
                        .label_addr(label)
                        .ok_or_else(|| AsmError::UndefinedLabel { label: label.clone() })?;
                    let disp = Inst::disp_between(pc, target).expect("aligned label");
                    Inst::Br { disp }
                }
                Item::BcondTo(cond, ra, label) => {
                    let target = self
                        .label_addr(label)
                        .ok_or_else(|| AsmError::UndefinedLabel { label: label.clone() })?;
                    let disp = Inst::disp_between(pc, target).expect("aligned label");
                    Inst::Bcond { cond: *cond, ra: *ra, disp }
                }
            };
            words.push(encode(&inst)?);
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new(0x2000);
        a.label("top");
        a.br_to("bottom"); // forward
        a.push(Inst::Nop);
        a.label("bottom");
        a.br_to("top"); // backward
        let code = a.assemble().unwrap();
        let b0 = decode(code[0]).unwrap();
        assert_eq!(b0.branch_target(0x2000), Some(0x2010));
        let b2 = decode(code[2]).unwrap();
        assert_eq!(b2.branch_target(0x2010), Some(0x2000));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0);
        a.br_to("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel { label: "nowhere".into() }));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new(0);
        a.label("x");
        a.label("x");
    }

    #[test]
    fn li_small_is_single_instruction() {
        let mut a = Asm::new(0);
        a.li(Reg::int(1), 42);
        assert_eq!(a.len(), 1);
        let mut b = Asm::new(0);
        b.li(Reg::int(1), 1 << 40);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn here_tracks_addresses() {
        let mut a = Asm::new(0x100);
        assert_eq!(a.here(), 0x100);
        a.halt();
        assert_eq!(a.here(), 0x108);
    }
}
