//! Word-level assembler/disassembler properties, per instruction class:
//! every *canonical* word re-assembles to itself bit for bit
//! (`encode(decode(w)) == w`), decoding accepts exactly the defined opcode
//! space (rejecting everything else without panicking), canonicalization is
//! a projection, and the prefetch distance-field patch is exactly the
//! re-encoding of the decoded-and-updated instruction.

use tdo_isa::{
    decode, encode, is_prefetch_word, patch_prefetch_distance, prefetch_distance, AluOp, Cond,
    FpuOp, Inst, LoadKind, Reg,
};
use tdo_rand::{cases, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.gen_range(0..64) as u8).unwrap()
}

fn arb_imm38(rng: &mut Rng) -> i64 {
    rng.gen_range_i64(-(1i64 << 37)..(1i64 << 37))
}

/// Every instruction class, by index — the sweep covers each explicitly
/// rather than sampling, so no class can silently drop out of the suite.
const NCLASSES: u64 = 15;

fn arb_class(rng: &mut Rng, class: u64) -> Inst {
    match class {
        0 => Inst::Nop,
        1 => Inst::Halt,
        2 => Inst::Op {
            op: *rng.choose(&AluOp::ALL),
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            rc: arb_reg(rng),
        },
        3 => Inst::OpImm {
            op: *rng.choose(&AluOp::ALL),
            ra: arb_reg(rng),
            imm: arb_imm38(rng),
            rc: arb_reg(rng),
        },
        4 => Inst::Lda { ra: arb_reg(rng), rb: arb_reg(rng), imm: arb_imm38(rng) },
        5 => Inst::Move { ra: arb_reg(rng), rc: arb_reg(rng) },
        6 => Inst::Load {
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            off: arb_imm38(rng),
            kind: LoadKind::Int,
        },
        7 => Inst::Load {
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            off: arb_imm38(rng),
            kind: LoadKind::NonFaulting,
        },
        8 => Inst::Load {
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            off: arb_imm38(rng),
            kind: LoadKind::Float,
        },
        9 => Inst::Store { ra: arb_reg(rng), rb: arb_reg(rng), off: arb_imm38(rng) },
        10 => Inst::Prefetch {
            base: arb_reg(rng),
            off: rng.gen_range_i64(-(1i64 << 15)..(1i64 << 15)) as i32,
            stride: rng.gen_range_i64(-(1i64 << 25)..(1i64 << 25)) as i32,
            dist: rng.next_u64() as u8,
        },
        11 => Inst::FOp {
            op: *rng.choose(&FpuOp::ALL),
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            rc: arb_reg(rng),
        },
        12 => Inst::Br { disp: arb_imm38(rng) },
        13 => Inst::Bcond { cond: *rng.choose(&Cond::ALL), ra: arb_reg(rng), disp: arb_imm38(rng) },
        _ => Inst::Jmp { rb: arb_reg(rng) },
    }
}

/// The opcodes `decode` defines, mirrored from the encoding spec: every
/// other opcode byte must be rejected.
fn opcode_is_defined(opc: u8) -> bool {
    matches!(opc, 0x00 | 0x20 | 0x21 | 0x28..=0x2b | 0x2f | 0x40 | 0x41 | 0x50)
        || (0x01..=0x0c).contains(&opc)
        || (0x11..=0x1c).contains(&opc)
        || (0x30..=0x33).contains(&opc)
        || (0x42..=0x47).contains(&opc)
}

#[test]
fn every_class_reassembles_bit_for_bit() {
    let mut rng = Rng::new(0x15a_0101);
    for class in 0..NCLASSES {
        for case in 0..cases(512) {
            let inst = arb_class(&mut rng, class);
            let w = encode(&inst).expect("generated fields fit");
            let back = decode(w).expect("canonical word decodes");
            let w2 = encode(&back).expect("decoded instruction re-encodes");
            assert_eq!(w2, w, "class {class} case {case}: {inst} re-assembled to a different word");
        }
    }
}

#[test]
fn decode_accepts_exactly_the_defined_opcode_space() {
    let mut rng = Rng::new(0x15a_0102);
    for opc in 0..=255u64 {
        for case in 0..cases(16) {
            // Arbitrary field bits under each opcode byte.
            let w = (opc << 56) | (rng.next_u64() & ((1u64 << 56) - 1));
            let decoded = decode(w);
            if opcode_is_defined(opc as u8) {
                let inst =
                    decoded.unwrap_or_else(|e| panic!("opc {opc:#x} case {case} rejected: {e}"));
                // Canonicalization is a projection: re-encoding reaches a
                // fixed point in one step and preserves the meaning.
                let canon = encode(&inst).expect("decoded instruction re-encodes");
                assert_eq!(decode(canon).expect("canonical decodes"), inst, "opc {opc:#x}");
                assert_eq!(
                    encode(&decode(canon).unwrap()).unwrap(),
                    canon,
                    "opc {opc:#x}: canonical word is a fixed point"
                );
            } else {
                assert!(decoded.is_err(), "undefined opc {opc:#x} must be rejected ({w:#x})");
            }
        }
    }
}

#[test]
fn out_of_range_fields_reject_per_class() {
    let big = 1i64 << 38;
    let r = Reg::int(1);
    let rejected = [
        Inst::OpImm { op: AluOp::Add, ra: r, imm: big, rc: r },
        Inst::OpImm { op: AluOp::Add, ra: r, imm: -big - 1, rc: r },
        Inst::Lda { ra: r, rb: r, imm: big },
        Inst::Load { ra: r, rb: r, off: big, kind: LoadKind::Int },
        Inst::Store { ra: r, rb: r, off: -big - 1 },
        Inst::Br { disp: big },
        Inst::Bcond { cond: Cond::Eq, ra: r, disp: big },
        Inst::Prefetch { base: r, off: 1 << 15, stride: 0, dist: 0 },
        Inst::Prefetch { base: r, off: 0, stride: 1 << 25, dist: 0 },
        Inst::Prefetch { base: r, off: 0, stride: -(1 << 25) - 1, dist: 0 },
    ];
    for inst in rejected {
        assert!(encode(&inst).is_err(), "{inst} must not encode");
    }
}

#[test]
fn distance_patch_is_exactly_reencoding_with_the_new_distance() {
    let mut rng = Rng::new(0x15a_0103);
    for case in 0..cases(256) {
        let inst = arb_class(&mut rng, 10);
        let w = encode(&inst).unwrap();
        assert!(is_prefetch_word(w));
        // Exhaustive over the whole distance field.
        for dist in 0..=u8::MAX {
            let patched = patch_prefetch_distance(w, dist).expect("is a prefetch");
            assert_eq!(prefetch_distance(patched), Some(dist), "case {case}");
            // The patched word is canonical: identical to assembling the
            // decoded instruction with the distance swapped.
            let expected = match decode(w).unwrap() {
                Inst::Prefetch { base, off, stride, .. } => {
                    encode(&Inst::Prefetch { base, off, stride, dist }).unwrap()
                }
                other => panic!("case {case}: {other} is not a prefetch"),
            };
            assert_eq!(patched, expected, "case {case} dist {dist}");
            // Patching is idempotent and reversible.
            assert_eq!(patch_prefetch_distance(patched, dist), Some(patched));
            let dist0 = prefetch_distance(w).unwrap();
            assert_eq!(patch_prefetch_distance(patched, dist0), Some(w));
        }
    }
}

#[test]
fn distance_patch_refuses_every_other_class() {
    let mut rng = Rng::new(0x15a_0104);
    for class in 0..NCLASSES {
        if class == 10 {
            continue; // the prefetch class itself
        }
        for _ in 0..cases(64) {
            let w = encode(&arb_class(&mut rng, class)).unwrap();
            assert!(!is_prefetch_word(w));
            assert_eq!(prefetch_distance(w), None);
            assert_eq!(patch_prefetch_distance(w, 7), None, "class {class}");
        }
    }
}
