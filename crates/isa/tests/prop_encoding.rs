//! Property tests: every constructible instruction round-trips through the
//! binary encoding, and prefetch-distance patching is exact and minimal.

use proptest::prelude::*;
use tdo_isa::{
    decode, encode, patch_prefetch_distance, prefetch_distance, AluOp, Cond, FpuOp, Inst,
    LoadKind, Reg,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_fpu() -> impl Strategy<Value = FpuOp> {
    prop::sample::select(FpuOp::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_imm38() -> impl Strategy<Value = i64> {
    -(1i64 << 37)..(1i64 << 37)
}

fn arb_kind() -> impl Strategy<Value = LoadKind> {
    prop::sample::select(vec![LoadKind::Int, LoadKind::NonFaulting, LoadKind::Float])
}

prop_compose! {
    fn arb_prefetch()(
        base in arb_reg(),
        off in -(1i32 << 15)..(1i32 << 15),
        stride in -(1i32 << 25)..(1i32 << 25),
        dist in any::<u8>(),
    ) -> Inst {
        Inst::Prefetch { base, off, stride, dist }
    }
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, ra, rb, rc)| Inst::Op { op, ra, rb, rc }),
        (arb_alu(), arb_reg(), arb_imm38(), arb_reg())
            .prop_map(|(op, ra, imm, rc)| Inst::OpImm { op, ra, imm, rc }),
        (arb_reg(), arb_reg(), arb_imm38()).prop_map(|(ra, rb, imm)| Inst::Lda { ra, rb, imm }),
        (arb_reg(), arb_reg()).prop_map(|(ra, rc)| Inst::Move { ra, rc }),
        (arb_reg(), arb_reg(), arb_imm38(), arb_kind())
            .prop_map(|(ra, rb, off, kind)| Inst::Load { ra, rb, off, kind }),
        (arb_reg(), arb_reg(), arb_imm38()).prop_map(|(ra, rb, off)| Inst::Store { ra, rb, off }),
        arb_prefetch(),
        (arb_fpu(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, ra, rb, rc)| Inst::FOp { op, ra, rb, rc }),
        arb_imm38().prop_map(|disp| Inst::Br { disp }),
        (arb_cond(), arb_reg(), arb_imm38())
            .prop_map(|(cond, ra, disp)| Inst::Bcond { cond, ra, disp }),
        arb_reg().prop_map(|rb| Inst::Jmp { rb }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(inst in arb_inst()) {
        let w = encode(&inst).expect("all generated fields fit");
        let back = decode(w).expect("decodes");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn patch_changes_exactly_the_distance(pf in arb_prefetch(), new_dist in any::<u8>()) {
        let w = encode(&pf).unwrap();
        let w2 = patch_prefetch_distance(w, new_dist).unwrap();
        prop_assert_eq!(prefetch_distance(w2), Some(new_dist));
        // All non-distance fields identical.
        let (a, b) = (decode(w).unwrap(), decode(w2).unwrap());
        match (a, b) {
            (
                Inst::Prefetch { base: b1, off: o1, stride: s1, .. },
                Inst::Prefetch { base: b2, off: o2, stride: s2, .. },
            ) => {
                prop_assert_eq!(b1, b2);
                prop_assert_eq!(o1, o2);
                prop_assert_eq!(s1, s2);
            }
            _ => prop_assert!(false, "patched word must stay a prefetch"),
        }
        // Patching back restores the original word bit-for-bit.
        let dist0 = prefetch_distance(w).unwrap();
        prop_assert_eq!(patch_prefetch_distance(w2, dist0), Some(w));
    }

    #[test]
    fn branch_displacement_round_trips(pc in (0u64..1 << 40).prop_map(|p| p * 8),
                                       disp in -(1i64 << 30)..(1i64 << 30)) {
        let b = Inst::Br { disp };
        let target = b.branch_target(pc).unwrap();
        prop_assert_eq!(Inst::disp_between(pc, target), Some(disp));
    }

    #[test]
    fn display_never_panics(inst in arb_inst()) {
        let _ = inst.to_string();
    }

    #[test]
    fn display_parse_round_trips(inst in arb_inst()) {
        let text = inst.to_string();
        let back = tdo_isa::parse_inst(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn def_is_none_or_nonzero(inst in arb_inst()) {
        if let Some(d) = inst.def() {
            prop_assert!(!d.is_zero());
        }
    }
}
