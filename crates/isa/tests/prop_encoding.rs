//! Randomized tests: every constructible instruction round-trips through the
//! binary encoding, and prefetch-distance patching is exact and minimal.
//! (Formerly proptest-based; now seeded `tdo_rand` sweeps so the workspace
//! builds with no external dependencies. `--features exhaustive` widens the
//! sweeps.)

use tdo_isa::{
    decode, encode, patch_prefetch_distance, prefetch_distance, AluOp, Cond, FpuOp, Inst, LoadKind,
    Reg,
};
use tdo_rand::{cases, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.gen_range(0..64) as u8).unwrap()
}

fn arb_imm38(rng: &mut Rng) -> i64 {
    rng.gen_range_i64(-(1i64 << 37)..(1i64 << 37))
}

fn arb_kind(rng: &mut Rng) -> LoadKind {
    *rng.choose(&[LoadKind::Int, LoadKind::NonFaulting, LoadKind::Float])
}

fn arb_prefetch(rng: &mut Rng) -> Inst {
    Inst::Prefetch {
        base: arb_reg(rng),
        off: rng.gen_range_i64(-(1i64 << 15)..(1i64 << 15)) as i32,
        stride: rng.gen_range_i64(-(1i64 << 25)..(1i64 << 25)) as i32,
        dist: rng.next_u64() as u8,
    }
}

fn arb_inst(rng: &mut Rng) -> Inst {
    match rng.gen_range(0..12) {
        0 => Inst::Nop,
        1 => Inst::Halt,
        2 => Inst::Op {
            op: *rng.choose(&AluOp::ALL),
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            rc: arb_reg(rng),
        },
        3 => Inst::OpImm {
            op: *rng.choose(&AluOp::ALL),
            ra: arb_reg(rng),
            imm: arb_imm38(rng),
            rc: arb_reg(rng),
        },
        4 => Inst::Lda { ra: arb_reg(rng), rb: arb_reg(rng), imm: arb_imm38(rng) },
        5 => Inst::Move { ra: arb_reg(rng), rc: arb_reg(rng) },
        6 => Inst::Load {
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            off: arb_imm38(rng),
            kind: arb_kind(rng),
        },
        7 => Inst::Store { ra: arb_reg(rng), rb: arb_reg(rng), off: arb_imm38(rng) },
        8 => arb_prefetch(rng),
        9 => Inst::FOp {
            op: *rng.choose(&FpuOp::ALL),
            ra: arb_reg(rng),
            rb: arb_reg(rng),
            rc: arb_reg(rng),
        },
        10 => Inst::Br { disp: arb_imm38(rng) },
        11 => Inst::Bcond { cond: *rng.choose(&Cond::ALL), ra: arb_reg(rng), disp: arb_imm38(rng) },
        _ => Inst::Jmp { rb: arb_reg(rng) },
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = Rng::new(0x15a_0001);
    for case in 0..cases(2048) {
        let inst = arb_inst(&mut rng);
        let w = encode(&inst).expect("all generated fields fit");
        let back = decode(w).expect("decodes");
        assert_eq!(back, inst, "case {case}");
    }
}

#[test]
fn patch_changes_exactly_the_distance() {
    let mut rng = Rng::new(0x15a_0002);
    for case in 0..cases(2048) {
        let pf = arb_prefetch(&mut rng);
        let new_dist = rng.next_u64() as u8;
        let w = encode(&pf).unwrap();
        let w2 = patch_prefetch_distance(w, new_dist).unwrap();
        assert_eq!(prefetch_distance(w2), Some(new_dist), "case {case}");
        // All non-distance fields identical.
        let (a, b) = (decode(w).unwrap(), decode(w2).unwrap());
        match (a, b) {
            (
                Inst::Prefetch { base: b1, off: o1, stride: s1, .. },
                Inst::Prefetch { base: b2, off: o2, stride: s2, .. },
            ) => {
                assert_eq!(b1, b2, "case {case}");
                assert_eq!(o1, o2, "case {case}");
                assert_eq!(s1, s2, "case {case}");
            }
            _ => panic!("case {case}: patched word must stay a prefetch"),
        }
        // Patching back restores the original word bit-for-bit.
        let dist0 = prefetch_distance(w).unwrap();
        assert_eq!(patch_prefetch_distance(w2, dist0), Some(w), "case {case}");
    }
}

#[test]
fn branch_displacement_round_trips() {
    let mut rng = Rng::new(0x15a_0003);
    for case in 0..cases(2048) {
        let pc = rng.gen_range(0..1 << 40) * 8;
        let disp = rng.gen_range_i64(-(1i64 << 30)..(1i64 << 30));
        let b = Inst::Br { disp };
        let target = b.branch_target(pc).unwrap();
        assert_eq!(Inst::disp_between(pc, target), Some(disp), "case {case}");
    }
}

#[test]
fn display_parse_round_trips_and_never_panics() {
    let mut rng = Rng::new(0x15a_0004);
    for case in 0..cases(2048) {
        let inst = arb_inst(&mut rng);
        let text = inst.to_string();
        let back = tdo_isa::parse_inst(&text)
            .unwrap_or_else(|e| panic!("case {case}: `{text}` failed to parse: {e}"));
        assert_eq!(back, inst, "case {case}: `{text}`");
    }
}

#[test]
fn def_is_none_or_nonzero() {
    let mut rng = Rng::new(0x15a_0005);
    for case in 0..cases(2048) {
        let inst = arb_inst(&mut rng);
        if let Some(d) = inst.def() {
            assert!(!d.is_zero(), "case {case}: {inst}");
        }
    }
}
