//! Memory-system statistics, including the Figure 6 load breakdown.

use tdo_arms::ArmKind;

/// How one demand load was classified, following the categories of the
/// paper's Figure 6. The five classes are mutually exclusive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadClass {
    /// L1 hit on a line not (or no longer counted as) prefetched
    /// ("Hits-none").
    Hit,
    /// First demand touch of a line brought in by a prefetch
    /// ("Hit-prefetched").
    HitPrefetched,
    /// The line's prefetch was still in flight; the load pays the remaining
    /// latency ("partial prefetch hit").
    PartialHit,
    /// Ordinary miss.
    Miss,
    /// Miss whose victim line was displaced by a prefetch
    /// ("Miss due to prefetching").
    MissDueToPrefetch,
}

/// Which level of the hierarchy serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// L1 data cache (includes in-flight merges, which are L1-resident tags).
    L1,
    /// A hardware stream buffer.
    StreamBuffer,
    /// L2 cache.
    L2,
    /// L3 cache.
    L3,
    /// Main memory.
    Memory,
}

/// Outcome of one demand load, returned to the core.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// Total latency in cycles until the value is available.
    pub latency: u64,
    /// Level that serviced the access.
    pub level: ServiceLevel,
    /// Figure 6 class.
    pub class: LoadClass,
    /// True when the access missed in the L1 (the DLT's miss criterion).
    pub l1_miss: bool,
}

/// Outcome of a software prefetch request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// A fill was initiated.
    Issued,
    /// The line was already cached or in flight; nothing to do.
    AlreadyPresent,
    /// All MSHRs were busy; the prefetch was dropped.
    Dropped,
}

/// Aggregate counters for the memory system.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// Demand loads classified [`LoadClass::Hit`].
    pub hits: u64,
    /// Demand loads classified [`LoadClass::HitPrefetched`].
    pub hits_prefetched: u64,
    /// Demand loads classified [`LoadClass::PartialHit`].
    pub partial_hits: u64,
    /// Demand loads classified [`LoadClass::Miss`].
    pub misses: u64,
    /// Demand loads classified [`LoadClass::MissDueToPrefetch`].
    pub misses_due_to_prefetch: u64,
    /// Demand loads serviced by each level (L1, stream buffer, L2, L3, memory).
    pub serviced: [u64; 5],
    /// Sum of demand-load latencies.
    pub total_load_latency: u64,
    /// Sum of latencies of loads that missed in L1.
    pub total_miss_latency: u64,
    /// Number of stores.
    pub stores: u64,
    /// Software prefetches that initiated fills.
    pub sw_prefetch_issued: u64,
    /// Software prefetches that found the line present or in flight.
    pub sw_prefetch_redundant: u64,
    /// Software prefetches dropped for lack of MSHRs.
    pub sw_prefetch_dropped: u64,
    /// Dirty-line evictions written back over the DRAM bus.
    pub writebacks: u64,
    /// Prefetch lines issued by each hardware arm kind, indexed by
    /// [`ArmKind::index`]. Folded from the live arm on replacement and at
    /// run end.
    pub arm_issued: [u64; ArmKind::COUNT],
    /// Useful (demand-consumed) prefetches per arm kind.
    pub arm_useful: [u64; ArmKind::COUNT],
    /// Times a live hardware arm was replaced by another at run time (the
    /// initial install does not count).
    pub arm_switches: u64,
}

impl MemStats {
    /// Total demand loads observed.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.hits
            + self.hits_prefetched
            + self.partial_hits
            + self.misses
            + self.misses_due_to_prefetch
    }

    /// Loads that missed in the L1 (all classes that paid more than the hit
    /// latency, except stream-buffer and partial service which are counted
    /// by their own classes).
    #[must_use]
    pub fn l1_misses(&self) -> u64 {
        self.misses + self.misses_due_to_prefetch
    }

    /// Records one classified demand load.
    pub fn record_load(&mut self, r: &AccessResult) {
        match r.class {
            LoadClass::Hit => self.hits += 1,
            LoadClass::HitPrefetched => self.hits_prefetched += 1,
            LoadClass::PartialHit => self.partial_hits += 1,
            LoadClass::Miss => self.misses += 1,
            LoadClass::MissDueToPrefetch => self.misses_due_to_prefetch += 1,
        }
        let idx = match r.level {
            ServiceLevel::L1 => 0,
            ServiceLevel::StreamBuffer => 1,
            ServiceLevel::L2 => 2,
            ServiceLevel::L3 => 3,
            ServiceLevel::Memory => 4,
        };
        self.serviced[idx] += 1;
        self.total_load_latency += r.latency;
        if r.l1_miss {
            self.total_miss_latency += r.latency;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_load_buckets_by_class_and_level() {
        let mut s = MemStats::default();
        s.record_load(&AccessResult {
            latency: 3,
            level: ServiceLevel::L1,
            class: LoadClass::Hit,
            l1_miss: false,
        });
        s.record_load(&AccessResult {
            latency: 350,
            level: ServiceLevel::Memory,
            class: LoadClass::Miss,
            l1_miss: true,
        });
        s.record_load(&AccessResult {
            latency: 120,
            level: ServiceLevel::Memory,
            class: LoadClass::MissDueToPrefetch,
            l1_miss: true,
        });
        assert_eq!(s.loads(), 3);
        assert_eq!(s.l1_misses(), 2);
        assert_eq!(s.total_load_latency, 473);
        assert_eq!(s.total_miss_latency, 470);
        assert_eq!(s.serviced[0], 1);
        assert_eq!(s.serviced[4], 2);
    }
}
