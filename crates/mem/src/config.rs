//! Memory-system configuration (paper Table 1).

use tdo_arms::{
    AdaptiveNextLineConfig, ArmConfig, DeltaConfig, NextLineConfig, StreamBufferConfig,
};

use crate::cache::CacheConfig;

/// Configuration of the whole data-memory subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Unified L3 cache.
    pub l3: CacheConfig,
    /// Full main-memory access latency in cycles.
    pub mem_latency: u64,
    /// DRAM-bus occupancy per line transfer (serializes memory traffic).
    pub bus_occupancy: u64,
    /// Outstanding-miss (MSHR) capacity of the L1.
    pub mshrs: usize,
    /// Capacity of the displaced-by-prefetch tag log that identifies
    /// "misses due to prefetching" for the Figure 6 breakdown.
    pub displaced_log_entries: usize,
    /// The hardware prefetcher arm installed in front of the L2 (the
    /// policy controller in `tdo-sim` may swap it at run time).
    pub arm: ArmConfig,
    /// Tagged next-line prefetching (Smith & Hsu, the paper's §2.2
    /// precursor baseline): a demand miss — or the first touch of a
    /// prefetched line — prefetches the sequentially next line.
    pub next_line: bool,
}

impl MemConfig {
    /// The paper's baseline hierarchy (Table 1):
    /// 64 KB 2-way 3-cycle L1, 512 KB 8-way 11-cycle L2,
    /// 4 MB 16-way 35-cycle L3, 350-cycle memory, 8×8 stream buffers.
    #[must_use]
    pub fn paper_baseline() -> MemConfig {
        MemConfig {
            l1: CacheConfig { size_bytes: 64 << 10, assoc: 2, line_bytes: 64, latency: 3 },
            l2: CacheConfig { size_bytes: 512 << 10, assoc: 8, line_bytes: 64, latency: 11 },
            l3: CacheConfig { size_bytes: 4 << 20, assoc: 16, line_bytes: 64, latency: 35 },
            mem_latency: 350,
            bus_occupancy: 6,
            // Table 1's 64-entry memory queue: the number of misses the
            // memory system keeps in flight.
            mshrs: 64,
            displaced_log_entries: 8192,
            arm: ArmConfig::Stream(StreamBufferConfig::eight_by_eight()),
            next_line: false,
        }
    }

    /// The baseline with the hardware prefetcher disabled.
    #[must_use]
    pub fn no_prefetch() -> MemConfig {
        MemConfig { arm: ArmConfig::None, ..MemConfig::paper_baseline() }
    }

    /// The baseline with the smaller 4×4 stream-buffer configuration.
    #[must_use]
    pub fn hw_four_by_four() -> MemConfig {
        MemConfig {
            arm: ArmConfig::Stream(StreamBufferConfig::four_by_four()),
            ..MemConfig::paper_baseline()
        }
    }

    /// The baseline with the fixed-degree next-line arm instead of stream
    /// buffers.
    #[must_use]
    pub fn hw_next_line() -> MemConfig {
        MemConfig {
            arm: ArmConfig::NextLine(NextLineConfig::default()),
            ..MemConfig::paper_baseline()
        }
    }

    /// The baseline with the adaptive-degree next-line arm (hill-climbed
    /// degree, ChampSim's `next_line_linear_mpki` shape).
    #[must_use]
    pub fn hw_adaptive_next_line() -> MemConfig {
        MemConfig {
            arm: ArmConfig::AdaptiveNextLine(AdaptiveNextLineConfig::default()),
            ..MemConfig::paper_baseline()
        }
    }

    /// The baseline with the PC-stride delta arm.
    #[must_use]
    pub fn hw_delta() -> MemConfig {
        MemConfig { arm: ArmConfig::Delta(DeltaConfig::default()), ..MemConfig::paper_baseline() }
    }

    /// A scaled-down hierarchy for fast unit tests: same latencies, same
    /// relative shape (L1 holds prefetch-ahead state for several streams;
    /// the L3 is far smaller than the test workloads' working sets), an
    /// eighth of the paper's capacities.
    #[must_use]
    pub fn tiny_for_tests() -> MemConfig {
        MemConfig {
            l1: CacheConfig { size_bytes: 8 << 10, assoc: 2, line_bytes: 64, latency: 3 },
            l2: CacheConfig { size_bytes: 32 << 10, assoc: 4, line_bytes: 64, latency: 11 },
            l3: CacheConfig { size_bytes: 128 << 10, assoc: 8, line_bytes: 64, latency: 35 },
            mem_latency: 350,
            bus_occupancy: 6,
            mshrs: 16,
            displaced_log_entries: 1024,
            arm: ArmConfig::None,
            next_line: false,
        }
    }

    /// The latency a load pays when it misses all the way to memory (with an
    /// idle bus). Half of this is the paper's delinquency latency threshold.
    #[must_use]
    pub fn l2_miss_latency(&self) -> u64 {
        self.mem_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_1() {
        let c = MemConfig::paper_baseline();
        assert_eq!(c.l1.size_bytes, 65536);
        assert_eq!(c.l1.assoc, 2);
        assert_eq!(c.l1.latency, 3);
        assert_eq!(c.l2.size_bytes, 524_288);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l2.latency, 11);
        assert_eq!(c.l3.size_bytes, 4 << 20);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.l3.latency, 35);
        assert_eq!(c.mem_latency, 350);
        let sb = c.arm.stream().unwrap();
        assert_eq!((sb.buffers, sb.entries_per_buffer), (8, 8));
        assert_eq!(sb.history_entries, 1024);
    }

    #[test]
    fn geometry_is_consistent() {
        let c = MemConfig::paper_baseline();
        assert_eq!(c.l1.num_sets(), 512);
        assert_eq!(c.l2.num_sets(), 1024);
        assert_eq!(c.l3.num_sets(), 4096);
    }

    #[test]
    fn every_arm_constructor_builds_its_kind() {
        use tdo_arms::ArmKind;
        assert_eq!(MemConfig::no_prefetch().arm, ArmConfig::None);
        assert_eq!(MemConfig::hw_next_line().arm.kind(), Some(ArmKind::NextLine));
        assert_eq!(MemConfig::hw_adaptive_next_line().arm.kind(), Some(ArmKind::AdaptiveNextLine));
        assert_eq!(MemConfig::hw_delta().arm.kind(), Some(ArmKind::Delta));
    }
}
