//! A minimal multiply-xor hasher for the hierarchy's `u64`-keyed tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! key — measurable on the page-table lookup every simulated load makes.
//! Keys here are simulated addresses, not attacker-controlled input, so a
//! single Fibonacci-multiply mix is enough. No external crates: the
//! workspace is dependency-free by policy.
//!
//! Determinism note: the hash function is fixed (no random seed), but
//! callers must still never let map iteration order become observable —
//! the same rule the default hasher already imposed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiply-xor hasher specialized for integer keys. Non-integer writes
/// fall back to a simple byte fold — correct, just not the fast path.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(K);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; fold them
        // down so HashMap's low-bit bucket masking sees them.
        self.0 ^ (self.0 >> 32)
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_u64_keys() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn nearby_keys_do_not_collide_into_one_bucket() {
        // Page-aligned keys differ only in high-ish bits; the multiplier
        // must spread them. Sanity-check distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let mut h = FastHasher::default();
            h.write_u64(i << 12);
            assert!(seen.insert(h.finish()), "collision at key {i}");
        }
    }
}
