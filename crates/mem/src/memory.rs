//! Functional (value-carrying) main memory.
//!
//! The timing side of the hierarchy ([`crate::hierarchy`]) is tag-only; this
//! sparse paged store holds the actual bytes the simulated program reads and
//! writes. Reads of unmapped memory return zero without allocating, which
//! also gives the non-faulting load (`ldnf`) its defined semantics.

use crate::fasthash::FastMap;

const PAGE_BITS: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_BITS;

/// Sparse, page-granular byte-addressable memory.
///
/// The page table is keyed with the crate's [`crate::fasthash::FastHasher`]:
/// every simulated load walks it, so the default SipHash was pure overhead.
#[derive(Default)]
pub struct Memory {
    pages: FastMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (allocated) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte; unmapped memory reads as zero.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_BYTES - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page =
            self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
        page[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Reads a little-endian 64-bit value (fast path for aligned, page-local
    /// accesses; byte-wise otherwise).
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 8 <= PAGE_BYTES {
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            for (i, slot) in b.iter_mut().enumerate() {
                *slot = self.read_u8(addr + i as u64);
            }
            u64::from_le_bytes(b)
        }
    }

    /// Writes a little-endian 64-bit value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        let bytes = value.to_le_bytes();
        if off + 8 <= PAGE_BYTES {
            let page =
                self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page[off..off + 8].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Page-sized chunks keep initial-image loading fast.
        let mut a = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (a as usize) & (PAGE_BYTES - 1);
            let n = (PAGE_BYTES - off).min(rest.len());
            let page =
                self.pages.entry(a >> PAGE_BITS).or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page[off..off + n].copy_from_slice(&rest[..n]);
            a += n as u64;
            rest = &rest[n..];
        }
    }

    /// A simple checksum of all resident bytes, used by integration tests to
    /// assert architectural equivalence across optimization modes.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut keys: Vec<&u64> = self.pages.keys().collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in keys {
            h = h.wrapping_mul(0x100_0000_01b3) ^ k;
            for b in self.pages[k].iter() {
                h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(*b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero_and_do_not_allocate() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_round_trip_aligned_and_straddling() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1000), 0x1122_3344_5566_7788);
        // Straddle a page boundary.
        m.write_u64(0x1ffc, 0xaabb_ccdd_eeff_0011);
        assert_eq!(m.read_u64(0x1ffc), 0xaabb_ccdd_eeff_0011);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn write_bytes_spans_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10000u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(0xfff0, &data);
        for (i, b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(0xfff0 + i as u64), *b);
        }
    }

    #[test]
    fn checksum_is_order_independent_but_content_sensitive() {
        let mut a = Memory::new();
        a.write_u64(0x1000, 7);
        a.write_u64(0x9000, 9);
        let mut b = Memory::new();
        b.write_u64(0x9000, 9);
        b.write_u64(0x1000, 7);
        assert_eq!(a.checksum(), b.checksum());
        b.write_u64(0x1000, 8);
        assert_ne!(a.checksum(), b.checksum());
    }
}
