//! Stride-predictor-directed stream buffers — the paper's *hardware*
//! prefetching baseline (Table 1: "8 stream buffers; each buffer 8 entries;
//! history table 1024 entries; prefetching is guided by a stride predictor"),
//! after Sherwood et al., "Predictor-Directed Stream Buffers" (MICRO 2000)
//! and Farkas et al.'s per-PC stride predictor.
//!
//! On a demand L1 miss the buffers are probed in parallel with the lower
//! hierarchy; a buffer hit promotes the line to L1 and streams the buffer
//! forward. A miss in all buffers trains the per-PC stride predictor and,
//! once the predictor is confident, allocates a buffer (LRU) that runs ahead
//! of the load.

use std::collections::VecDeque;

/// Configuration of the hardware stream-buffer prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamBufferConfig {
    /// Number of independent stream buffers.
    pub buffers: usize,
    /// Entries (prefetched lines) per buffer.
    pub entries_per_buffer: usize,
    /// Entries in the PC-indexed stride history table.
    pub history_entries: usize,
    /// Confidence (0–3) the stride predictor must reach before a buffer is
    /// allocated for a missing load.
    pub allocation_confidence: u8,
}

impl StreamBufferConfig {
    /// The paper's 4-buffer × 4-entry configuration (Figure 2).
    #[must_use]
    pub fn four_by_four() -> StreamBufferConfig {
        StreamBufferConfig {
            buffers: 4,
            entries_per_buffer: 4,
            history_entries: 1024,
            allocation_confidence: 2,
        }
    }

    /// The paper's 8-buffer × 8-entry baseline configuration.
    #[must_use]
    pub fn eight_by_eight() -> StreamBufferConfig {
        StreamBufferConfig {
            buffers: 8,
            entries_per_buffer: 8,
            history_entries: 1024,
            allocation_confidence: 2,
        }
    }
}

/// A per-PC stride predictor with 2-bit confidence.
pub struct StridePredictor {
    entries: Vec<SpEntry>,
    mask: usize,
}

#[derive(Clone, Copy, Default)]
struct SpEntry {
    tag: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    conf: u8,
}

impl StridePredictor {
    /// Builds a predictor with `entries` slots (rounded up to a power of two).
    #[must_use]
    pub fn new(entries: usize) -> StridePredictor {
        let n = entries.next_power_of_two().max(1);
        StridePredictor { entries: vec![SpEntry::default(); n], mask: n - 1 }
    }

    fn slot(&mut self, pc: u64) -> &mut SpEntry {
        let idx = ((pc >> 3) as usize) & self.mask;
        &mut self.entries[idx]
    }

    /// Trains the predictor with an observed `(pc, addr)` access.
    pub fn train(&mut self, pc: u64, addr: u64) {
        let e = self.slot(pc);
        if !e.valid || e.tag != pc {
            *e = SpEntry { tag: pc, valid: true, last_addr: addr, stride: 0, conf: 0 };
            return;
        }
        let new_stride = addr.wrapping_sub(e.last_addr) as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.conf = (e.conf + 1).min(3);
        } else {
            if e.conf == 0 {
                e.stride = new_stride;
            }
            e.conf = e.conf.saturating_sub(1);
        }
        e.last_addr = addr;
    }

    /// The confident stride for `pc`, if any.
    #[must_use]
    pub fn predict(&self, pc: u64, min_conf: u8) -> Option<i64> {
        let idx = ((pc >> 3) as usize) & self.mask;
        let e = &self.entries[idx];
        (e.valid && e.tag == pc && e.conf >= min_conf && e.stride != 0).then_some(e.stride)
    }
}

/// One prefetched line sitting in a buffer.
#[derive(Clone, Copy, Debug)]
pub struct StreamEntry {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Cycle at which the fill completes.
    pub ready_at: u64,
}

struct Buffer {
    valid: bool,
    entries: VecDeque<StreamEntry>,
    stride: i64,
    next_addr: u64,
    last_use: u64,
}

/// A hit found while probing the stream buffers.
#[derive(Clone, Copy, Debug)]
pub struct StreamHit {
    /// Cycle at which the hit line's fill completes (may be in the past).
    pub ready_at: u64,
    /// Index of the buffer that hit (used to stream it forward).
    pub buffer: usize,
}

/// Hard upper bound on entries per buffer (the paper's deepest
/// configuration is 8); sizes [`RefillList`]'s inline storage.
pub const MAX_STREAM_ENTRIES: usize = 16;

/// Up to one buffer depth of refill addresses, stored inline.
///
/// [`StreamBuffers::refill_addresses`] runs after every buffer hit — the
/// hierarchy's hottest prefetcher path — so returning a heap `Vec` there
/// was a per-access allocation. Dereferences as a `&[u64]`.
#[derive(Clone, Copy, Debug)]
pub struct RefillList {
    addrs: [u64; MAX_STREAM_ENTRIES],
    len: usize,
}

impl RefillList {
    const EMPTY: RefillList = RefillList { addrs: [0; MAX_STREAM_ENTRIES], len: 0 };

    #[inline]
    fn push(&mut self, a: u64) {
        self.addrs[self.len] = a;
        self.len += 1;
    }
}

impl std::ops::Deref for RefillList {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.addrs[..self.len]
    }
}

/// The set of stream buffers.
pub struct StreamBuffers {
    cfg: StreamBufferConfig,
    predictor: StridePredictor,
    buffers: Vec<Buffer>,
    line_bytes: u64,
    clock: u64,
    /// Total lines fetched into buffers (stat).
    pub issued: u64,
    /// Total buffer hits (stat).
    pub hits: u64,
    /// Total buffer allocations (stat).
    pub allocations: u64,
}

impl StreamBuffers {
    /// Builds the buffer set for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries_per_buffer` exceeds [`MAX_STREAM_ENTRIES`].
    #[must_use]
    pub fn new(cfg: StreamBufferConfig, line_bytes: u64) -> StreamBuffers {
        assert!(
            cfg.entries_per_buffer <= MAX_STREAM_ENTRIES,
            "buffer depth {} exceeds the inline refill-list bound {MAX_STREAM_ENTRIES}",
            cfg.entries_per_buffer
        );
        let buffers = (0..cfg.buffers)
            .map(|_| Buffer {
                valid: false,
                entries: VecDeque::new(),
                stride: 0,
                next_addr: 0,
                last_use: 0,
            })
            .collect();
        StreamBuffers {
            predictor: StridePredictor::new(cfg.history_entries),
            cfg,
            buffers,
            line_bytes,
            clock: 0,
            issued: 0,
            hits: 0,
            allocations: 0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &StreamBufferConfig {
        &self.cfg
    }

    /// Trains the stride predictor with a committed load.
    pub fn train(&mut self, pc: u64, addr: u64) {
        self.predictor.train(pc, addr);
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Whether any buffer currently holds the line containing `addr`
    /// (non-consuming probe).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.buffers.iter().any(|b| b.valid && b.entries.iter().any(|e| e.line_addr == line))
    }

    /// Probes all buffers for the line containing `addr` and, on a hit,
    /// consumes entries up to and including it.
    ///
    /// The caller must follow up with [`StreamBuffers::refill_addresses`] and
    /// [`StreamBuffers::push_fill`] to stream the buffer forward.
    pub fn probe_and_consume(&mut self, addr: u64) -> Option<StreamHit> {
        let line = self.line_of(addr);
        self.clock += 1;
        for (bi, b) in self.buffers.iter_mut().enumerate() {
            if !b.valid {
                continue;
            }
            if let Some(pos) = b.entries.iter().position(|e| e.line_addr == line) {
                let hit = b.entries[pos];
                b.entries.drain(..=pos);
                b.last_use = self.clock;
                self.hits += 1;
                return Some(StreamHit { ready_at: hit.ready_at, buffer: bi });
            }
        }
        None
    }

    /// Addresses buffer `buffer` wants fetched to return to full depth.
    ///
    /// Call after [`StreamBuffers::probe_and_consume`]; pair each returned
    /// address with a [`StreamBuffers::push_fill`] carrying its fill time.
    #[must_use]
    pub fn refill_addresses(&mut self, buffer: usize) -> RefillList {
        let mut out = RefillList::EMPTY;
        let b = &mut self.buffers[buffer];
        if !b.valid {
            return out;
        }
        let need = self.cfg.entries_per_buffer.saturating_sub(b.entries.len());
        for _ in 0..need {
            out.push(b.next_addr);
            b.next_addr = b.next_addr.wrapping_add(b.stride as u64);
        }
        out
    }

    /// Records a completed fetch request for buffer `buffer`.
    pub fn push_fill(&mut self, buffer: usize, line_addr: u64, ready_at: u64) {
        let line = self.line_of(line_addr);
        self.issued += 1;
        self.buffers[buffer].entries.push_back(StreamEntry { line_addr: line, ready_at });
    }

    /// Considers allocating a buffer for a demand miss at `(pc, addr)`.
    ///
    /// Returns the buffer index and the addresses to fetch when the stride
    /// predictor is confident and the miss does not already stream.
    pub fn consider_allocation(&mut self, pc: u64, addr: u64) -> Option<(usize, RefillList)> {
        let stride = self.predictor.predict(pc, self.cfg.allocation_confidence)?;
        // Skip tiny strides inside one line: next-line behaviour is already
        // covered by stride-1-line streams; a zero line-delta stream is useless.
        let line_stride = if stride.unsigned_abs() < self.line_bytes {
            if stride > 0 {
                self.line_bytes as i64
            } else {
                -(self.line_bytes as i64)
            }
        } else {
            stride
        };
        self.clock += 1;
        // Avoid duplicate streams: an existing buffer already holds (or is
        // about to fetch) the line this stream would start with.
        let first = self.line_of(addr.wrapping_add(line_stride as u64));
        if self.buffers.iter().any(|b| {
            b.valid
                && b.stride == line_stride
                && (self.line_of(b.next_addr) == first
                    || b.entries.iter().any(|e| e.line_addr == first))
        }) {
            return None;
        }
        let victim = self.buffers.iter().position(|b| !b.valid).unwrap_or_else(|| {
            self.buffers
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_use)
                .map(|(i, _)| i)
                .expect("at least one buffer")
        });
        let b = &mut self.buffers[victim];
        b.valid = true;
        b.entries.clear();
        b.stride = line_stride;
        b.next_addr = addr.wrapping_add(line_stride as u64);
        b.last_use = self.clock;
        self.allocations += 1;
        let addrs = self.refill_addresses(victim);
        Some((victim, addrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> StreamBuffers {
        StreamBuffers::new(StreamBufferConfig::four_by_four(), 64)
    }

    #[test]
    fn predictor_needs_repeated_identical_strides() {
        let mut p = StridePredictor::new(64);
        p.train(0x100, 1000);
        assert_eq!(p.predict(0x100, 2), None);
        p.train(0x100, 1064); // stride learned, conf 0
        assert_eq!(p.predict(0x100, 2), None);
        p.train(0x100, 1128); // conf 1
        p.train(0x100, 1192); // conf 2
        assert_eq!(p.predict(0x100, 2), Some(64));
    }

    #[test]
    fn predictor_loses_confidence_on_stride_change() {
        let mut p = StridePredictor::new(64);
        for i in 0..5 {
            p.train(0x8, 100 + i * 8);
        }
        assert_eq!(p.predict(0x8, 2), Some(8));
        p.train(0x8, 5000);
        p.train(0x8, 5001);
        assert_eq!(p.predict(0x8, 2), None);
    }

    #[test]
    fn allocation_requires_confidence() {
        let mut s = sb();
        s.train(0x10, 0x1000);
        assert!(s.consider_allocation(0x10, 0x1000).is_none());
        for i in 1..4u64 {
            s.train(0x10, 0x1000 + i * 64);
        }
        let (buf, addrs) = s.consider_allocation(0x10, 0x10c0).expect("allocates");
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], 0x1100);
        assert_eq!(addrs[1], 0x1140);
        for (i, a) in addrs.iter().enumerate() {
            s.push_fill(buf, *a, 100 + i as u64);
        }
        // Now the streamed line hits.
        let hit = s.probe_and_consume(0x1100).expect("buffer hit");
        assert_eq!(hit.ready_at, 100);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn hit_consumes_preceding_entries_and_reports_refills() {
        let mut s = sb();
        for i in 0..5u64 {
            s.train(0x20, 0x2000 + i * 64);
        }
        let (buf, addrs) = s.consider_allocation(0x20, 0x2100).unwrap();
        for a in addrs.iter() {
            s.push_fill(buf, *a, 0);
        }
        // Hit the third entry: two earlier entries are skipped.
        let third = addrs[2];
        let hit = s.probe_and_consume(third).unwrap();
        assert_eq!(hit.buffer, buf);
        let refills = s.refill_addresses(buf);
        assert_eq!(refills.len(), 3, "three entries consumed, three refills");
        assert_eq!(refills[0], addrs[3] + 64);
    }

    #[test]
    fn sub_line_strides_stream_whole_lines() {
        let mut s = sb();
        for i in 0..6u64 {
            s.train(0x30, 0x3000 + i * 8);
        }
        let (_, addrs) = s.consider_allocation(0x30, 0x3028).unwrap();
        assert_eq!(addrs[0] & 63, addrs[0] & 63);
        assert_eq!(addrs[1] - addrs[0], 64, "line-granular streaming");
    }

    #[test]
    fn duplicate_streams_are_not_allocated() {
        let mut s = sb();
        for i in 0..5u64 {
            s.train(0x40, 0x4000 + i * 64);
        }
        let (buf, addrs) = s.consider_allocation(0x40, 0x4100).unwrap();
        for a in addrs.iter() {
            s.push_fill(buf, *a, 0);
        }
        assert!(s.consider_allocation(0x40, 0x4100).is_none());
        assert_eq!(s.allocations, 1);
    }

    #[test]
    fn probe_miss_returns_none() {
        let mut s = sb();
        assert!(s.probe_and_consume(0x9999).is_none());
        assert_eq!(s.hits, 0);
    }
}
