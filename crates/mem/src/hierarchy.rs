//! The three-level data-cache hierarchy with in-flight fill tracking,
//! MSHR limits, a DRAM bus model, prefetch displacement tracking, and a
//! pluggable hardware prefetcher arm (`tdo-arms`) in front of the L2.
//!
//! All timing flows through [`Hierarchy::load`], [`Hierarchy::store`] and
//! [`Hierarchy::sw_prefetch`]; the functional bytes live separately in
//! [`crate::memory::Memory`].

use std::collections::VecDeque;

use tdo_arms::{ArmConfig, ArmStats, Prefetcher};

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::fasthash::FastSet;
use crate::stats::{AccessResult, LoadClass, MemStats, PrefetchOutcome, ServiceLevel};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Initiator {
    Demand,
    SwPrefetch,
    HwPrefetch,
}

/// One MSHR: an in-flight line fill. Lives in a single arena queue in
/// issue order (see [`Hierarchy::inflight`]) — there is no per-fill heap
/// allocation and no hash map; lookups scan the (small, MSHR-bounded)
/// queue from the newest entry, which matches the old map's
/// latest-insert-wins semantics.
#[derive(Clone, Copy, Debug)]
struct Inflight {
    line: u64,
    complete_at: u64,
    initiator: Initiator,
    level: ServiceLevel,
}

struct Bus {
    free_at: u64,
    occupancy: u64,
}

impl Bus {
    /// Claims the bus at `now`; returns the queueing delay.
    fn acquire(&mut self, now: u64) -> u64 {
        let start = self.free_at.max(now);
        self.free_at = start + self.occupancy;
        start - now
    }
}

/// L2/L3/DRAM — everything below the L1 and the prefetcher arm.
struct Lower {
    l2: Cache,
    l3: Cache,
    bus: Bus,
    mem_latency: u64,
}

impl Lower {
    /// Fetches a line for an L1 fill: returns (latency, servicing level) and
    /// installs the line in the levels it passed through.
    fn fetch(&mut self, now: u64, addr: u64) -> (u64, ServiceLevel) {
        if self.l2.lookup(addr).is_some() {
            return (self.l2.config().latency, ServiceLevel::L2);
        }
        if self.l3.lookup(addr).is_some() {
            self.l2.insert(addr, false);
            return (self.l3.config().latency, ServiceLevel::L3);
        }
        let delay = self.bus.acquire(now);
        self.l3.insert(addr, false);
        self.l2.insert(addr, false);
        (delay + self.mem_latency, ServiceLevel::Memory)
    }

    /// Latency of filling an arm's buffer entry. Probes without disturbing
    /// cache state (prefetch buffers fill from wherever the line lives), but
    /// still pays for the DRAM bus.
    fn probe_latency(&mut self, now: u64, addr: u64) -> u64 {
        if self.l2.probe(addr) {
            self.l2.config().latency
        } else if self.l3.probe(addr) {
            self.l3.config().latency
        } else {
            self.bus.acquire(now) + self.mem_latency
        }
    }
}

/// Bounded FIFO log of line addresses displaced by prefetch fills, used to
/// attribute later misses to prefetching (Figure 6's "miss due to
/// prefetching").
struct DisplacedLog {
    set: FastSet<u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl DisplacedLog {
    fn new(cap: usize) -> DisplacedLog {
        DisplacedLog { set: FastSet::default(), order: VecDeque::new(), cap }
    }

    fn insert(&mut self, line: u64) {
        if self.cap == 0 || !self.set.insert(line) {
            return;
        }
        self.order.push_back(line);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
    }

    fn take(&mut self, line: u64) -> bool {
        // Lazy removal from `order`: stale queue entries are ignored when
        // popped because the set is authoritative.
        self.set.remove(&line)
    }
}

/// The timing model of the entire data-memory subsystem.
pub struct Hierarchy {
    cfg: MemConfig,
    l1: Cache,
    lower: Lower,
    arm: Option<Box<dyn Prefetcher>>,
    /// The MSHR arena: in-flight fills in issue order. Length is the MSHR
    /// occupancy; the front is the oldest fill (pruned first).
    inflight: VecDeque<Inflight>,
    displaced: DisplacedLog,
    /// Aggregate statistics.
    pub stats: MemStats,
}

impl Hierarchy {
    /// Builds the hierarchy described by `cfg`.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(cfg.l1),
            lower: Lower {
                l2: Cache::new(cfg.l2),
                l3: Cache::new(cfg.l3),
                bus: Bus { free_at: 0, occupancy: cfg.bus_occupancy },
                mem_latency: cfg.mem_latency,
            },
            arm: cfg.arm.build(cfg.l1.line_bytes),
            inflight: VecDeque::with_capacity(cfg.mshrs),
            displaced: DisplacedLog::new(cfg.displaced_log_entries),
            stats: MemStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Live statistics of the installed hardware arm (zero when none is).
    #[must_use]
    pub fn arm_stats(&self) -> ArmStats {
        self.arm.as_ref().map_or_else(ArmStats::default, |a| a.stats())
    }

    /// Folds the installed arm's counters into the per-kind aggregate
    /// statistics. Called automatically on [`Hierarchy::set_arm`]; the
    /// simulation driver calls it once more at the end of a run so
    /// [`MemStats::arm_issued`]/[`MemStats::arm_useful`] cover every arm
    /// that ever ran. Folding resets nothing — each arm is folded exactly
    /// once, when it is replaced or when the run ends.
    pub fn fold_arm_stats(&mut self) {
        if let Some(arm) = self.arm.as_ref() {
            let k = arm.kind().index();
            let s = arm.stats();
            self.stats.arm_issued[k] += s.issued;
            self.stats.arm_useful[k] += s.useful;
        }
    }

    /// Replaces the hardware arm at run time (the policy controller's
    /// lever). The outgoing arm's counters are folded; the incoming arm
    /// starts cold (empty buffers, untrained predictor) — switching has a
    /// real warm-up cost, exactly as reconfigurable hardware would.
    /// Replacing a live arm counts as a switch; the initial install from
    /// [`ArmConfig::None`] does not.
    pub fn set_arm(&mut self, cfg: &ArmConfig) {
        if self.arm.is_some() {
            self.stats.arm_switches += 1;
        }
        self.fold_arm_stats();
        self.arm = cfg.build(self.cfg.l1.line_bytes);
    }

    fn prune(&mut self, now: u64) {
        while let Some(front) = self.inflight.front() {
            if front.complete_at > now {
                break;
            }
            self.inflight.pop_front();
        }
    }

    /// The newest in-flight fill of `line`, if any (a line can be
    /// re-fetched after its first fill was evicted; the newest entry is
    /// the live one, as with the old map's insert-overwrites semantics).
    fn inflight_for(&self, line: u64) -> Option<Inflight> {
        self.inflight.iter().rev().find(|e| e.line == line).copied()
    }

    fn mshrs_full(&self) -> bool {
        self.inflight.len() >= self.cfg.mshrs
    }

    /// Extra cycles a demand miss waits for a free MSHR.
    fn mshr_stall(&self, now: u64) -> u64 {
        if self.mshrs_full() {
            self.inflight.front().map_or(0, |e| e.complete_at.saturating_sub(now))
        } else {
            0
        }
    }

    /// Handles an L1 eviction: dirty victims consume write-back bus
    /// bandwidth; victims displaced by a prefetch are logged for Figure 6.
    fn on_l1_eviction(&mut self, now: u64, ev: Option<crate::cache::Eviction>, by_prefetch: bool) {
        let Some(ev) = ev else { return };
        if ev.was_dirty {
            self.lower.bus.acquire(now);
            self.stats.writebacks += 1;
        }
        if by_prefetch {
            self.displaced.insert(ev.line_addr);
        }
    }

    fn track_inflight(&mut self, inf: Inflight) {
        self.inflight.push_back(inf);
    }

    fn refill_arm(&mut self, now: u64, slot: usize) {
        // Split-borrow dance: collect addresses first, then fetch latencies.
        let addrs = match self.arm.as_mut() {
            Some(a) => a.refill_addresses(slot),
            None => return,
        };
        for &a in addrs.iter() {
            let lat = self.lower.probe_latency(now, a);
            self.arm.as_mut().expect("checked above").push_fill(slot, a, now + lat);
        }
    }

    /// A demand load at `(pc, addr)` issued at cycle `now`.
    pub fn load(&mut self, now: u64, pc: u64, addr: u64) -> AccessResult {
        self.prune(now);
        let line = self.l1.line_addr(addr);
        let l1_lat = self.cfg.l1.latency;
        let lookup = self.l1.lookup(addr);
        if let Some(a) = self.arm.as_mut() {
            // Advance the arm's internal state machine, then train it. The
            // tag-miss bit is the miss-rate signal adaptive arms feed on;
            // the stream-buffer arm's predictor ignores it (it trains on
            // every access, exactly as before the arsenal split).
            a.advance(now);
            a.train(pc, addr, lookup.is_none());
        }

        if let Some(hit) = lookup {
            let r = match self.inflight_for(line) {
                Some(inf) if inf.complete_at > now => {
                    // Fill still in flight: pay the remaining latency — but
                    // the arm may already hold the same line from an
                    // earlier hardware prefetch; fills merge and the data
                    // arrives at the earlier of the two times.
                    let mut complete_at = inf.complete_at;
                    let mut arm_slot = None;
                    if let Some(a) = self.arm.as_mut() {
                        if let Some(ah) = a.probe_and_consume(addr) {
                            complete_at = complete_at.min(ah.ready_at.max(now));
                            arm_slot = Some(ah.slot);
                        }
                    }
                    if let Some(b) = arm_slot {
                        self.refill_arm(now, b);
                    } else {
                        // An in-flight prefetch tag is still a *miss* to the
                        // arm's allocator (MSHR-merged misses train and
                        // allocate in real predictor-directed buffers) —
                        // otherwise a badly-timed software prefetch starves
                        // the hardware prefetcher it should complement.
                        self.allocate_arm(now, pc, addr);
                    }
                    let latency = complete_at.saturating_sub(now).max(l1_lat);
                    let class = match inf.initiator {
                        Initiator::Demand => LoadClass::Miss,
                        Initiator::SwPrefetch | Initiator::HwPrefetch => LoadClass::PartialHit,
                    };
                    AccessResult { latency, level: inf.level, class, l1_miss: true }
                }
                _ => {
                    // Tagged next-line prefetching: the first demand touch of
                    // a prefetched line keeps the sequence going.
                    if hit.first_touch_of_prefetch && self.cfg.next_line {
                        self.next_line_prefetch(now, addr);
                    }
                    AccessResult {
                        latency: l1_lat,
                        level: ServiceLevel::L1,
                        class: if hit.first_touch_of_prefetch {
                            LoadClass::HitPrefetched
                        } else {
                            LoadClass::Hit
                        },
                        l1_miss: false,
                    }
                }
            };
            self.stats.record_load(&r);
            return r;
        }

        // L1 tag miss: probe the arm's buffers in parallel with the L1.
        if let Some(a) = self.arm.as_mut() {
            if let Some(hit) = a.probe_and_consume(addr) {
                let ready = hit.ready_at <= now;
                let latency = if ready { l1_lat } else { (hit.ready_at - now).max(l1_lat) };
                let ev = self.l1.insert(addr, false);
                self.on_l1_eviction(now, ev, false);
                if !ready {
                    self.track_inflight(Inflight {
                        line,
                        complete_at: hit.ready_at,
                        initiator: Initiator::HwPrefetch,
                        level: ServiceLevel::StreamBuffer,
                    });
                }
                self.refill_arm(now, hit.slot);
                let r = AccessResult {
                    latency,
                    level: ServiceLevel::StreamBuffer,
                    class: if ready { LoadClass::HitPrefetched } else { LoadClass::PartialHit },
                    l1_miss: !ready,
                };
                self.stats.record_load(&r);
                return r;
            }
        }

        // Genuine demand miss.
        if self.cfg.next_line {
            self.next_line_prefetch(now, addr);
        }
        let class =
            if self.displaced.take(line) { LoadClass::MissDueToPrefetch } else { LoadClass::Miss };
        let stall = self.mshr_stall(now);
        let (lower_lat, level) = self.lower.fetch(now + stall, addr);
        let latency = stall + lower_lat;
        let ev = self.l1.insert(addr, false);
        self.on_l1_eviction(now, ev, false);
        self.track_inflight(Inflight {
            line,
            complete_at: now + latency,
            initiator: Initiator::Demand,
            level,
        });
        self.allocate_arm(now, pc, addr);
        let r = AccessResult { latency, level, class, l1_miss: true };
        self.stats.record_load(&r);
        r
    }

    /// Tagged next-line prefetch: fetch the line after `addr` into the L1,
    /// marked prefetched (so its first touch chains another prefetch).
    fn next_line_prefetch(&mut self, now: u64, addr: u64) {
        let next = self.l1.line_addr(addr) + self.cfg.l1.line_bytes;
        if self.l1.probe(next) || self.mshrs_full() {
            return;
        }
        let (lat, level) = self.lower.fetch(now, next);
        let ev = self.l1.insert(next, true);
        self.on_l1_eviction(now, ev, true);
        self.track_inflight(Inflight {
            line: next,
            complete_at: now + lat,
            initiator: Initiator::HwPrefetch,
            level,
        });
    }

    /// The arm may allocate buffer space (a stream, a burst) for this miss.
    fn allocate_arm(&mut self, now: u64, pc: u64, addr: u64) {
        if let Some(a) = self.arm.as_mut() {
            if let Some((slot, addrs)) = a.consider_allocation(pc, addr) {
                for &a in addrs.iter() {
                    let lat = self.lower.probe_latency(now, a);
                    self.arm.as_mut().expect("arm installed").push_fill(slot, a, now + lat);
                }
            }
        }
    }

    /// A store at `(pc, addr)`. Write-allocate; the returned latency is
    /// informational (the core does not stall on stores).
    pub fn store(&mut self, now: u64, _pc: u64, addr: u64) -> u64 {
        self.prune(now);
        self.stats.stores += 1;
        let line = self.l1.line_addr(addr);
        if self.l1.lookup(addr).is_some() {
            self.l1.mark_dirty(addr);
            return match self.inflight_for(line) {
                Some(inf) if inf.complete_at > now => inf.complete_at - now,
                _ => self.cfg.l1.latency,
            };
        }
        let (lat, level) = self.lower.fetch(now, addr);
        let ev = self.l1.insert(addr, false);
        self.on_l1_eviction(now, ev, false);
        self.l1.mark_dirty(addr);
        self.track_inflight(Inflight {
            line,
            complete_at: now + lat,
            initiator: Initiator::Demand,
            level,
        });
        lat
    }

    /// A software prefetch of `addr` issued at cycle `now`.
    ///
    /// Fills the L1 (tagged as prefetched) when the line is absent; evictions
    /// caused here are logged so later misses can be attributed to
    /// prefetching.
    pub fn sw_prefetch(&mut self, now: u64, _pc: u64, addr: u64) -> PrefetchOutcome {
        self.prune(now);
        if self.l1.probe(addr) {
            self.stats.sw_prefetch_redundant += 1;
            return PrefetchOutcome::AlreadyPresent;
        }
        let line = self.l1.line_addr(addr);
        // A line already sitting in an arm's buffer needs no software fetch;
        // leaving it there (rather than pulling it into the L1 now)
        // preserves the buffers' immunity to L1 conflict eviction — the
        // demand access will take it at the buffer's timing.
        if self.arm.as_ref().is_some_and(|a| a.contains(addr)) {
            self.stats.sw_prefetch_redundant += 1;
            return PrefetchOutcome::AlreadyPresent;
        }
        if self.mshrs_full() {
            self.stats.sw_prefetch_dropped += 1;
            return PrefetchOutcome::Dropped;
        }
        let (lat, level) = self.lower.fetch(now, addr);
        let ev = self.l1.insert(addr, true);
        self.on_l1_eviction(now, ev, true);
        self.track_inflight(Inflight {
            line,
            complete_at: now + lat,
            initiator: Initiator::SwPrefetch,
            level,
        });
        self.stats.sw_prefetch_issued += 1;
        PrefetchOutcome::Issued
    }

    /// Whether `addr`'s line currently sits in the L1 tag array (test aid).
    #[must_use]
    pub fn l1_contains(&self, addr: u64) -> bool {
        self.l1.probe(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_arms::StreamBufferConfig;

    fn h(stream: bool) -> Hierarchy {
        let mut cfg = MemConfig::tiny_for_tests();
        if stream {
            cfg.arm = ArmConfig::Stream(StreamBufferConfig::four_by_four());
        }
        Hierarchy::new(cfg)
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits() {
        let mut m = h(false);
        let r = m.load(0, 0x100, 0x8000);
        assert_eq!(r.level, ServiceLevel::Memory);
        assert_eq!(r.class, LoadClass::Miss);
        assert!(r.latency >= 350);
        // Long after the fill completes, it's a plain hit.
        let r2 = m.load(1000, 0x100, 0x8000);
        assert_eq!(r2.class, LoadClass::Hit);
        assert_eq!(r2.latency, 3);
        assert!(!r2.l1_miss);
    }

    #[test]
    fn merged_miss_pays_remaining_latency() {
        let mut m = h(false);
        let r = m.load(0, 0x100, 0x8000);
        let total = r.latency;
        let r2 = m.load(100, 0x108, 0x8008);
        assert_eq!(r2.class, LoadClass::Miss, "merge into demand fill stays a miss");
        assert_eq!(r2.latency, total - 100);
        assert!(r2.l1_miss);
    }

    #[test]
    fn sw_prefetch_makes_later_load_a_prefetched_hit() {
        let mut m = h(false);
        assert_eq!(m.sw_prefetch(0, 0x100, 0x8000), PrefetchOutcome::Issued);
        // Wait out the fill.
        let r = m.load(1000, 0x100, 0x8000);
        assert_eq!(r.class, LoadClass::HitPrefetched);
        assert_eq!(r.latency, 3);
        // Second touch is a plain hit.
        let r2 = m.load(1010, 0x100, 0x8000);
        assert_eq!(r2.class, LoadClass::Hit);
    }

    #[test]
    fn late_sw_prefetch_yields_partial_hit() {
        let mut m = h(false);
        m.sw_prefetch(0, 0x100, 0x8000);
        let r = m.load(50, 0x100, 0x8000);
        assert_eq!(r.class, LoadClass::PartialHit);
        assert!(r.latency > 3 && r.latency < 360, "remaining latency, got {}", r.latency);
        assert!(r.l1_miss, "partial hits feed the DLT miss statistics");
    }

    #[test]
    fn redundant_prefetch_is_reported() {
        let mut m = h(false);
        m.load(0, 0x100, 0x8000);
        assert_eq!(m.sw_prefetch(1, 0x100, 0x8000), PrefetchOutcome::AlreadyPresent);
        assert_eq!(m.stats.sw_prefetch_redundant, 1);
    }

    #[test]
    fn prefetch_displacement_is_attributed() {
        let mut m = h(false);
        // Tiny L1: 8 KB, 2-way, 64B lines => 64 sets, set stride 4096B.
        // Fill both ways of set 0.
        m.load(0, 0x1, 0x0);
        m.load(1000, 0x2, 0x1000);
        // Prefetch a third line in set 0: displaces LRU (0x0).
        m.sw_prefetch(2000, 0x3, 0x2000);
        assert!(!m.l1_contains(0x0));
        let r = m.load(3000, 0x1, 0x0);
        assert_eq!(r.class, LoadClass::MissDueToPrefetch);
        // The attribution is consumed: the refetched line now simply hits.
        let again = m.load(9000, 0x1, 0x0);
        assert_eq!(again.class, LoadClass::Hit);
    }

    #[test]
    fn mshr_exhaustion_drops_prefetches_and_stalls_demands() {
        let mut m = h(false);
        // 16 MSHRs in the tiny config: fill them with prefetches.
        for i in 0..16u64 {
            assert_eq!(m.sw_prefetch(0, 0x10, 0x10000 + i * 4096), PrefetchOutcome::Issued);
        }
        assert_eq!(m.sw_prefetch(0, 0x10, 0x90000), PrefetchOutcome::Dropped);
        let r = m.load(0, 0x20, 0xa0000);
        assert!(r.latency > 350, "demand stalls for an MSHR, got {}", r.latency);
    }

    #[test]
    fn stream_buffer_covers_strided_misses() {
        let mut m = h(true);
        // March through memory at one line per access; first misses train the
        // predictor, then a buffer streams ahead.
        let mut now = 0;
        let mut last = AccessResult {
            latency: 0,
            level: ServiceLevel::L1,
            class: LoadClass::Miss,
            l1_miss: false,
        };
        for i in 0..64u64 {
            last = m.load(now, 0x500, 0x4_0000 + i * 64);
            now += last.latency + 500; // ample time between iterations
        }
        assert_eq!(last.level, ServiceLevel::StreamBuffer);
        assert_eq!(last.class, LoadClass::HitPrefetched);
        let s = m.arm_stats();
        assert!(
            s.issued > 0 && s.useful > 32 && s.allocations >= 1,
            "{} {} {}",
            s.issued,
            s.useful,
            s.allocations
        );
    }

    #[test]
    fn next_line_arm_covers_sequential_misses() {
        let mut cfg = MemConfig::tiny_for_tests();
        cfg.arm = ArmConfig::NextLine(tdo_arms::NextLineConfig { buffers: 4, degree: 4 });
        let mut m = Hierarchy::new(cfg);
        let mut now = 0;
        let mut covered = 0;
        for i in 0..64u64 {
            let r = m.load(now, 0x600, 0x8_0000 + i * 64);
            now += r.latency + 500;
            if r.level == ServiceLevel::StreamBuffer {
                covered += 1;
            }
        }
        assert!(covered > 48, "sequential walk rides the line streams, got {covered}");
        assert!(m.arm_stats().useful > 48);
    }

    #[test]
    fn set_arm_folds_and_switches() {
        let mut m = h(true);
        let mut now = 0;
        for i in 0..64u64 {
            let r = m.load(now, 0x500, 0x4_0000 + i * 64);
            now += r.latency + 500;
        }
        let live = m.arm_stats();
        assert!(live.useful > 0);
        m.set_arm(&ArmConfig::NextLine(tdo_arms::NextLineConfig::default()));
        assert_eq!(m.stats.arm_switches, 1);
        assert_eq!(m.stats.arm_useful[tdo_arms::ArmKind::Stream.index()], live.useful);
        assert_eq!(m.arm_stats(), ArmStats::default(), "incoming arm starts cold");
        // Folding at run end adds the new arm's (zero) counters only.
        m.fold_arm_stats();
        assert_eq!(m.stats.arm_useful[tdo_arms::ArmKind::NextLine.index()], 0);
        assert_eq!(m.stats.arm_useful[tdo_arms::ArmKind::Stream.index()], live.useful);
    }

    #[test]
    fn bus_serializes_memory_traffic() {
        let mut m = h(false);
        let r1 = m.load(0, 0x1, 0x10000);
        let r2 = m.load(0, 0x2, 0x20000);
        let r3 = m.load(0, 0x3, 0x30000);
        assert!(r2.latency > r1.latency);
        assert!(r3.latency > r2.latency);
    }

    #[test]
    fn displaced_log_is_bounded() {
        let mut log = DisplacedLog::new(2);
        log.insert(1);
        log.insert(2);
        log.insert(3);
        assert!(!log.take(1), "oldest entry evicted");
        assert!(log.take(2));
        assert!(log.take(3));
        assert!(!log.take(3), "taken entries are removed");
    }
    #[test]
    fn tagged_next_line_prefetch_chains() {
        let mut cfg = MemConfig::tiny_for_tests();
        cfg.next_line = true;
        let mut m = Hierarchy::new(cfg);
        // A miss at line 0 prefetches line 1.
        let r0 = m.load(0, 0x9, 0x4_0000);
        assert_eq!(r0.class, LoadClass::Miss);
        // After the fills complete, line 1 is a prefetched hit — whose first
        // touch (the tag) chains a prefetch of line 2.
        let r1 = m.load(1000, 0x9, 0x4_0040);
        assert_eq!(r1.class, LoadClass::HitPrefetched);
        let r2 = m.load(2000, 0x9, 0x4_0080);
        assert_eq!(r2.class, LoadClass::HitPrefetched, "chained by the tag bit");
        // A second touch of a line does not chain further.
        let r1b = m.load(3000, 0x9, 0x4_0040);
        assert_eq!(r1b.class, LoadClass::Hit);
    }
    #[test]
    fn dirty_evictions_cost_writebacks() {
        let mut m = h(false);
        // Tiny L1: 64 sets x 2 ways, set stride 4096.
        m.store(0, 0x1, 0x0);
        assert_eq!(m.stats.writebacks, 0);
        // Evict the dirty line with two more fills in set 0.
        m.load(1000, 0x2, 0x1000);
        m.load(2000, 0x3, 0x2000);
        assert_eq!(m.stats.writebacks, 1, "dirty victim written back");
        // Clean evictions cost nothing further.
        m.load(3000, 0x4, 0x3000);
        assert_eq!(m.stats.writebacks, 1);
    }
}
