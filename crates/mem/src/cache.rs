//! Set-associative, LRU, tag-only cache model.

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Full access latency in cycles when this level hits.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (not a power-of-two set count).
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        let sets = self.size_bytes / (self.line_bytes * u64::from(self.assoc));
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

#[derive(Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    /// Set when the line was brought in by a prefetch and has not yet been
    /// touched by a demand access (drives the Figure 6 breakdown).
    prefetched: bool,
    /// Set by stores; a dirty victim costs a write-back bus transfer.
    dirty: bool,
    last_use: u64,
}

/// Result of a demand lookup that hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HitInfo {
    /// True when this was the first demand touch of a prefetched line.
    pub first_touch_of_prefetch: bool,
}

/// Result of inserting a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line address (full address of the first byte).
    pub line_addr: u64,
    /// Whether the victim was itself an untouched prefetched line.
    pub was_untouched_prefetch: bool,
    /// Whether the victim was dirty (requires a write-back).
    pub was_dirty: bool,
}

/// A tag-only set-associative cache with true-LRU replacement.
///
/// All geometry derived from the configuration — set mask, tag shift, way
/// count — is precomputed at construction, so the per-access walk is one
/// shift/mask/multiply plus a short tag scan with no recomputation (the
/// tag shift used to be a `count_ones()` per access).
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    /// `tag = line >> tag_shift` (index bits removed); equals
    /// `set_mask.count_ones()`.
    tag_shift: u32,
    /// Associativity, as the walk loops' native index type.
    ways: usize,
    stamp: u64,
}

impl Cache {
    /// Builds a cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![Line::default(); (sets * u64::from(cfg.assoc)) as usize],
            set_mask: sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tag_shift: (sets - 1).count_ones(),
            ways: cfg.assoc as usize,
            stamp: 0,
        }
    }

    /// This cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The read-only half of every walk: locates the valid line holding
    /// `addr`, returning its index into `sets`. Shared by the hit paths of
    /// [`Cache::lookup`], [`Cache::probe`], [`Cache::mark_dirty`] and
    /// [`Cache::invalidate`], which differ only in what they mutate after
    /// finding it.
    #[inline]
    fn find(&self, addr: u64) -> Option<usize> {
        let line = addr >> self.line_shift;
        let base = ((line & self.set_mask) as usize) * self.ways;
        let tag = line >> self.tag_shift;
        self.sets[base..base + self.ways]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|i| base + i)
    }

    /// Demand lookup: returns hit info and clears the line's prefetch bit.
    ///
    /// Takes `&mut self` by necessity, not convenience: a demand hit is not
    /// a read-only operation in this model. True-LRU replacement must stamp
    /// the line's recency on every touch, and the Figure 6 accounting
    /// consumes the line's prefetched bit on the first demand touch. The
    /// genuinely read-only probe is [`Cache::probe`] (backed by the shared
    /// [`Cache::find`] walk); callers that only need presence use that.
    pub fn lookup(&mut self, addr: u64) -> Option<HitInfo> {
        let i = self.find(addr)?;
        self.stamp += 1;
        let l = &mut self.sets[i];
        l.last_use = self.stamp;
        let first = l.prefetched;
        l.prefetched = false;
        Some(HitInfo { first_touch_of_prefetch: first })
    }

    /// Probe without updating LRU or prefetch state.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Inserts the line containing `addr`, evicting the LRU way if needed.
    ///
    /// `prefetched` marks the line as prefetch-fetched (first demand touch
    /// will report [`HitInfo::first_touch_of_prefetch`]).
    pub fn insert(&mut self, addr: u64, prefetched: bool) -> Option<Eviction> {
        self.stamp += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let tag = line >> self.tag_shift;
        // Already present: refresh.
        if let Some(l) =
            self.sets[base..base + self.ways].iter_mut().find(|l| l.valid && l.tag == tag)
        {
            l.last_use = self.stamp;
            return None;
        }
        // Free way?
        let victim_idx = match self.sets[base..base + self.ways].iter().position(|l| !l.valid) {
            Some(i) => base + i,
            None => {
                let (i, _) = self.sets[base..base + self.ways]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .expect("assoc > 0");
                base + i
            }
        };
        let victim = self.sets[victim_idx];
        let evicted = victim.valid.then(|| {
            let line = (victim.tag << self.tag_shift) | set as u64;
            Eviction {
                line_addr: line << self.line_shift,
                was_untouched_prefetch: victim.prefetched,
                was_dirty: victim.dirty,
            }
        });
        self.sets[victim_idx] =
            Line { valid: true, tag, prefetched, dirty: false, last_use: self.stamp };
        evicted
    }

    /// Marks the line containing `addr` dirty, if present. Returns whether
    /// the line was found.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.sets[i].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: u64) {
        if let Some(i) = self.find(addr) {
            self.sets[i].valid = false;
        }
    }

    /// Address of the first byte of the line containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64, latency: 3 })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().num_sets(), 2);
        assert_eq!(c.line_addr(0x7f), 0x40);
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = tiny();
        assert!(c.lookup(0x0).is_none());
        c.insert(0x0, false);
        assert!(c.lookup(0x0).is_some());
        assert!(c.lookup(0x40).is_none(), "different set");
        assert!(c.lookup(0x100).is_none(), "same set, different tag");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0x000, 0x080, 0x100... (stride 128 with 2 sets).
        c.insert(0x000, false);
        c.insert(0x080, false);
        c.lookup(0x000); // touch 0x000, making 0x080 the LRU
        let ev = c.insert(0x100, false).expect("eviction");
        assert_eq!(ev.line_addr, 0x080);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn prefetch_bit_reports_first_touch_only() {
        let mut c = tiny();
        c.insert(0x0, true);
        assert_eq!(c.lookup(0x0), Some(HitInfo { first_touch_of_prefetch: true }));
        assert_eq!(c.lookup(0x0), Some(HitInfo { first_touch_of_prefetch: false }));
    }

    #[test]
    fn eviction_reports_untouched_prefetch_victims() {
        let mut c = tiny();
        c.insert(0x000, true);
        c.insert(0x080, false);
        c.lookup(0x080);
        // 0x000 (still untouched prefetch) is LRU.
        let ev = c.insert(0x100, false).unwrap();
        assert_eq!(ev.line_addr, 0x000);
        assert!(ev.was_untouched_prefetch);
    }

    #[test]
    fn reinserting_present_line_does_not_evict() {
        let mut c = tiny();
        c.insert(0x000, false);
        c.insert(0x080, false);
        assert!(c.insert(0x000, false).is_none());
        assert!(c.probe(0x080));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(0x0, false);
        c.invalidate(0x0);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn eviction_reconstructs_full_line_address() {
        // 4 sets x 1 way: line addr must reconstruct the set bits too.
        let mut c =
            Cache::new(CacheConfig { size_bytes: 256, assoc: 1, line_bytes: 64, latency: 1 });
        c.insert(0x1c0, false); // set 3
        let ev = c.insert(0x3c0, false).unwrap();
        assert_eq!(ev.line_addr, 0x1c0);
    }
}
