//! # tdo-mem — the memory-system substrate
//!
//! Everything below the core: a functional sparse [`Memory`] carrying the
//! program's bytes, and a timing [`Hierarchy`] modelling the paper's
//! three-level cache system (Table 1) with
//!
//! * set-associative LRU tag arrays ([`cache`]),
//! * in-flight fill tracking so late prefetches become *partial hits*,
//! * an MSHR limit and a DRAM bus occupancy model,
//! * prefetch displacement logging (the Figure 6 "miss due to prefetching"
//!   attribution the paper describes in §5.3), and
//! * a pluggable hardware prefetcher *arm* slot in front of the L2, filled
//!   by any [`tdo_arms::Prefetcher`] implementation (the paper's
//!   stride-predictor-directed stream buffers are the default arm) and
//!   swappable at run time via [`Hierarchy::set_arm`].
//!
//! ## Example
//!
//! ```
//! use tdo_mem::{Hierarchy, MemConfig, LoadClass, PrefetchOutcome};
//!
//! let mut hier = Hierarchy::new(MemConfig::no_prefetch());
//! // Cold miss to memory...
//! let r = hier.load(0, 0x400, 0x10_0000);
//! assert!(r.latency >= 350);
//! // ...but a timely software prefetch turns the next line into a hit.
//! assert_eq!(hier.sw_prefetch(0, 0x400, 0x10_0040), PrefetchOutcome::Issued);
//! let r = hier.load(1000, 0x400, 0x10_0040);
//! assert_eq!(r.class, LoadClass::HitPrefetched);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod config;
pub mod fasthash;
pub mod hierarchy;
pub mod memory;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use config::MemConfig;
pub use fasthash::{FastHasher, FastMap, FastSet};
pub use hierarchy::Hierarchy;
pub use memory::Memory;
pub use stats::{AccessResult, LoadClass, MemStats, PrefetchOutcome, ServiceLevel};
// Re-exported so downstream crates keep a single import surface for the
// memory system even though the arms now live in their own crate.
pub use tdo_arms::{
    AdaptiveNextLineConfig, ArmConfig, ArmKind, ArmStats, DeltaConfig, NextLineConfig, Prefetcher,
    StreamBufferConfig, StreamBuffers, StridePredictor,
};
