//! # tdo-mem — the memory-system substrate
//!
//! Everything below the core: a functional sparse [`Memory`] carrying the
//! program's bytes, and a timing [`Hierarchy`] modelling the paper's
//! three-level cache system (Table 1) with
//!
//! * set-associative LRU tag arrays ([`cache`]),
//! * in-flight fill tracking so late prefetches become *partial hits*,
//! * an MSHR limit and a DRAM bus occupancy model,
//! * prefetch displacement logging (the Figure 6 "miss due to prefetching"
//!   attribution the paper describes in §5.3), and
//! * the stride-predictor-directed hardware stream buffers ([`stream`]) that
//!   form the paper's hardware-prefetching baseline.
//!
//! ## Example
//!
//! ```
//! use tdo_mem::{Hierarchy, MemConfig, LoadClass, PrefetchOutcome};
//!
//! let mut hier = Hierarchy::new(MemConfig::no_prefetch());
//! // Cold miss to memory...
//! let r = hier.load(0, 0x400, 0x10_0000);
//! assert!(r.latency >= 350);
//! // ...but a timely software prefetch turns the next line into a hit.
//! assert_eq!(hier.sw_prefetch(0, 0x400, 0x10_0040), PrefetchOutcome::Issued);
//! let r = hier.load(1000, 0x400, 0x10_0040);
//! assert_eq!(r.class, LoadClass::HitPrefetched);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod config;
pub mod fasthash;
pub mod hierarchy;
pub mod memory;
pub mod stats;
pub mod stream;

pub use cache::{Cache, CacheConfig};
pub use config::MemConfig;
pub use fasthash::{FastHasher, FastMap, FastSet};
pub use hierarchy::Hierarchy;
pub use memory::Memory;
pub use stats::{AccessResult, LoadClass, MemStats, PrefetchOutcome, ServiceLevel};
pub use stream::{StreamBufferConfig, StreamBuffers, StridePredictor};
