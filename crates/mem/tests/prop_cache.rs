//! Randomized tests: the set-associative cache agrees with a naive reference
//! LRU model, and the hierarchy maintains its latency/class invariants on
//! arbitrary access streams. (Seeded `tdo_rand` sweeps; `--features
//! exhaustive` widens them.)

use std::collections::VecDeque;

use tdo_mem::{Cache, CacheConfig, Hierarchy, LoadClass, MemConfig, ServiceLevel};
use tdo_rand::{cases, Rng};

/// Reference model: per-set LRU lists of line addresses.
struct RefLru {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefLru {
    fn new(cfg: &CacheConfig) -> RefLru {
        RefLru {
            sets: (0..cfg.num_sets()).map(|_| VecDeque::new()).collect(),
            assoc: cfg.assoc as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push_back(line);
            true
        } else {
            set.push_back(line);
            if set.len() > self.assoc {
                set.pop_front();
            }
            false
        }
    }
}

#[test]
fn cache_matches_reference_lru() {
    let mut rng = Rng::new(0x3e3_0001);
    for case in 0..cases(256) {
        let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 3 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefLru::new(&cfg);
        let n = rng.gen_range(1..300);
        for _ in 0..n {
            let a = rng.gen_range(0..4096);
            let model_hit = reference.access(a);
            let real_hit = match cache.lookup(a) {
                Some(_) => true,
                None => {
                    cache.insert(a, false);
                    false
                }
            };
            assert_eq!(real_hit, model_hit, "case {case}: divergence at addr {a:#x}");
        }
    }
}

#[test]
fn hierarchy_latency_and_class_invariants() {
    let mut rng = Rng::new(0x3e3_0002);
    for case in 0..cases(256) {
        let mut h = Hierarchy::new(MemConfig::tiny_for_tests());
        let mut now = 0u64;
        let n = rng.gen_range(1..400);
        for _ in 0..n {
            let kind = rng.gen_range(0..3);
            let addr = rng.gen_range(0..1 << 16);
            match kind {
                0 => {
                    let r = h.load(now, 0x1000 + (addr & 0xff), addr);
                    let l1_lat = h.config().l1.latency;
                    assert!(r.latency >= l1_lat, "case {case}");
                    if (r.class == LoadClass::Hit || r.class == LoadClass::HitPrefetched)
                        && r.level == ServiceLevel::L1
                    {
                        assert_eq!(r.latency, l1_lat, "case {case}");
                        assert!(!r.l1_miss, "case {case}");
                    }
                    if r.class == LoadClass::Miss || r.class == LoadClass::MissDueToPrefetch {
                        assert!(r.l1_miss, "case {case}");
                    }
                    now += r.latency / 2; // overlap accesses a little
                }
                1 => {
                    h.store(now, 0x2000, addr);
                    now += 1;
                }
                _ => {
                    h.sw_prefetch(now, 0x3000, addr);
                    now += 1;
                }
            }
        }
        let s = &h.stats;
        assert_eq!(
            s.loads(),
            s.hits + s.hits_prefetched + s.partial_hits + s.misses + s.misses_due_to_prefetch,
            "case {case}"
        );
        assert!(s.total_miss_latency <= s.total_load_latency, "case {case}");
    }
}

#[test]
fn hierarchy_with_streams_never_misclassifies_hits() {
    let mut rng = Rng::new(0x3e3_0003);
    for case in 0..cases(128) {
        let stride = *rng.choose(&[8u64, 64, 128, 256]);
        let n = rng.gen_range(16..128);
        let mut cfg = MemConfig::tiny_for_tests();
        cfg.arm = tdo_mem::ArmConfig::Stream(tdo_mem::StreamBufferConfig::four_by_four());
        let mut h = Hierarchy::new(cfg);
        let mut now = 0u64;
        for i in 0..n {
            let r = h.load(now, 0x4242, 0x10_0000 + i * stride);
            now += r.latency + 50;
        }
        // Every load is accounted for exactly once.
        assert_eq!(h.stats.loads(), n, "case {case}: stride {stride}");
    }
}
