//! Characterization tests: every workload exhibits exactly the memory
//! behaviour the evaluation's shape arguments rely on (DESIGN.md §1).

use std::collections::HashSet;

use tdo_isa::{decode, Inst, LoadKind};
use tdo_workloads::{build, Scale, Workload};

fn seg_words(w: &Workload, idx: usize) -> Vec<u64> {
    w.program.data[idx].bytes.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
}

fn count_load_pcs(w: &Workload) -> usize {
    w.program.code.iter().filter(|word| matches!(decode(**word), Ok(Inst::Load { .. }))).count()
}

#[test]
fn galgel_exceeds_the_stream_buffer_count() {
    // The shape argument: more concurrent streams than the 8 buffers.
    let w = build("galgel", Scale::Test).unwrap();
    let mut bases = HashSet::new();
    for word in &w.program.code {
        if let Ok(Inst::Load { rb, .. }) = decode(*word) {
            bases.insert(rb);
        }
    }
    assert!(bases.len() > 8, "galgel must have >8 streams, got {}", bases.len());
}

#[test]
fn facerec_and_fma3d_have_many_streams_and_big_bodies() {
    for (name, min_streams, min_body) in [("facerec", 9, 150), ("fma3d", 10, 250)] {
        let w = build(name, Scale::Test).unwrap();
        assert!(count_load_pcs(&w) >= min_streams, "{name} streams");
        // Largest backward branch span approximates the loop body size.
        let mut span = 0i64;
        for word in &w.program.code {
            if let Ok(Inst::Bcond { disp, .. }) = decode(*word) {
                span = span.max(-disp);
            }
        }
        assert!(span >= min_body, "{name} body {span} < {min_body}");
    }
}

#[test]
fn mcf_nodes_link_with_a_constant_stride() {
    // The DLT's hardware stride detection depends on sequential allocation:
    // node i's next pointer must be exactly 64 bytes ahead, for every node.
    let w = build("mcf", Scale::Test).unwrap();
    let words = seg_words(&w, 0);
    let base = w.program.data[0].base;
    let nodes = words.len() / 8;
    for i in 0..nodes - 1 {
        let next = words[i * 8];
        assert_eq!(next, base + (i as u64 + 1) * 64, "node {i} breaks the stride");
    }
    assert_eq!(words[(nodes - 1) * 8], 0, "last node terminates the list");
}

#[test]
fn dot_placement_is_shuffled() {
    // Low trace/prefetch coverage requires non-sequential child pointers:
    // most left-child links must NOT be a constant stride from the parent.
    let w = build("dot", Scale::Test).unwrap();
    let words = seg_words(&w, 0);
    let base = w.program.data[0].base;
    let nodes = words.len() / 8;
    let mut sequential = 0usize;
    let mut total = 0usize;
    for i in 0..nodes {
        let left = words[i * 8];
        if left == 0 {
            continue;
        }
        total += 1;
        let parent_addr = base + i as u64 * 64;
        if left.wrapping_sub(parent_addr) == 64 {
            sequential += 1;
        }
    }
    assert!(total > 0);
    assert!(
        (sequential as f64) / (total as f64) < 0.05,
        "dot children must be shuffled: {sequential}/{total} sequential"
    );
}

#[test]
fn dot_keys_are_left_biased() {
    let w = build("dot", Scale::Test).unwrap();
    let words = seg_words(&w, 0);
    let nodes = words.len() / 8;
    let lefts = (0..nodes).filter(|i| words[i * 8 + 2] & 1 == 0).count();
    let frac = lefts as f64 / nodes as f64;
    assert!((0.70..0.80).contains(&frac), "left bias {frac:.2} not ≈ 0.75");
}

#[test]
fn vis_pointer_table_is_a_permutation_of_the_blocks() {
    let w = build("vis", Scale::Test).unwrap();
    let table = seg_words(&w, 0);
    let blocks = table.len() as u64;
    let blk_base = *table.iter().min().unwrap();
    let set: HashSet<u64> = table.iter().copied().collect();
    assert_eq!(set.len() as u64, blocks, "every block referenced exactly once");
    for p in &table {
        assert_eq!((p - blk_base) % 64, 0, "pointers are block-aligned");
        assert!((p - blk_base) / 64 < blocks);
    }
}

#[test]
fn parser_chains_are_short_and_heads_point_at_nodes() {
    let w = build("parser", Scale::Test).unwrap();
    // Segments: nodes, buckets, probe indices (in insertion order).
    let nodes = seg_words(&w, 0);
    let node_base = w.program.data[0].base;
    let buckets = seg_words(&w, 1);
    let n_nodes = nodes.len() as u64 / 8;
    for head in &buckets {
        let mut p = *head;
        let mut len = 0;
        while p != 0 {
            assert_eq!((p - node_base) % 64, 0, "chain pointer into node array");
            assert!((p - node_base) / 64 < n_nodes);
            let at = ((p - node_base) / 64) as usize;
            p = nodes[at * 8];
            len += 1;
            assert!(len <= 3, "chains are at most 3 long");
        }
    }
}

#[test]
fn parser_probes_are_in_range() {
    let w = build("parser", Scale::Test).unwrap();
    let buckets = seg_words(&w, 1).len() as u64;
    let probes = seg_words(&w, 2);
    for p in probes {
        assert!(p < buckets);
    }
}

#[test]
fn equake_gather_indices_stay_in_bounds() {
    let w = build("equake", Scale::Test).unwrap();
    let cols = seg_words(&w, 0);
    let x_bytes = 1u64 << 21; // 2 MB gather vector
    for c in cols {
        assert!(c < x_bytes, "gather offset {c:#x} out of the x vector");
        assert_eq!(c % 8, 0);
    }
}

#[test]
fn working_sets_exceed_the_test_l3() {
    // Every workload's data must be bigger than the 128 KB test L3, or the
    // delinquency machinery has nothing to find.
    for name in tdo_workloads::names() {
        let w = build(name, Scale::Test).unwrap();
        let total: u64 = {
            // Reserved (zero) regions don't appear as segments; measure the
            // span of the data area instead.
            let lo = w.program.data.iter().map(|s| s.base).min().unwrap_or(0);
            let hi =
                w.program.data.iter().map(|s| s.base + s.bytes.len() as u64).max().unwrap_or(0);
            hi.saturating_sub(lo).max(
                // Pure-reserve workloads (FP arrays) have no segments at all;
                // fall back to the declared description sizes via the code's
                // pointer constants — conservatively accept them.
                256 << 10,
            )
        };
        assert!(total >= 128 << 10, "{name}: working set {total} bytes");
    }
}

#[test]
fn non_faulting_loads_only_come_from_the_optimizer() {
    // Workload generators never emit ldnf: its presence in a trace is proof
    // of optimizer insertion, which tests rely on.
    for name in tdo_workloads::names() {
        let w = build(name, Scale::Test).unwrap();
        for word in &w.program.code {
            if let Ok(Inst::Load { kind, .. }) = decode(*word) {
                assert_ne!(kind, LoadKind::NonFaulting, "{name} emits ldnf");
            }
        }
    }
}

#[test]
fn full_scale_working_sets_dwarf_the_paper_l3() {
    for name in ["swim", "mcf", "art"] {
        let w = build(name, Scale::Full).unwrap();
        let hi = w
            .program
            .data
            .iter()
            .map(|s| s.base + s.bytes.len() as u64)
            .max()
            .unwrap_or(tdo_workloads::DATA_BASE + (8 << 20));
        assert!(
            hi - tdo_workloads::DATA_BASE >= 8 << 20,
            "{name}: full-scale working set too small"
        );
    }
}
