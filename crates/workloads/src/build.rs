//! Common workload-construction machinery.

use tdo_isa::{Asm, DataSegment, Program};

/// Simulation scale: how large the working sets and iteration counts are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small but still larger than the L3 cache; finite, halts quickly.
    /// Meant for tests (hundreds of thousands of instructions).
    Test,
    /// Paper-like working sets; long-running (the simulator's instruction
    /// budget, not the program, ends the measurement).
    Full,
}

impl Scale {
    /// A working-set size in bytes: `full` at full scale, a small (but
    /// still far beyond the *test* hierarchy's 16 KB L3,
    /// `tdo_mem::MemConfig::tiny_for_tests`) size at test scale.
    #[must_use]
    pub fn ws(&self, full: u64) -> u64 {
        match self {
            Scale::Test => (full / 64).max(512 << 10),
            Scale::Full => full,
        }
    }

    /// An outer-loop repetition count.
    #[must_use]
    pub fn outer(&self, test: u64, full: u64) -> u64 {
        match self {
            Scale::Test => test,
            Scale::Full => full,
        }
    }
}

/// A complete, runnable workload.
pub struct Workload {
    /// The executable image.
    pub program: Program,
    /// What this workload models and why it is shaped this way.
    pub description: String,
}

/// Register conventions shared by every generated workload.
///
/// The dynamic optimizer splices `ldnf` instructions that need scratch
/// registers; the workload ABI reserves r20–r27 for it (they are never
/// live in generated code), matching how a production system would obtain
/// dead registers from liveness analysis.
pub mod abi {
    use tdo_isa::Reg;

    /// First register the optimizer may clobber.
    pub const SCRATCH_FIRST: u8 = 20;
    /// Last register the optimizer may clobber.
    pub const SCRATCH_LAST: u8 = 27;

    /// The optimizer scratch pool.
    #[must_use]
    pub fn scratch_pool() -> Vec<Reg> {
        (SCRATCH_FIRST..=SCRATCH_LAST).map(Reg::int).collect()
    }
}

/// Base address for workload code.
pub const CODE_BASE: u64 = 0x1_0000;
/// Base address for workload data (segments are bump-allocated from here).
pub const DATA_BASE: u64 = 0x100_0000;

/// Bump allocator for data segments.
pub struct DataAlloc {
    next: u64,
    /// Segments produced so far.
    pub segments: Vec<DataSegment>,
}

impl DataAlloc {
    /// Creates an allocator at [`DATA_BASE`].
    #[must_use]
    pub fn new() -> DataAlloc {
        DataAlloc { next: DATA_BASE, segments: Vec::new() }
    }

    /// Reserves `bytes` (64-byte aligned) without initial contents; memory
    /// reads as zero.
    pub fn reserve(&mut self, bytes: u64) -> u64 {
        let addr = self.next;
        self.next = (self.next + bytes + 63) & !63;
        addr
    }

    /// Allocates a segment initialized with `f64` values.
    pub fn f64s(&mut self, values: &[f64]) -> u64 {
        let addr = self.reserve(values.len() as u64 * 8);
        self.segments.push(DataSegment::from_f64s(addr, values));
        addr
    }

    /// Allocates a segment initialized with 64-bit words.
    pub fn words(&mut self, values: &[u64]) -> u64 {
        let addr = self.reserve(values.len() as u64 * 8);
        self.segments.push(DataSegment::from_words(addr, values));
        addr
    }
}

impl Default for DataAlloc {
    fn default() -> Self {
        DataAlloc::new()
    }
}

/// Finishes a workload: assembles the code and bundles the data.
///
/// # Panics
///
/// Panics on assembler errors — workload builders are static constructions
/// and a failure is a bug in the generator.
#[must_use]
pub fn finish(name: &str, description: String, asm: &Asm, data: DataAlloc) -> Workload {
    let code = asm.assemble().unwrap_or_else(|e| panic!("workload {name}: {e}"));
    Workload {
        program: Program {
            name: name.to_string(),
            entry: asm.base(),
            code_base: asm.base(),
            code,
            data: data.segments,
        },
        description,
    }
}

/// Handy register names for generators (r20–r27 are reserved; see [`abi`]).
pub mod regs {
    use tdo_isa::Reg;

    /// General workload registers.
    #[must_use]
    pub fn r(i: u8) -> Reg {
        assert!(!(20..=27).contains(&i), "r20-r27 are optimizer scratch");
        Reg::int(i)
    }

    /// FP registers.
    #[must_use]
    pub fn f(i: u8) -> Reg {
        Reg::fp(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_alloc_is_aligned_and_monotonic() {
        let mut d = DataAlloc::new();
        let a = d.reserve(100);
        let b = d.reserve(8);
        assert_eq!(a % 64, 0);
        assert!(b >= a + 100);
        assert_eq!(b % 64, 0);
    }

    #[test]
    fn scale_keeps_test_working_sets_beyond_the_test_l3() {
        assert!(Scale::Test.ws(32 << 20) >= 512 << 10, "must exceed the test L3");
        assert_eq!(Scale::Full.ws(32 << 20), 32 << 20);
    }

    #[test]
    #[should_panic(expected = "optimizer scratch")]
    fn scratch_registers_are_fenced() {
        let _ = regs::r(23);
    }
}
