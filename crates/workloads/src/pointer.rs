//! Pointer-intensive workloads: `mcf`, `dot`, `vis`, `parser`.
//!
//! * `mcf` — a linked-list walk over *sequentially allocated* 64-byte nodes
//!   with multiple hot fields: the pointer chase is stride-predictable in
//!   the DLT even though no static analysis could prove it, the paper's
//!   showcase for hardware-assisted classification;
//! * `dot` — randomized binary-tree descent steered by data-dependent
//!   branches: hot paths never stabilize, so trace (and therefore miss)
//!   coverage is low, matching the paper's coverage discussion (§5.2);
//! * `vis` — an array-of-pointers walk into shuffled blocks: the pointer
//!   array strides perfectly while the blocks require jump-pointer
//!   dereferencing;
//! * `parser` — hash-bucket chains of data-dependent length with randomized
//!   allocation: irregular control flow and non-stride chains.

use tdo_isa::{AluOp, Asm, Cond};
use tdo_rand::Rng;

use crate::build::{finish, regs::f, regs::r, DataAlloc, Scale, Workload, CODE_BASE};

/// `mcf`: linked-list traversal over sequentially allocated nodes.
///
/// Node layout (64 bytes, one cache line): `next` at 0, `val` at 8,
/// `cost` at 16, padding to 64.
#[must_use]
pub fn mcf(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let nodes = scale.ws(24 << 20) / 64;
    let base = d.reserve(nodes * 64);
    // Sequential allocation: node i links to node i+1; values are the index.
    let mut words = vec![0u64; (nodes * 8) as usize];
    for i in 0..nodes {
        let next = if i + 1 < nodes { base + (i + 1) * 64 } else { 0 };
        words[(i * 8) as usize] = next;
        words[(i * 8 + 1) as usize] = i;
        words[(i * 8 + 2) as usize] = i * 3;
    }
    d.segments.push(tdo_isa::DataSegment::from_words(base, &words));
    let outer = scale.outer(8, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), base as i64);
    a.li(r(4), nodes as i64 - 1);
    a.label("inner");
    a.ldq(r(2), r(1), 8); // val
    a.ldq(r(3), r(1), 16); // cost
    a.op(AluOp::Add, r(6), r(2), r(6));
    a.op(AluOp::Add, r(6), r(3), r(6));
    a.ldq(r(1), r(1), 0); // p = p->next (DLT-stride-predictable)
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "mcf",
        format!("linked list of {nodes} sequentially allocated 64B nodes, 3 hot fields"),
        &a,
        d,
    )
}

/// `dot`: randomized binary-tree descent with data-dependent direction.
#[must_use]
pub fn dot(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let nodes = (scale.ws(16 << 20) / 64).next_power_of_two() / 2; // 2^k
    let levels = nodes.trailing_zeros() as u64; // descend levels per walk
    let base = d.reserve(nodes * 64);
    let mut rng = Rng::new(0x00d0_7001);
    // Shuffled placement: tree slot i lives at placement[i].
    let mut placement: Vec<u64> = (0..nodes).collect();
    rng.shuffle(&mut placement);
    let addr_of = |slot: u64| base + placement[slot as usize] * 64;
    let mut words = vec![0u64; (nodes * 8) as usize];
    for slot in 0..nodes {
        let at = (placement[slot as usize] * 8) as usize;
        let (l, rr) = (2 * slot + 1, 2 * slot + 2);
        words[at] = if l < nodes { addr_of(l) } else { addr_of(0) };
        words[at + 1] = if rr < nodes { addr_of(rr) } else { addr_of(0) };
        // Keys steering the descent: biased 3:1 toward "left" so some paths
        // recur often enough to become (briefly) hot, as real dot exhibits —
        // overall coverage stays low.
        let key = rng.next_u64();
        words[at + 2] = if rng.gen_bool(0.75) { key & !1 } else { key | 1 };
    }
    d.segments.push(tdo_isa::DataSegment::from_words(base, &words));
    let outer = scale.outer(4000, 50_000_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.li(r(9), addr_of(0) as i64);
    a.label("walk");
    a.mov(r(9), r(1));
    a.li(r(4), levels as i64);
    a.label("down");
    a.ldq(r(2), r(1), 16); // key
    a.op_imm(AluOp::And, r(2), 1, r(3));
    a.bcond_to(Cond::Ne, r(3), "right");
    a.ldq(r(1), r(1), 0); // left child
    a.br_to("join");
    a.label("right");
    a.ldq(r(1), r(1), 8); // right child
    a.label("join");
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "down");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "walk");
    a.halt();
    finish(
        "dot",
        format!("binary tree of {nodes} shuffled nodes, data-dependent {levels}-level descents"),
        &a,
        d,
    )
}

/// `vis`: strided walk over an array of pointers into shuffled 64B blocks.
#[must_use]
pub fn vis(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let blocks = scale.ws(16 << 20) / 2 / 64;
    let ptrs = d.reserve(blocks * 8);
    let blk = d.reserve(blocks * 64);
    let mut rng = Rng::new(0x0000_1755);
    let mut order: Vec<u64> = (0..blocks).collect();
    rng.shuffle(&mut order);
    let table: Vec<u64> = order.iter().map(|i| blk + i * 64).collect();
    d.segments.push(tdo_isa::DataSegment::from_words(ptrs, &table));
    let outer = scale.outer(8, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), ptrs as i64);
    a.li(r(4), blocks as i64);
    a.label("inner");
    a.ldq(r(2), r(1), 0); // p = P[i] (code-stride 8)
    a.ldf(f(1), r(2), 0); // block fields (jump-pointer territory)
    a.ldf(f(2), r(2), 8);
    a.ldf(f(3), r(2), 16);
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(1), rb: f(2), rc: f(4) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(4), rb: f(3), rc: f(5) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(5), rb: f(6), rc: f(6) });
    a.lda(r(1), r(1), 8);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "vis",
        format!("array of {blocks} pointers into shuffled 64B blocks, 3 fields each"),
        &a,
        d,
    )
}

/// `parser`: hash-bucket chains with data-dependent length and randomized
/// node placement.
#[must_use]
pub fn parser(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let buckets = (scale.ws(16 << 20) / 4 / 8).next_power_of_two();
    let chain_nodes = buckets; // on average 1 node/bucket, 0–3 long chains
    let bucket_base = d.reserve(buckets * 8);
    let node_base = d.reserve(chain_nodes * 64);
    let idx_n = 4096u64;
    let idx_base = d.reserve(idx_n * 8);

    let mut rng = Rng::new(0x9a95_e700);
    // Randomized node placement.
    let mut order: Vec<u64> = (0..chain_nodes).collect();
    rng.shuffle(&mut order);
    let mut node_words = vec![0u64; (chain_nodes * 8) as usize];
    let mut bucket_words = vec![0u64; buckets as usize];
    let mut next_node = 0usize;
    for bucket in bucket_words.iter_mut() {
        let len = match rng.gen_range(0..4) {
            0 => 0,
            1 | 2 => 1,
            _ => 3,
        };
        let mut head = 0u64;
        for _ in 0..len {
            if next_node >= order.len() {
                break;
            }
            let at = order[next_node];
            next_node += 1;
            let addr = node_base + at * 64;
            node_words[(at * 8) as usize] = head; // next
            node_words[(at * 8 + 1) as usize] = rng.next_u64(); // key
            head = addr;
        }
        *bucket = head;
    }
    d.segments.push(tdo_isa::DataSegment::from_words(node_base, &node_words));
    d.segments.push(tdo_isa::DataSegment::from_words(bucket_base, &bucket_words));
    // Precomputed probe sequence (uniform bucket indices).
    let probes: Vec<u64> = (0..idx_n).map(|_| rng.gen_range(0..buckets)).collect();
    d.segments.push(tdo_isa::DataSegment::from_words(idx_base, &probes));
    let outer = scale.outer(20, 10_000_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(7), idx_base as i64);
    a.li(r(4), idx_n as i64);
    a.li(r(9), bucket_base as i64);
    a.label("probe");
    a.ldq(r(2), r(7), 0); // bucket index (stride-8 stream)
    a.op_imm(AluOp::Sll, r(2), 3, r(2));
    a.op(AluOp::Add, r(9), r(2), r(3));
    a.ldq(r(3), r(3), 0); // bucket head (random)
    a.bcond_to(Cond::Eq, r(3), "empty");
    a.label("chain");
    a.ldq(r(8), r(3), 8); // key
    a.op(AluOp::Add, r(6), r(8), r(6));
    a.ldq(r(3), r(3), 0); // next (random placement: no stride)
    a.bcond_to(Cond::Ne, r(3), "chain");
    a.label("empty");
    a.lda(r(7), r(7), 8);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "probe");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "parser",
        format!("hash table: {buckets} buckets, variable-length randomized chains"),
        &a,
        d,
    )
}
