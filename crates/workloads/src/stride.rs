//! Stride-dominated workloads: the SPEC FP programs of the paper's suite.
//!
//! Each generator reproduces the *memory-access shape* the paper's
//! characterization relies on, not the original computation:
//!
//! * `swim` — three parallel unit-stride streams, tiny loop body: the
//!   hardware stream buffers already do well here (paper §5.5);
//! * `mgrid` — plane-offset stencil: one base register with far-apart
//!   offsets (a multi-line same-object group) plus unit-stride advance;
//! * `applu` — an inner loop of well over 1000 instructions, so a prefetch
//!   distance of 1 is already optimal and self-repairing adds nothing
//!   (paper §5.3);
//! * `art` — a streamed weight matrix with a tight loop body, the
//!   distance-sensitive case self-repair is built for;
//! * `facerec`/`fma3d` — medium-size bodies where the naive distance
//!   estimate is already sufficient (paper: no further gain from repair);
//! * `galgel` — more concurrent streams than the 8 stream buffers can hold;
//! * `wupwise` — complex-number (16-byte element) streams: two-field
//!   same-object accesses.

use tdo_isa::{AluOp, Asm, Cond};

use crate::build::{finish, regs::f, regs::r, DataAlloc, Scale, Workload, CODE_BASE};

/// Emits `count` dependent FP operations as loop-body filler, modelling
/// computation between memory accesses.
fn fp_filler(a: &mut Asm, count: usize) {
    for i in 0..count {
        let src = f(1 + (i % 4) as u8);
        a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(6), rb: src, rc: f(6) });
    }
}

/// `swim`: three parallel unit-stride f64 streams (`a[i] = a-stream math`).
#[must_use]
pub fn swim(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let n = scale.ws(24 << 20) / 3 / 8;
    let (pa, pb, pc) = (d.reserve(n * 8), d.reserve(n * 8), d.reserve(n * 8));
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), pa as i64);
    a.li(r(2), pb as i64);
    a.li(r(3), pc as i64);
    a.li(r(4), n as i64);
    a.label("inner");
    a.ldf(f(1), r(2), 0);
    a.ldf(f(2), r(3), 0);
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(1), rb: f(2), rc: f(3) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(3), rb: f(1), rc: f(4) });
    a.stq(f(4), r(1), 0);
    a.lda(r(1), r(1), 8);
    a.lda(r(2), r(2), 8);
    a.lda(r(3), r(3), 8);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "swim",
        format!("shallow-water stencil: 3 unit-stride f64 streams of {n} elements"),
        &a,
        d,
    )
}

/// `mgrid`: plane stencil `a[i] = b[i-S] + b[i] + b[i+S]` — one base with
/// far-apart offsets, a same-object group spanning several cache lines.
#[must_use]
pub fn mgrid(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let plane = 16 << 10; // 16 KB plane offset (fits the prefetch off field)
    let n = scale.ws(24 << 20) / 2 / 8;
    let pb = d.reserve(n * 8 + 2 * plane);
    let pa = d.reserve(n * 8);
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), pa as i64);
    a.li(r(2), (pb + plane) as i64); // centred so i-S stays in bounds
    a.li(r(4), n as i64);
    a.label("inner");
    a.ldf(f(1), r(2), -(plane as i64));
    a.ldf(f(2), r(2), 0);
    a.ldf(f(3), r(2), plane as i64);
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(1), rb: f(2), rc: f(4) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(4), rb: f(3), rc: f(4) });
    a.stq(f(4), r(1), 0);
    a.lda(r(1), r(1), 8);
    a.lda(r(2), r(2), 8);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "mgrid",
        format!("multigrid plane stencil: ±{plane}B offsets on one base, {n} elements"),
        &a,
        d,
    )
}

/// `applu`: an unrolled inner loop of >1000 instructions — iteration time
/// exceeds the memory latency, so distance 1 is optimal.
#[must_use]
pub fn applu(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let unroll = 48u64; // 48 elements × 3 arrays per iteration
    let n_iters = scale.ws(24 << 20) / 3 / (unroll * 8);
    let (pa, pb, pc) = (
        d.reserve(n_iters * unroll * 8),
        d.reserve(n_iters * unroll * 8),
        d.reserve(n_iters * unroll * 8),
    );
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), pa as i64);
    a.li(r(2), pb as i64);
    a.li(r(3), pc as i64);
    a.li(r(4), n_iters as i64);
    a.label("inner");
    for k in 0..unroll {
        let off = (k * 8) as i64;
        a.ldf(f(1), r(2), off);
        a.ldf(f(2), r(3), off);
        a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(1), rb: f(2), rc: f(3) });
        a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(3), rb: f(6), rc: f(6) });
        // Dependent ALU filler: ~22 further instructions per element.
        fp_filler(&mut a, 18);
        a.stq(f(3), r(1), off);
    }
    a.lda(r(1), r(1), (unroll * 8) as i64);
    a.lda(r(2), r(2), (unroll * 8) as i64);
    a.lda(r(3), r(3), (unroll * 8) as i64);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "applu",
        format!(
            "SSOR sweep: >1000-instruction inner loop ({} per iteration), distance 1 optimal",
            unroll * 23 + 6
        ),
        &a,
        d,
    )
}

/// `art`: neural-net weight scanning — a tight loop touching one f64 per
/// cache line of a large matrix (row-major scan of wide rows), consuming
/// lines far faster than the 8-entry stream buffers can fetch ahead:
/// maximally distance-sensitive, the showcase for self-repairing.
#[must_use]
pub fn art(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let lines = scale.ws(16 << 20) / 64;
    let pw = d.reserve(lines * 64);
    let outer = scale.outer(8, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), pw as i64);
    a.li(r(4), lines as i64);
    a.label("inner");
    a.ldf(f(1), r(1), 0);
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(1), rb: f(2), rc: f(3) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(3), rb: f(6), rc: f(6) });
    a.lda(r(1), r(1), 64);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "art",
        format!("ART weight scan: one load per line over {lines} lines, 6-instruction body"),
        &a,
        d,
    )
}

/// A template for `facerec`/`fma3d`: many strided streams (more than the 8
/// hardware stream buffers can track) with a large dependent computation per
/// element — the hardware prefetcher thrashes, the software prefetcher
/// covers, and the long iteration keeps the optimal distance near 1 (the
/// paper's "naive estimates were sufficient" cases).
fn medium_body(name: &str, scale: Scale, body: usize, streams: u8) -> Workload {
    assert!(streams <= 12, "streams live in r1..r12");
    let mut d = DataAlloc::new();
    let n = scale.ws(16 << 20) / u64::from(streams) / 8;
    let bases: Vec<u64> = (0..streams).map(|_| d.reserve(n * 8)).collect();
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(15), outer as i64);
    a.label("outer");
    for (i, b) in bases.iter().enumerate() {
        a.li(r(1 + i as u8), *b as i64);
    }
    a.li(r(14), n as i64);
    a.label("inner");
    for i in 0..streams {
        a.ldf(f(1 + (i % 8)), r(1 + i), 0);
    }
    fp_filler(&mut a, body);
    for i in 0..streams {
        a.lda(r(1 + i), r(1 + i), 8);
    }
    a.op_imm(AluOp::Sub, r(14), 1, r(14));
    a.bcond_to(Cond::Ne, r(14), "inner");
    a.op_imm(AluOp::Sub, r(15), 1, r(15));
    a.bcond_to(Cond::Ne, r(15), "outer");
    a.halt();
    finish(name, format!("{streams} f64 streams of {n} elements with a {body}-op body"), &a, d)
}

/// `facerec`: ten streams, ~160-instruction body — naive estimates suffice.
#[must_use]
pub fn facerec(scale: Scale) -> Workload {
    medium_body("facerec", scale, 160, 10)
}

/// `fma3d`: twelve streams, ~260-instruction body.
#[must_use]
pub fn fma3d(scale: Scale) -> Workload {
    medium_body("fma3d", scale, 260, 12)
}

/// `galgel`: ten concurrent streams — more than the 8 hardware stream
/// buffers can track, so software prefetching covers what hardware cannot.
#[must_use]
pub fn galgel(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let streams: u8 = 10;
    let n = scale.ws(20 << 20) / u64::from(streams) / 8;
    let bases: Vec<u64> = (0..streams).map(|_| d.reserve(n * 8)).collect();
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(15), outer as i64);
    a.label("outer");
    for (i, b) in bases.iter().enumerate() {
        a.li(r(1 + i as u8), *b as i64);
    }
    a.li(r(14), n as i64);
    a.label("inner");
    for i in 0..streams {
        a.ldf(f(1 + (i % 8)), r(1 + i), 0);
        a.push(tdo_isa::Inst::FOp {
            op: tdo_isa::FpuOp::Add,
            ra: f(1 + (i % 8)),
            rb: f(10),
            rc: f(10),
        });
    }
    for i in 0..streams {
        a.lda(r(1 + i), r(1 + i), 8);
    }
    a.op_imm(AluOp::Sub, r(14), 1, r(14));
    a.bcond_to(Cond::Ne, r(14), "inner");
    a.op_imm(AluOp::Sub, r(15), 1, r(15));
    a.bcond_to(Cond::Ne, r(15), "outer");
    a.halt();
    finish(
        "galgel",
        format!("{streams} concurrent f64 streams of {n} elements (exceeds 8 stream buffers)"),
        &a,
        d,
    )
}

/// `wupwise`: complex-number streams — 16-byte elements read as two-field
/// same-object accesses.
#[must_use]
pub fn wupwise(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let n = scale.ws(20 << 20) / 2 / 16; // complex elements per stream
    let (pa, pb) = (d.reserve(n * 16), d.reserve(n * 16));
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), pa as i64);
    a.li(r(2), pb as i64);
    a.li(r(4), n as i64);
    a.label("inner");
    a.ldf(f(1), r(1), 0); // re
    a.ldf(f(2), r(1), 8); // im
    a.ldf(f(3), r(2), 0);
    a.ldf(f(4), r(2), 8);
    // (a*b) complex multiply-accumulate.
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(1), rb: f(3), rc: f(5) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(2), rb: f(4), rc: f(7) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Sub, ra: f(5), rb: f(7), rc: f(5) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(5), rb: f(6), rc: f(6) });
    a.lda(r(1), r(1), 16);
    a.lda(r(2), r(2), 16);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "wupwise",
        format!("complex-number streams: {n} 16-byte elements, two-field objects"),
        &a,
        d,
    )
}
