//! A phase-shifting workload: alternates between a coarse-stride array
//! scan and a pointer chase over a seeded near-sequential node ring,
//! several times per run.
//!
//! The two phases are chosen to have *disjoint* hardware-prefetcher
//! winners, making this the policy controller's showcase:
//!
//! * **Scan phase** — one f64 touched every 1 KB (16 lines apart). A
//!   PC-stride predictor locks on immediately, so the stream-buffer and
//!   delta arms cover it; a next-line arm fetches only the untouched
//!   neighbouring lines and covers nothing.
//! * **Chase phase** — `p = p->next` over a ring whose nodes sit at
//!   *alternating* +64 B / +192 B deltas (seeded occasional swaps). The
//!   chase PC never shows the same delta twice in a row, so stride
//!   confidence never reaches the allocation threshold and the
//!   stream/delta arms cover nothing — while every node still lies within
//!   a few consecutive lines of its predecessor, which a degree-4
//!   next-line arm covers almost completely.
//!
//! No static arm covers both phases; a controller that re-samples at phase
//! boundaries covers each with its winner.

use tdo_isa::{AluOp, Cond, DataSegment};
use tdo_rand::Rng;

use crate::build::{finish, regs::f, regs::r, DataAlloc, Scale, Workload, CODE_BASE};

/// Seed for the ring layout. Fixed: the workload is deterministic by
/// construction (see `phaseshift_builds_identically` in the crate tests).
const RING_SEED: u64 = 0x9e37_0b5a_7c15_f39d;

/// Builds the node ring: returns `(node_words, first_node_offset)` where
/// each node's first word holds the absolute address of the next node.
/// Deltas alternate 64/192 bytes with a seeded 10% pair swap, which keeps
/// the sequence free of long same-delta runs (no stride confidence) while
/// staying line-adjacent (next-line coverable).
fn build_ring(rng: &mut Rng, nodes: usize, base: u64) -> Vec<u64> {
    let mut deltas: Vec<u64> = (0..nodes - 1).map(|i| if i % 2 == 0 { 64 } else { 192 }).collect();
    let mut i = 0;
    while i + 1 < deltas.len() {
        if rng.gen_bool(0.1) {
            deltas.swap(i, i + 1);
        }
        i += 2;
    }
    let mut offsets = Vec::with_capacity(nodes);
    let mut off = 0u64;
    offsets.push(off);
    for d in &deltas {
        off += d;
        offsets.push(off);
    }
    let total_words = ((off + 64) / 8) as usize;
    let mut words = vec![0u64; total_words];
    for (i, &o) in offsets.iter().enumerate() {
        let next = offsets[(i + 1) % nodes];
        words[(o / 8) as usize] = base + next;
    }
    words
}

/// `phaseshift`: the alternating scan/chase workload described in the
/// module docs.
#[must_use]
pub fn phaseshift(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let mut rng = Rng::new(RING_SEED);

    // Scan region: one load per KB.
    let scan_bytes = scale.ws(16 << 20);
    let scan_elems = scan_bytes / 1024;
    let pa = d.reserve(scan_bytes);

    // Chase ring: ~128 B per node, one node per line touched.
    let ring_bytes = scale.ws(8 << 20);
    let nodes = (ring_bytes / 128) as usize;
    let ring_base = d.reserve(ring_bytes + 64);
    let ring_words = build_ring(&mut rng, nodes, ring_base);
    d.segments.push(DataSegment::from_words(ring_base, &ring_words));

    // Phase lengths: several full phase alternations inside the
    // measurement window at either scale (~75 K instructions per phase at
    // test scale, ~500 K at full scale).
    let (scan_passes, chase_steps, outer) = match scale {
        Scale::Test => (30u64, 25_000u64, 3u64),
        Scale::Full => (8, 170_000, 100_000),
    };

    let mut a = tdo_isa::Asm::new(CODE_BASE);
    a.li(r(5), outer as i64);
    a.label("outer");
    // Phase A: coarse-stride scan, `scan_passes` sweeps over the region.
    a.li(r(6), scan_passes as i64);
    a.label("scan_pass");
    a.li(r(1), pa as i64);
    a.li(r(4), scan_elems as i64);
    a.label("scan");
    a.ldf(f(1), r(1), 0);
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(1), rb: f(6), rc: f(6) });
    a.lda(r(1), r(1), 1024);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "scan");
    a.op_imm(AluOp::Sub, r(6), 1, r(6));
    a.bcond_to(Cond::Ne, r(6), "scan_pass");
    // Phase B: pointer chase around the ring.
    a.li(r(2), ring_base as i64);
    a.li(r(4), chase_steps as i64);
    a.label("chase");
    a.ldq(r(2), r(2), 0);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "chase");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "phaseshift",
        format!(
            "alternating phases: {scan_elems}-element 1KB-stride scan x{scan_passes} \
             vs {chase_steps}-step chase over {nodes} near-sequential nodes"
        ),
        &a,
        d,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_links_form_a_single_cycle() {
        let mut rng = Rng::new(1);
        let base = 0x100_0000u64;
        let nodes = 256;
        let words = build_ring(&mut rng, nodes, base);
        let mut at = 0u64;
        for _ in 0..nodes {
            at = words[(at / 8) as usize] - base;
        }
        assert_eq!(at, 0, "chase returns to the head after exactly `nodes` hops");
    }

    #[test]
    fn ring_deltas_alternate_without_long_runs() {
        let mut rng = Rng::new(RING_SEED);
        let words = build_ring(&mut rng, 4096, 0);
        let mut at = 0u64;
        let mut prev_delta = 0u64;
        let mut run = 0u32;
        let mut max_run = 0u32;
        for _ in 0..4095 {
            let next = words[(at / 8) as usize];
            let delta = next - at;
            assert!(delta == 64 || delta == 192, "delta {delta}");
            if delta == prev_delta {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
            prev_delta = delta;
            at = next;
        }
        // Pair swaps can put two equal deltas back to back (one stride
        // repetition — confidence 1) but never three (confidence 2, the
        // allocation threshold): pairs are only ever (64,192) or (192,64),
        // so a delta can't appear three times consecutively.
        assert!(max_run <= 1, "same-delta run of {} repetitions", max_run);
    }
}
