//! Irregular-control workloads: `gap` and `equake`.
//!
//! * `gap` — an indirect-dispatch interpreter over many small routines,
//!   with one hot routine containing a strided missing loop: overall trace
//!   coverage is low (the dispatcher never forms stable traces), but nearly
//!   all the hot trace's misses are prefetchable, exactly the combination
//!   the paper reports for `gap` in §5.2;
//! * `equake` — sparse matrix-vector product: unit-stride index/value
//!   streams (prefetchable) feeding an indexed gather (not prefetchable by
//!   this optimizer), capping the achievable speedup.

use tdo_isa::{AluOp, Asm, Cond};
use tdo_rand::Rng;

use crate::build::{finish, regs::f, regs::r, DataAlloc, Scale, Workload, CODE_BASE};

/// `gap`: indirect dispatch over 16 routines; routine 0 is hot and streams
/// a large array.
#[must_use]
pub fn gap(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let arr_elems = (scale.ws(16 << 20) / 8).next_power_of_two();
    let arr = d.reserve(arr_elems * 8);
    let arr_mask = (arr_elems * 8 - 1) as i64;
    let idx_n = 4096u64; // dispatch stream length (power of two)
    let idx_base = d.reserve(idx_n * 8);
    let table_base = d.reserve(16 * 8);
    let mut rng = Rng::new(0x6a70_0001);
    // 50% routine 0 (hot), rest uniform over 1..16.
    let stream: Vec<u64> =
        (0..idx_n).map(|_| if rng.gen_bool(0.5) { 0 } else { rng.gen_range(1..16) }).collect();
    d.segments.push(tdo_isa::DataSegment::from_words(idx_base, &stream));
    let outer = scale.outer(6, 10_000_000);

    let mut b = Asm::new(CODE_BASE);
    b.li(r(10), table_base as i64);
    b.li(r(12), arr as i64);
    b.li(r(11), 0);
    b.li(r(15), arr_mask);
    b.li(r(5), outer as i64);
    b.label("outer");
    b.li(r(7), idx_base as i64);
    b.li(r(13), idx_n as i64);
    b.label("dispatch");
    b.ldq(r(2), r(7), 0);
    b.lda(r(7), r(7), 8);
    b.op_imm(AluOp::Sll, r(2), 3, r(2));
    b.op(AluOp::Add, r(10), r(2), r(2));
    b.ldq(r(3), r(2), 0);
    b.push(tdo_isa::Inst::Jmp { rb: r(3) });
    b.label("routine0");
    b.op(AluOp::And, r(11), r(15), r(14));
    b.op(AluOp::Add, r(12), r(14), r(14));
    b.li(r(9), 16);
    b.label("hotloop");
    b.ldq(r(8), r(14), 0);
    b.op(AluOp::Add, r(6), r(8), r(6));
    b.lda(r(14), r(14), 64);
    b.op_imm(AluOp::Sub, r(9), 1, r(9));
    b.bcond_to(Cond::Ne, r(9), "hotloop");
    b.op_imm(AluOp::Add, r(11), 16 * 64, r(11));
    b.br_to("next");
    for i in 1..16 {
        b.label(format!("routine{i}"));
        for k in 0..(3 + i % 5) {
            b.op_imm(AluOp::Add, r(6), i64::from(k + i), r(6));
        }
        b.br_to("next");
    }
    b.label("next");
    b.op_imm(AluOp::Sub, r(13), 1, r(13));
    b.bcond_to(Cond::Ne, r(13), "dispatch");
    b.op_imm(AluOp::Sub, r(5), 1, r(5));
    b.bcond_to(Cond::Ne, r(5), "outer");
    b.halt();
    // Jump table: routine label addresses (known before final assembly).
    let routines: Vec<u64> =
        (0..16).map(|i| b.label_addr(&format!("routine{i}")).expect("routine label")).collect();
    d.segments.push(tdo_isa::DataSegment::from_words(table_base, &routines));

    finish(
        "gap",
        format!(
            "indirect dispatch over 16 routines; hot routine streams a {arr_elems}-element array"
        ),
        &b,
        d,
    )
}

/// `equake`: sparse matrix-vector product — streamed values and column
/// indices, gathering from a vector at unpredictable offsets.
#[must_use]
pub fn equake(scale: Scale) -> Workload {
    let mut d = DataAlloc::new();
    let nnz = scale.ws(20 << 20) / 2 / 16; // value + index per element
    let x_elems = 1u64 << 18; // 2 MB gather vector
    let vals = d.reserve(nnz * 8);
    let cols = d.reserve(nnz * 8);
    let xv = d.reserve(x_elems * 8);
    let mut rng = Rng::new(0xe9_4a4e);
    let col_idx: Vec<u64> = (0..nnz).map(|_| rng.gen_range(0..x_elems) * 8).collect();
    d.segments.push(tdo_isa::DataSegment::from_words(cols, &col_idx));
    let outer = scale.outer(2, 100_000);

    let mut a = Asm::new(CODE_BASE);
    a.li(r(9), xv as i64);
    a.li(r(5), outer as i64);
    a.label("outer");
    a.li(r(1), vals as i64);
    a.li(r(2), cols as i64);
    a.li(r(4), nnz as i64);
    a.label("inner");
    a.ldf(f(1), r(1), 0); // A[j] (stride)
    a.ldq(r(3), r(2), 0); // col[j] (stride)
    a.op(AluOp::Add, r(9), r(3), r(3));
    a.ldf(f(2), r(3), 0); // x[col[j]] (gather — unprefetchable)
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Mul, ra: f(1), rb: f(2), rc: f(3) });
    a.push(tdo_isa::Inst::FOp { op: tdo_isa::FpuOp::Add, ra: f(3), rb: f(6), rc: f(6) });
    a.lda(r(1), r(1), 8);
    a.lda(r(2), r(2), 8);
    a.op_imm(AluOp::Sub, r(4), 1, r(4));
    a.bcond_to(Cond::Ne, r(4), "inner");
    a.op_imm(AluOp::Sub, r(5), 1, r(5));
    a.bcond_to(Cond::Ne, r(5), "outer");
    a.halt();
    finish(
        "equake",
        format!("sparse matvec: {nnz} streamed (value, index) pairs gathering from 2 MB"),
        &a,
        d,
    )
}
