//! # tdo-workloads — the benchmark substrate
//!
//! Synthetic workload programs standing in for the paper's 14-benchmark
//! suite (SPEC 2000 plus the pointer-intensive `dot` and `vis`). The
//! originals are Alpha binaries driven by SimPoint simulation points, which
//! are not reproducible here; these generators instead reproduce the
//! published *memory-access characterization* of each program — working-set
//! size relative to the cache hierarchy, stride versus pointer behaviour,
//! loop-body size (which sets the needed prefetch distance), number of
//! concurrent streams (which determines what the hardware stream buffers
//! can cover), and control-flow stability (which determines hot-trace
//! coverage). Every performance shape the paper's evaluation discusses maps
//! to one of those knobs; see DESIGN.md §1 for the substitution argument.
//!
//! ```
//! use tdo_workloads::{build, names, Scale};
//!
//! assert_eq!(names().len(), 14);
//! let w = build("mcf", Scale::Test).unwrap();
//! assert!(!w.program.code.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod build;
pub mod irregular;
pub mod phase;
pub mod pointer;
pub mod stride;

pub use build::{abi, DataAlloc, Scale, Workload, CODE_BASE, DATA_BASE};

/// The paper's benchmark names, in its order.
#[must_use]
pub fn names() -> &'static [&'static str] {
    &[
        "applu", "art", "dot", "equake", "facerec", "fma3d", "galgel", "gap", "mcf", "mgrid",
        "parser", "swim", "vis", "wupwise",
    ]
}

/// Builds the named workload at the given scale.
///
/// Returns `None` for unknown names; see [`names`].
#[must_use]
pub fn build(name: &str, scale: Scale) -> Option<Workload> {
    Some(match name {
        "applu" => stride::applu(scale),
        "art" => stride::art(scale),
        "dot" => pointer::dot(scale),
        "equake" => irregular::equake(scale),
        "facerec" => stride::facerec(scale),
        "fma3d" => stride::fma3d(scale),
        "galgel" => stride::galgel(scale),
        "gap" => irregular::gap(scale),
        "mcf" => pointer::mcf(scale),
        "mgrid" => stride::mgrid(scale),
        "parser" => pointer::parser(scale),
        "swim" => stride::swim(scale),
        "vis" => pointer::vis(scale),
        "wupwise" => stride::wupwise(scale),
        // Not part of the paper's 14-benchmark suite (and so absent from
        // `names()`): the arm-matrix extension's phase-shifting workload.
        "phaseshift" => phase::phaseshift(scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_isa::decode;

    #[test]
    fn every_workload_builds_and_decodes_at_test_scale() {
        for name in names() {
            let w = build(name, Scale::Test).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(w.program.name, *name);
            assert!(!w.program.code.is_empty(), "{name} has code");
            for (i, word) in w.program.code.iter().enumerate() {
                decode(*word)
                    .unwrap_or_else(|e| panic!("{name} instruction {i} fails to decode: {e}"));
            }
            assert_eq!(w.program.entry, w.program.code_base);
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(build("quake3", Scale::Test).is_none());
    }

    #[test]
    fn phaseshift_builds_identically() {
        // The generator is seeded: two builds must agree byte for byte
        // (code words and every data segment), at both scales.
        for scale in [Scale::Test, Scale::Full] {
            let a = build("phaseshift", scale).expect("phaseshift builds");
            let b = build("phaseshift", scale).expect("phaseshift builds");
            assert_eq!(a.program.code, b.program.code);
            assert_eq!(a.program.data.len(), b.program.data.len());
            for (sa, sb) in a.program.data.iter().zip(&b.program.data) {
                assert_eq!(sa.base, sb.base);
                assert_eq!(sa.bytes, sb.bytes);
            }
        }
    }

    #[test]
    fn phaseshift_decodes_and_respects_the_abi() {
        use tdo_isa::Reg;
        let scratch: Vec<Reg> = abi::scratch_pool();
        let w = build("phaseshift", Scale::Test).expect("phaseshift builds");
        for (i, word) in w.program.code.iter().enumerate() {
            let inst = decode(*word)
                .unwrap_or_else(|e| panic!("phaseshift instruction {i} fails to decode: {e}"));
            if let Some(d) = inst.def() {
                assert!(!scratch.contains(&d), "phaseshift defines scratch {d}");
            }
            for u in inst.uses().into_iter().flatten() {
                assert!(!scratch.contains(&u), "phaseshift uses scratch {u}");
            }
        }
    }

    #[test]
    fn workloads_never_touch_optimizer_scratch_registers() {
        use tdo_isa::Reg;
        let scratch: Vec<Reg> = abi::scratch_pool();
        for name in names() {
            let w = build(name, Scale::Test).unwrap();
            for word in &w.program.code {
                let inst = decode(*word).unwrap();
                if let Some(d) = inst.def() {
                    assert!(!scratch.contains(&d), "{name} defines scratch {d}");
                }
                for u in inst.uses().into_iter().flatten() {
                    assert!(!scratch.contains(&u), "{name} uses scratch {u}");
                }
            }
        }
    }

    #[test]
    fn data_segments_sit_above_code() {
        for name in names() {
            let w = build(name, Scale::Test).unwrap();
            for seg in &w.program.data {
                assert!(seg.base >= DATA_BASE, "{name} segment at {:#x} below data base", seg.base);
            }
        }
    }

    #[test]
    fn applu_body_exceeds_one_thousand_instructions() {
        // The paper singles applu out: a >1000-instruction inner loop makes
        // distance 1 optimal. Verify the generator honours that.
        let w = build("applu", Scale::Test).unwrap();
        let mut max_span = 0i64;
        for word in &w.program.code {
            if let Ok(tdo_isa::Inst::Bcond { disp, .. }) = decode(*word) {
                max_span = max_span.max(-disp);
            }
        }
        assert!(max_span > 1000, "applu inner loop spans {max_span} instructions");
    }

    #[test]
    fn gap_jump_table_points_at_code() {
        let w = build("gap", Scale::Test).unwrap();
        let table =
            w.program.data.iter().find(|s| s.bytes.len() == 16 * 8).expect("jump table segment");
        for c in table.bytes.chunks(8) {
            let addr = u64::from_le_bytes(c.try_into().unwrap());
            assert!(w.program.contains_pc(addr), "routine address {addr:#x} outside code");
        }
    }

    #[test]
    fn mcf_nodes_link_sequentially() {
        let w = build("mcf", Scale::Test).unwrap();
        let seg = w.program.data.first().expect("node segment");
        let first_next = u64::from_le_bytes(seg.bytes[0..8].try_into().unwrap());
        assert_eq!(first_next, seg.base + 64, "node 0 links to node 1");
    }
}
