//! Flight-recorder saturation behaviour: overwrite-oldest semantics, exact
//! overwrite accounting, and byte-deterministic dumps regardless of how
//! many threads fed the ring.

use tdo_obs::span::{EvKind, FlightRecord, FlightRecorder};
use tdo_obs::{validate_flight, FlightKind};

/// A point record in trace `trace` with payload `arg` at time `ts`.
fn rec(trace: u64, ts: u64, arg: u64) -> FlightRecord {
    FlightRecord { ts, trace, span: 0, parent: 0, kind: FlightKind::Mark, ev: EvKind::Point, arg }
}

#[test]
fn a_full_ring_overwrites_oldest_first() {
    let r = FlightRecorder::with_capacity(8);
    for i in 0..12u64 {
        r.record_raw(&rec(1, i, i));
    }
    assert_eq!(r.recorded(), 12);
    assert_eq!(r.overwritten(), 4, "exactly the displaced records count");
    assert_eq!(r.dropped(), 0);
    let snap = r.snapshot();
    assert_eq!(snap.len(), 8, "ring holds its capacity");
    let args: Vec<u64> = snap.iter().map(|x| x.arg).collect();
    assert_eq!(args, (4..12).collect::<Vec<u64>>(), "oldest four gone, order kept");
}

#[test]
fn overwrite_accounting_is_exact_at_the_boundary() {
    let r = FlightRecorder::with_capacity(16);
    for i in 0..16u64 {
        r.record_raw(&rec(1, i, i));
    }
    assert_eq!(r.overwritten(), 0, "a ring filled exactly to capacity displaced nothing");
    r.record_raw(&rec(1, 16, 16));
    assert_eq!(r.overwritten(), 1);
    assert_eq!(r.recorded(), 17);
    assert_eq!(r.snapshot().len(), 16);
}

#[test]
fn a_paused_recorder_counts_drops_and_keeps_its_contents() {
    let r = FlightRecorder::with_capacity(8);
    r.record_raw(&rec(1, 0, 7));
    r.set_paused(true);
    r.record_raw(&rec(1, 1, 8));
    r.record_raw(&rec(1, 2, 9));
    assert_eq!(r.dropped(), 2);
    assert_eq!(r.recorded(), 1);
    assert_eq!(r.snapshot().len(), 1, "paused ring is frozen, not cleared");
    r.set_paused(false);
    r.record_raw(&rec(1, 3, 10));
    assert_eq!(r.recorded(), 2);
}

/// The records four worker threads would emit: four disjoint traces, each
/// with its own logical timeline.
fn workload() -> Vec<Vec<FlightRecord>> {
    (1..=4u64)
        .map(|trace| (0..50u64).map(|seq| rec(trace, seq, trace * 1000 + seq)).collect())
        .collect()
}

#[test]
fn dumps_are_byte_identical_one_thread_vs_four() {
    let _clock = tdo_obs::span::logical_clock_guard();

    // Serial reference: one thread records everything, trace by trace.
    let serial = FlightRecorder::with_capacity(1024);
    for trace in workload() {
        for r in &trace {
            serial.record_raw(r);
        }
    }
    let want = serial.dump();
    validate_flight(&want).expect("serial dump validates");

    // Concurrent: the same records from four racing threads. The ring is
    // big enough that nothing is displaced, and the dump's (trace, ts)
    // ordering erases the interleaving.
    for round in 0..8 {
        let concurrent = std::sync::Arc::new(FlightRecorder::with_capacity(1024));
        let handles: Vec<_> = workload()
            .into_iter()
            .map(|trace| {
                let rec = std::sync::Arc::clone(&concurrent);
                std::thread::spawn(move || {
                    for r in &trace {
                        rec.record_raw(r);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        assert_eq!(concurrent.recorded(), 200);
        assert_eq!(concurrent.overwritten(), 0);
        let got = concurrent.dump();
        assert_eq!(got, want, "round {round}: dump depends only on contents, not threading");
    }
}

#[test]
fn reset_clears_the_ring_but_counters_stay_monotonic() {
    let r = FlightRecorder::with_capacity(8);
    for i in 0..12u64 {
        r.record_raw(&rec(1, i, i));
    }
    r.reset();
    assert!(r.snapshot().is_empty());
    assert_eq!(r.dump(), "");
    // The lifetime counters are exported as Prometheus counters and so
    // must never move backwards.
    assert_eq!(r.recorded(), 12);
    assert_eq!(r.overwritten(), 4);
    // A post-reset ring starts overwrite accounting from empty again.
    r.record_raw(&rec(2, 0, 0));
    assert_eq!(r.overwritten(), 4);
    assert_eq!(r.snapshot().len(), 1);
}
